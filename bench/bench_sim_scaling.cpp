/**
 * @file
 * Simulator engine scaling benchmark: compares the rewritten
 * statevector engine (compact block iteration + diagonal-gate fusion +
 * thread pool + CDF sampling) against a faithful replica of the seed's
 * scalar skip-scan kernels on a >=20-qubit QAOA expectation
 * evaluation, and reports serial-vs-parallel and fused-vs-unfused
 * throughput. Emits BENCH_sim.json next to the binary's working
 * directory for the driver to pick up.
 *
 * Also runs the objective-loop mode: a p=2 Nelder–Mead run whose
 * objective is evaluated (a) the pre-amortization mainline way — cost
 * batch, cut spectrum, and state rebuilt per call, per-qubit mixer
 * sweeps, scalar kernel tier — and (b) through one reused
 * QaoaObjective on the active SIMD tier with the blocked mixer. The
 * ratio is the headline amortization+SIMD win, and the mode
 * cross-checks that expectation values are bit-identical across SIMD
 * tiers and thread counts.
 *
 * Knobs: PERMUQ_SIM_N (qubits, default 20), PERMUQ_SIM_REPS
 * (timing repetitions, best-of, default 3), PERMUQ_SIM_OBJ_N
 * (objective-loop qubits, default 22), PERMUQ_SIM_OBJ_ITERS
 * (objective evaluations per run, default 200).
 */
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "problem/generators.h"
#include "sim/diagonal.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"
#include "sim/simd.h"
#include "sim/statevector.h"

using namespace permuq;

namespace {

/**
 * Replica of the seed's scalar statevector path: every kernel
 * skip-scans the full 2^n index range, sampling is a linear scan per
 * shot. Kept verbatim (modulo the class name) so the speedup below is
 * measured against exactly what the engine replaced.
 */
class SeedScalarSim
{
  public:
    using Amplitude = std::complex<double>;

    explicit SeedScalarSim(std::int32_t num_qubits)
    {
        amp_.assign(std::size_t(1) << num_qubits, Amplitude(0.0, 0.0));
        amp_[0] = Amplitude(1.0, 0.0);
    }

    void
    apply_h(std::int32_t q)
    {
        const std::size_t bit = std::size_t(1) << q;
        const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            if (i & bit)
                continue;
            Amplitude a0 = amp_[i];
            Amplitude a1 = amp_[i | bit];
            amp_[i] = inv_sqrt2 * (a0 + a1);
            amp_[i | bit] = inv_sqrt2 * (a0 - a1);
        }
    }

    void
    apply_rx(std::int32_t q, double theta)
    {
        const std::size_t bit = std::size_t(1) << q;
        const double c = std::cos(theta / 2.0);
        const Amplitude ms(0.0, -std::sin(theta / 2.0));
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            if (i & bit)
                continue;
            Amplitude a0 = amp_[i];
            Amplitude a1 = amp_[i | bit];
            amp_[i] = c * a0 + ms * a1;
            amp_[i | bit] = ms * a0 + c * a1;
        }
    }

    void
    apply_rzz(std::int32_t a, std::int32_t b, double theta)
    {
        const std::size_t abit = std::size_t(1) << a;
        const std::size_t bbit = std::size_t(1) << b;
        const Amplitude same = std::polar(1.0, -theta / 2.0);
        const Amplitude diff = std::polar(1.0, theta / 2.0);
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            bool za = (i & abit) != 0;
            bool zb = (i & bbit) != 0;
            amp_[i] *= (za == zb) ? same : diff;
        }
    }

    std::vector<double>
    probabilities() const
    {
        std::vector<double> p(amp_.size());
        for (std::size_t i = 0; i < amp_.size(); ++i)
            p[i] = std::norm(amp_[i]);
        return p;
    }

    /** Seed sampler: O(2^n) linear scan per shot. */
    std::uint64_t
    sample(Xoshiro256& rng) const
    {
        double r = rng.next_double();
        double acc = 0.0;
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            acc += std::norm(amp_[i]);
            if (r < acc)
                return i;
        }
        return amp_.size() - 1;
    }

  private:
    std::vector<Amplitude> amp_;
};

/** The seed's ideal_expectation, on the scalar replica. */
double
seed_ideal_expectation(const graph::Graph& problem,
                       const sim::QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    SeedScalarSim sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (const auto& e : problem.edges())
            sv.apply_rzz(e.a, e.b, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    auto p = sv.probabilities();
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        if (p[z] > 0.0)
            sum += p[z] * sim::cut_value(problem, z);
    return sum;
}

/** New engine, fusion off: per-gate RZZ sweeps on the compact-block
 *  kernels. Isolates the fusion win from the iteration-space win. */
double
unfused_ideal_expectation(const graph::Graph& problem,
                          const sim::QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (const auto& e : problem.edges())
            sv.apply_rzz(e.a, e.b, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    const auto& amp = sv.amplitudes();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 12,
        [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t z = b; z < e; ++z)
                s += std::norm(amp[z]) *
                     sim::cut_value(problem, static_cast<std::uint64_t>(z));
            return s;
        });
}

/**
 * Replica of the mainline (pre-amortization) objective evaluation:
 * every call reallocates the state, rebuilds the cost batch, re-bakes
 * the 2^n cut spectrum, and sweeps the mixer one qubit at a time. The
 * caller forces the scalar kernel tier for the duration, standing in
 * for the scalar std::complex kernels this PR replaced.
 */
double
mainline_ideal_expectation(const graph::Graph& problem,
                           const sim::QaoaAngles& angles)
{
    const std::int32_t n = problem.num_vertices();
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    sim::DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    auto spectrum = cost.bake(n);
    const double offset =
        static_cast<double>(problem.edges().size()) / 2.0;
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost.apply(sv, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    const auto& amp = sv.amplitudes();
    const double* table = spectrum.data();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 12,
        [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t z = b; z < e; ++z)
                s += std::norm(amp[z]) * (table[z] + offset);
            return s;
        });
}

bool
bits_equal(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::int32_t
env_int(const char* name, std::int32_t fallback)
{
    const char* v = std::getenv(name);
    if (v != nullptr && std::atoi(v) >= 1)
        return std::atoi(v);
    return fallback;
}

/** Best-of-reps wall time of @p body; returns (seconds, last result).
 *  Timing goes through bench::timed_call so each rep also lands in the
 *  permuq.bench.run_ms histogram. */
template <typename Fn>
std::pair<double, double>
time_best(std::int32_t reps, Fn&& body)
{
    double best = 1e30, result = 0.0;
    for (std::int32_t r = 0; r < reps; ++r) {
        auto [value, seconds] = bench::timed_call(body);
        result = value;
        best = std::min(best, seconds);
    }
    return {best, result};
}

} // namespace

int
main()
{
    bench::banner("statevector engine scaling", "engine rewrite");
    const std::int32_t n = env_int("PERMUQ_SIM_N", 20);
    const std::int32_t reps = env_int("PERMUQ_SIM_REPS", 3);
    const std::int32_t hw_threads = common::num_threads();
    const std::int32_t shots = 8192;
    auto problem = problem::random_graph(n, 0.3, 5);
    const auto edges =
        static_cast<std::int32_t>(problem.edges().size());
    sim::QaoaAngles angles{{0.4, 0.7}, {0.35, 0.2}};
    std::printf("n=%d edges=%d layers=%zu threads=%d reps=%d\n\n", n,
                edges, angles.gamma.size(), hw_threads, reps);

    // 1. Seed scalar path (the baseline every speedup is against).
    auto [seed_s, seed_e] = time_best(
        reps, [&] { return seed_ideal_expectation(problem, angles); });
    std::printf("seed scalar path:        %7.3f s  <C>=%.6f\n", seed_s,
                seed_e);

    // 2. New engine, fused, all threads.
    common::set_num_threads(hw_threads);
    auto [fused_s, fused_e] = time_best(
        reps, [&] { return sim::ideal_expectation(problem, angles); });
    std::printf("engine fused  (%2d thr):  %7.3f s  <C>=%.6f\n",
                hw_threads, fused_s, fused_e);

    // 3. New engine, fused, one thread (isolates algorithmic wins).
    common::set_num_threads(1);
    auto [serial_s, serial_e] = time_best(
        reps, [&] { return sim::ideal_expectation(problem, angles); });
    common::set_num_threads(hw_threads);
    std::printf("engine fused  ( 1 thr):  %7.3f s  <C>=%.6f\n", serial_s,
                serial_e);

    // 4. New engine, fusion off (per-gate compact-block sweeps).
    auto [unfused_s, unfused_e] = time_best(
        reps, [&] { return unfused_ideal_expectation(problem, angles); });
    std::printf("engine unfused (%2d thr): %7.3f s  <C>=%.6f\n",
                hw_threads, unfused_s, unfused_e);

    // 5. Sampling: linear scan per shot vs one-time CDF + binary search.
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    sim::DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    cost.apply(sv, -angles.gamma[0]);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_rx(q, 2.0 * angles.beta[0]);
    auto [linear_s, linear_chk] = time_best(reps, [&] {
        Xoshiro256 rng(3);
        std::uint64_t acc = 0;
        for (std::int32_t s = 0; s < shots; ++s)
            acc ^= sv.sample(rng);
        return static_cast<double>(acc);
    });
    auto [cdf_s, cdf_chk] = time_best(reps, [&] {
        Xoshiro256 rng(3);
        sim::CdfSampler sampler(sv);
        std::uint64_t acc = 0;
        for (std::int32_t s = 0; s < shots; ++s)
            acc ^= sampler.sample(rng);
        return static_cast<double>(acc);
    });
    std::printf("%d shots linear scan:  %7.3f s\n", shots, linear_s);
    std::printf("%d shots CDF sampler:  %7.3f s\n\n", shots, cdf_s);

    const double speedup = seed_s / fused_s;
    const double fusion_speedup = unfused_s / fused_s;
    const double thread_speedup = serial_s / fused_s;
    const double sample_speedup = linear_s / cdf_s;
    const double max_err = std::max(
        {std::abs(seed_e - fused_e), std::abs(seed_e - serial_e),
         std::abs(seed_e - unfused_e)});
    std::printf("speedup vs seed scalar:  %6.2fx  (need >= 2x)\n",
                speedup);
    std::printf("fusion speedup:          %6.2fx\n", fusion_speedup);
    std::printf("thread speedup:          %6.2fx\n", thread_speedup);
    std::printf("sampling speedup:        %6.2fx\n", sample_speedup);
    std::printf("max |<C> - seed <C>|:    %.2e  (samplers agree: %s)\n",
                max_err, linear_chk == cdf_chk ? "yes" : "NO");

    // 6. Objective-loop mode: a p=2 Nelder–Mead run, mainline per-eval
    // rebuild on the scalar tier vs one reused QaoaObjective on the
    // active tier.
    const std::int32_t obj_n = env_int("PERMUQ_SIM_OBJ_N", 22);
    const std::int32_t obj_iters = env_int("PERMUQ_SIM_OBJ_ITERS", 200);
    auto obj_problem = problem::random_graph(obj_n, 0.3, 5);
    const sim::SimdTier best_tier = sim::active_simd_tier();
    std::printf("\nobjective loop: n=%d p=2 evals=%d tier=%s\n", obj_n,
                obj_iters, sim::simd_tier_name(best_tier));

    auto run_loop = [&](const std::function<
                        double(const sim::QaoaAngles&)>& expectation) {
        auto f = [&](const std::vector<double>& x) {
            sim::QaoaAngles a{{x[0], x[1]}, {x[2], x[3]}};
            return -expectation(a);
        };
        return sim::nelder_mead(f, {0.3, 0.5, 0.2, 0.1}, 0.4,
                                obj_iters);
    };

    sim::set_simd_tier(sim::SimdTier::Scalar);
    auto [main_best, main_s] = bench::timed_call([&] {
        return run_loop([&](const sim::QaoaAngles& a) {
            return mainline_ideal_expectation(obj_problem, a);
        }).best_f;
    });
    sim::set_simd_tier(best_tier);
    std::printf("mainline per-eval rebuild: %7.3f s  best -E=%.6f\n",
                main_s, main_best);

    sim::QaoaObjective context(obj_problem);
    auto [amort_best, amort_s] = bench::timed_call([&] {
        return run_loop([&](const sim::QaoaAngles& a) {
            return context.ideal_expectation(a);
        }).best_f;
    });
    std::printf("amortized objective:       %7.3f s  best -E=%.6f\n",
                amort_s, amort_best);

    // Bit-identity across SIMD tiers and thread counts, and reused
    // context vs a fresh one; plus mainline-vs-amortized agreement at
    // fixed angles (different reduction shapes, so tolerance not bits).
    bool bit_identical = true;
    double cross_err = 0.0;
    const sim::QaoaAngles probes[] = {
        {{0.4, 0.7}, {0.35, 0.2}},
        {{1.1, -0.3}, {0.9, 0.45}},
    };
    for (const auto& a : probes) {
        double ref = 0.0;
        bool first = true;
        for (sim::SimdTier tier :
             {sim::SimdTier::Scalar, best_tier}) {
            sim::set_simd_tier(tier);
            for (std::int32_t threads : {1, hw_threads}) {
                common::set_num_threads(threads);
                double v = context.ideal_expectation(a);
                if (first) {
                    ref = v;
                    first = false;
                } else {
                    bit_identical =
                        bit_identical && bits_equal(ref, v);
                }
            }
        }
        sim::set_simd_tier(best_tier);
        common::set_num_threads(hw_threads);
        bit_identical =
            bit_identical &&
            bits_equal(ref, sim::QaoaObjective(obj_problem)
                                .ideal_expectation(a));
        sim::set_simd_tier(sim::SimdTier::Scalar);
        double main_v = mainline_ideal_expectation(obj_problem, a);
        sim::set_simd_tier(best_tier);
        cross_err = std::max(cross_err, std::abs(main_v - ref));
    }

    const double obj_speedup = main_s / amort_s;
    std::printf("objective speedup:       %6.2fx  (need >= 1.8x)\n",
                obj_speedup);
    std::printf("bit-identical across tiers/threads: %s  "
                "(mainline cross-check err %.2e)\n",
                bit_identical ? "yes" : "NO", cross_err);

    std::FILE* json = std::fopen("BENCH_sim.json", "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"n\": %d,\n"
            "  \"edges\": %d,\n"
            "  \"layers\": %zu,\n"
            "  \"threads\": %d,\n"
            "  \"shots\": %d,\n"
            "  \"seed_scalar_seconds\": %.6f,\n"
            "  \"fused_parallel_seconds\": %.6f,\n"
            "  \"fused_serial_seconds\": %.6f,\n"
            "  \"unfused_parallel_seconds\": %.6f,\n"
            "  \"linear_sampling_seconds\": %.6f,\n"
            "  \"cdf_sampling_seconds\": %.6f,\n"
            "  \"speedup_vs_seed\": %.3f,\n"
            "  \"fusion_speedup\": %.3f,\n"
            "  \"thread_speedup\": %.3f,\n"
            "  \"sampling_speedup\": %.3f,\n"
            "  \"expectation_max_abs_err\": %.3e,\n"
            "  \"samplers_agree\": %s,\n"
            "  \"simd_tier\": \"%s\",\n"
            "  \"objective_n\": %d,\n"
            "  \"objective_layers\": 2,\n"
            "  \"objective_evals\": %d,\n"
            "  \"objective_mainline_seconds\": %.6f,\n"
            "  \"objective_amortized_seconds\": %.6f,\n"
            "  \"objective_speedup\": %.3f,\n"
            "  \"objective_bit_identical\": %s,\n"
            "  \"objective_cross_check_err\": %.3e\n"
            "}\n",
            n, edges, angles.gamma.size(), hw_threads, shots, seed_s,
            fused_s, serial_s, unfused_s, linear_s, cdf_s, speedup,
            fusion_speedup, thread_speedup, sample_speedup, max_err,
            linear_chk == cdf_chk ? "true" : "false",
            sim::simd_tier_name(best_tier), obj_n, obj_iters, main_s,
            amort_s, obj_speedup, bit_identical ? "true" : "false",
            cross_err);
        std::fclose(json);
        std::printf("wrote BENCH_sim.json\n");
    }
    bench::write_metrics_sidecar("sim_scaling");
    const bool pass = speedup >= 2.0 && max_err < 1e-6 &&
                      obj_speedup >= 1.8 && bit_identical &&
                      cross_err < 1e-6;
    return pass ? 0 : 1;
}
