/**
 * @file
 * Simulator engine scaling benchmark: compares the rewritten
 * statevector engine (compact block iteration + diagonal-gate fusion +
 * thread pool + CDF sampling) against a faithful replica of the seed's
 * scalar skip-scan kernels on a >=20-qubit QAOA expectation
 * evaluation, and reports serial-vs-parallel and fused-vs-unfused
 * throughput. Emits BENCH_sim.json next to the binary's working
 * directory for the driver to pick up.
 *
 * Also runs the objective-loop mode: a p=2 Nelder–Mead run whose
 * objective is evaluated (a) the pre-amortization mainline way — cost
 * batch, cut spectrum, and state rebuilt per call, per-qubit mixer
 * sweeps, scalar kernel tier — and (b) through one reused
 * QaoaObjective on the active SIMD tier with the blocked mixer. The
 * ratio is the headline amortization+SIMD win, and the mode
 * cross-checks that expectation values are bit-identical across SIMD
 * tiers and thread counts.
 *
 * With --sweep, also runs the batched-sweep mode: a gammas x betas
 * angle grid evaluated (a) sequentially through one QaoaObjective and
 * (b) through the batched SweepEvaluator, gating >= 2x points/sec on
 * the single-problem sweep (armed only when the sequential
 * statevector spills the detected last-level cache — a cache-resident
 * sequential loop makes the ratio measure cache vs DRAM bandwidth,
 * not the engine), bitwise-equal expectation values AND sampled shot
 * histograms against the sequential loop on every SIMD tier and
 * thread count, and (when the machine has >= 8 hardware threads)
 * >= 3x aggregate scaling from 1 to 8 concurrently swept problems
 * under the multi-problem memory budget.
 *
 * Knobs: PERMUQ_SIM_N (qubits, default 20), PERMUQ_SIM_REPS
 * (timing repetitions, best-of, default 3), PERMUQ_SIM_OBJ_N
 * (objective-loop qubits, default 22), PERMUQ_SIM_OBJ_ITERS
 * (objective evaluations per run, default 200), PERMUQ_SIM_SWEEP_N
 * (sweep qubits, default 22), PERMUQ_SIM_SWEEP_GRID (grid side,
 * default 8 -> 64 points), PERMUQ_SIM_SWEEP_PROBLEMS (multi-problem
 * width, default 8).
 */
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/diagonal.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"
#include "sim/simd.h"
#include "sim/statevector.h"
#include "sim/sweep.h"

using namespace permuq;

namespace {

/**
 * Replica of the seed's scalar statevector path: every kernel
 * skip-scans the full 2^n index range, sampling is a linear scan per
 * shot. Kept verbatim (modulo the class name) so the speedup below is
 * measured against exactly what the engine replaced.
 */
class SeedScalarSim
{
  public:
    using Amplitude = std::complex<double>;

    explicit SeedScalarSim(std::int32_t num_qubits)
    {
        amp_.assign(std::size_t(1) << num_qubits, Amplitude(0.0, 0.0));
        amp_[0] = Amplitude(1.0, 0.0);
    }

    void
    apply_h(std::int32_t q)
    {
        const std::size_t bit = std::size_t(1) << q;
        const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            if (i & bit)
                continue;
            Amplitude a0 = amp_[i];
            Amplitude a1 = amp_[i | bit];
            amp_[i] = inv_sqrt2 * (a0 + a1);
            amp_[i | bit] = inv_sqrt2 * (a0 - a1);
        }
    }

    void
    apply_rx(std::int32_t q, double theta)
    {
        const std::size_t bit = std::size_t(1) << q;
        const double c = std::cos(theta / 2.0);
        const Amplitude ms(0.0, -std::sin(theta / 2.0));
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            if (i & bit)
                continue;
            Amplitude a0 = amp_[i];
            Amplitude a1 = amp_[i | bit];
            amp_[i] = c * a0 + ms * a1;
            amp_[i | bit] = ms * a0 + c * a1;
        }
    }

    void
    apply_rzz(std::int32_t a, std::int32_t b, double theta)
    {
        const std::size_t abit = std::size_t(1) << a;
        const std::size_t bbit = std::size_t(1) << b;
        const Amplitude same = std::polar(1.0, -theta / 2.0);
        const Amplitude diff = std::polar(1.0, theta / 2.0);
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            bool za = (i & abit) != 0;
            bool zb = (i & bbit) != 0;
            amp_[i] *= (za == zb) ? same : diff;
        }
    }

    std::vector<double>
    probabilities() const
    {
        std::vector<double> p(amp_.size());
        for (std::size_t i = 0; i < amp_.size(); ++i)
            p[i] = std::norm(amp_[i]);
        return p;
    }

    /** Seed sampler: O(2^n) linear scan per shot. */
    std::uint64_t
    sample(Xoshiro256& rng) const
    {
        double r = rng.next_double();
        double acc = 0.0;
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            acc += std::norm(amp_[i]);
            if (r < acc)
                return i;
        }
        return amp_.size() - 1;
    }

  private:
    std::vector<Amplitude> amp_;
};

/** The seed's ideal_expectation, on the scalar replica. */
double
seed_ideal_expectation(const graph::Graph& problem,
                       const sim::QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    SeedScalarSim sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (const auto& e : problem.edges())
            sv.apply_rzz(e.a, e.b, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    auto p = sv.probabilities();
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        if (p[z] > 0.0)
            sum += p[z] * sim::cut_value(problem, z);
    return sum;
}

/** New engine, fusion off: per-gate RZZ sweeps on the compact-block
 *  kernels. Isolates the fusion win from the iteration-space win. */
double
unfused_ideal_expectation(const graph::Graph& problem,
                          const sim::QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (const auto& e : problem.edges())
            sv.apply_rzz(e.a, e.b, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    const auto& amp = sv.amplitudes();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 12,
        [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t z = b; z < e; ++z)
                s += std::norm(amp[z]) *
                     sim::cut_value(problem, static_cast<std::uint64_t>(z));
            return s;
        });
}

/**
 * Replica of the mainline (pre-amortization) objective evaluation:
 * every call reallocates the state, rebuilds the cost batch, re-bakes
 * the 2^n cut spectrum, and sweeps the mixer one qubit at a time. The
 * caller forces the scalar kernel tier for the duration, standing in
 * for the scalar std::complex kernels this PR replaced.
 */
double
mainline_ideal_expectation(const graph::Graph& problem,
                           const sim::QaoaAngles& angles)
{
    const std::int32_t n = problem.num_vertices();
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    sim::DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    auto spectrum = cost.bake(n);
    const double offset =
        static_cast<double>(problem.edges().size()) / 2.0;
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost.apply(sv, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    const auto& amp = sv.amplitudes();
    const double* table = spectrum.data();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 12,
        [&](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t z = b; z < e; ++z)
                s += std::norm(amp[z]) * (table[z] + offset);
            return s;
        });
}

bool
bits_equal(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::int32_t
env_int(const char* name, std::int32_t fallback)
{
    const char* v = std::getenv(name);
    if (v != nullptr && std::atoi(v) >= 1)
        return std::atoi(v);
    return fallback;
}

/** Best-of-reps wall time of @p body; returns (seconds, last result).
 *  Timing goes through bench::timed_call so each rep also lands in the
 *  permuq.bench.run_ms histogram. */
template <typename Fn>
std::pair<double, double>
time_best(std::int32_t reps, Fn&& body)
{
    double best = 1e30, result = 0.0;
    for (std::int32_t r = 0; r < reps; ++r) {
        auto [value, seconds] = bench::timed_call(body);
        result = value;
        best = std::min(best, seconds);
    }
    return {best, result};
}

/** Everything the --sweep section measures (JSON "sweep" object). */
struct SweepBench
{
    std::int32_t n = 0;
    std::int32_t layers = 2;
    std::int64_t points = 0;
    std::int64_t batch = 0;
    double sequential_seconds = 0.0;
    double batched_seconds = 0.0;
    double sequential_pts_per_sec = 0.0;
    double batched_pts_per_sec = 0.0;
    double single_speedup = 0.0;
    double single_speedup_min = 2.0;
    /** One sequential statevector: 16 bytes * 2^n. */
    std::size_t state_bytes = 0;
    /** Detected last-level cache size (sysfs; 32 MB fallback). */
    std::size_t llc_bytes = 0;
    /** The >=2x gate only binds when batching's premise holds: the
     *  sequential statevector spills the last-level cache (n >= 20
     *  and state_bytes > llc_bytes, else the sequential loop streams
     *  from cache and the ratio measures cache vs DRAM bandwidth)
     *  AND the machine has >= 4 hardware threads (batching pays by
     *  cutting DRAM traffic, which only bounds throughput when the
     *  butterfly compute can spread across cores; on 1-2 threads
     *  both paths are compute-serialized — the multi_scaling gate
     *  below applies the same reasoning). Outside those conditions
     *  the ratio is reported but not enforced. */
    bool single_speedup_gated = false;
    bool values_identical = false;
    bool shots_identical = false;
    std::int32_t multi_problems = 0;
    std::int64_t multi_in_flight = 0;
    double multi_pts_per_sec = 0.0;
    double multi_scaling = 0.0;
    double multi_scaling_min = 3.0;
    /** The 1->8 problem scaling gate only binds on machines with at
     *  least 8 hardware threads (below that the scheduler correctly
     *  serializes and aggregate throughput cannot scale). */
    bool multi_scaling_gated = false;
    std::size_t memory_budget_bytes = 0;
    std::size_t peak_memory_bytes = 0;
    bool within_budget = false;

    bool
    pass() const
    {
        return values_identical && shots_identical && within_budget &&
               (!single_speedup_gated ||
                single_speedup >= single_speedup_min) &&
               (!multi_scaling_gated ||
                multi_scaling >= multi_scaling_min);
    }
};

/** Last-level data cache size in bytes: the largest cache level
 *  sysfs reports, 32 MB when nothing is readable (non-Linux). */
std::size_t
llc_cache_bytes()
{
    std::size_t best = 0;
    for (int index = 0; index < 8; ++index) {
        char path[128];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/cpu/cpu0/cache/index%d/size",
                      index);
        std::FILE* f = std::fopen(path, "r");
        if (f == nullptr)
            continue;
        unsigned long long kb = 0;
        char unit = 'K';
        if (std::fscanf(f, "%llu%c", &kb, &unit) >= 1) {
            std::size_t bytes = static_cast<std::size_t>(kb) *
                                (unit == 'M' ? std::size_t(1) << 20
                                             : std::size_t(1) << 10);
            best = std::max(best, bytes);
        }
        std::fclose(f);
    }
    return best != 0 ? best : std::size_t(32) << 20;
}

/** The --sweep section: batched sweep engine vs the sequential
 *  QaoaObjective loop (see file comment). */
SweepBench
run_sweep_bench(std::int32_t hw_threads)
{
    SweepBench out;
    out.n = env_int("PERMUQ_SIM_SWEEP_N", 22);
    const std::int32_t grid = env_int("PERMUQ_SIM_SWEEP_GRID", 8);
    out.multi_problems = env_int("PERMUQ_SIM_SWEEP_PROBLEMS", 8);
    auto problem = problem::random_graph(out.n, 0.3, 5);
    const auto points = sim::sweep_grid(
        static_cast<std::size_t>(grid), static_cast<std::size_t>(grid),
        out.layers);
    out.points = static_cast<std::int64_t>(points.size());
    std::printf("\nsweep mode: n=%d p=%d grid=%dx%d (%lld points) "
                "tier=%s\n",
                out.n, out.layers, grid, grid,
                static_cast<long long>(out.points),
                sim::simd_tier_name(sim::active_simd_tier()));

    // 1. Sequential reference: one QaoaObjective evaluation per point.
    sim::QaoaObjective sequential_ctx(problem);
    std::vector<double> sequential(points.size());
    Timer seq_timer;
    for (std::size_t i = 0; i < points.size(); ++i)
        sequential[i] = sequential_ctx.ideal_expectation(points[i]);
    out.sequential_seconds = seq_timer.elapsed_seconds();
    out.sequential_pts_per_sec =
        static_cast<double>(points.size()) / out.sequential_seconds;
    std::printf("sequential loop:       %7.3f s  (%.1f pts/s)\n",
                out.sequential_seconds, out.sequential_pts_per_sec);

    // 2. Batched sweep, same problem, same points.
    sim::QaoaObjective batched_ctx(problem);
    sim::SweepOptions sweep_options;
    sim::SweepEvaluator evaluator(batched_ctx, sweep_options);
    auto result = evaluator.ideal_sweep(points);
    out.batched_seconds = result.seconds;
    out.batched_pts_per_sec = result.points_per_sec;
    out.batch = static_cast<std::int64_t>(result.batch);
    out.single_speedup = out.sequential_seconds / out.batched_seconds;
    out.state_bytes = std::size_t(16) << out.n;
    out.llc_bytes = llc_cache_bytes();
    out.single_speedup_gated = out.n >= 20 &&
                               out.state_bytes > out.llc_bytes &&
                               hw_threads >= 4;
    std::printf("batched sweep (B=%lld): %7.3f s  (%.1f pts/s)  "
                "%5.2fx  (gate %s >= %.1fx)\n",
                static_cast<long long>(out.batch), out.batched_seconds,
                out.batched_pts_per_sec, out.single_speedup,
                out.single_speedup_gated ? "active" : "off",
                out.single_speedup_min);
    if (!out.single_speedup_gated) {
        if (out.state_bytes <= out.llc_bytes)
            std::printf("  (gate off: %zu MB statevector vs %zu MB "
                        "LLC -- the sequential loop is "
                        "cache-resident, so the ratio is "
                        "informational)\n",
                        out.state_bytes >> 20, out.llc_bytes >> 20);
        else if (hw_threads < 4)
            std::printf("  (gate off: %d hardware thread(s) -- both "
                        "paths are compute-serialized, so the ratio "
                        "is informational)\n",
                        hw_threads);
    }

    // 3. Bitwise identity of the expectation values against the
    // sequential loop, on every compiled-in SIMD tier and at 1 and
    // hw threads.
    const sim::SimdTier best_tier = sim::active_simd_tier();
    out.values_identical = true;
    for (std::size_t i = 0; i < points.size(); ++i)
        out.values_identical = out.values_identical &&
                               bits_equal(result.values[i],
                                          sequential[i]);
    for (sim::SimdTier tier :
         {sim::SimdTier::Scalar, sim::SimdTier::Avx2,
          sim::detected_simd_tier()}) {
        for (std::int32_t threads : {1, hw_threads}) {
            sim::set_simd_tier(tier);
            common::set_num_threads(threads);
            sim::QaoaObjective probe_ctx(problem);
            auto probe =
                sim::SweepEvaluator(probe_ctx).ideal_sweep(points);
            for (std::size_t i = 0; i < points.size(); ++i)
                out.values_identical =
                    out.values_identical &&
                    bits_equal(probe.values[i], sequential[i]);
        }
    }
    sim::set_simd_tier(best_tier);
    common::set_num_threads(hw_threads);

    // 4. Sampled shots: the noisy sweep's per-point histograms must
    // equal the sequential noisy_counts loop, RNG stream and all.
    // Small instance -- this gates correctness, not throughput.
    {
        auto shot_problem = problem::random_graph(10, 0.35, 7);
        auto device =
            arch::smallest_arch(arch::ArchKind::Grid,
                                shot_problem.num_vertices());
        auto compiled = core::compile(device, shot_problem, {});
        auto noise = arch::NoiseModel::calibrated(device, 11);
        auto shot_points = sim::sweep_grid(2, 2, 1);
        sim::NoisySimOptions noisy;
        noisy.trajectories = 4;
        noisy.shots = 500;
        noisy.seed = 77;
        sim::QaoaObjective shot_seq(shot_problem);
        std::vector<std::vector<std::int64_t>> want;
        for (const auto& a : shot_points)
            want.push_back(shot_seq.noisy_counts(compiled.circuit,
                                                 noise, a, noisy));
        out.shots_identical = true;
        for (sim::SimdTier tier :
             {sim::SimdTier::Scalar, sim::detected_simd_tier()}) {
            for (std::int32_t threads : {1, hw_threads}) {
                sim::set_simd_tier(tier);
                common::set_num_threads(threads);
                sim::QaoaObjective shot_ctx(shot_problem);
                auto got = sim::SweepEvaluator(shot_ctx)
                               .noisy_sweep_counts(compiled.circuit,
                                                   noise, shot_points,
                                                   noisy);
                out.shots_identical =
                    out.shots_identical && got == want;
            }
        }
        sim::set_simd_tier(best_tier);
        common::set_num_threads(hw_threads);
        std::printf("bitwise vs sequential: values %s, shots %s\n",
                    out.values_identical ? "yes" : "NO",
                    out.shots_identical ? "yes" : "NO");
    }

    // 5. Multi-problem scaling: aggregate throughput of P problems
    // swept concurrently vs the single-problem batched throughput.
    out.memory_budget_bytes = sweep_options.memory_budget_bytes;
    {
        std::vector<graph::Graph> graphs;
        graphs.reserve(static_cast<std::size_t>(out.multi_problems));
        for (std::int32_t k = 0; k < out.multi_problems; ++k)
            graphs.push_back(problem::random_graph(
                out.n, 0.3, 5 + static_cast<std::uint64_t>(k)));
        std::vector<sim::QaoaObjective> contexts;
        contexts.reserve(graphs.size());
        for (const auto& g : graphs)
            contexts.emplace_back(g);
        std::vector<sim::QaoaObjective*> objectives;
        for (auto& c : contexts)
            objectives.push_back(&c);
        auto multi =
            sim::sweep_problems(objectives, points, sweep_options);
        out.multi_in_flight =
            static_cast<std::int64_t>(multi.problems_in_flight);
        out.multi_pts_per_sec = multi.points_per_sec;
        out.multi_scaling =
            multi.points_per_sec / out.batched_pts_per_sec;
        out.peak_memory_bytes = multi.peak_memory_bytes;
        out.within_budget =
            multi.peak_memory_bytes <= out.memory_budget_bytes;
        out.multi_scaling_gated =
            hw_threads >= 8 && out.multi_problems >= 8;
        std::printf("multi-problem (%d problems, %lld in flight): "
                    "%.1f pts/s aggregate, %.2fx of single "
                    "(gate %s >= %.1fx), peak %zu / budget %zu "
                    "bytes\n",
                    out.multi_problems,
                    static_cast<long long>(out.multi_in_flight),
                    out.multi_pts_per_sec, out.multi_scaling,
                    out.multi_scaling_gated ? "active" : "off",
                    out.multi_scaling_min, out.peak_memory_bytes,
                    out.memory_budget_bytes);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool with_sweep = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--sweep") == 0)
            with_sweep = true;
    bench::banner("statevector engine scaling", "engine rewrite");
    const std::int32_t n = env_int("PERMUQ_SIM_N", 20);
    const std::int32_t reps = env_int("PERMUQ_SIM_REPS", 3);
    const std::int32_t hw_threads = common::num_threads();
    const std::int32_t shots = 8192;
    auto problem = problem::random_graph(n, 0.3, 5);
    const auto edges =
        static_cast<std::int32_t>(problem.edges().size());
    sim::QaoaAngles angles{{0.4, 0.7}, {0.35, 0.2}};
    std::printf("n=%d edges=%d layers=%zu threads=%d reps=%d\n\n", n,
                edges, angles.gamma.size(), hw_threads, reps);

    // 1. Seed scalar path (the baseline every speedup is against).
    auto [seed_s, seed_e] = time_best(
        reps, [&] { return seed_ideal_expectation(problem, angles); });
    std::printf("seed scalar path:        %7.3f s  <C>=%.6f\n", seed_s,
                seed_e);

    // 2. New engine, fused, all threads.
    common::set_num_threads(hw_threads);
    auto [fused_s, fused_e] = time_best(
        reps, [&] { return sim::ideal_expectation(problem, angles); });
    std::printf("engine fused  (%2d thr):  %7.3f s  <C>=%.6f\n",
                hw_threads, fused_s, fused_e);

    // 3. New engine, fused, one thread (isolates algorithmic wins).
    common::set_num_threads(1);
    auto [serial_s, serial_e] = time_best(
        reps, [&] { return sim::ideal_expectation(problem, angles); });
    common::set_num_threads(hw_threads);
    std::printf("engine fused  ( 1 thr):  %7.3f s  <C>=%.6f\n", serial_s,
                serial_e);

    // 4. New engine, fusion off (per-gate compact-block sweeps).
    auto [unfused_s, unfused_e] = time_best(
        reps, [&] { return unfused_ideal_expectation(problem, angles); });
    std::printf("engine unfused (%2d thr): %7.3f s  <C>=%.6f\n",
                hw_threads, unfused_s, unfused_e);

    // 5. Sampling: linear scan per shot vs one-time CDF + binary search.
    sim::Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    sim::DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    cost.apply(sv, -angles.gamma[0]);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_rx(q, 2.0 * angles.beta[0]);
    auto [linear_s, linear_chk] = time_best(reps, [&] {
        Xoshiro256 rng(3);
        std::uint64_t acc = 0;
        for (std::int32_t s = 0; s < shots; ++s)
            acc ^= sv.sample(rng);
        return static_cast<double>(acc);
    });
    auto [cdf_s, cdf_chk] = time_best(reps, [&] {
        Xoshiro256 rng(3);
        sim::CdfSampler sampler(sv);
        std::uint64_t acc = 0;
        for (std::int32_t s = 0; s < shots; ++s)
            acc ^= sampler.sample(rng);
        return static_cast<double>(acc);
    });
    std::printf("%d shots linear scan:  %7.3f s\n", shots, linear_s);
    std::printf("%d shots CDF sampler:  %7.3f s\n\n", shots, cdf_s);

    const double speedup = seed_s / fused_s;
    const double fusion_speedup = unfused_s / fused_s;
    const double thread_speedup = serial_s / fused_s;
    const double sample_speedup = linear_s / cdf_s;
    const double max_err = std::max(
        {std::abs(seed_e - fused_e), std::abs(seed_e - serial_e),
         std::abs(seed_e - unfused_e)});
    std::printf("speedup vs seed scalar:  %6.2fx  (need >= 2x)\n",
                speedup);
    std::printf("fusion speedup:          %6.2fx\n", fusion_speedup);
    std::printf("thread speedup:          %6.2fx\n", thread_speedup);
    std::printf("sampling speedup:        %6.2fx\n", sample_speedup);
    std::printf("max |<C> - seed <C>|:    %.2e  (samplers agree: %s)\n",
                max_err, linear_chk == cdf_chk ? "yes" : "NO");

    // 6. Objective-loop mode: a p=2 Nelder–Mead run, mainline per-eval
    // rebuild on the scalar tier vs one reused QaoaObjective on the
    // active tier.
    const std::int32_t obj_n = env_int("PERMUQ_SIM_OBJ_N", 22);
    const std::int32_t obj_iters = env_int("PERMUQ_SIM_OBJ_ITERS", 200);
    auto obj_problem = problem::random_graph(obj_n, 0.3, 5);
    const sim::SimdTier best_tier = sim::active_simd_tier();
    std::printf("\nobjective loop: n=%d p=2 evals=%d tier=%s\n", obj_n,
                obj_iters, sim::simd_tier_name(best_tier));

    auto run_loop = [&](const std::function<
                        double(const sim::QaoaAngles&)>& expectation) {
        auto f = [&](const std::vector<double>& x) {
            sim::QaoaAngles a{{x[0], x[1]}, {x[2], x[3]}};
            return -expectation(a);
        };
        return sim::nelder_mead(f, {0.3, 0.5, 0.2, 0.1}, 0.4,
                                obj_iters);
    };

    sim::set_simd_tier(sim::SimdTier::Scalar);
    auto [main_best, main_s] = bench::timed_call([&] {
        return run_loop([&](const sim::QaoaAngles& a) {
            return mainline_ideal_expectation(obj_problem, a);
        }).best_f;
    });
    sim::set_simd_tier(best_tier);
    std::printf("mainline per-eval rebuild: %7.3f s  best -E=%.6f\n",
                main_s, main_best);

    sim::QaoaObjective context(obj_problem);
    auto [amort_best, amort_s] = bench::timed_call([&] {
        return run_loop([&](const sim::QaoaAngles& a) {
            return context.ideal_expectation(a);
        }).best_f;
    });
    std::printf("amortized objective:       %7.3f s  best -E=%.6f\n",
                amort_s, amort_best);

    // Bit-identity across SIMD tiers and thread counts, and reused
    // context vs a fresh one; plus mainline-vs-amortized agreement at
    // fixed angles (different reduction shapes, so tolerance not bits).
    bool bit_identical = true;
    double cross_err = 0.0;
    const sim::QaoaAngles probes[] = {
        {{0.4, 0.7}, {0.35, 0.2}},
        {{1.1, -0.3}, {0.9, 0.45}},
    };
    for (const auto& a : probes) {
        double ref = 0.0;
        bool first = true;
        for (sim::SimdTier tier :
             {sim::SimdTier::Scalar, best_tier}) {
            sim::set_simd_tier(tier);
            for (std::int32_t threads : {1, hw_threads}) {
                common::set_num_threads(threads);
                double v = context.ideal_expectation(a);
                if (first) {
                    ref = v;
                    first = false;
                } else {
                    bit_identical =
                        bit_identical && bits_equal(ref, v);
                }
            }
        }
        sim::set_simd_tier(best_tier);
        common::set_num_threads(hw_threads);
        bit_identical =
            bit_identical &&
            bits_equal(ref, sim::QaoaObjective(obj_problem)
                                .ideal_expectation(a));
        sim::set_simd_tier(sim::SimdTier::Scalar);
        double main_v = mainline_ideal_expectation(obj_problem, a);
        sim::set_simd_tier(best_tier);
        cross_err = std::max(cross_err, std::abs(main_v - ref));
    }

    const double obj_speedup = main_s / amort_s;
    std::printf("objective speedup:       %6.2fx  (need >= 1.8x)\n",
                obj_speedup);
    std::printf("bit-identical across tiers/threads: %s  "
                "(mainline cross-check err %.2e)\n",
                bit_identical ? "yes" : "NO", cross_err);

    // 7. Batched sweep mode (opt-in: --sweep).
    SweepBench sweep;
    if (with_sweep)
        sweep = run_sweep_bench(hw_threads);

    std::FILE* json = std::fopen("BENCH_sim.json", "w");
    if (json != nullptr) {
        std::fprintf(
            json,
            "{\n"
            "  \"n\": %d,\n"
            "  \"edges\": %d,\n"
            "  \"layers\": %zu,\n"
            "  \"threads\": %d,\n"
            "  \"shots\": %d,\n"
            "  \"seed_scalar_seconds\": %.6f,\n"
            "  \"fused_parallel_seconds\": %.6f,\n"
            "  \"fused_serial_seconds\": %.6f,\n"
            "  \"unfused_parallel_seconds\": %.6f,\n"
            "  \"linear_sampling_seconds\": %.6f,\n"
            "  \"cdf_sampling_seconds\": %.6f,\n"
            "  \"speedup_vs_seed\": %.3f,\n"
            "  \"fusion_speedup\": %.3f,\n"
            "  \"thread_speedup\": %.3f,\n"
            "  \"sampling_speedup\": %.3f,\n"
            "  \"expectation_max_abs_err\": %.3e,\n"
            "  \"samplers_agree\": %s,\n"
            "  \"simd_tier\": \"%s\",\n"
            "  \"objective_n\": %d,\n"
            "  \"objective_layers\": 2,\n"
            "  \"objective_evals\": %d,\n"
            "  \"objective_mainline_seconds\": %.6f,\n"
            "  \"objective_amortized_seconds\": %.6f,\n"
            "  \"objective_speedup\": %.3f,\n"
            "  \"objective_bit_identical\": %s,\n"
            "  \"objective_cross_check_err\": %.3e,\n",
            n, edges, angles.gamma.size(), hw_threads, shots, seed_s,
            fused_s, serial_s, unfused_s, linear_s, cdf_s, speedup,
            fusion_speedup, thread_speedup, sample_speedup, max_err,
            linear_chk == cdf_chk ? "true" : "false",
            sim::simd_tier_name(best_tier), obj_n, obj_iters, main_s,
            amort_s, obj_speedup, bit_identical ? "true" : "false",
            cross_err);
        if (with_sweep) {
            std::fprintf(
                json,
                "  \"sweep\": {\n"
                "    \"n\": %d,\n"
                "    \"layers\": %d,\n"
                "    \"points\": %lld,\n"
                "    \"batch\": %lld,\n"
                "    \"sequential_seconds\": %.6f,\n"
                "    \"batched_seconds\": %.6f,\n"
                "    \"sequential_pts_per_sec\": %.3f,\n"
                "    \"batched_pts_per_sec\": %.3f,\n"
                "    \"single_speedup\": %.3f,\n"
                "    \"single_speedup_min\": %.2f,\n"
                "    \"state_bytes\": %zu,\n"
                "    \"llc_bytes\": %zu,\n"
                "    \"single_speedup_gated\": %s,\n"
                "    \"values_identical\": %s,\n"
                "    \"shots_identical\": %s,\n"
                "    \"multi_problems\": %d,\n"
                "    \"multi_in_flight\": %lld,\n"
                "    \"multi_pts_per_sec\": %.3f,\n"
                "    \"multi_scaling\": %.3f,\n"
                "    \"multi_scaling_min\": %.2f,\n"
                "    \"multi_scaling_gated\": %s,\n"
                "    \"memory_budget_bytes\": %zu,\n"
                "    \"peak_memory_bytes\": %zu,\n"
                "    \"within_budget\": %s\n"
                "  }\n"
                "}\n",
                sweep.n, sweep.layers,
                static_cast<long long>(sweep.points),
                static_cast<long long>(sweep.batch),
                sweep.sequential_seconds, sweep.batched_seconds,
                sweep.sequential_pts_per_sec,
                sweep.batched_pts_per_sec, sweep.single_speedup,
                sweep.single_speedup_min, sweep.state_bytes,
                sweep.llc_bytes,
                sweep.single_speedup_gated ? "true" : "false",
                sweep.values_identical ? "true" : "false",
                sweep.shots_identical ? "true" : "false",
                sweep.multi_problems,
                static_cast<long long>(sweep.multi_in_flight),
                sweep.multi_pts_per_sec, sweep.multi_scaling,
                sweep.multi_scaling_min,
                sweep.multi_scaling_gated ? "true" : "false",
                sweep.memory_budget_bytes, sweep.peak_memory_bytes,
                sweep.within_budget ? "true" : "false");
        } else {
            std::fprintf(json, "  \"sweep\": null\n}\n");
        }
        std::fclose(json);
        std::printf("wrote BENCH_sim.json\n");
    }
    bench::write_metrics_sidecar("sim_scaling");
    bool pass = speedup >= 2.0 && max_err < 1e-6 &&
                obj_speedup >= 1.8 && bit_identical && cross_err < 1e-6;
    if (with_sweep) {
        std::printf("sweep gate: %s\n", sweep.pass() ? "PASS" : "FAIL");
        pass = pass && sweep.pass();
    }
    return pass ? 0 : 1;
}
