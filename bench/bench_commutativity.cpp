/**
 * @file
 * Quantifies the value of permutability (the paper's premise, §2.2 and
 * Fig 4): the same interaction graphs compiled by a generic fixed-
 * gate-order router (SABRE-like) versus the permutability-aware
 * compilers. Not a paper table; supports the motivation section.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

int
main()
{
    bench::banner("Value of permutable operators (fixed-order SABRE vs "
                  "commutativity-aware compilers)",
                  "section 2.2 motivation");
    Table table({"workload", "sabre depth", "ours depth", "sabre cx",
                 "ours cx", "depth ratio", "cx ratio"});
    struct Workload
    {
        arch::ArchKind kind;
        std::int32_t n;
        double density;
    };
    const Workload workloads[] = {
        {arch::ArchKind::HeavyHex, 32, 0.3},
        {arch::ArchKind::HeavyHex, 64, 0.3},
        {arch::ArchKind::HeavyHex, 64, 0.5},
        {arch::ArchKind::Sycamore, 32, 0.3},
        {arch::ArchKind::Sycamore, 64, 0.3},
        {arch::ArchKind::Sycamore, 64, 0.5},
    };
    for (const auto& w : workloads) {
        auto device = arch::smallest_arch(w.kind, w.n);
        auto run = [&](auto&& compiler) {
            return average_over_seeds([&](std::uint64_t seed) {
                auto problem =
                    problem::random_graph(w.n, w.density, seed);
                auto [result, seconds] = bench::timed_call(
                    [&] { return compiler(device, problem); });
                return std::pair{result.metrics, seconds};
            });
        };
        auto sabre = run([](const auto& d, const auto& p) {
            return baselines::sabre_like(d, p);
        });
        auto ours = run([](const auto& d, const auto& p) {
            return core::compile(d, p);
        });
        table.add_row({arch::to_string(w.kind) + "-" +
                           std::to_string(w.n) + "-" +
                           Table::cell(w.density, 1),
                       Table::cell(sabre.depth, 0),
                       Table::cell(ours.depth, 0),
                       Table::cell(sabre.cx, 0), Table::cell(ours.cx, 0),
                       Table::cell(sabre.depth / ours.depth, 2),
                       Table::cell(sabre.cx / ours.cx, 2)});
    }
    table.print();
    std::printf("(fixed gate order forces the router to realize one "
                "arbitrary serialization; commuting the operators is "
                "worth the ratios above)\n");
    return 0;
}
