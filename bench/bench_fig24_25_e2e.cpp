/**
 * @file
 * Reproduces Figs 24 and 25: the full QAOA loop on the (simulated)
 * IBM Mumbai device — expectation value vs optimizer rounds for the
 * 10-qubit and 20-qubit random-0.3 graphs, ours vs the best small-
 * circuit baseline (2QAN), with the classical optimizer held fixed.
 * The y-axis matches the paper: negated expected cut (smaller better).
 */
#include <cstdio>
#include <cstdlib>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"

using namespace permuq;

namespace {

void
run_experiment(std::int32_t n, std::int32_t rounds,
               std::int32_t trajectories, std::int32_t shots)
{
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 11);
    auto problem = problem::random_graph(n, 0.3, 5);

    auto ours = core::compile(device, problem);
    auto tqan = baselines::tqan_like(device, problem);
    std::printf("compiled: ours depth=%d cx=%lld | 2qan depth=%d "
                "cx=%lld | maxcut=%d\n",
                ours.metrics.depth,
                static_cast<long long>(ours.metrics.cx_count),
                tqan.metrics.depth,
                static_cast<long long>(tqan.metrics.cx_count),
                sim::max_cut(problem));

    auto optimize = [&](const circuit::Circuit& circuit) {
        // One evaluation context for the whole optimizer run: the
        // fused cost batch, cut spectrum, and replay plan are built
        // once and reused by every iteration.
        sim::QaoaObjective context(problem);
        std::int32_t eval = 0;
        auto objective = [&](const std::vector<double>& x) {
            sim::QaoaAngles angles{{x[0]}, {x[1]}};
            sim::NoisySimOptions options;
            options.trajectories = trajectories;
            options.shots = shots;
            options.seed = 1000 + static_cast<std::uint64_t>(eval++);
            return -context.noisy_expectation(circuit, noise, angles,
                                              options);
        };
        return sim::nelder_mead(objective, {0.3, 0.2}, 0.4, rounds);
    };
    auto r_ours = optimize(ours.circuit);
    auto r_tqan = optimize(tqan.circuit);

    Table table({"round", "ours -E", "2qan -E"});
    for (std::int32_t k = 0; k < rounds;
         k += std::max(1, rounds / 10)) {
        table.add_row({Table::cell(static_cast<long long>(k)),
                       Table::cell(r_ours.history[static_cast<std::size_t>(
                                       k)], 3),
                       Table::cell(r_tqan.history[static_cast<std::size_t>(
                                       k)], 3)});
    }
    table.add_row({"best", Table::cell(r_ours.best_f, 3),
                   Table::cell(r_tqan.best_f, 3)});
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Full QAOA on simulated IBM Mumbai", "Figs 24 and 25");
    std::printf("-- 10-qubit random graph, density 0.3 (Fig 24) --\n");
    run_experiment(10, 30, 16, 4000);
    std::printf("-- 20-qubit random graph, density 0.3 (Fig 25) --\n");
    bool quick = std::getenv("PERMUQ_QUICK") != nullptr;
    run_experiment(20, quick ? 8 : 20, 4, 2000);
    return 0;
}
