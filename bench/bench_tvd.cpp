/**
 * @file
 * Reproduces the §7.4 TVD experiment: total variation distance between
 * the noisy output distribution (8000 shots on simulated IBM Mumbai)
 * and the ideal distribution, for the 10-qubit and 20-qubit random-0.3
 * QAOA circuits, ours vs 2QAN. Smaller is better.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"

using namespace permuq;

int
main()
{
    bench::banner("TVD on simulated IBM Mumbai", "section 7.4");
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 11);
    sim::QaoaAngles angles{{0.4}, {0.35}};

    // Two TVD flavours: shot-level (8000 shots, like the paper's real-
    // machine runs) and distribution-level (trajectory-averaged exact
    // probabilities). At 20 qubits the shot histogram over 2^20 bins
    // saturates from sampling sparsity alone, so the distribution
    // column carries the comparison there.
    Table table({"benchmark", "ours TVD", "2qan TVD", "ours dTVD",
                 "2qan dTVD", "ours cx", "2qan cx"});
    for (std::int32_t n : {10, 20}) {
        auto problem = problem::random_graph(n, 0.3, 5);
        auto ours = core::compile(device, problem);
        auto tqan = baselines::tqan_like(device, problem);
        // One evaluation context per problem size: the ideal
        // distribution, both counts, and both distributions share the
        // baked cost batch and scratch statevector.
        sim::QaoaObjective context(problem);
        auto ideal = context.ideal_distribution(angles);
        sim::NoisySimOptions options;
        options.trajectories = n <= 10 ? 32 : 8;
        options.shots = 8000;
        double tvd_ours = sim::tvd(
            ideal, context.noisy_counts(ours.circuit, noise, angles,
                                        options));
        double tvd_tqan = sim::tvd(
            ideal, context.noisy_counts(tqan.circuit, noise, angles,
                                        options));
        double dtvd_ours = sim::tvd(
            ideal, context.noisy_distribution(ours.circuit, noise,
                                              angles, options));
        double dtvd_tqan = sim::tvd(
            ideal, context.noisy_distribution(tqan.circuit, noise,
                                              angles, options));
        table.add_row(
            {"qaoa-rand-" + std::to_string(n) + "-0.3",
             Table::cell(tvd_ours, 3), Table::cell(tvd_tqan, 3),
             Table::cell(dtvd_ours, 3), Table::cell(dtvd_tqan, 3),
             Table::cell(static_cast<long long>(ours.metrics.cx_count)),
             Table::cell(static_cast<long long>(tqan.metrics.cx_count))});
    }
    table.print();
    std::printf("(paper: 10q ours 0.39 vs 2QAN 0.49; 20q ours 0.62 vs "
                "2QAN 0.66 — absolute values depend on the calibration "
                "sample, the ordering is the result)\n");
    return 0;
}
