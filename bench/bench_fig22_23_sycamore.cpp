/**
 * @file
 * Reproduces Figs 22 and 23: depth and CX gate count on Google Sycamore
 * for random and regular graphs, n in {64, 128, 256}, density in
 * {0.3, 0.5}, comparing ours against QAIM_IC and Paulihedral.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

int
main()
{
    bench::banner("Sycamore depth and gate count vs QAIM/Paulihedral",
                  "Figs 22 and 23");
    auto kind = arch::ArchKind::Sycamore;
    for (bool regular : {false, true}) {
        Table table({"graph", "ours depth", "qaim depth", "pauli depth",
                     "ours cx", "qaim cx", "pauli cx"});
        for (std::int32_t n : {64, 128, 256}) {
            for (double density : {0.3, 0.5}) {
                auto device = arch::smallest_arch(kind, n);
                auto make_problem = [&](std::uint64_t seed) {
                    return regular ? problem::regular_graph_with_density(
                                         n, density, seed)
                                   : problem::random_graph(n, density,
                                                           seed);
                };
                auto run = [&](auto&& compiler) {
                    return average_over_seeds([&](std::uint64_t seed) {
                        auto problem = make_problem(seed);
                        auto [result, seconds] = bench::timed_call(
                            [&] { return compiler(device, problem); });
                        return std::pair{result.metrics, seconds};
                    });
                };
                auto ours = run([](const auto& d, const auto& p) {
                    return core::compile(d, p);
                });
                auto qaim = run([](const auto& d, const auto& p) {
                    return baselines::qaim_like(d, p);
                });
                auto pauli = run([](const auto& d, const auto& p) {
                    return baselines::paulihedral_like(d, p);
                });
                std::string label = std::string(regular ? "reg-" : "rand-") +
                                    std::to_string(n) + "-" +
                                    Table::cell(density, 1);
                table.add_row({label, Table::cell(ours.depth, 0),
                               Table::cell(qaim.depth, 0),
                               Table::cell(pauli.depth, 0),
                               Table::cell(ours.cx, 0),
                               Table::cell(qaim.cx, 0),
                               Table::cell(pauli.cx, 0)});
            }
        }
        std::printf("-- %s graphs on Sycamore (Fig 22/23 %s) --\n",
                    regular ? "regular" : "random",
                    regular ? "(b)" : "(a)");
        table.print();
        std::printf("\n");
    }
    return 0;
}
