/**
 * @file
 * Reproduces Table 4: ours vs the SAT-solver approaches on small 2D
 * grids — depth, gate count and compilation time for n in {10, 12, 15}
 * and density in {0.2, 0.3, 0.4}. olsq stands in for QAOA-OLSQ
 * (depth-optimal search), satmap for SATMAP (swap-count-optimal
 * search); both are exact with an expansion budget standing in for the
 * solvers' wall-clock timeouts.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;

int
main()
{
    bench::banner("Comparison with SAT-solver-based compilers",
                  "Table 4");
    Table table({"graph", "ours depth", "olsq depth", "satmap depth",
                 "ours gates", "olsq gates", "satmap gates", "ours t(s)",
                 "olsq t(s)", "satmap t(s)"});
    for (std::int32_t n : {10, 12, 15}) {
        for (double density : {0.2, 0.3, 0.4}) {
            // One representative instance per point (the exact solvers
            // are deterministic; seed 1 matches the other benches).
            auto device = arch::smallest_arch(arch::ArchKind::Grid, n);
            auto problem = problem::random_graph(n, density, 1);
            auto [ours, ours_t] = bench::timed_call(
                [&] { return core::compile(device, problem); });
            auto olsq = baselines::olsq_like(device, problem);
            auto satmap = baselines::satmap_like(device, problem);
            auto mark = [](const baselines::BaselineResult& r,
                           long long v) {
                return r.complete ? Table::cell(v)
                                  : Table::cell(v) + "*";
            };
            table.add_row(
                {std::to_string(n) + "-" + Table::cell(density * 10, 0),
                 Table::cell(static_cast<long long>(ours.metrics.depth)),
                 mark(olsq, olsq.metrics.depth),
                 mark(satmap, satmap.metrics.depth),
                 Table::cell(static_cast<long long>(ours.metrics.cx_count)),
                 mark(olsq, olsq.metrics.cx_count),
                 mark(satmap, satmap.metrics.cx_count),
                 Table::cell(ours_t, 3),
                 Table::cell(olsq.compile_seconds, 3),
                 Table::cell(satmap.compile_seconds, 3)});
        }
    }
    table.print();
    std::printf("(* = expansion budget exhausted; heuristic incumbent "
                "reported, like a SAT timeout)\n");
    return 0;
}
