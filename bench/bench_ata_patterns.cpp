/**
 * @file
 * Regenerates the pattern depth laws of §3 and Appendices A-C: the
 * clique-circuit depth of every ATA pattern as a function of device
 * size, confirming the linear-depth structure (line 2n-2; grid ~2n;
 * Sycamore ~3.5n; hexagon ~4n; heavy-hex ~5n) and the per-pattern
 * constants used by the prediction component.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/replay.h"
#include "bench_util.h"
#include "circuit/metrics.h"
#include "common/table.h"
#include "common/timer.h"
#include "graph/graph.h"

using namespace permuq;

int
main()
{
    bench::banner("ATA clique-pattern depth laws", "section 3, App. A-C");
    Table table({"architecture", "qubits", "depth", "depth/n", "swaps",
                 "merged", "cx", "gen+replay (s)"});
    struct Case
    {
        arch::ArchKind kind;
        std::int32_t n;
    };
    const Case cases[] = {
        {arch::ArchKind::Line, 16},      {arch::ArchKind::Line, 64},
        {arch::ArchKind::Grid, 64},      {arch::ArchKind::Grid, 256},
        {arch::ArchKind::Grid, 1024},    {arch::ArchKind::Sycamore, 64},
        {arch::ArchKind::Sycamore, 256}, {arch::ArchKind::Sycamore, 1024},
        {arch::ArchKind::Hexagon, 64},   {arch::ArchKind::Hexagon, 256},
        {arch::ArchKind::HeavyHex, 64},  {arch::ArchKind::HeavyHex, 256},
        {arch::ArchKind::HeavyHex, 1024},
    };
    for (const auto& c : cases) {
        auto device = arch::smallest_arch(c.kind, c.n);
        auto problem = graph::Graph::clique(device.num_qubits());
        circuit::Mapping mapping(device.num_qubits(), device.num_qubits());
        circuit::Circuit circ;
        double seconds = bench::timed([&] {
            auto sched = ata::full_ata_schedule(device);
            circ = ata::replay(device, problem, mapping, sched);
        });
        circuit::expect_valid(circ, device, problem);
        auto m = circuit::compute_metrics(circ);
        table.add_row(
            {device.name(),
             Table::cell(static_cast<long long>(device.num_qubits())),
             Table::cell(static_cast<long long>(m.depth)),
             Table::cell(static_cast<double>(m.depth) /
                             device.num_qubits(),
                         2),
             Table::cell(static_cast<long long>(m.swap_gates)),
             Table::cell(static_cast<long long>(m.merged_pairs)),
             Table::cell(static_cast<long long>(m.cx_count)),
             Table::cell(seconds, 2)});
    }
    table.print();
    return 0;
}
