/**
 * @file
 * Reproduces Fig 17 (a)-(d): pure greedy vs pure solver-guided (ATA)
 * vs the combined compiler, depth and gate count on heavy-hex and
 * Sycamore, random graphs n in {64, 256, 1024}, density in {0.1, 0.3},
 * normalized to the greedy bar.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

int
main()
{
    bench::banner("Pure-Greedy vs Solver vs Ours", "Fig 17 (a)-(d)");
    for (auto kind : {arch::ArchKind::HeavyHex, arch::ArchKind::Sycamore}) {
        Table depth_table({"graph", "greedy", "solver", "ours",
                           "solver/greedy", "ours/greedy"});
        Table gates_table({"graph", "greedy", "solver", "ours",
                           "solver/greedy", "ours/greedy"});
        // Paper densities 0.1/0.3 plus two denser points: our greedy
        // component is stronger than the paper's, which pushes the
        // greedy-vs-structured crossover toward higher density (see
        // EXPERIMENTS.md), so the dense points exhibit it.
        for (double density : {0.1, 0.3, 0.7, 1.0}) {
            for (std::int32_t n : {64, 256, 1024}) {
                if (density > 0.5 && n > 256)
                    continue; // keep the harness fast
                auto device = arch::smallest_arch(kind, n);
                auto run = [&](auto&& compiler) {
                    return average_over_seeds([&](std::uint64_t seed) {
                        auto problem =
                            problem::random_graph(n, density, seed);
                        auto [result, seconds] = bench::timed_call(
                            [&] { return compiler(device, problem); });
                        return std::pair{result.metrics, seconds};
                    });
                };
                auto greedy = run([](const auto& d, const auto& p) {
                    return baselines::greedy_only(d, p);
                });
                auto solver = run([](const auto& d, const auto& p) {
                    return baselines::ata_only(d, p);
                });
                auto ours = run([](const auto& d, const auto& p) {
                    return core::compile(d, p);
                });
                std::string label = std::to_string(n) + "-" +
                                    Table::cell(density, 1);
                depth_table.add_row(
                    {label, Table::cell(greedy.depth, 0),
                     Table::cell(solver.depth, 0),
                     Table::cell(ours.depth, 0),
                     Table::cell(solver.depth / greedy.depth, 2),
                     Table::cell(ours.depth / greedy.depth, 2)});
                gates_table.add_row(
                    {label, Table::cell(greedy.cx, 0),
                     Table::cell(solver.cx, 0), Table::cell(ours.cx, 0),
                     Table::cell(solver.cx / greedy.cx, 2),
                     Table::cell(ours.cx / greedy.cx, 2)});
            }
        }
        std::printf("-- depth, %s (Fig 17 %s) --\n",
                    arch::to_string(kind).c_str(),
                    kind == arch::ArchKind::HeavyHex ? "(a)" : "(c)");
        depth_table.print();
        std::printf("\n-- gate count, %s (Fig 17 %s) --\n",
                    arch::to_string(kind).c_str(),
                    kind == arch::ArchKind::HeavyHex ? "(b)" : "(d)");
        gates_table.print();
        std::printf("\n");
    }
    return 0;
}
