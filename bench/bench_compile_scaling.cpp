/**
 * @file
 * Compile-time scaling benchmark: compares the incremental greedy
 * engine (executable-edge frontier, flat lookup tables, schedule
 * memoization, parallel candidate materialization) against a faithful
 * replica of the pre-rework compiler (hash-map edge/coupler indices,
 * full per-cycle coupler scans, hash-based replay bookkeeping,
 * serial single-start pipeline) on grid, heavy-hex, and Sycamore
 * devices up to 1024 qubits, and reports multi-start thread scaling.
 * The replica is kept frozen so the speedup is measured against
 * exactly what the rework replaced; both compilers must produce
 * bit-identical circuits (verified in-binary by hashing).
 *
 * A second section measures region-sharded compilation on fabric-scale
 * grids with locality-structured problems (fabric_local_graph):
 * sharded vs unsharded wall time at 1024/4096 qubits, sharded-only
 * completion at 16384, bit-identical output across thread counts, and
 * (full runs only) a 102400-qubit streaming-QASM compile whose peak
 * RSS must stay inside the documented 512 MiB budget.
 *
 * A third section sweeps the interactive tier dial (fast/balanced/
 * best) on 3-regular QAOA instances at 128/256/512 qubits on grid and
 * Sycamore devices, verifying every fast-tier plan symbolically and
 * gating fast-tier latency (<= 1 ms at 256q), the Sycamore 256q
 * speedup (>= 20x vs best), and the fast/best depth ratio (<= 1.5x).
 * Pass --tiers to run only this section (no JSON output).
 *
 * A fourth section measures the compile service's warm path: an
 * in-process permuqd Server compiles a heavy-hex 256q request cold,
 * then the same request is replayed over the socket and served from
 * the plan cache; the client-side round-trip p50 must stay inside the
 * warm-latency budget and every warm response must be byte-identical
 * to the cold one. Pass --service to run only this section (no JSON
 * output).
 *
 * Emits BENCH_compile.json in the working directory. Pass --smoke to
 * cap the sweep at 256 qubits (CI); the >=3x acceptance gates (legacy
 * vs incremental at 1024, unsharded vs sharded at 4096) apply only to
 * the full run.
 *
 * Knobs: PERMUQ_COMPILE_REPS (timing repetitions, best-of, default 2),
 * PERMUQ_COMPILE_DENSITY_PCT (ER density in percent, default 30).
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/resource.h>

#include "arch/coupling_graph.h"
#include "bench_util.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "common/log/log.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "core/crosstalk.h"
#include "core/prediction.h"
#include "core/shard.h"
#include "graph/coloring.h"
#include "graph/matching.h"
#include "problem/generators.h"
#include "service/client.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "verify/equivalence.h"

using namespace permuq;

namespace legacy {

/**
 * Frozen replica of the seed's replay loop: per-slot pending lookups
 * through an unordered_map keyed by logical pair.
 */
circuit::Circuit
replay(const arch::CouplingGraph& /*device*/, const graph::Graph& problem,
       const circuit::Mapping& initial, const ata::SwapSchedule& sched,
       const std::vector<bool>* done)
{
    std::unordered_map<VertexPair, bool, VertexPairHash> pending;
    std::vector<std::int32_t> pending_degree(
        static_cast<std::size_t>(problem.num_vertices()), 0);
    std::int64_t remaining = 0;
    const auto& edges = problem.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (done != nullptr && (*done)[i])
            continue;
        pending.emplace(edges[i], true);
        ++pending_degree[static_cast<std::size_t>(edges[i].a)];
        ++pending_degree[static_cast<std::size_t>(edges[i].b)];
        ++remaining;
    }

    circuit::Circuit circ(initial);
    for (const auto& slot : sched.slots) {
        if (remaining == 0)
            break; // stop_early (the production default)
        LogicalQubit a = circ.final_mapping().logical_at(slot.p);
        LogicalQubit b = circ.final_mapping().logical_at(slot.q);
        if (slot.kind == ata::Slot::Kind::Compute) {
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            auto it = pending.find(VertexPair(a, b));
            if (it == pending.end() || !it->second)
                continue;
            circ.add_compute(slot.p, slot.q);
            it->second = false;
            --pending_degree[static_cast<std::size_t>(a)];
            --pending_degree[static_cast<std::size_t>(b)];
            --remaining;
        } else {
            // skip_dead_swaps (the production default).
            bool a_dead =
                a == kInvalidQubit ||
                pending_degree[static_cast<std::size_t>(a)] == 0;
            bool b_dead =
                b == kInvalidQubit ||
                pending_degree[static_cast<std::size_t>(b)] == 0;
            if (a_dead && b_dead)
                continue;
            circ.add_swap(slot.p, slot.q);
        }
    }
    return circ;
}

/** Frozen replica of the seed's O(V^2 * deg) placement. */
circuit::Mapping
placement(const arch::CouplingGraph& device, const graph::Graph& problem)
{
    std::int32_t n = problem.num_vertices();
    const auto& dist = device.distances();

    std::vector<std::int64_t> closeness(
        static_cast<std::size_t>(device.num_qubits()), 0);
    for (std::int32_t p = 0; p < device.num_qubits(); ++p)
        for (std::int32_t q = 0; q < device.num_qubits(); ++q)
            closeness[static_cast<std::size_t>(p)] += dist.at(p, q);

    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(n), kInvalidQubit);
    std::vector<bool> pos_used(
        static_cast<std::size_t>(device.num_qubits()), false);
    std::vector<bool> placed(static_cast<std::size_t>(n), false);

    auto best_free_central = [&] {
        PhysicalQubit best = kInvalidQubit;
        for (std::int32_t p = 0; p < device.num_qubits(); ++p) {
            if (pos_used[static_cast<std::size_t>(p)])
                continue;
            if (best == kInvalidQubit ||
                device.connectivity().degree(p) >
                    device.connectivity().degree(best) ||
                (device.connectivity().degree(p) ==
                     device.connectivity().degree(best) &&
                 closeness[static_cast<std::size_t>(p)] <
                     closeness[static_cast<std::size_t>(best)]))
                best = p;
        }
        return best;
    };

    for (std::int32_t step = 0; step < n; ++step) {
        std::int32_t pick = -1, pick_placed = -1;
        for (std::int32_t v = 0; v < n; ++v) {
            if (placed[static_cast<std::size_t>(v)])
                continue;
            std::int32_t num_placed = 0;
            for (std::int32_t w : problem.neighbors(v))
                if (placed[static_cast<std::size_t>(w)])
                    ++num_placed;
            if (pick == -1 || num_placed > pick_placed ||
                (num_placed == pick_placed &&
                 problem.degree(v) > problem.degree(pick))) {
                pick = v;
                pick_placed = num_placed;
            }
        }
        PhysicalQubit where = kInvalidQubit;
        if (pick_placed == 0) {
            where = best_free_central();
        } else {
            std::int64_t best_sum = -1;
            for (std::int32_t p = 0; p < device.num_qubits(); ++p) {
                if (pos_used[static_cast<std::size_t>(p)])
                    continue;
                std::int64_t sum = 0;
                for (std::int32_t w : problem.neighbors(pick))
                    if (placed[static_cast<std::size_t>(w)])
                        sum += dist.at(
                            p, phys_of[static_cast<std::size_t>(w)]);
                if (best_sum < 0 || sum < best_sum) {
                    best_sum = sum;
                    where = p;
                }
            }
        }
        panic_unless(where != kInvalidQubit, "placement ran out of qubits");
        phys_of[static_cast<std::size_t>(pick)] = where;
        pos_used[static_cast<std::size_t>(where)] = true;
        placed[static_cast<std::size_t>(pick)] = true;
    }
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}

struct Snapshot
{
    std::int64_t prefix_ops = 0;
    double est_depth = 0.0;
    double est_cx = 0.0;
};

/**
 * Frozen replica of the pre-rework greedy engine: edge and coupler
 * hash indices, a full coupler rescan per cycle for executable gates,
 * unordered_map gain accumulation, no frontier, no schedule cache.
 */
class GreedyEngine
{
  public:
    GreedyEngine(const arch::CouplingGraph& device,
                 const graph::Graph& problem,
                 const core::CompilerOptions& options,
                 const core::CrosstalkMap* crosstalk,
                 circuit::Mapping initial)
        : device_(device),
          problem_(problem),
          options_(options),
          crosstalk_(crosstalk),
          circ_(std::move(initial)),
          done_(static_cast<std::size_t>(problem.num_edges()), false),
          pending_deg_(static_cast<std::size_t>(problem.num_vertices()),
                       0),
          last_swap_cycle_(device.couplers().size(), -10)
    {
        pending_adj_.resize(
            static_cast<std::size_t>(problem.num_vertices()));
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            edge_index_.emplace(edge, e);
            ++pending_deg_[static_cast<std::size_t>(edge.a)];
            ++pending_deg_[static_cast<std::size_t>(edge.b)];
            pending_adj_[static_cast<std::size_t>(edge.a)].emplace_back(
                edge.b, e);
            pending_adj_[static_cast<std::size_t>(edge.b)].emplace_back(
                edge.a, e);
        }
        pending_ = problem.num_edges();
        for (std::int32_t c = 0;
             c < static_cast<std::int32_t>(device.couplers().size()); ++c)
            coupler_index_.emplace(
                device.couplers()[static_cast<std::size_t>(c)], c);
    }

    void
    run()
    {
        std::int64_t max_cycles = static_cast<std::int64_t>(
            options_.max_cycle_factor *
                (4.0 * device_.num_qubits() + 64.0) +
            64.0);
        std::int64_t snapshot_step = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(options_.snapshot_fraction *
                                         problem_.num_edges()));
        std::int64_t next_snapshot = pending_ - snapshot_step;
        maybe_snapshot();

        for (std::int64_t cycle = 0; pending_ > 0 && cycle < max_cycles;
             ++cycle) {
            bool progress = step(cycle);
            if (options_.use_ata_prediction && pending_ <= next_snapshot) {
                maybe_snapshot();
                next_snapshot = pending_ - snapshot_step;
            }
            if (!progress)
                break;
        }
        if (pending_ > 0) {
            if (device_.kind() == arch::ArchKind::Custom) {
                route_remaining();
            } else {
                auto plan =
                    core::detect_regions(device_, problem_, done_,
                                         circ_.final_mapping());
                auto sched = core::tail_schedule(device_, plan);
                auto tail = replay(device_, problem_,
                                   circ_.final_mapping(), sched, &done_);
                circ_.append_circuit(tail);
                pending_ = 0;
            }
        }
    }

    const circuit::Circuit& circuit() const { return circ_; }
    const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  private:
    void
    route_remaining()
    {
        const auto& dist = device_.distances();
        for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
            if (done_[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(e)];
            PhysicalQubit pa = circ_.final_mapping().physical_of(edge.a);
            PhysicalQubit pb = circ_.final_mapping().physical_of(edge.b);
            while (dist.at(pa, pb) > 1) {
                std::int32_t d = dist.at(pa, pb);
                for (PhysicalQubit nb :
                     device_.connectivity().neighbors(pa)) {
                    if (dist.at(nb, pb) < d) {
                        circ_.add_swap(pa, nb);
                        pa = nb;
                        break;
                    }
                }
            }
            circ_.add_compute(pa, pb);
            done_[static_cast<std::size_t>(e)] = true;
            --pending_deg_[static_cast<std::size_t>(edge.a)];
            --pending_deg_[static_cast<std::size_t>(edge.b)];
            --pending_;
        }
    }

    bool
    step(std::int64_t cycle)
    {
        const auto& mapping = circ_.final_mapping();
        const auto& couplers = device_.couplers();
        std::int32_t num_couplers =
            static_cast<std::int32_t>(couplers.size());

        if (cycle - last_compute_cycle_ > 8) {
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = device_.distances().at(
                    mapping.physical_of(edge.a),
                    mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            while (device_.distances().at(pa, pb) > 1) {
                std::int32_t d = device_.distances().at(pa, pb);
                for (PhysicalQubit nb :
                     device_.connectivity().neighbors(pa)) {
                    if (device_.distances().at(nb, pb) < d) {
                        circ_.add_swap(pa, nb);
                        pa = nb;
                        break;
                    }
                }
            }
            circ_.add_compute(pa, pb);
            done_[static_cast<std::size_t>(best_e)] = true;
            --pending_deg_[static_cast<std::size_t>(edge.a)];
            --pending_deg_[static_cast<std::size_t>(edge.b)];
            --pending_;
            last_compute_cycle_ = cycle;
            return true;
        }

        // Full per-cycle executable scan (the rework's frontier
        // replaced exactly this loop).
        struct Executable
        {
            std::int32_t coupler;
            std::int32_t edge;
        };
        std::vector<Executable> executable;
        for (std::int32_t c = 0; c < num_couplers; ++c) {
            const auto& link = couplers[static_cast<std::size_t>(c)];
            LogicalQubit a = mapping.logical_at(link.a);
            LogicalQubit b = mapping.logical_at(link.b);
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            auto it = edge_index_.find(VertexPair(a, b));
            if (it != edge_index_.end() &&
                !done_[static_cast<std::size_t>(it->second)])
                executable.push_back({c, it->second});
        }

        std::vector<bool> used(
            static_cast<std::size_t>(device_.num_qubits()), false);
        bool did_something = false;
        if (!executable.empty()) {
            graph::Graph conflict(
                static_cast<std::int32_t>(executable.size()));
            std::unordered_map<std::int32_t, std::vector<std::int32_t>>
                by_qubit;
            for (std::size_t i = 0; i < executable.size(); ++i) {
                const auto& link = couplers[static_cast<std::size_t>(
                    executable[i].coupler)];
                by_qubit[link.a].push_back(static_cast<std::int32_t>(i));
                by_qubit[link.b].push_back(static_cast<std::int32_t>(i));
            }
            for (const auto& [q, list] : by_qubit)
                for (std::size_t i = 0; i < list.size(); ++i)
                    for (std::size_t j = i + 1; j < list.size(); ++j)
                        if (!conflict.has_edge(list[i], list[j]))
                            conflict.add_edge(list[i], list[j]);
            auto coloring = graph::greedy_coloring(conflict);
            std::int32_t cls = graph::largest_class(coloring);
            for (std::int32_t i :
                 coloring.classes[static_cast<std::size_t>(cls)]) {
                const auto& ex = executable[static_cast<std::size_t>(i)];
                const auto& link =
                    couplers[static_cast<std::size_t>(ex.coupler)];
                circ_.add_compute(link.a, link.b);
                done_[static_cast<std::size_t>(ex.edge)] = true;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(ex.edge)];
                --pending_deg_[static_cast<std::size_t>(edge.a)];
                --pending_deg_[static_cast<std::size_t>(edge.b)];
                --pending_;
                used[static_cast<std::size_t>(link.a)] = true;
                used[static_cast<std::size_t>(link.b)] = true;
                last_compute_cycle_ = cycle;
                did_something = true;
                if (swap_rider_gain(edge.a, edge.b) < 0) {
                    circ_.add_swap(link.a, link.b);
                    last_swap_cycle_[static_cast<std::size_t>(
                        ex.coupler)] = cycle;
                }
            }
        }
        if (pending_ == 0)
            return did_something;

        const auto& dist = device_.distances();
        std::unordered_map<std::int32_t, double> gain;
        if (pull_cache_.empty())
            pull_cache_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
        for (LogicalQubit a = 0; a < problem_.num_vertices(); ++a) {
            if (pending_deg_[static_cast<std::size_t>(a)] == 0)
                continue;
            PhysicalQubit pa = mapping.physical_of(a);
            if (used[static_cast<std::size_t>(pa)])
                continue;
            auto& cache = pull_cache_[static_cast<std::size_t>(a)];
            std::int32_t best_d;
            PhysicalQubit target;
            if (cache.expires > cycle && cache.partner >= 0 &&
                !done_[static_cast<std::size_t>(cache.edge)]) {
                target = mapping.physical_of(cache.partner);
                best_d = dist.at(pa, target);
            } else {
                best_d = kUnreachable;
                target = kInvalidQubit;
                LogicalQubit partner = kInvalidQubit;
                std::int32_t edge = -1;
                for (const auto& [b, e] :
                     pending_adj_[static_cast<std::size_t>(a)]) {
                    if (done_[static_cast<std::size_t>(e)])
                        continue;
                    std::int32_t d = dist.at(pa, mapping.physical_of(b));
                    if (d < best_d) {
                        best_d = d;
                        target = mapping.physical_of(b);
                        partner = b;
                        edge = e;
                    }
                }
                cache.partner = partner;
                cache.edge = edge;
                cache.expires =
                    cycle + 1 + problem_.num_vertices() / 128;
            }
            if (best_d <= 1 || target == kInvalidQubit)
                continue;
            for (PhysicalQubit nb :
                 device_.connectivity().neighbors(pa)) {
                if (used[static_cast<std::size_t>(nb)])
                    continue;
                if (dist.at(nb, target) >= best_d)
                    continue;
                auto it = coupler_index_.find(VertexPair(pa, nb));
                panic_unless(it != coupler_index_.end(),
                             "neighbor without coupler");
                if (last_swap_cycle_[static_cast<std::size_t>(
                        it->second)] == cycle - 1)
                    continue;
                double w = 1.0 / static_cast<double>(best_d);
                w *= 1.0 + 1e-7 * static_cast<double>(it->second % 97);
                gain[it->second] += w;
            }
        }

        std::vector<graph::WeightedEdge> candidates;
        std::vector<std::int32_t> candidate_coupler;
        for (const auto& [c, w] : gain) {
            const auto& link =
                device_.couplers()[static_cast<std::size_t>(c)];
            candidates.push_back({link.a, link.b, w});
            candidate_coupler.push_back(c);
        }
        auto picks = graph::greedy_max_weight_matching(
            device_.num_qubits(), candidates);
        for (std::int32_t i : picks) {
            const auto& cand = candidates[static_cast<std::size_t>(i)];
            circ_.add_swap(cand.u, cand.v);
            last_swap_cycle_[static_cast<std::size_t>(
                candidate_coupler[static_cast<std::size_t>(i)])] = cycle;
            did_something = true;
        }

        if (!did_something && pending_ > 0) {
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = dist.at(mapping.physical_of(edge.a),
                                         mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            for (PhysicalQubit nb :
                 device_.connectivity().neighbors(pa)) {
                if (dist.at(nb, pb) < best_d) {
                    circ_.add_swap(pa, nb);
                    did_something = true;
                    break;
                }
            }
        }
        return did_something;
    }

    std::int64_t
    swap_rider_gain(LogicalQubit a, LogicalQubit b) const
    {
        const auto& mapping = circ_.final_mapping();
        const auto& dist = device_.distances();
        PhysicalQubit pa = mapping.physical_of(a);
        PhysicalQubit pb = mapping.physical_of(b);
        std::int64_t delta = 0;
        auto tally = [&](LogicalQubit q, PhysicalQubit from,
                         PhysicalQubit to) {
            for (const auto& [partner, e] :
                 pending_adj_[static_cast<std::size_t>(q)]) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                PhysicalQubit pp = mapping.physical_of(partner);
                delta += dist.at(to, pp) - dist.at(from, pp);
            }
        };
        tally(a, pa, pb);
        tally(b, pb, pa);
        return delta;
    }

    void
    maybe_snapshot()
    {
        if (!options_.use_ata_prediction)
            return;
        auto plan = core::detect_regions(device_, problem_, done_,
                                         circ_.final_mapping());
        Snapshot snap;
        snap.prefix_ops = static_cast<std::int64_t>(circ_.ops().size());
        snap.est_depth = static_cast<double>(circ_.depth()) +
                         core::estimate_tail_depth(device_, plan);
        snap.est_cx =
            2.0 * static_cast<double>(circ_.num_compute()) +
            3.0 * static_cast<double>(circ_.num_swaps()) +
            core::estimate_tail_cx(device_, plan, pending_);
        snapshots_.push_back(snap);
    }

    const arch::CouplingGraph& device_;
    const graph::Graph& problem_;
    const core::CompilerOptions& options_;
    const core::CrosstalkMap* crosstalk_;
    circuit::Circuit circ_;
    std::vector<bool> done_;
    std::vector<std::int32_t> pending_deg_;
    std::vector<std::vector<std::pair<LogicalQubit, std::int32_t>>>
        pending_adj_;
    std::vector<std::int64_t> last_swap_cycle_;
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        edge_index_;
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        coupler_index_;
    struct PullCache
    {
        LogicalQubit partner = kInvalidQubit;
        std::int32_t edge = -1;
        std::int64_t expires = -1;
    };
    std::vector<PullCache> pull_cache_;
    std::int64_t pending_ = 0;
    std::int64_t last_compute_cycle_ = 0;
    std::vector<Snapshot> snapshots_;
};

circuit::Circuit
materialize_hybrid(const arch::CouplingGraph& device,
                   const graph::Graph& problem,
                   const circuit::Circuit& greedy,
                   std::int64_t prefix_ops)
{
    circuit::Circuit circ(greedy.initial_mapping());
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        edge_index;
    for (std::int32_t e = 0; e < problem.num_edges(); ++e)
        edge_index.emplace(problem.edges()[static_cast<std::size_t>(e)],
                           e);
    for (std::int64_t i = 0; i < prefix_ops; ++i) {
        const auto& op = greedy.ops()[static_cast<std::size_t>(i)];
        if (op.kind == circuit::OpKind::Compute) {
            circ.add_compute(op.p, op.q);
            auto it = edge_index.find(VertexPair(op.a, op.b));
            panic_unless(it != edge_index.end(),
                         "prefix compute on unknown edge");
            done[static_cast<std::size_t>(it->second)] = true;
        } else {
            circ.add_swap(op.p, op.q);
        }
    }
    auto plan =
        core::detect_regions(device, problem, done, circ.final_mapping());
    auto sched = core::tail_schedule(device, plan);
    auto tail =
        replay(device, problem, circ.final_mapping(), sched, &done);
    circ.append_circuit(tail);
    return circ;
}

/** Frozen replica of the pre-rework serial single-start compile(). */
core::CompileResult
compile(const arch::CouplingGraph& device, const graph::Graph& problem,
        const core::CompilerOptions& options_in)
{
    core::CompileResult result;
    core::CompilerOptions options = options_in;
    if (device.kind() == arch::ArchKind::Custom &&
        options.use_ata_prediction)
        options.use_ata_prediction = false;

    std::unique_ptr<core::CrosstalkMap> crosstalk;
    if (options.crosstalk_aware)
        crosstalk = std::make_unique<core::CrosstalkMap>(device);

    circuit::Mapping initial =
        options.smart_placement
            ? placement(device, problem)
            : circuit::Mapping(problem.num_vertices(),
                               device.num_qubits());
    GreedyEngine engine(device, problem, options, crosstalk.get(),
                        std::move(initial));
    engine.run();
    const circuit::Circuit& greedy = engine.circuit();
    auto greedy_metrics = circuit::compute_metrics(greedy, options.noise);

    result.circuit = greedy;
    result.metrics = greedy_metrics;
    result.selected = "greedy";
    result.snapshots =
        static_cast<std::int32_t>(engine.snapshots().size());

    if (options.use_ata_prediction && problem.num_edges() > 0) {
        std::vector<std::size_t> order(engine.snapshots().size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        double ref_depth = std::max<double>(1.0, greedy_metrics.depth);
        double ref_cx = std::max<double>(1.0, greedy_metrics.cx_count);
        auto est_cost = [&](const Snapshot& s) {
            return options.alpha * s.est_depth / ref_depth +
                   (1.0 - options.alpha) * s.est_cx / ref_cx;
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return est_cost(engine.snapshots()[a]) <
                                    est_cost(engine.snapshots()[b]);
                         });

        std::vector<std::int64_t> to_materialize = {0};
        for (std::size_t i = 0;
             i < order.size() &&
             static_cast<std::int32_t>(to_materialize.size()) <
                 options.max_materialized_candidates;
             ++i) {
            std::int64_t prefix =
                engine.snapshots()[order[i]].prefix_ops;
            if (std::find(to_materialize.begin(), to_materialize.end(),
                          prefix) == to_materialize.end())
                to_materialize.push_back(prefix);
        }

        double best_cost =
            core::selector_cost(greedy_metrics, greedy_metrics,
                                options.noise, options.alpha);
        for (std::int64_t prefix : to_materialize) {
            auto candidate =
                materialize_hybrid(device, problem, greedy, prefix);
            auto metrics =
                circuit::compute_metrics(candidate, options.noise);
            double cost = core::selector_cost(metrics, greedy_metrics,
                                              options.noise, options.alpha);
            if (cost < best_cost) {
                best_cost = cost;
                result.circuit = std::move(candidate);
                result.metrics = metrics;
                result.selected = prefix == 0 ? "ata" : "hybrid";
            }
        }
    }
    return result;
}

} // namespace legacy

namespace {

std::uint64_t
circuit_hash(const circuit::Circuit& c)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const auto& op : c.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.p)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.q)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.cycle)));
    }
    mix(static_cast<std::uint64_t>(c.depth()));
    mix(static_cast<std::uint64_t>(c.num_compute()));
    mix(static_cast<std::uint64_t>(c.num_swaps()));
    for (std::int32_t l = 0; l < c.final_mapping().num_logical(); ++l)
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(c.final_mapping().physical_of(l))));
    return h;
}

std::int32_t
env_int(const char* name, std::int32_t fallback)
{
    const char* v = std::getenv(name);
    if (v != nullptr && std::atoi(v) >= 1)
        return std::atoi(v);
    return fallback;
}

using bench::time_best;

struct Row
{
    std::string arch;
    std::int32_t requested = 0;
    std::int32_t qubits = 0;
    std::int32_t edges = 0;
    double legacy_seconds = 0.0;
    double new_seconds = 0.0;
    bool hash_match = false;
};

struct FabricRow
{
    std::int32_t qubits = 0;
    std::int32_t edges = 0;
    std::int32_t regions = 0;
    double unsharded_seconds = 0.0; // 0 = not measured at this size
    double sharded_seconds = 0.0;
    bool thread_identical = false;
};

long
peak_rss_kib()
{
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;
}

// ------------------------------------------------- interactive tiers

struct TierRow
{
    std::string arch;
    std::string tier;
    std::int32_t requested = 0;
    std::int32_t qubits = 0;
    std::int32_t edges = 0;
    double seconds = 0.0;
    std::int32_t depth = 0;
    std::int64_t swaps = 0;
    /** Fast rows: Tier B symbolic verification of the timed plan. */
    bool verified = true;
    /** Fast/balanced rows: hash at 1 thread == hash at 4 threads. */
    bool thread_identical = true;
};

/** The per-tier acceptance gates (ISSUE 7 / EXPERIMENTS.md). */
struct TierGates
{
    /** Slowest fast-tier compile at 256 requested qubits, ms. */
    double fast_ms_256 = 0.0;
    /** best_seconds / fast_seconds on the Sycamore 256q row. */
    double speedup_sycamore_256 = 0.0;
    /** max over rows of fast depth / best depth. */
    double worst_depth_ratio = 0.0;
    bool verified = true;
    bool thread_identical = true;

    bool
    ok() const
    {
        return verified && thread_identical && fast_ms_256 <= 1.0 &&
               speedup_sycamore_256 >= 20.0 && worst_depth_ratio <= 1.5;
    }
};

/**
 * Latency/quality sweep of the tier dial on 3-regular QAOA instances
 * (the canonical service workload). Latencies are steady-state: the
 * device distance cache is built before timing, matching a long-lived
 * `permuqd`-style process serving many requests on one device. The
 * grid best tier replays disproportionately cheaply (its ATA schedule
 * is the bare odd-even transposition sort), so the headline >= 20x
 * speedup gate is held on the Sycamore row; the <= 1 ms fast-tier
 * budget and the <= 1.5x depth bound apply to every 256q row.
 */
TierGates
run_tier_section(bool smoke, std::int32_t reps,
                 std::vector<TierRow>& out)
{
    const arch::ArchKind kinds[] = {arch::ArchKind::Grid,
                                    arch::ArchKind::Sycamore};
    std::vector<std::int32_t> sizes = {128, 256, 512};
    if (smoke)
        sizes = {256};
    const std::int32_t hw_threads = common::num_threads();
    // The fast tier is cheap enough that extra best-of reps are free
    // and smooth out scheduler noise against the 1 ms budget.
    const std::int32_t fast_reps = std::max(reps, 9);

    TierGates gates;
    std::printf("\ninteractive tiers (3-regular QAOA, steady-state "
                "device cache)\n");
    std::printf("| %-9s | %6s | %-8s | %10s | %6s | %6s | %8s |\n",
                "arch", "req n", "tier", "seconds", "depth", "swaps",
                "vs best");
    for (auto kind : kinds) {
        for (std::int32_t n : sizes) {
            arch::CouplingGraph device = arch::smallest_arch(kind, n);
            device.distances(); // steady-state: cache built once
            auto problem = problem::random_regular_graph(n, 3, 12345);

            struct PerTier
            {
                core::CompileTier tier;
                const char* name;
                double seconds = 0.0;
                circuit::Metrics metrics{};
            } per[] = {
                {core::CompileTier::Fast, "fast"},
                {core::CompileTier::Balanced, "balanced"},
                {core::CompileTier::Best, "best"},
            };
            circuit::Circuit fast_circuit;
            auto measure_tiers = [&] {
                for (auto& t : per) {
                    core::CompilerOptions options;
                    options.tier = t.tier;
                    double s = time_best(
                        t.tier == core::CompileTier::Fast ? fast_reps
                                                          : reps,
                        [&] {
                            auto r =
                                core::compile(device, problem, options);
                            t.metrics = r.metrics;
                            if (t.tier == core::CompileTier::Fast)
                                fast_circuit = std::move(r.circuit);
                        });
                    t.seconds =
                        t.seconds == 0.0 ? s : std::min(t.seconds, s);
                }
            };
            measure_tiers();
            // A perf gate on shared hardware must tolerate an unlucky
            // timeslice: while a 256q gate quantity is failing,
            // re-measure (min-of-attempts on every tier, so numerator
            // and denominator stay comparable) up to twice. A real
            // regression fails all three attempts.
            if (n == 256) {
                for (int attempt = 0; attempt < 2; ++attempt) {
                    bool budget_ok = per[0].seconds * 1e3 <= 1.0;
                    bool speedup_ok =
                        kind != arch::ArchKind::Sycamore ||
                        per[2].seconds >= 20.0 * per[0].seconds;
                    if (budget_ok && speedup_ok)
                        break;
                    measure_tiers();
                }
            }
            const double best_seconds = per[2].seconds;

            // Untimed correctness passes on the fast plan: Tier B
            // symbolic verification (subsumes validate()) and hash
            // identity across thread counts for fast and balanced.
            bool verified =
                verify::check_symbolic(device, problem, fast_circuit).ok;
            bool thread_identical = true;
            for (auto tier : {core::CompileTier::Fast,
                              core::CompileTier::Balanced}) {
                core::CompilerOptions options;
                options.tier = tier;
                common::set_num_threads(1);
                auto r1 = core::compile(device, problem, options);
                common::set_num_threads(4);
                auto r4 = core::compile(device, problem, options);
                thread_identical =
                    thread_identical &&
                    circuit_hash(r1.circuit) == circuit_hash(r4.circuit);
            }
            common::set_num_threads(hw_threads);
            gates.verified = gates.verified && verified;
            gates.thread_identical =
                gates.thread_identical && thread_identical;

            for (const auto& t : per) {
                TierRow row;
                row.arch = arch::to_string(kind);
                row.tier = t.name;
                row.requested = n;
                row.qubits = device.num_qubits();
                row.edges = problem.num_edges();
                row.seconds = t.seconds;
                row.depth = t.metrics.depth;
                row.swaps = t.metrics.swap_gates;
                row.verified = verified;
                row.thread_identical = thread_identical;
                std::printf("| %-9s | %6d | %-8s | %10.6f | %6d | "
                            "%6lld | %7.1fx |%s%s\n",
                            row.arch.c_str(), n, t.name, t.seconds,
                            row.depth,
                            static_cast<long long>(row.swaps),
                            best_seconds / t.seconds,
                            verified ? "" : "  TIER-B FAIL",
                            thread_identical ? "" : "  THREAD MISMATCH");
                out.push_back(row);
            }

            const double ratio =
                static_cast<double>(per[0].metrics.depth) /
                static_cast<double>(std::max(1, per[2].metrics.depth));
            gates.worst_depth_ratio =
                std::max(gates.worst_depth_ratio, ratio);
            if (n == 256) {
                gates.fast_ms_256 = std::max(gates.fast_ms_256,
                                             per[0].seconds * 1e3);
                if (kind == arch::ArchKind::Sycamore)
                    gates.speedup_sycamore_256 =
                        best_seconds / per[0].seconds;
            }
        }
    }
    std::printf("tier gates: fast @256q %.3f ms (need <= 1 ms), "
                "sycamore 256q speedup %.1fx (need >= 20x), worst "
                "fast/best depth ratio %.2f (need <= 1.5), verified %s, "
                "thread-identical %s\n",
                gates.fast_ms_256, gates.speedup_sycamore_256,
                gates.worst_depth_ratio, gates.verified ? "yes" : "NO",
                gates.thread_identical ? "yes" : "NO");
    return gates;
}

// ------------------------------------------------- compile service

struct ServiceBench
{
    bool ran = false;
    std::int32_t qubits = 0;
    double cold_ms = 0.0;
    double warm_p50_ms = 0.0;
    double warm_p95_ms = 0.0;
    /** Client-side round-trip budget for the warm p50 (diff_bench.py
     *  fails the diff when raised without a baseline update). */
    double warm_budget_ms = 0.0;
    bool byte_identical = false;

    bool
    ok() const
    {
        return !ran || (byte_identical && warm_p50_ms <= warm_budget_ms);
    }
};

/**
 * Warm-path latency of the compile service: one in-process permuqd
 * Server, one client, one cold balanced compile of a heavy-hex 256q
 * request, then the identical request replayed and served from the
 * plan cache. Times are client-side round trips (frame encode, socket,
 * cache lookup, frame decode), i.e. what a caller of a long-lived
 * daemon actually observes -- the budget is deliberately loose against
 * loopback noise on shared CI hardware while still pinning the warm
 * path orders of magnitude under the cold compile.
 */
ServiceBench
run_service_section(bool smoke)
{
    constexpr double kWarmP50BudgetMs = 5.0;
    constexpr std::int32_t kQubits = 256;

    ServiceBench out;
    out.warm_budget_ms = kWarmP50BudgetMs;
    out.qubits = kQubits;

    service::ServerOptions server_options;
    server_options.port = 0;
    server_options.workers = 2;
    service::Server server(server_options);
    std::string error;
    if (!server.start(error)) {
        std::printf("\ncompile service section skipped: %s\n",
                    error.c_str());
        return out;
    }
    service::Client client;
    if (!client.connect(server.port(), error)) {
        std::printf("\ncompile service section skipped: %s\n",
                    error.c_str());
        return out;
    }

    // The canonical service workload (same as the tier section): a
    // 3-regular QAOA instance, sent as explicit edges the way a real
    // client ships its problem. The plan payload is what actually
    // rides the socket, so the warm numbers include encoding, the
    // cache lookup, and the client-side parse of the full QASM.
    const auto problem =
        problem::random_regular_graph(kQubits, 3, 12345);
    service::Request request;
    request.arch = "heavyhex";
    request.problem_n = kQubits;
    request.has_edges = true;
    for (const auto& edge : problem.edges())
        request.edges.push_back(edge);
    request.tier = "balanced";

    auto round_trip_ms = [&](std::int64_t id,
                             service::Response& response) {
        request.id = id;
        Timer timer;
        panic_unless(client.call(request, response, error),
                     "service bench call failed: " + error);
        panic_unless(response.type == "result",
                     "service bench got a non-result response");
        return timer.elapsed_ms();
    };

    service::Response cold;
    out.cold_ms = round_trip_ms(1, cold);
    panic_unless(!cold.cached, "first service request was a cache hit");

    const std::int32_t warm_iters = smoke ? 100 : 400;
    out.byte_identical = true;
    auto measure_warm = [&] {
        std::vector<double> warm_ms;
        service::Response warm;
        for (std::int32_t i = 0; i < warm_iters; ++i) {
            warm_ms.push_back(round_trip_ms(2 + i, warm));
            out.byte_identical = out.byte_identical && warm.cached &&
                                 warm.fragment == cold.fragment;
        }
        const double p50 = median(warm_ms);
        const double p95 = percentile(warm_ms, 95.0);
        if (out.warm_p50_ms == 0.0 || p50 < out.warm_p50_ms) {
            out.warm_p50_ms = p50;
            out.warm_p95_ms = p95;
        }
    };
    measure_warm();
    // Same unlucky-timeslice policy as the tier gates: re-measure
    // while the budget is failing; a real regression fails all three.
    for (int attempt = 0;
         attempt < 2 && out.warm_p50_ms > kWarmP50BudgetMs; ++attempt)
        measure_warm();
    out.ran = true;

    std::printf("\ncompile service warm path (heavy-hex %dq, balanced, "
                "loopback round trips)\n",
                kQubits);
    std::printf("cold %.3f ms, warm p50 %.4f ms / p95 %.4f ms "
                "(budget %.1f ms, %.0fx over cold), byte-identical: "
                "%s, cache hits %lld\n",
                out.cold_ms, out.warm_p50_ms, out.warm_p95_ms,
                kWarmP50BudgetMs, out.cold_ms / out.warm_p50_ms,
                out.byte_identical ? "yes" : "NO",
                static_cast<long long>(server.cache().hits()));
    server.stop();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    bool tiers_only = false;
    bool service_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--tiers") == 0)
            tiers_only = true;
        else if (std::strcmp(argv[i], "--service") == 0)
            service_only = true;
    }

    const std::int32_t reps = env_int("PERMUQ_COMPILE_REPS", 2);
    const double density =
        env_int("PERMUQ_COMPILE_DENSITY_PCT", 30) / 100.0;
    const std::int32_t hw_threads = common::num_threads();

    if (tiers_only) {
        // Targeted CI invocation: only the tier latency/quality gates,
        // no legacy replica or fabric sweep and no JSON (the default
        // and --smoke runs emit the tiers rows into BENCH_compile.json).
        bench::banner("compile-time scaling", "interactive tiers only");
        std::vector<TierRow> tier_rows;
        TierGates gates = run_tier_section(smoke, reps, tier_rows);
        return gates.ok() ? 0 : 1;
    }
    if (service_only) {
        // Targeted CI invocation: only the service warm-path gate, no
        // JSON (the default and --smoke runs emit the service section
        // into BENCH_compile.json).
        bench::banner("compile-time scaling", "compile service only");
        ServiceBench service = run_service_section(smoke);
        return service.ok() ? 0 : 1;
    }

    bench::banner("compile-time scaling",
                  smoke ? "incremental engine (smoke)"
                        : "incremental engine");

    // Fabric-scale streaming compile (full runs only): 102400 qubits,
    // QASM streamed band-by-band to a sink so no materialized circuit
    // or dense distance table ever exists. Runs FIRST because
    // ru_maxrss is a process-lifetime high-water mark -- any earlier
    // unsharded compile would mask the streaming footprint. The
    // 512 MiB peak-RSS budget is the documented bound
    // (EXPERIMENTS.md); measured usage is ~120 MiB, most of it the
    // coupling graph and the per-band circuits.
    constexpr long kStreamRssBudgetKib = 512 * 1024;
    double stream_seconds = 0.0;
    long stream_rss_kib = 0;
    core::ShardStreamResult stream;
    if (!smoke) {
        arch::CouplingGraph device = arch::make_grid(320, 320);
        auto problem = problem::fabric_local_graph(320, 320, 0.3, 1, 99);
        core::CompilerOptions options;
        options.shard_regions = 80;
        std::ofstream sink("/dev/null");
        circuit::QasmStreamWriter writer(sink, circuit::QasmOptions{});
        Timer timer;
        stream = core::shard_compile_stream(device, problem, options,
                                            writer);
        stream_seconds = timer.elapsed_seconds();
        stream_rss_kib = peak_rss_kib();
        std::printf("streaming 102400-qubit compile: %.1f s, "
                    "%lld ops, %d regions, %lld stitched edges, "
                    "peak circuit %.1f MiB, peak RSS %ld MiB "
                    "(budget %ld MiB)\n\n",
                    stream_seconds,
                    static_cast<long long>(stream.total_ops),
                    stream.regions,
                    static_cast<long long>(stream.stitched_edges),
                    static_cast<double>(stream.peak_circuit_bytes) /
                        (1024.0 * 1024.0),
                    stream_rss_kib / 1024,
                    kStreamRssBudgetKib / 1024);
    }

    const arch::ArchKind kinds[] = {arch::ArchKind::Grid,
                                    arch::ArchKind::HeavyHex,
                                    arch::ArchKind::Sycamore};
    std::vector<std::int32_t> sizes = {64, 256, 1024};
    if (smoke)
        sizes = {64, 256};

    std::printf("density=%.2f reps=%d threads=%d\n\n", density, reps,
                hw_threads);
    std::printf("| %-9s | %6s | %6s | %7s | %10s | %10s | %8s |\n",
                "arch", "req n", "qubits", "edges", "legacy s",
                "new s", "speedup");

    std::vector<Row> rows;
    bool all_match = true;
    double speedup_1024 = 0.0; // min across archs at the largest size
    for (auto kind : kinds) {
        for (std::int32_t n : sizes) {
            arch::CouplingGraph device = arch::smallest_arch(kind, n);
            auto problem = problem::random_graph(device.num_qubits(),
                                                 density, 12345);
            core::CompilerOptions options;

            Row row;
            row.arch = arch::to_string(kind);
            row.requested = n;
            row.qubits = device.num_qubits();
            row.edges = problem.num_edges();

            std::uint64_t legacy_hash = 0, new_hash = 0;
            row.legacy_seconds = time_best(reps, [&] {
                auto r = legacy::compile(device, problem, options);
                legacy_hash = circuit_hash(r.circuit);
            });
            row.new_seconds = time_best(reps, [&] {
                auto r = core::compile(device, problem, options);
                new_hash = circuit_hash(r.circuit);
            });
            row.hash_match = legacy_hash == new_hash;
            all_match = all_match && row.hash_match;
            double speedup = row.legacy_seconds / row.new_seconds;
            if (!smoke && n == 1024)
                speedup_1024 = speedup_1024 == 0.0
                                   ? speedup
                                   : std::min(speedup_1024, speedup);
            std::printf(
                "| %-9s | %6d | %6d | %7d | %10.3f | %10.3f | %7.2fx |%s\n",
                row.arch.c_str(), row.requested, row.qubits, row.edges,
                row.legacy_seconds, row.new_seconds, speedup,
                row.hash_match ? "" : "  HASH MISMATCH");
            rows.push_back(row);
        }
    }

    // Multi-start thread scaling: 8 perturbed-placement trials on the
    // mid-size heavy-hex instance, 1 thread vs the full pool. The
    // result must be identical; only the wall time may change.
    arch::CouplingGraph ms_device =
        arch::smallest_arch(arch::ArchKind::HeavyHex, 256);
    auto ms_problem =
        problem::random_graph(ms_device.num_qubits(), density, 12345);
    core::CompilerOptions ms_options;
    ms_options.num_placement_trials = 8;
    std::uint64_t ms_hash1 = 0, ms_hashN = 0;
    common::set_num_threads(1);
    double ms_serial = time_best(reps, [&] {
        auto r = core::compile(ms_device, ms_problem, ms_options);
        ms_hash1 = circuit_hash(r.circuit);
    });
    common::set_num_threads(hw_threads);
    double ms_parallel = time_best(reps, [&] {
        auto r = core::compile(ms_device, ms_problem, ms_options);
        ms_hashN = circuit_hash(r.circuit);
    });
    bool ms_match = ms_hash1 == ms_hashN;
    all_match = all_match && ms_match;
    std::printf("\nmulti-start (8 trials, heavy-hex 256): "
                "1 thr %.3f s, %d thr %.3f s (%.2fx, identical: %s)\n",
                ms_serial, hw_threads, ms_parallel,
                ms_serial / ms_parallel, ms_match ? "yes" : "NO");

    // Observability cost: the same compile timed with the telemetry/
    // logging stack cold (recording off, logging off) and hot (spans,
    // counters, and debug logging to a file sink all live). The hot
    // run must produce a bit-identical circuit, and the hot/cold wall
    // ratio is the exported "observability tax" that diff_bench.py
    // gates against the committed budget.
    constexpr double kObsBudgetRatio = 1.25;
    core::CompilerOptions obs_options; // default single-trial compile
    std::uint64_t obs_off_hash = 0, obs_on_hash = 0;
    double obs_off_seconds = 0.0, obs_on_seconds = 0.0;
    auto measure_obs = [&] {
        telemetry::set_enabled(false);
        logging::set_level(logging::Level::Off);
        double off = time_best(reps, [&] {
            auto r = core::compile(ms_device, ms_problem, obs_options);
            obs_off_hash = circuit_hash(r.circuit);
        });
        telemetry::set_enabled(true);
        logging::set_level(logging::Level::Debug);
        logging::set_sink_file("/dev/null");
        double on = time_best(reps, [&] {
            auto r = core::compile(ms_device, ms_problem, obs_options);
            obs_on_hash = circuit_hash(r.circuit);
        });
        logging::flush();
        logging::set_sink_stderr();
        logging::set_level(logging::Level::Warn);
        telemetry::set_enabled(false);
        telemetry::Registry::instance().reset();
        obs_off_seconds = obs_off_seconds == 0.0
                              ? off
                              : std::min(obs_off_seconds, off);
        obs_on_seconds =
            obs_on_seconds == 0.0 ? on : std::min(obs_on_seconds, on);
    };
    measure_obs();
    // Like the tier gates, tolerate an unlucky timeslice: re-measure
    // (min-of-attempts on both sides) while the ratio is failing.
    for (int attempt = 0;
         attempt < 2 &&
         obs_on_seconds > kObsBudgetRatio * obs_off_seconds;
         ++attempt)
        measure_obs();
    const double obs_ratio = obs_on_seconds / obs_off_seconds;
    const bool obs_match = obs_off_hash == obs_on_hash;
    all_match = all_match && obs_match;
    std::printf("telemetry overhead (heavy-hex 256): off %.3f s, "
                "on %.3f s (%.3fx, budget %.2fx, identical: %s)\n",
                obs_off_seconds, obs_on_seconds, obs_ratio,
                kObsBudgetRatio, obs_match ? "yes" : "NO");
    if (!smoke)
        std::printf("speedup at 1024 qubits (min over archs): %.2fx "
                    "(need >= 3x)\n",
                    speedup_1024);

    // Region-sharded fabric scaling: locality-structured problems on
    // square grids, one band per 8 rows. Unsharded compilation builds
    // the dense all-pairs distance table, so it is only timed through
    // 4096 qubits; the 16384-qubit row demonstrates sharded-only
    // completion. Every sharded compile is hashed at 1 and 4 threads
    // to hold the bit-identical guarantee.
    std::vector<std::int32_t> fabric_rows = smoke
                                                ? std::vector<std::int32_t>{16, 32}
                                                : std::vector<std::int32_t>{32, 64, 128};
    std::printf("\nregion-sharded fabric scaling (grid, reach-1 local "
                "problems)\n");
    std::printf("| %7s | %7s | %7s | %11s | %9s | %8s |\n", "qubits",
                "edges", "regions", "unsharded s", "sharded s",
                "speedup");
    std::vector<FabricRow> fabric;
    double fabric_speedup_4096 = 0.0;
    bool fabric_identical = true;
    for (std::int32_t rows_n : fabric_rows) {
        arch::CouplingGraph device = arch::make_grid(rows_n, rows_n);
        auto problem =
            problem::fabric_local_graph(rows_n, rows_n, 0.3, 1, 99);
        FabricRow row;
        row.qubits = device.num_qubits();
        row.edges = problem.num_edges();
        row.regions = rows_n / 8;

        core::CompilerOptions sharded_options;
        sharded_options.shard_regions = row.regions;
        std::uint64_t hash_thr1 = 0, hash_thr4 = 0;
        common::set_num_threads(1);
        row.sharded_seconds = time_best(reps, [&] {
            auto r = core::compile(device, problem, sharded_options);
            hash_thr1 = circuit_hash(r.circuit);
        });
        common::set_num_threads(4);
        {
            auto r = core::compile(device, problem, sharded_options);
            hash_thr4 = circuit_hash(r.circuit);
        }
        common::set_num_threads(hw_threads);
        row.thread_identical = hash_thr1 == hash_thr4;
        fabric_identical = fabric_identical && row.thread_identical;

        if (row.qubits <= 4096) {
            core::CompilerOptions unsharded_options;
            row.unsharded_seconds = time_best(reps, [&] {
                auto r = core::compile(device, problem,
                                       unsharded_options);
                (void)r;
            });
        }
        double speedup = row.unsharded_seconds > 0.0
                             ? row.unsharded_seconds / row.sharded_seconds
                             : 0.0;
        if (!smoke && row.qubits == 4096)
            fabric_speedup_4096 = speedup;
        if (row.unsharded_seconds > 0.0)
            std::printf("| %7d | %7d | %7d | %11.3f | %9.3f | %7.2fx |%s\n",
                        row.qubits, row.edges, row.regions,
                        row.unsharded_seconds, row.sharded_seconds,
                        speedup,
                        row.thread_identical ? "" : "  THREAD MISMATCH");
        else
            std::printf("| %7d | %7d | %7d | %11s | %9.3f | %8s |%s\n",
                        row.qubits, row.edges, row.regions, "-",
                        row.sharded_seconds, "-",
                        row.thread_identical ? "" : "  THREAD MISMATCH");
        fabric.push_back(row);
    }
    if (!smoke)
        std::printf("sharded speedup at 4096 qubits: %.2fx (need >= 3x)\n",
                    fabric_speedup_4096);

    std::vector<TierRow> tier_rows;
    TierGates tier_gates = run_tier_section(smoke, reps, tier_rows);

    ServiceBench service = run_service_section(smoke);

    std::FILE* json = std::fopen("BENCH_compile.json", "w");
    if (json != nullptr) {
        std::fprintf(json,
                     "{\n"
                     "  \"smoke\": %s,\n"
                     "  \"density\": %.3f,\n"
                     "  \"reps\": %d,\n"
                     "  \"threads\": %d,\n"
                     "  \"cases\": [\n",
                     smoke ? "true" : "false", density, reps, hw_threads);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            std::fprintf(
                json,
                "    {\"arch\": \"%s\", \"requested_n\": %d, "
                "\"qubits\": %d, \"edges\": %d, "
                "\"legacy_seconds\": %.6f, \"new_seconds\": %.6f, "
                "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                r.arch.c_str(), r.requested, r.qubits, r.edges,
                r.legacy_seconds, r.new_seconds,
                r.legacy_seconds / r.new_seconds,
                r.hash_match ? "true" : "false",
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"multistart\": {\"trials\": 8, "
                     "\"serial_seconds\": %.6f, "
                     "\"parallel_seconds\": %.6f, "
                     "\"thread_speedup\": %.3f, "
                     "\"bit_identical\": %s},\n"
                     "  \"telemetry_overhead\": {"
                     "\"off_seconds\": %.6f, "
                     "\"on_seconds\": %.6f, "
                     "\"overhead_ratio\": %.4f, "
                     "\"budget_ratio\": %.2f, "
                     "\"bit_identical\": %s},\n"
                     "  \"fabric\": [\n",
                     ms_serial, ms_parallel, ms_serial / ms_parallel,
                     ms_match ? "true" : "false", obs_off_seconds,
                     obs_on_seconds, obs_ratio, kObsBudgetRatio,
                     obs_match ? "true" : "false");
        for (std::size_t i = 0; i < fabric.size(); ++i) {
            const FabricRow& r = fabric[i];
            std::fprintf(json,
                         "    {\"qubits\": %d, \"edges\": %d, "
                         "\"regions\": %d, ",
                         r.qubits, r.edges, r.regions);
            if (r.unsharded_seconds > 0.0)
                std::fprintf(json,
                             "\"unsharded_seconds\": %.6f, "
                             "\"sharded_seconds\": %.6f, "
                             "\"speedup\": %.3f, ",
                             r.unsharded_seconds, r.sharded_seconds,
                             r.unsharded_seconds / r.sharded_seconds);
            else
                std::fprintf(json,
                             "\"unsharded_seconds\": null, "
                             "\"sharded_seconds\": %.6f, "
                             "\"speedup\": null, ",
                             r.sharded_seconds);
            std::fprintf(json, "\"thread_identical\": %s}%s\n",
                         r.thread_identical ? "true" : "false",
                         i + 1 < fabric.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n  \"tiers\": [\n");
        for (std::size_t i = 0; i < tier_rows.size(); ++i) {
            const TierRow& r = tier_rows[i];
            std::fprintf(
                json,
                "    {\"arch\": \"%s\", \"requested_n\": %d, "
                "\"tier\": \"%s\", \"qubits\": %d, \"edges\": %d, "
                "\"seconds\": %.6f, \"depth\": %d, \"swaps\": %lld, "
                "\"verified\": %s, \"thread_identical\": %s}%s\n",
                r.arch.c_str(), r.requested, r.tier.c_str(), r.qubits,
                r.edges, r.seconds, r.depth,
                static_cast<long long>(r.swaps),
                r.verified ? "true" : "false",
                r.thread_identical ? "true" : "false",
                i + 1 < tier_rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        if (smoke)
            std::fprintf(json, "  \"stream_100k\": null,\n");
        else
            std::fprintf(json,
                         "  \"stream_100k\": {\"qubits\": 102400, "
                         "\"regions\": %d, \"seconds\": %.3f, "
                         "\"total_ops\": %lld, "
                         "\"stitched_edges\": %lld, "
                         "\"peak_circuit_bytes\": %lld, "
                         "\"peak_rss_kib\": %ld, "
                         "\"rss_budget_kib\": %ld},\n",
                         stream.regions, stream_seconds,
                         static_cast<long long>(stream.total_ops),
                         static_cast<long long>(stream.stitched_edges),
                         static_cast<long long>(stream.peak_circuit_bytes),
                         stream_rss_kib, kStreamRssBudgetKib);
        if (service.ran)
            std::fprintf(json,
                         "  \"service\": {\"qubits\": %d, "
                         "\"tier\": \"balanced\", "
                         "\"cold_ms\": %.4f, "
                         "\"warm_p50_ms\": %.4f, "
                         "\"warm_p95_ms\": %.4f, "
                         "\"warm_budget_ms\": %.2f, "
                         "\"cache_speedup\": %.1f, "
                         "\"byte_identical\": %s},\n",
                         service.qubits, service.cold_ms,
                         service.warm_p50_ms, service.warm_p95_ms,
                         service.warm_budget_ms,
                         service.cold_ms / service.warm_p50_ms,
                         service.byte_identical ? "true" : "false");
        else
            std::fprintf(json, "  \"service\": null,\n");
        std::fprintf(json,
                     "  \"speedup_1024_min\": %.3f,\n"
                     "  \"fabric_speedup_4096\": %.3f,\n"
                     "  \"tiers_fast_ms_256\": %.3f,\n"
                     "  \"tiers_speedup_sycamore_256\": %.3f,\n"
                     "  \"tiers_worst_depth_ratio\": %.3f,\n"
                     "  \"all_bit_identical\": %s\n"
                     "}\n",
                     speedup_1024, fabric_speedup_4096,
                     tier_gates.fast_ms_256,
                     tier_gates.speedup_sycamore_256,
                     tier_gates.worst_depth_ratio,
                     all_match && fabric_identical ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_compile.json\n");
    }
    bench::write_metrics_sidecar("compile_scaling");

    if (!all_match || !fabric_identical)
        return 1;
    if (obs_ratio > kObsBudgetRatio)
        return 1;
    if (!tier_gates.ok())
        return 1;
    if (!service.ok())
        return 1;
    if (!smoke && speedup_1024 < 3.0)
        return 1;
    if (!smoke && fabric_speedup_4096 < 3.0)
        return 1;
    if (!smoke && stream_rss_kib > kStreamRssBudgetKib)
        return 1;
    return 0;
}
