/**
 * @file
 * Reproduces Table 3: 2-local Hamiltonian simulation kernels (NNN
 * 1D-Ising, 2D-XY, 3D-Heisenberg; 64 spins) on a medium heavy-hex
 * device, ours vs 2QAN. These are fixed benchmark graphs, so no seed
 * averaging is involved (only 2QAN's annealer uses its own seed).
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/compiler.h"
#include "problem/hamiltonians.h"

using namespace permuq;

int
main()
{
    bench::banner("2-local Hamiltonians on heavy-hex, ours vs 2QAN",
                  "Table 3");
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 64);
    struct Benchmark
    {
        std::string name;
        graph::Graph problem;
    };
    Benchmark benchmarks[] = {
        {"1D-Ising", problem::nnn_ising_1d(64)},
        {"2D-XY", problem::nnn_xy_2d(8, 8)},
        {"3D-Heisenberg", problem::nnn_heisenberg_3d(4, 4, 4)},
    };
    Table table({"benchmark", "terms", "ours depth", "2qan depth",
                 "ours cx", "2qan cx"});
    for (const auto& b : benchmarks) {
        auto ours = core::compile(device, b.problem);
        auto tqan = baselines::tqan_like(device, b.problem);
        table.add_row(
            {b.name, Table::cell(static_cast<long long>(
                         b.problem.num_edges())),
             Table::cell(static_cast<long long>(ours.metrics.depth)),
             Table::cell(static_cast<long long>(tqan.metrics.depth)),
             Table::cell(static_cast<long long>(ours.metrics.cx_count)),
             Table::cell(static_cast<long long>(tqan.metrics.cx_count))});
    }
    table.print();
    return 0;
}
