/**
 * @file
 * Ablation study over the compiler's design choices (not a paper
 * table; supports the design discussion in DESIGN.md): each row turns
 * one mechanism off and reports the change in depth and CX count on a
 * representative workload mix.
 *
 * Mechanisms:
 *  - placement : connectivity-strength initial placement (vs identity)
 *  - prediction: ATA pattern prediction + selector (vs pure greedy)
 *  - dead-swaps: dropping schedule swaps between finished qubits in
 *                ATA replays (measured on the pure-ATA compilation)
 *  - crosstalk : crosstalk-aware gate coloring (adds constraints; costs
 *                depth, pays off only on real hardware)
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/replay.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

namespace {

bench::AveragedMetrics
run(const arch::CouplingGraph& device, std::int32_t n, double density,
    const core::CompilerOptions& options)
{
    return average_over_seeds([&](std::uint64_t seed) {
        auto problem = problem::random_graph(n, density, seed);
        auto [result, seconds] = bench::timed_call(
            [&] { return core::compile(device, problem, options); });
        return std::pair{result.metrics, seconds};
    });
}

} // namespace

int
main()
{
    bench::banner("Ablations of the compiler's design choices",
                  "DESIGN.md section 4");
    struct Workload
    {
        arch::ArchKind kind;
        std::int32_t n;
        double density;
    };
    const Workload workloads[] = {
        {arch::ArchKind::HeavyHex, 128, 0.3},
        {arch::ArchKind::Sycamore, 128, 0.3},
        {arch::ArchKind::HeavyHex, 256, 0.9},
    };

    Table table({"workload", "variant", "depth", "cx",
                 "depth vs full", "cx vs full"});
    for (const auto& w : workloads) {
        auto device = arch::smallest_arch(w.kind, w.n);
        std::string label = arch::to_string(w.kind) + "-" +
                            std::to_string(w.n) + "-" +
                            Table::cell(w.density, 1);

        core::CompilerOptions full;
        auto base = run(device, w.n, w.density, full);
        table.add_row({label, "full", Table::cell(base.depth, 0),
                       Table::cell(base.cx, 0), "1.00", "1.00"});

        auto add_variant = [&](const char* name,
                               const core::CompilerOptions& options) {
            auto m = run(device, w.n, w.density, options);
            table.add_row({label, name, Table::cell(m.depth, 0),
                           Table::cell(m.cx, 0),
                           Table::cell(m.depth / base.depth, 2),
                           Table::cell(m.cx / base.cx, 2)});
        };
        core::CompilerOptions no_place = full;
        no_place.smart_placement = false;
        add_variant("no placement", no_place);

        core::CompilerOptions no_predict = full;
        no_predict.use_ata_prediction = false;
        add_variant("no prediction", no_predict);

        core::CompilerOptions xtalk = full;
        xtalk.crosstalk_aware = true;
        add_variant("crosstalk-aware", xtalk);
    }
    table.print();

    // Dead-swap skipping is an ATA-replay property; measure it on the
    // rigid clique replay directly.
    std::printf("\n-- dead-swap skipping in ATA replays --\n");
    Table replay_table({"workload", "variant", "depth", "cx"});
    for (const auto& w : workloads) {
        auto device = arch::smallest_arch(w.kind, w.n);
        auto sched = ata::full_ata_schedule(device);
        std::string label = arch::to_string(w.kind) + "-" +
                            std::to_string(w.n) + "-" +
                            Table::cell(w.density, 1);
        for (bool skip : {true, false}) {
            auto avg = average_over_seeds([&](std::uint64_t seed) {
                auto problem =
                    problem::random_graph(w.n, w.density, seed);
                circuit::Mapping mapping(w.n, device.num_qubits());
                ata::ReplayOptions options;
                options.skip_dead_swaps = skip;
                auto [circ, seconds] = bench::timed_call([&] {
                    return ata::replay(device, problem, mapping, sched,
                                       options);
                });
                return std::pair{circuit::compute_metrics(circ),
                                 seconds};
            });
            replay_table.add_row({label, skip ? "skip" : "keep",
                                  Table::cell(avg.depth, 0),
                                  Table::cell(avg.cx, 0)});
        }
    }
    replay_table.print();
    return 0;
}
