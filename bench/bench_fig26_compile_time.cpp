/**
 * @file
 * Reproduces Fig 26: compilation time vs problem size (random graphs,
 * density 0.3, n from 64 to 1024 on heavy-hex). The paper reports
 * near-linear scaling with ~30s at 1024 qubits on their machine; the
 * shape (near-linear growth) is the result.
 *
 * Seeds at each size run concurrently on the shared pool (compile() is
 * a pure function of its inputs, and the averaged metrics are collected
 * in seed order, so the table is identical to the serial sweep); the
 * wall column reports the elapsed time for the whole seed sweep.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds_parallel;

int
main()
{
    bench::banner("Compilation time vs QAOA graph size", "Fig 26");
    Table table({"qubits", "time (s)", "time / qubit (ms)", "wall (s)"});
    auto kind = arch::ArchKind::HeavyHex;
    for (std::int32_t n : {64, 128, 256, 384, 512, 768, 1024}) {
        auto device = arch::smallest_arch(kind, n);
        // Force the lazy all-pairs distance cache before fanning out:
        // concurrent first use from pool workers is the one shared
        // mutable touch point in compile().
        device.distances();
        bench::AveragedMetrics avg;
        double wall_s = bench::timed([&] {
            avg = average_over_seeds_parallel([&](std::uint64_t seed) {
                auto problem = problem::random_graph(n, 0.3, seed);
                auto [result, seconds] = bench::timed_call(
                    [&] { return core::compile(device, problem); });
                return std::pair{result.metrics, seconds};
            });
        });
        table.add_row({Table::cell(static_cast<long long>(n)),
                       Table::cell(avg.seconds, 3),
                       Table::cell(avg.seconds * 1e3 / n, 3),
                       Table::cell(wall_s, 3)});
    }
    table.print();
    bench::write_metrics_sidecar("fig26_compile_time");
    return 0;
}
