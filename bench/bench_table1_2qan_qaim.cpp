/**
 * @file
 * Reproduces Table 1: depth and CX count of ours vs 2QAN vs QAIM on
 * heavy-hex and Sycamore, random graphs n in {64, 128, 256}, density
 * in {0.3, 0.5}.
 *
 * Note: the original 2QAN needs >24h beyond 128 qubits (its initial-
 * placement search is quadratic); our reimplementation uses the same
 * quadratic iteration budget but in C++, so the 256-qubit rows can be
 * filled rather than left blank — EXPERIMENTS.md discusses this.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

int
main()
{
    bench::banner("Comparison with 2QAN and QAIM", "Table 1");
    Table table({"arch", "graph", "ours depth", "2qan depth",
                 "qaim depth", "ours cx", "2qan cx", "qaim cx"});
    for (auto kind : {arch::ArchKind::HeavyHex, arch::ArchKind::Sycamore}) {
        for (double density : {0.3, 0.5}) {
            for (std::int32_t n : {64, 128, 256}) {
                auto device = arch::smallest_arch(kind, n);
                auto run = [&](auto&& compiler) {
                    return average_over_seeds([&](std::uint64_t seed) {
                        auto problem =
                            problem::random_graph(n, density, seed);
                        auto [result, seconds] = bench::timed_call(
                            [&] { return compiler(device, problem); });
                        return std::pair{result.metrics, seconds};
                    });
                };
                auto ours = run([](const auto& d, const auto& p) {
                    return core::compile(d, p);
                });
                auto tqan = run([](const auto& d, const auto& p) {
                    return baselines::tqan_like(d, p);
                });
                auto qaim = run([](const auto& d, const auto& p) {
                    return baselines::qaim_like(d, p);
                });
                table.add_row({arch::to_string(kind),
                               std::to_string(n) + "-" +
                                   Table::cell(density, 1),
                               Table::cell(ours.depth, 0),
                               Table::cell(tqan.depth, 0),
                               Table::cell(qaim.depth, 0),
                               Table::cell(ours.cx, 0),
                               Table::cell(tqan.cx, 0),
                               Table::cell(qaim.cx, 0)});
            }
        }
    }
    table.print();
    return 0;
}
