/**
 * @file
 * Reproduces Table 2: 1024-qubit QAOA graphs (random density 0.3/0.5
 * and regular degree 320/480) on heavy-hex and Sycamore, ours vs
 * Paulihedral — the only baseline that scales this far.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;
using bench::average_over_seeds;

int
main()
{
    bench::banner("1024-qubit graphs, ours vs Paulihedral", "Table 2");
    const std::int32_t n = 1024;
    Table table({"arch", "graph", "ours depth", "pauli depth", "ours cx",
                 "pauli cx"});
    struct Workload
    {
        std::string label;
        bool regular;
        double density;
        std::int32_t degree;
    };
    const Workload workloads[] = {
        {"1024-0.3", false, 0.3, 0},
        {"1024-0.5", false, 0.5, 0},
        {"1024-320", true, 0.0, 320},
        {"1024-480", true, 0.0, 480},
    };
    for (auto kind : {arch::ArchKind::HeavyHex, arch::ArchKind::Sycamore}) {
        auto device = arch::smallest_arch(kind, n);
        for (const auto& w : workloads) {
            auto make_problem = [&](std::uint64_t seed) {
                return w.regular
                           ? problem::random_regular_graph(n, w.degree,
                                                           seed)
                           : problem::random_graph(n, w.density, seed);
            };
            auto run = [&](auto&& compiler) {
                return average_over_seeds([&](std::uint64_t seed) {
                    auto problem = make_problem(seed);
                    auto [result, seconds] = bench::timed_call(
                        [&] { return compiler(device, problem); });
                    return std::pair{result.metrics, seconds};
                });
            };
            auto ours = run([](const auto& d, const auto& p) {
                return core::compile(d, p);
            });
            auto pauli = run([](const auto& d, const auto& p) {
                return baselines::paulihedral_like(d, p);
            });
            table.add_row({arch::to_string(kind), w.label,
                           Table::cell(ours.depth, 0),
                           Table::cell(pauli.depth, 0),
                           Table::cell(ours.cx, 0),
                           Table::cell(pauli.cx, 0)});
        }
    }
    table.print();
    return 0;
}
