/**
 * @file
 * Exercises the depth-optimal solver (§4) on the instances the paper
 * used to discover its patterns: line cliques (finding the 2n-2 rule
 * of Fig 6), the 2x4-grid bipartite instance (Fig 8/9), a two-unit
 * Sycamore instance (Fig 11), and a two-unit hexagon instance
 * (Fig 12) — and checks each optimum against the generalized pattern.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/bipartite_pattern.h"
#include "ata/replay.h"
#include "bench_util.h"
#include "circuit/metrics.h"
#include "common/table.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "solver/astar.h"

using namespace permuq;

namespace {

/** Bipartite problem between the first and second unit of a device. */
graph::Graph
two_unit_problem(const arch::CouplingGraph& device)
{
    const auto& a = device.units()[0];
    const auto& b = device.units()[1];
    graph::Graph problem(device.num_qubits());
    for (PhysicalQubit p : a)
        for (PhysicalQubit q : b)
            problem.add_edge(p, q);
    return problem;
}

Cycle
pattern_depth_bipartite(const arch::CouplingGraph& device)
{
    const auto& a = device.units()[0];
    const auto& b = device.units()[1];
    auto sched = device.kind() == arch::ArchKind::Sycamore
                     ? ata::sycamore_bipartite(device, a, b)
                     : ata::striped_bipartite(device, a, b);
    auto problem = two_unit_problem(device);
    circuit::Mapping mapping(device.num_qubits(), device.num_qubits());
    return ata::replay(device, problem, mapping, sched).depth();
}

} // namespace

int
main()
{
    bench::banner("Depth-optimal solver on the paper's instances",
                  "section 4 / Figs 6, 8, 11, 12");
    Table table({"instance", "optimal depth", "pattern depth",
                 "expansions", "time (s)"});

    // Line cliques (Fig 6: n CPHASE + n-2 SWAP layers).
    for (std::int32_t n : {3, 4, 5, 6}) {
        auto device = arch::make_line(n);
        auto problem = graph::Graph::clique(n);
        circuit::Mapping mapping(n, n);
        auto [result, seconds] = bench::timed_call([&] {
            return solver::solve_depth_optimal(device, problem, mapping);
        });
        auto sched = ata::full_ata_schedule(device);
        auto pattern =
            ata::replay(device, problem, mapping, sched).depth();
        table.add_row(
            {"line-" + std::to_string(n) + " clique",
             Table::cell(static_cast<long long>(result.depth)),
             Table::cell(static_cast<long long>(pattern)),
             Table::cell(static_cast<long long>(result.expansions)),
             Table::cell(seconds, 3)});
    }

    // Two-unit bipartite instances (Figs 8, 11, 12).
    struct TwoUnit
    {
        std::string name;
        arch::CouplingGraph device;
    };
    TwoUnit instances[] = {
        {"grid-2x4 bipartite", arch::make_grid(2, 4)},
        {"sycamore-2x4 bipartite", arch::make_sycamore(2, 4)},
        {"hexagon-4x2 bipartite", arch::make_hexagon(4, 2)},
    };
    for (auto& inst : instances) {
        auto problem = two_unit_problem(inst.device);
        circuit::Mapping mapping(inst.device.num_qubits(),
                                 inst.device.num_qubits());
        auto [result, seconds] = bench::timed_call([&] {
            return solver::solve_depth_optimal(inst.device, problem,
                                               mapping);
        });
        table.add_row(
            {inst.name,
             Table::cell(static_cast<long long>(result.depth)),
             Table::cell(static_cast<long long>(
                 pattern_depth_bipartite(inst.device))),
             Table::cell(static_cast<long long>(result.expansions)),
             Table::cell(seconds, 3)});
    }
    table.print();
    std::printf("(the generalized patterns must track the small-case "
                "optima; gaps are the generalization cost)\n");
    return 0;
}
