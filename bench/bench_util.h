/**
 * @file
 * Shared helpers for the benchmark harness: seed control, metric
 * averaging over random instances, and consistent labels.
 *
 * The paper averages 10 random instances per data point; the harness
 * defaults to 3 to keep the full suite fast. Set PERMUQ_SEEDS to
 * change this, e.g. `PERMUQ_SEEDS=10 ./bench_fig20_21_heavyhex`.
 */
#ifndef PERMUQ_BENCH_BENCH_UTIL_H
#define PERMUQ_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"

namespace permuq::bench {

/** Number of random instances per data point (PERMUQ_SEEDS, default 3). */
inline std::int32_t
num_seeds()
{
    const char* env = std::getenv("PERMUQ_SEEDS");
    if (env != nullptr) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    return 3;
}

/** Averaged metrics of one compiler over the seed set. */
struct AveragedMetrics
{
    double depth = 0.0;
    double cx = 0.0;
    double seconds = 0.0;
};

/**
 * Run @p body once per seed and average the resulting (metrics,
 * seconds) pairs. @p body receives the seed.
 */
inline AveragedMetrics
average_over_seeds(
    const std::function<std::pair<circuit::Metrics, double>(std::uint64_t)>&
        body)
{
    std::vector<double> depth, cx, secs;
    for (std::int32_t s = 0; s < num_seeds(); ++s) {
        auto [m, t] = body(static_cast<std::uint64_t>(s) + 1);
        depth.push_back(static_cast<double>(m.depth));
        cx.push_back(static_cast<double>(m.cx_count));
        secs.push_back(t);
    }
    return {mean(depth), mean(cx), mean(secs)};
}

/**
 * Like average_over_seeds(), but runs the seeds concurrently on the
 * shared pool. Results land in per-seed slots and are averaged in seed
 * order, so the reported metrics are identical to the serial sweep at
 * any thread count; the per-seed seconds measure each body under
 * contention, which keeps seconds meaningful as *relative* cost but
 * makes the total wall time the interesting number for scaling plots.
 */
inline AveragedMetrics
average_over_seeds_parallel(
    const std::function<std::pair<circuit::Metrics, double>(std::uint64_t)>&
        body)
{
    std::int32_t seeds = num_seeds();
    std::vector<circuit::Metrics> metrics(
        static_cast<std::size_t>(seeds));
    std::vector<double> secs(static_cast<std::size_t>(seeds), 0.0);
    common::parallel_tasks(seeds, [&](std::int64_t s) {
        auto [m, t] = body(static_cast<std::uint64_t>(s) + 1);
        metrics[static_cast<std::size_t>(s)] = m;
        secs[static_cast<std::size_t>(s)] = t;
    });
    std::vector<double> depth, cx;
    for (const auto& m : metrics) {
        depth.push_back(static_cast<double>(m.depth));
        cx.push_back(static_cast<double>(m.cx_count));
    }
    return {mean(depth), mean(cx), mean(secs)};
}

/** Print a figure/table banner. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n== %s ==\n(reproduces %s; %d seed%s per point; see "
                "EXPERIMENTS.md)\n\n",
                title.c_str(), paper_ref.c_str(), num_seeds(),
                num_seeds() == 1 ? "" : "s");
}

} // namespace permuq::bench

#endif // PERMUQ_BENCH_BENCH_UTIL_H
