/**
 * @file
 * Shared helpers for the benchmark harness: seed control, metric
 * averaging over random instances, and consistent labels.
 *
 * The paper averages 10 random instances per data point; the harness
 * defaults to 3 to keep the full suite fast. Set PERMUQ_SEEDS to
 * change this, e.g. `PERMUQ_SEEDS=10 ./bench_fig20_21_heavyhex`.
 */
#ifndef PERMUQ_BENCH_BENCH_UTIL_H
#define PERMUQ_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"

namespace permuq::bench {

/** Number of random instances per data point (PERMUQ_SEEDS, default 3). */
inline std::int32_t
num_seeds()
{
    const char* env = std::getenv("PERMUQ_SEEDS");
    if (env != nullptr) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    return 3;
}

/** Averaged metrics of one compiler over the seed set. */
struct AveragedMetrics
{
    double depth = 0.0;
    double cx = 0.0;
    double seconds = 0.0;
    double seconds_p50 = 0.0; ///< median per-seed compile time
    double seconds_p95 = 0.0; ///< 95th-percentile per-seed compile time
};

/**
 * Run @p body once per seed and average the resulting (metrics,
 * seconds) pairs. @p body receives the seed.
 */
inline AveragedMetrics
average_over_seeds(
    const std::function<std::pair<circuit::Metrics, double>(std::uint64_t)>&
        body)
{
    std::vector<double> depth, cx, secs;
    for (std::int32_t s = 0; s < num_seeds(); ++s) {
        auto [m, t] = body(static_cast<std::uint64_t>(s) + 1);
        depth.push_back(static_cast<double>(m.depth));
        cx.push_back(static_cast<double>(m.cx_count));
        secs.push_back(t);
    }
    return {mean(depth), mean(cx), mean(secs), median(secs),
            percentile(secs, 95.0)};
}

/**
 * Like average_over_seeds(), but runs the seeds concurrently on the
 * shared pool. Results land in per-seed slots and are averaged in seed
 * order, so the reported metrics are identical to the serial sweep at
 * any thread count; the per-seed seconds measure each body under
 * contention, which keeps seconds meaningful as *relative* cost but
 * makes the total wall time the interesting number for scaling plots.
 */
inline AveragedMetrics
average_over_seeds_parallel(
    const std::function<std::pair<circuit::Metrics, double>(std::uint64_t)>&
        body)
{
    std::int32_t seeds = num_seeds();
    std::vector<circuit::Metrics> metrics(
        static_cast<std::size_t>(seeds));
    std::vector<double> secs(static_cast<std::size_t>(seeds), 0.0);
    common::parallel_tasks(seeds, [&](std::int64_t s) {
        auto [m, t] = body(static_cast<std::uint64_t>(s) + 1);
        metrics[static_cast<std::size_t>(s)] = m;
        secs[static_cast<std::size_t>(s)] = t;
    });
    std::vector<double> depth, cx;
    for (const auto& m : metrics) {
        depth.push_back(static_cast<double>(m.depth));
        cx.push_back(static_cast<double>(m.cx_count));
    }
    return {mean(depth), mean(cx), mean(secs), median(secs),
            percentile(secs, 95.0)};
}

/**
 * Wall time of one @p body run, in seconds. The single place every
 * bench measures through (replacing the ad-hoc Timer/elapsed pattern);
 * each run also lands in the permuq.bench.run_ms histogram so a
 * metrics sidecar captures the raw timing distribution.
 */
template <typename Fn>
double
timed(Fn&& body)
{
    Timer t;
    body();
    double seconds = t.elapsed_seconds();
    if (telemetry::enabled()) {
        static telemetry::Histogram& runs =
            telemetry::histogram("permuq.bench.run_ms");
        runs.record(seconds * 1e3);
    }
    return seconds;
}

/** timed() for a value-returning @p body: (result, seconds). */
template <typename Fn>
auto
timed_call(Fn&& body) -> std::pair<decltype(body()), double>
{
    Timer t;
    auto result = body();
    double seconds = t.elapsed_seconds();
    if (telemetry::enabled()) {
        static telemetry::Histogram& runs =
            telemetry::histogram("permuq.bench.run_ms");
        runs.record(seconds * 1e3);
    }
    return {std::move(result), seconds};
}

/** Best-of-@p reps wall time of @p body, in seconds. */
template <typename Fn>
double
time_best(std::int32_t reps, Fn&& body)
{
    double best = 1e30;
    for (std::int32_t r = 0; r < reps; ++r)
        best = std::min(best, timed(body));
    return best;
}

/** Turn telemetry on when PERMUQ_METRICS or PERMUQ_TRACE asks for it.
 *  banner() calls this; benches without a banner call it directly. */
inline void
arm_telemetry_from_env()
{
    if (std::getenv("PERMUQ_METRICS") != nullptr ||
        telemetry::env_trace_path() != nullptr)
        telemetry::set_enabled(true);
}

/**
 * Write the telemetry metrics snapshot to METRICS_<name>.json (in
 * PERMUQ_METRICS when that names a directory, else the working
 * directory). No-op unless telemetry is on — banner() turns it on
 * when PERMUQ_METRICS or PERMUQ_TRACE is set.
 */
inline void
write_metrics_sidecar(const std::string& name)
{
    if (!telemetry::enabled())
        return;
    std::string path = "METRICS_" + name + ".json";
    if (const char* dir = std::getenv("PERMUQ_METRICS"))
        if (dir[0] != '\0' && std::string(dir) != "1")
            path = std::string(dir) + "/" + path;
    if (telemetry::Registry::instance().write_metrics(path))
        std::printf("metrics sidecar: wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
}

/** Print a figure/table banner (and arm telemetry when the
 *  PERMUQ_METRICS / PERMUQ_TRACE env vars ask for it). */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    arm_telemetry_from_env();
    std::printf("\n== %s ==\n(reproduces %s; %d seed%s per point; see "
                "EXPERIMENTS.md)\n\n",
                title.c_str(), paper_ref.c_str(), num_seeds(),
                num_seeds() == 1 ? "" : "s");
}

} // namespace permuq::bench

#endif // PERMUQ_BENCH_BENCH_UTIL_H
