/**
 * @file
 * Well-formedness linting of exported OpenQASM 2.0, checked
 * differentially against the circuit it was lowered from: the gate
 * stream must parse, indices must stay in range, two-qubit gates must
 * sit on couplers, and the CX count must equal the metrics module's
 * independent accounting (qasm.cpp's merge_partner lowering vs
 * metrics.cpp's merged_with_previous billing).
 */
#ifndef PERMUQ_VERIFY_QASM_CHECK_H
#define PERMUQ_VERIFY_QASM_CHECK_H

#include <string>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "circuit/qasm.h"

namespace permuq::verify {

/**
 * Lint @p text, which must be to_qasm(@p circ, @p options) output for a
 * circuit compiled onto @p device. Returns an empty string when well
 * formed, else a one-line description of the first problem.
 */
std::string qasm_lint(const std::string& text,
                      const arch::CouplingGraph& device,
                      const circuit::Circuit& circ,
                      const circuit::QasmOptions& options);

} // namespace permuq::verify

#endif // PERMUQ_VERIFY_QASM_CHECK_H
