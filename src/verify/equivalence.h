/**
 * @file
 * Semantic equivalence checking of compiled circuits (differential
 * verification subsystem).
 *
 * A compiled circuit is a correct compilation of a problem graph iff it
 * implements the same diagonal operator as the ideal program (one ZZ
 * interaction per problem edge) up to the final qubit permutation and a
 * global phase. Two independent tiers establish this:
 *
 *  - Tier B (symbolic, any size): replay the op stream through a fresh
 *    Mapping replica and prove every problem edge is applied exactly
 *    once on correctly mapped physical qubits, that every op sits on a
 *    coupler, that the circuit's own logical annotations and final
 *    mapping agree with the replay, and that nothing spurious appears.
 *    This subsumes circuit::validate() and additionally audits the
 *    circuit's internal mapping bookkeeping.
 *
 *  - Tier A (exact, small devices): assign each problem edge a distinct
 *    interaction angle, lift both the ideal program and the compiled
 *    circuit to their diagonal phase spectra (sim::DiagonalBatch), and
 *    compare pointwise modulo 2*pi and a global phase; additionally
 *    replay the compiled circuit gate by gate on a physical-space
 *    statevector (sim kernels: apply_rzz / apply_swap) and check unit
 *    overlap with the permuted ideal state. Because ZZ parity functions
 *    are linearly independent, spectrum equality is *exact* semantic
 *    equivalence, not a probabilistic fingerprint.
 *
 * The two tiers share no replay code with the compiler or with each
 * other's hot path, which is what makes their agreement a differential
 * signal rather than a tautology.
 */
#ifndef PERMUQ_VERIFY_EQUIVALENCE_H
#define PERMUQ_VERIFY_EQUIVALENCE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "common/types.h"
#include "graph/graph.h"

namespace permuq::verify {

/** One rule violation, anchored to an op index (-1 = whole circuit). */
struct Violation
{
    /** Index into circuit.ops(), or -1 for circuit-level violations
     *  (missing edges, mapping-size mismatches). */
    std::int64_t op_index = -1;
    std::string message;
};

/** Outcome of the Tier B symbolic check. */
struct SymbolicReport
{
    bool ok = true;
    /** Every violation found (the replay never stops early). */
    std::vector<Violation> violations;
    /** Problem edges applied exactly once (== num_edges when ok). */
    std::int64_t edges_covered = 0;
    /** Compute gates whose logical pair was not a problem edge. */
    std::int64_t spurious_computes = 0;

    /** One-line summary: "ok" or the first violation + count. */
    std::string summary() const;
};

/**
 * Tier B: symbolic permutation-tracking equivalence check. Scales to
 * any device size (O(ops) time, O(qubits + edges) space).
 */
SymbolicReport check_symbolic(const arch::CouplingGraph& device,
                              const graph::Graph& problem,
                              const circuit::Circuit& circ);

/** Knobs of the Tier A exact check. */
struct ExactOptions
{
    /** Skip (report.skipped = true) above this many *physical* qubits;
     *  2^n phase-spectrum entries and amplitudes are materialized. */
    std::int32_t max_qubits = 14;
    /** Tolerance on spectrum angles (radians, mod 2*pi) and on state
     *  infidelity. Angles accumulate over |E| terms in double
     *  precision, so exact equality is not expected. */
    double tolerance = 1e-9;
    /** Seed of the per-edge distinct-angle assignment. */
    std::uint64_t angle_seed = 0x5eed5eedULL;
};

/** Outcome of the Tier A exact check. */
struct ExactReport
{
    bool ok = true;
    /** True when the device exceeded ExactOptions::max_qubits and no
     *  check ran (ok stays true; callers needing a verdict must gate
     *  on !skipped). */
    bool skipped = false;
    /** Max |compiled - ideal| spectrum angle, mod 2*pi, after removing
     *  the global-phase offset. */
    double spectrum_error = 0.0;
    /** 1 - |<ideal permuted state | compiled state>|. */
    double state_infidelity = 0.0;
    std::string message;
};

/**
 * Tier A: exact equivalence up to the final qubit permutation and a
 * global phase, on devices of at most ExactOptions::max_qubits
 * physical qubits.
 */
ExactReport check_exact(const arch::CouplingGraph& device,
                        const graph::Graph& problem,
                        const circuit::Circuit& circ,
                        const ExactOptions& options = {});

/**
 * The multiset of logical interaction terms a circuit applies, derived
 * by an independent mapping replay (the circuit's own op annotations
 * are not trusted). Key = logical pair, value = application count.
 * Pairs touching an empty position appear as (kInvalidQubit, x).
 */
std::map<VertexPair, std::int64_t>
applied_term_multiset(const circuit::Circuit& circ);

} // namespace permuq::verify

#endif // PERMUQ_VERIFY_EQUIVALENCE_H
