#include "fuzz.h"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <optional>
#include <set>
#include <sstream>

#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "common/error.h"
#include "common/log/flight_recorder.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "solver/astar.h"
#include "verify/equivalence.h"
#include "verify/mutate.h"
#include "verify/qasm_check.h"

namespace permuq::verify {

const std::vector<std::string>&
fuzz_archs()
{
    static const std::vector<std::string> names = {
        "line",    "grid",      "sycamore", "heavyhex",
        "hexagon", "lattice3d", "mumbai",
    };
    return names;
}

const std::vector<std::string>&
fuzz_compilers()
{
    static const std::vector<std::string> names = {
        "ours", "greedy", "ata",  "paulihedral", "qaim",
        "2qan", "sabre",  "olsq", "satmap",
    };
    return names;
}

arch::CouplingGraph
build_device(const FuzzConfig& config)
{
    if (config.arch == "mumbai")
        return arch::make_mumbai();
    arch::ArchKind kind;
    if (config.arch == "line")
        kind = arch::ArchKind::Line;
    else if (config.arch == "grid")
        kind = arch::ArchKind::Grid;
    else if (config.arch == "sycamore")
        kind = arch::ArchKind::Sycamore;
    else if (config.arch == "heavyhex")
        kind = arch::ArchKind::HeavyHex;
    else if (config.arch == "hexagon")
        kind = arch::ArchKind::Hexagon;
    else if (config.arch == "lattice3d")
        kind = arch::ArchKind::Lattice3D;
    else
        throw FatalError("unknown architecture: " + config.arch);
    return arch::smallest_arch(kind, config.num_vertices);
}

graph::Graph
build_problem(const FuzzConfig& config)
{
    graph::Graph g(config.num_vertices);
    for (const auto& e : config.edges)
        g.add_edge(e.a, e.b);
    return g;
}

namespace {

circuit::Circuit
compile_circuit(const arch::CouplingGraph& device,
                const graph::Graph& problem, const FuzzConfig& config,
                const arch::NoiseModel* noise)
{
    const std::string& name = config.compiler;
    if (name == "ours") {
        core::CompilerOptions opts;
        opts.use_ata_prediction = true;
        opts.crosstalk_aware = config.crosstalk;
        opts.noise = noise;
        opts.alpha = config.alpha;
        opts.max_materialized_candidates = config.candidates;
        opts.snapshot_fraction = config.snapshot_fraction;
        opts.smart_placement = config.smart_placement;
        opts.num_placement_trials = config.placement_trials;
        opts.placement_seed = config.compiler_seed;
        opts.shard_regions = config.shard_regions;
        opts.shard_margin = config.shard_margin;
        core::CompileTier tier = core::CompileTier::Best;
        if (!core::parse_tier(config.tier, tier) ||
            tier == core::CompileTier::Auto)
            throw FatalError("unknown tier: " + config.tier);
        opts.tier = tier;
        return core::compile(device, problem, opts).circuit;
    }
    if (name == "greedy")
        return baselines::greedy_only(device, problem, noise).circuit;
    if (name == "ata")
        return baselines::ata_only(device, problem).circuit;
    if (name == "paulihedral")
        return baselines::paulihedral_like(device, problem).circuit;
    if (name == "qaim")
        return baselines::qaim_like(device, problem, noise).circuit;
    if (name == "2qan")
        return baselines::tqan_like(device, problem, config.compiler_seed)
            .circuit;
    if (name == "sabre")
        return baselines::sabre_like(device, problem).circuit;
    if (name == "olsq")
        return baselines::olsq_like(device, problem).circuit;
    if (name == "satmap")
        return baselines::satmap_like(device, problem).circuit;
    throw FatalError("unknown compiler: " + name);
}

/** Structural invariants every compiled circuit (even a semantically
 *  wrong mutant) must satisfy; returns "" or a description. */
std::string
metrics_invariants(const circuit::Circuit& circ,
                   const arch::NoiseModel* noise)
{
    auto m = circuit::compute_metrics(circ, noise);
    std::ostringstream os;
    if (m.compute_gates != circ.num_compute() ||
        m.swap_gates != circ.num_swaps()) {
        os << "metrics gate counts (" << m.compute_gates << ","
           << m.swap_gates << ") != circuit counts ("
           << circ.num_compute() << "," << circ.num_swaps() << ")";
        return os.str();
    }
    if (m.cx_count !=
        2 * m.compute_gates + 3 * m.swap_gates - 2 * m.merged_pairs) {
        os << "cx_count " << m.cx_count
           << " breaks the decomposition identity (compute="
           << m.compute_gates << " swap=" << m.swap_gates
           << " merged=" << m.merged_pairs << ")";
        return os.str();
    }
    if (m.depth != circ.depth()) {
        os << "metrics depth " << m.depth << " != circuit depth "
           << circ.depth();
        return os.str();
    }
    if (!(m.fidelity > 0.0 && m.fidelity <= 1.0)) {
        os << "fidelity " << m.fidelity << " outside (0, 1]";
        return os.str();
    }
    if (noise == nullptr && m.fidelity != 1.0) {
        os << "fidelity " << m.fidelity << " != 1 on ideal hardware";
        return os.str();
    }

    // Schedule legality: each qubit runs at most one op per cycle, the
    // recorded depth is the last busy cycle + 1, and no schedule may
    // beat an independent ASAP replay of the same op sequence. All
    // three hold in the presence of barrier().
    const auto n = static_cast<std::size_t>(
        circ.initial_mapping().num_physical());
    std::vector<Cycle> last(n, -1), busy(n, 0);
    Cycle max_end = 0, asap = 0;
    for (std::size_t i = 0; i < circ.ops().size(); ++i) {
        const auto& op = circ.ops()[i];
        const auto p = static_cast<std::size_t>(op.p);
        const auto q = static_cast<std::size_t>(op.q);
        if (op.cycle < 0 || op.cycle <= last[p] || op.cycle <= last[q]) {
            os << "op " << i << " at cycle " << op.cycle
               << " overlaps earlier work on its qubits";
            return os.str();
        }
        last[p] = last[q] = op.cycle;
        max_end = std::max(max_end, op.cycle + 1);
        Cycle start = std::max(busy[p], busy[q]);
        busy[p] = busy[q] = start + 1;
        asap = std::max(asap, start + 1);
    }
    if (!circ.ops().empty() && max_end != circ.depth()) {
        os << "last busy cycle + 1 = " << max_end << " != depth "
           << circ.depth();
        return os.str();
    }
    if (asap > circ.depth()) {
        os << "ASAP replay needs " << asap
           << " cycles but the circuit claims depth " << circ.depth();
        return os.str();
    }
    return "";
}

std::string
one_line(std::string s)
{
    std::replace(s.begin(), s.end(), '\n', ';');
    return s;
}

} // namespace

CheckResult
run_config(const FuzzConfig& config)
{
    CheckResult result;
    auto fail = [&](const char* kind, std::string why) {
        result.ok = false;
        result.kind = kind;
        result.failure = std::move(why);
    };
    try {
        const auto device = build_device(config);
        const auto problem = build_problem(config);
        std::optional<arch::NoiseModel> noise;
        if (config.noise)
            noise = arch::NoiseModel::calibrated(device,
                                                 config.noise_seed);
        const arch::NoiseModel* noise_ptr =
            noise ? &*noise : nullptr;

        // Flight-recorder phase markers: if the compiler or a checker
        // crashes, the dump's last verify.phase note names the stage.
        flight::note(flight::Kind::Note, "verify.phase", "compile",
                     config.num_vertices);
        circuit::Circuit circ =
            compile_circuit(device, problem, config, noise_ptr);

        // The exact-search baselines (olsq/satmap) pad the problem with
        // isolated vertices up to the device size; lift the problem to
        // the circuit's logical space so the checkers compare like with
        // like. A circuit with *fewer* logical qubits than the problem
        // is left alone for the checkers to flag.
        graph::Graph checked = problem;
        if (circ.initial_mapping().num_logical() >
            problem.num_vertices()) {
            graph::Graph padded(circ.initial_mapping().num_logical());
            for (const auto& e : problem.edges())
                padded.add_edge(e.a, e.b);
            checked = std::move(padded);
        }

        const bool mutated = config.inject != "none";
        if (mutated) {
            Mutation m;
            if (!parse_mutation(config.inject, m)) {
                fail("exception", "unknown mutation: " + config.inject);
                return result;
            }
            Xoshiro256 rng(config.inject_seed);
            try {
                circ = inject_mutation(device, circ, m, rng);
            } catch (const PanicError& e) {
                // Circuit admits no such mutant (e.g. swap-free);
                // not a checker failure.
                result.kind = "inject-unsupported";
                result.failure = e.what();
                return result;
            }
        }

        // Tier B and the legacy structural validator, cross-checked.
        flight::note(flight::Kind::Note, "verify.phase", "tier-b",
                     config.num_vertices);
        const auto symbolic = check_symbolic(device, checked, circ);
        const auto legacy = circuit::validate(circ, device, checked);
        if (symbolic.ok != legacy.ok) {
            fail("disagree",
                 "tier B says " + symbolic.summary() +
                     " but circuit::validate says " +
                     (legacy.ok ? "ok" : one_line(legacy.message)));
            return result;
        }

        // Tier A, cross-checked against Tier B.
        if (device.num_qubits() <= config.tier_a_max) {
            flight::note(flight::Kind::Note, "verify.phase", "tier-a",
                         config.num_vertices);
            ExactOptions exact_options;
            exact_options.max_qubits = config.tier_a_max;
            const auto exact =
                check_exact(device, checked, circ, exact_options);
            if (!exact.skipped) {
                result.tier_a_ran = true;
                if (exact.ok != symbolic.ok) {
                    fail("disagree",
                         std::string("tier A says ") +
                             (exact.ok ? "ok" : exact.message) +
                             " but tier B says " + symbolic.summary());
                    return result;
                }
                if (!exact.ok) {
                    fail("tier-a", exact.message +
                                       "; tier B agrees: " +
                                       symbolic.summary());
                    return result;
                }
            }
        }
        if (!symbolic.ok) {
            fail("tier-b", symbolic.summary());
            return result;
        }

        // Structural invariants and the QASM differential (apply to
        // mutants too: a mutant is wrong, not malformed).
        if (auto why = metrics_invariants(circ, noise_ptr); !why.empty()) {
            fail("metrics", why);
            return result;
        }
        for (bool merge : {true, false}) {
            circuit::QasmOptions qasm_options;
            qasm_options.merge_pairs = merge;
            qasm_options.full_qaoa = config.full_qaoa_qasm;
            const auto text = circuit::to_qasm(circ, qasm_options);
            const auto lint =
                qasm_lint(text, device, circ, qasm_options);
            if (!lint.empty()) {
                fail("qasm", std::string(merge ? "merged" : "unmerged") +
                                 " lowering: " + lint);
                return result;
            }
        }

        // Depth can never beat the A* optimum (sound circuits only:
        // a dropped-gate mutant legitimately undercuts the bound).
        // The solver requires a fully mapped device, so the problem is
        // padded with isolated vertices onto the circuit's empty
        // positions; riding pad qubits along never changes the depth,
        // so the padded optimum still lower-bounds the compiled depth.
        if (config.check_optimal && !mutated &&
            device.num_qubits() <= 16 && problem.num_edges() <= 128) {
            const std::int32_t nq = device.num_qubits();
            graph::Graph padded(nq);
            for (const auto& e : problem.edges())
                padded.add_edge(e.a, e.b);
            const auto& init = circ.initial_mapping();
            std::vector<PhysicalQubit> phys_of(
                static_cast<std::size_t>(nq), kInvalidQubit);
            std::vector<bool> occupied(static_cast<std::size_t>(nq),
                                       false);
            for (LogicalQubit l = 0; l < init.num_logical(); ++l) {
                phys_of[static_cast<std::size_t>(l)] =
                    init.physical_of(l);
                occupied[static_cast<std::size_t>(init.physical_of(l))] =
                    true;
            }
            LogicalQubit next = init.num_logical();
            for (PhysicalQubit p = 0; p < nq; ++p)
                if (!occupied[static_cast<std::size_t>(p)])
                    phys_of[static_cast<std::size_t>(next++)] = p;
            const circuit::Mapping full(phys_of, nq);
            solver::SolverOptions solver_options;
            solver_options.max_expansions = 50'000;
            const auto optimal = solver::solve_depth_optimal(
                device, padded, full, solver_options);
            if (optimal.solved && circ.depth() < optimal.depth) {
                std::ostringstream os;
                os << "compiled depth " << circ.depth()
                   << " beats the A* optimum " << optimal.depth;
                fail("depth-optimal", os.str());
                return result;
            }
        }
    } catch (const std::exception& e) {
        fail("exception", e.what());
    }
    return result;
}

FuzzConfig
random_config(std::uint64_t seed, std::int64_t index,
              std::int32_t max_vertices)
{
    SplitMix64 mix(seed);
    const std::uint64_t stream =
        mix.next() ^
        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1));
    Xoshiro256 rng(stream);

    FuzzConfig config;
    const auto& compilers = fuzz_compilers();
    config.compiler = compilers[rng.next_below(compilers.size())];
    const bool exact_search =
        config.compiler == "olsq" || config.compiler == "satmap";
    if (exact_search) {
        // Exact searches explode on large/dense instances; pair them
        // with the small devices the evaluation uses them on.
        static const char* small_archs[] = {"line", "grid", "hexagon"};
        config.arch = small_archs[rng.next_below(3)];
        config.num_vertices = static_cast<std::int32_t>(rng.next_int(4, 6));
    } else {
        const auto& archs = fuzz_archs();
        config.arch = archs[rng.next_below(archs.size())];
        std::int32_t hi = std::max(max_vertices, 4);
        if (config.arch == "lattice3d")
            hi = std::min(hi, 8); // next cube is 27 qubits
        config.num_vertices =
            static_cast<std::int32_t>(rng.next_int(4, hi));
    }

    const std::uint64_t family = rng.next_below(3);
    graph::Graph g(config.num_vertices);
    if (family == 0) {
        g = problem::clique(config.num_vertices);
    } else if (family == 1) {
        g = problem::random_graph(config.num_vertices,
                                  0.2 + 0.6 * rng.next_double(), rng());
    } else {
        // The configuration model can fail to converge for awkward
        // (n, degree) draws; fall back to an ER graph of the same
        // density rather than aborting the stream.
        const double density = 0.3 + 0.4 * rng.next_double();
        const std::uint64_t graph_seed = rng();
        try {
            g = problem::regular_graph_with_density(
                config.num_vertices, density, graph_seed);
        } catch (const std::exception&) {
            g = problem::random_graph(config.num_vertices, density,
                                      graph_seed);
        }
    }
    config.edges = g.edges();
    if (config.edges.empty())
        config.edges.push_back(VertexPair(0, 1));

    config.crosstalk = rng.next_double() < 0.25;
    config.noise = rng.next_double() < 0.3;
    config.noise_seed = rng();
    static const double alphas[] = {0.0, 0.3, 0.5, 0.7, 1.0};
    config.alpha = alphas[rng.next_below(5)];
    static const std::int32_t candidate_counts[] = {1, 2, 4, 8};
    config.candidates = candidate_counts[rng.next_below(4)];
    static const double snapshot_fractions[] = {0.02, 0.04, 0.1};
    config.snapshot_fraction = snapshot_fractions[rng.next_below(3)];
    config.smart_placement = rng.next_double() < 0.75;
    static const std::int32_t trial_counts[] = {1, 2, 4};
    config.placement_trials = trial_counts[rng.next_below(3)];
    config.compiler_seed = rng();
    // Tier axis for "ours": best keeps most of the stream so the deep
    // hybrid pipeline retains its coverage; fast/balanced ride along
    // so the single-pass pipeline and the reduced-budget clamps stay
    // under the same differential checks.
    if (config.compiler == "ours") {
        static const char* const tiers[] = {"best", "best", "balanced",
                                            "fast"};
        config.tier = tiers[rng.next_below(4)];
    }
    // Sharded compilation only applies to "ours" on bandable fabrics;
    // eligible configs are rare (~5% of the stream), so draw sharding
    // for half of them to keep the stitcher under steady differential
    // coverage.
    const bool bandable = config.arch == "line" ||
                          config.arch == "grid" ||
                          config.arch == "sycamore";
    if (config.compiler == "ours" && bandable &&
        rng.next_double() < 0.5) {
        static const std::int32_t region_counts[] = {2, 3, 4};
        config.shard_regions = region_counts[rng.next_below(3)];
        config.shard_margin =
            rng.next_double() < 0.5 ? 0 : 1;
    }
    config.full_qaoa_qasm = rng.next_double() < 0.5;
    config.check_optimal = config.num_vertices <= 6 &&
                           config.edges.size() <= 9 &&
                           config.arch != "mumbai" &&
                           rng.next_double() < 0.3;
    return config;
}

FuzzConfig
shrink_config(const FuzzConfig& config, const CheckResult& original,
              std::int64_t* steps)
{
    std::int64_t spent = 0;
    auto still_fails = [&](const FuzzConfig& candidate) {
        ++spent;
        const auto r = run_config(candidate);
        return !r.ok && r.kind == original.kind;
    };

    FuzzConfig best = config;
    if (!original.ok) {
        // Drop edges to a fixpoint.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0;
                 i < best.edges.size() && best.edges.size() > 1; ++i) {
                FuzzConfig candidate = best;
                candidate.edges.erase(
                    candidate.edges.begin() +
                    static_cast<std::ptrdiff_t>(i));
                if (still_fails(candidate)) {
                    best = std::move(candidate);
                    changed = true;
                    --i;
                }
            }
        }

        // Compact away isolated vertices.
        std::vector<std::int32_t> remap(
            static_cast<std::size_t>(best.num_vertices), -1);
        for (const auto& e : best.edges)
            remap[static_cast<std::size_t>(e.a)] =
                remap[static_cast<std::size_t>(e.b)] = 0;
        std::int32_t next = 0;
        for (auto& r : remap)
            if (r == 0)
                r = next++;
        if (next >= 2 && next < best.num_vertices) {
            FuzzConfig candidate = best;
            candidate.num_vertices = next;
            for (auto& e : candidate.edges)
                e = VertexPair(remap[static_cast<std::size_t>(e.a)],
                               remap[static_cast<std::size_t>(e.b)]);
            if (still_fails(candidate))
                best = std::move(candidate);
        }

        // Reset option knobs to defaults where the failure survives.
        const FuzzConfig defaults;
        auto simplify = [&](auto&& mutate_fn) {
            FuzzConfig candidate = best;
            mutate_fn(candidate);
            if (still_fails(candidate))
                best = std::move(candidate);
        };
        if (best.noise)
            simplify([](FuzzConfig& c) { c.noise = false; });
        if (best.crosstalk)
            simplify([](FuzzConfig& c) { c.crosstalk = false; });
        if (best.placement_trials != defaults.placement_trials)
            simplify([&](FuzzConfig& c) {
                c.placement_trials = defaults.placement_trials;
            });
        if (best.candidates != defaults.candidates)
            simplify([&](FuzzConfig& c) {
                c.candidates = defaults.candidates;
            });
        if (best.snapshot_fraction != defaults.snapshot_fraction)
            simplify([&](FuzzConfig& c) {
                c.snapshot_fraction = defaults.snapshot_fraction;
            });
        if (best.shard_regions != defaults.shard_regions)
            simplify([&](FuzzConfig& c) {
                c.shard_regions = defaults.shard_regions;
            });
        if (best.shard_margin != defaults.shard_margin)
            simplify([&](FuzzConfig& c) {
                c.shard_margin = defaults.shard_margin;
            });
        if (best.tier != defaults.tier)
            simplify([&](FuzzConfig& c) { c.tier = defaults.tier; });
        if (best.alpha != defaults.alpha)
            simplify([&](FuzzConfig& c) { c.alpha = defaults.alpha; });
        if (!best.smart_placement)
            simplify([](FuzzConfig& c) { c.smart_placement = true; });
        if (best.full_qaoa_qasm)
            simplify([](FuzzConfig& c) { c.full_qaoa_qasm = false; });
        if (best.check_optimal && original.kind != "depth-optimal")
            simplify([](FuzzConfig& c) { c.check_optimal = false; });
    }
    if (steps != nullptr)
        *steps = spent;
    return best;
}

std::string
serialize_reproducer(const FuzzConfig& config, const CheckResult& result)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "# permuq-fuzz reproducer; replay with:\n"
        << "#   permuq-fuzz --replay <this-file>\n"
        << "version 1\n"
        << "arch " << config.arch << "\n"
        << "vertices " << config.num_vertices << "\n";
    for (const auto& e : config.edges)
        out << "edge " << e.a << " " << e.b << "\n";
    out << "compiler " << config.compiler << "\n"
        << "crosstalk " << static_cast<int>(config.crosstalk) << "\n"
        << "noise " << static_cast<int>(config.noise) << "\n"
        << "noise_seed " << config.noise_seed << "\n"
        << "alpha " << config.alpha << "\n"
        << "candidates " << config.candidates << "\n"
        << "snapshot_fraction " << config.snapshot_fraction << "\n"
        << "smart_placement " << static_cast<int>(config.smart_placement)
        << "\n"
        << "placement_trials " << config.placement_trials << "\n"
        << "compiler_seed " << config.compiler_seed << "\n"
        << "shard_regions " << config.shard_regions << "\n"
        << "shard_margin " << config.shard_margin << "\n"
        << "tier " << config.tier << "\n"
        << "full_qaoa_qasm " << static_cast<int>(config.full_qaoa_qasm)
        << "\n"
        << "check_optimal " << static_cast<int>(config.check_optimal)
        << "\n"
        << "tier_a_max " << config.tier_a_max << "\n"
        << "inject " << config.inject << "\n"
        << "inject_seed " << config.inject_seed << "\n";
    if (!result.kind.empty())
        out << "# failure " << result.kind << ": "
            << one_line(result.failure) << "\n";
    return out.str();
}

bool
parse_reproducer(std::istream& in, FuzzConfig& out, std::string* error)
{
    auto bad = [&](const std::string& why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    FuzzConfig config;
    config.edges.clear();
    bool saw_version = false;
    std::string line;
    std::int64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        const std::string where =
            "line " + std::to_string(line_no) + ": ";
        auto take = [&](auto& value) {
            fields >> value;
            return !fields.fail();
        };
        bool parsed = true;
        if (key == "version") {
            std::int64_t v = 0;
            parsed = take(v);
            if (parsed && v != 1)
                return bad(where + "unsupported version " +
                           std::to_string(v));
            saw_version = parsed;
        } else if (key == "arch") {
            parsed = take(config.arch);
        } else if (key == "vertices") {
            parsed = take(config.num_vertices);
        } else if (key == "edge") {
            std::int32_t a = -1, b = -1;
            parsed = take(a) && take(b);
            if (parsed)
                config.edges.push_back(VertexPair(a, b));
        } else if (key == "compiler") {
            parsed = take(config.compiler);
        } else if (key == "crosstalk") {
            parsed = take(config.crosstalk);
        } else if (key == "noise") {
            parsed = take(config.noise);
        } else if (key == "noise_seed") {
            parsed = take(config.noise_seed);
        } else if (key == "alpha") {
            parsed = take(config.alpha);
        } else if (key == "candidates") {
            parsed = take(config.candidates);
        } else if (key == "snapshot_fraction") {
            parsed = take(config.snapshot_fraction);
        } else if (key == "smart_placement") {
            parsed = take(config.smart_placement);
        } else if (key == "placement_trials") {
            parsed = take(config.placement_trials);
        } else if (key == "compiler_seed") {
            parsed = take(config.compiler_seed);
        } else if (key == "shard_regions") {
            parsed = take(config.shard_regions);
        } else if (key == "shard_margin") {
            parsed = take(config.shard_margin);
        } else if (key == "tier") {
            parsed = take(config.tier);
        } else if (key == "full_qaoa_qasm") {
            parsed = take(config.full_qaoa_qasm);
        } else if (key == "check_optimal") {
            parsed = take(config.check_optimal);
        } else if (key == "tier_a_max") {
            parsed = take(config.tier_a_max);
        } else if (key == "inject") {
            parsed = take(config.inject);
        } else if (key == "inject_seed") {
            parsed = take(config.inject_seed);
        } else {
            return bad(where + "unknown key \"" + key + "\"");
        }
        if (!parsed)
            return bad(where + "malformed value for \"" + key + "\"");
    }

    if (!saw_version)
        return bad("missing \"version\" line");
    const auto& archs = fuzz_archs();
    if (std::find(archs.begin(), archs.end(), config.arch) == archs.end())
        return bad("unknown architecture \"" + config.arch + "\"");
    const auto& compilers = fuzz_compilers();
    if (std::find(compilers.begin(), compilers.end(), config.compiler) ==
        compilers.end())
        return bad("unknown compiler \"" + config.compiler + "\"");
    if (config.tier != "fast" && config.tier != "balanced" &&
        config.tier != "best")
        return bad("unknown tier \"" + config.tier + "\"");
    if (config.num_vertices < 2 || config.num_vertices > 4096)
        return bad("vertices out of range");
    if (config.edges.empty())
        return bad("reproducer has no edges");
    std::set<VertexPair> seen;
    for (const auto& e : config.edges) {
        if (e.a < 0 || e.a >= e.b || e.b >= config.num_vertices)
            return bad("edge (" + std::to_string(e.a) + "," +
                       std::to_string(e.b) + ") out of range");
        if (!seen.insert(e).second)
            return bad("duplicate edge (" + std::to_string(e.a) + "," +
                       std::to_string(e.b) + ")");
    }
    if (config.tier_a_max < 0 || config.tier_a_max > 26)
        return bad("tier_a_max out of range");
    Mutation m;
    if (config.inject != "none" && !parse_mutation(config.inject, m))
        return bad("unknown mutation \"" + config.inject + "\"");
    out = std::move(config);
    return true;
}

} // namespace permuq::verify
