#include "mutate.h"

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "verify/equivalence.h"

namespace permuq::verify {

const char*
to_string(Mutation m)
{
    switch (m) {
      case Mutation::DropGate: return "drop-gate";
      case Mutation::DuplicateGate: return "duplicate-gate";
      case Mutation::CorruptMapping: return "corrupt-mapping";
      case Mutation::MisdirectSwap: return "misdirect-swap";
    }
    return "unknown";
}

bool
parse_mutation(const std::string& name, Mutation& out)
{
    for (Mutation m : kAllMutations) {
        if (name == to_string(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

namespace {

/** Re-append @p ops onto @p initial with at most one edit applied:
 *  drop op @p drop, duplicate op @p dup, or redirect swap @p redirect
 *  to (op.p, @p redirect_to). Indices are -1 when unused. */
circuit::Circuit
rebuild(const circuit::Mapping& initial,
        const circuit::OpArena& ops, std::int64_t drop,
        std::int64_t dup, std::int64_t redirect,
        PhysicalQubit redirect_to)
{
    circuit::Circuit out(initial);
    out.reserve(ops.size() + 1);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        const auto index = static_cast<std::int64_t>(i);
        if (op.kind == circuit::OpKind::Swap) {
            out.add_swap(op.p, index == redirect ? redirect_to : op.q);
        } else {
            if (index == drop)
                continue;
            out.add_compute(op.p, op.q);
            if (index == dup)
                out.add_compute(op.p, op.q);
        }
    }
    return out;
}

/** Indices of ops of @p kind, in append order. */
std::vector<std::int64_t>
indices_of(const circuit::OpArena& ops,
           circuit::OpKind kind)
{
    std::vector<std::int64_t> out;
    for (std::size_t i = 0; i < ops.size(); ++i)
        if (ops[i].kind == kind)
            out.push_back(static_cast<std::int64_t>(i));
    return out;
}

} // namespace

circuit::Circuit
inject_mutation(const arch::CouplingGraph& device,
                const circuit::Circuit& circ, Mutation mutation,
                Xoshiro256& rng)
{
    const auto& ops = circ.ops();
    const auto original_terms = applied_term_multiset(circ);
    const auto differs = [&](const circuit::Circuit& mutant) {
        return applied_term_multiset(mutant) != original_terms;
    };

    switch (mutation) {
      case Mutation::DropGate:
      case Mutation::DuplicateGate: {
        auto computes = indices_of(ops, circuit::OpKind::Compute);
        panic_unless(!computes.empty(),
                     "cannot mutate a circuit with no compute gates");
        std::int64_t pick = static_cast<std::int64_t>(
            rng.next_below(computes.size()));
        bool drop = mutation == Mutation::DropGate;
        auto mutant =
            rebuild(circ.initial_mapping(), ops,
                    drop ? computes[static_cast<std::size_t>(pick)] : -1,
                    drop ? -1 : computes[static_cast<std::size_t>(pick)],
                    -1, kInvalidQubit);
        panic_unless(differs(mutant),
                     "drop/duplicate mutation left the term multiset "
                     "unchanged");
        return mutant;
      }

      case Mutation::CorruptMapping: {
        // Transpose the positions of two logical qubits; the occupied
        // position set is unchanged, so the original physical op
        // stream replays without touching empty slots.
        const auto& initial = circ.initial_mapping();
        std::int32_t n = initial.num_logical();
        panic_unless(n >= 2, "corrupt-mapping needs two logical qubits");
        std::int64_t total =
            static_cast<std::int64_t>(n) * (n - 1) / 2;
        std::int64_t start =
            static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(total)));
        for (std::int64_t k = 0; k < total; ++k) {
            std::int64_t flat = (start + k) % total;
            // Unrank flat -> (a, b) with a < b.
            std::int32_t a = 0;
            std::int64_t row = n - 1;
            while (flat >= row) {
                flat -= row;
                --row;
                ++a;
            }
            std::int32_t b = a + 1 + static_cast<std::int32_t>(flat);
            circuit::Mapping corrupted = initial;
            corrupted.apply_swap(initial.physical_of(a),
                                 initial.physical_of(b));
            auto mutant = rebuild(corrupted, ops, -1, -1, -1,
                                  kInvalidQubit);
            if (differs(mutant))
                return mutant;
        }
        throw PanicError(
            "no mapping transposition changes the term multiset "
            "(problem is label-symmetric along this circuit)");
      }

      case Mutation::MisdirectSwap: {
        auto swaps = indices_of(ops, circuit::OpKind::Swap);
        panic_unless(!swaps.empty(),
                     "misdirect-swap needs at least one SWAP");
        std::size_t start = static_cast<std::size_t>(
            rng.next_below(swaps.size()));
        for (std::size_t k = 0; k < swaps.size(); ++k) {
            std::int64_t i =
                swaps[(start + k) % swaps.size()];
            const auto& op = ops[static_cast<std::size_t>(i)];
            for (PhysicalQubit r :
                 device.connectivity().neighbors(op.p)) {
                if (r == op.q)
                    continue;
                // Replaying the tail over the diverged mapping can put
                // a compute on an empty position, which the Circuit IR
                // itself rejects; such choices are skipped (the IR
                // already guards that miscompile class by construction).
                try {
                    auto mutant = rebuild(circ.initial_mapping(), ops,
                                          -1, -1, i, r);
                    if (differs(mutant))
                        return mutant;
                } catch (const PanicError&) {
                }
            }
        }
        throw PanicError("no swap redirection yields a "
                         "constructible, semantically distinct mutant");
      }
    }
    throw PanicError("unknown mutation kind");
}

} // namespace permuq::verify
