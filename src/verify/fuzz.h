/**
 * @file
 * Compiler fuzzing: randomized (problem x topology x options x
 * compiler) configurations, a battery of semantic and structural
 * checks over the compiled result, and greedy shrinking of failing
 * configurations into minimal self-contained reproducer files.
 *
 * A FuzzConfig is fully self-describing (the problem is an explicit
 * edge list, not a generator seed), so a reproducer file replays a
 * failure without any other state and shrinking can drop edges and
 * vertices one at a time.
 */
#ifndef PERMUQ_VERIFY_FUZZ_H
#define PERMUQ_VERIFY_FUZZ_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/coupling_graph.h"
#include "common/types.h"
#include "graph/graph.h"

namespace permuq::verify {

/** One self-contained fuzz case: problem, device, compiler, options. */
struct FuzzConfig
{
    /** Architecture name: line, grid, sycamore, heavyhex, hexagon,
     *  lattice3d, or mumbai. The device is the smallest instance of
     *  the family holding the problem (mumbai is fixed at 27). */
    std::string arch = "line";
    std::int32_t num_vertices = 4;
    /** Explicit problem edges (0 <= a < b < num_vertices). */
    std::vector<VertexPair> edges;
    /** Compiler under test: ours, greedy, ata, paulihedral, qaim,
     *  2qan, sabre, olsq, or satmap. */
    std::string compiler = "ours";

    /** @name CompilerOptions / baseline knobs
     *  @{ */
    bool crosstalk = false;
    bool noise = false;
    std::uint64_t noise_seed = 1;
    double alpha = 0.5;
    std::int32_t candidates = 4;
    double snapshot_fraction = 0.04;
    bool smart_placement = true;
    std::int32_t placement_trials = 1;
    /** Placement seed for "ours", annealing seed for "2qan". */
    std::uint64_t compiler_seed = 1;
    /** Region-sharded compilation ("ours" on line/grid/sycamore only;
     *  0 disables). Exercised so Tier A/B differential checks and
     *  shrinking cover the sharded path and its boundary stitcher. */
    std::int32_t shard_regions = 0;
    /** Minimum extra band height (boundary width) under sharding. */
    std::int32_t shard_margin = 0;
    /** Latency/quality tier for "ours": "fast", "balanced", or
     *  "best". Keeps the single-pass fast pipeline and the balanced
     *  budget clamps under the same differential checks as the full
     *  hybrid ("auto" is excluded: it reads PERMUQ_TIER, which would
     *  make reproducers environment-dependent). */
    std::string tier = "best";
    /** @} */

    /** Also lint the full-QAOA QASM surround (H / RX / measure). */
    bool full_qaoa_qasm = false;
    /** Compare the compiled depth against the A* optimum (only honored
     *  on devices the solver accepts; expensive). */
    bool check_optimal = false;
    /** Tier A cutoff in physical qubits. */
    std::int32_t tier_a_max = 14;

    /** Mutation to inject after compiling ("none" = sound circuit).
     *  A non-none value makes checker *silence* the bug. */
    std::string inject = "none";
    std::uint64_t inject_seed = 1;
};

/** Outcome of checking one configuration. */
struct CheckResult
{
    /** True when every applicable check passed. */
    bool ok = true;
    /** Failure class: "tier-a", "tier-b", "disagree" (checkers
     *  contradict each other), "metrics", "qasm", "depth-optimal",
     *  "exception", or "inject-unsupported". Empty when ok. */
    std::string kind;
    /** Human-readable description of the failure. */
    std::string failure;
    /** Whether the exact tier ran (device small enough). */
    bool tier_a_ran = false;
};

/** Architecture names random_config() draws from. */
const std::vector<std::string>& fuzz_archs();

/** Compiler names random_config() draws from. */
const std::vector<std::string>& fuzz_compilers();

/** Deterministically derive configuration @p index of stream @p seed.
 *  Exact-search compilers (olsq/satmap) are paired with small problems
 *  and devices; everything else ranges up to @p max_vertices program
 *  qubits. */
FuzzConfig random_config(std::uint64_t seed, std::int64_t index,
                         std::int32_t max_vertices = 10);

/** Materialize the device a config compiles onto. */
arch::CouplingGraph build_device(const FuzzConfig& config);

/** Materialize the problem graph from the explicit edge list. */
graph::Graph build_problem(const FuzzConfig& config);

/** Compile per the config, inject the mutation if any, and run every
 *  applicable check. Never throws: internal errors surface as kind
 *  "exception". */
CheckResult run_config(const FuzzConfig& config);

/**
 * Greedily minimize @p config while run_config() keeps failing with
 * @p original.kind (so shrinking cannot hijack onto an unrelated
 * failure): drop edges to a fixpoint, drop isolated vertices, then
 * reset option knobs to defaults where the failure survives.
 * @p steps, when non-null, receives the number of candidate
 * evaluations spent.
 */
FuzzConfig shrink_config(const FuzzConfig& config,
                         const CheckResult& original,
                         std::int64_t* steps = nullptr);

/** Serialize a config (plus the failure as a comment) into the
 *  reproducer file format. */
std::string serialize_reproducer(const FuzzConfig& config,
                                 const CheckResult& result);

/** Parse a reproducer file. Returns false and sets @p error on any
 *  syntactic or semantic problem (unknown keys are rejected so stale
 *  files fail loudly). */
bool parse_reproducer(std::istream& in, FuzzConfig& out,
                      std::string* error);

} // namespace permuq::verify

#endif // PERMUQ_VERIFY_FUZZ_H
