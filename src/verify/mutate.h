/**
 * @file
 * Known-miscompile injection for mutation-testing the equivalence
 * checkers: every mutation produces a circuit whose applied logical
 * term multiset provably differs from the original's, so any checker
 * that misses it has a false negative.
 */
#ifndef PERMUQ_VERIFY_MUTATE_H
#define PERMUQ_VERIFY_MUTATE_H

#include <string>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "common/rng.h"

namespace permuq::verify {

/** The miscompile families the mutation suite injects. */
enum class Mutation
{
    /** Drop one compute gate (a problem edge is never applied). */
    DropGate,
    /** Re-apply one compute gate (a problem edge applied twice). */
    DuplicateGate,
    /** Transpose two entries of the initial mapping while keeping the
     *  physical op stream (computes act on wrong logical pairs). */
    CorruptMapping,
    /** Redirect one SWAP to a different neighboring coupler (the
     *  mapping trajectory diverges mid-circuit). */
    MisdirectSwap,
};

/** All mutation kinds, for iteration in tests and the fuzz driver. */
inline constexpr Mutation kAllMutations[] = {
    Mutation::DropGate,
    Mutation::DuplicateGate,
    Mutation::CorruptMapping,
    Mutation::MisdirectSwap,
};

/** Kebab-case name used by reproducer files and --inject. */
const char* to_string(Mutation m);

/** Parse a kebab-case mutation name; returns false on unknown. */
bool parse_mutation(const std::string& name, Mutation& out);

/**
 * Rebuild @p circ with @p mutation applied; random choices (which gate,
 * which mapping entries) draw from @p rng. The injector retries its
 * choices until the mutant's applied_term_multiset() differs from the
 * original's, guaranteeing the mutant is semantically wrong; it throws
 * PanicError when the circuit admits no such mutant (e.g. MisdirectSwap
 * on a swap-free circuit).
 */
circuit::Circuit inject_mutation(const arch::CouplingGraph& device,
                                 const circuit::Circuit& circ,
                                 Mutation mutation, Xoshiro256& rng);

} // namespace permuq::verify

#endif // PERMUQ_VERIFY_MUTATE_H
