#include "qasm_check.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "circuit/metrics.h"

namespace permuq::verify {

namespace {

/** Cursor over one QASM line with tiny combinators; every parse
 *  failure surfaces as a lint message rather than an exception. */
struct LineParser
{
    const std::string& s;
    std::size_t pos = 0;

    explicit LineParser(const std::string& line) : s(line) {}

    bool
    literal(const char* lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (s.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    /** Parse a non-negative integer. */
    bool
    integer(std::int32_t& out)
    {
        std::size_t start = pos;
        while (pos < s.size() && std::isdigit(static_cast<unsigned char>(
                                     s[pos])))
            ++pos;
        if (pos == start)
            return false;
        out = std::atoi(s.substr(start, pos - start).c_str());
        return true;
    }

    /** Parse a floating-point literal (sign, digits, dot, exponent). */
    bool
    number()
    {
        std::size_t start = pos;
        auto ok = [&](char c) {
            return std::isdigit(static_cast<unsigned char>(c)) ||
                   c == '+' || c == '-' || c == '.' || c == 'e' ||
                   c == 'E';
        };
        while (pos < s.size() && ok(s[pos]))
            ++pos;
        return pos != start;
    }

    /** Parse "q[<i>]" and range-check the index. */
    bool
    qubit(std::int32_t n, std::int32_t& out)
    {
        return literal("q[") && integer(out) && literal("]") && out < n;
    }

    bool done() const { return pos == s.size(); }
};

} // namespace

std::string
qasm_lint(const std::string& text, const arch::CouplingGraph& device,
          const circuit::Circuit& circ,
          const circuit::QasmOptions& options)
{
    const std::int32_t n = circ.initial_mapping().num_physical();
    const std::int32_t logical = circ.initial_mapping().num_logical();

    std::vector<std::string> lines;
    {
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    auto fail = [&](std::size_t index, const std::string& why) {
        std::ostringstream os;
        os << "qasm line " << index + 1 << ": " << why;
        if (index < lines.size())
            os << " [" << lines[index] << "]";
        return os.str();
    };

    std::size_t i = 0;
    auto expect = [&](const std::string& exact) -> std::string {
        if (i >= lines.size())
            return fail(i, "missing \"" + exact + "\"");
        if (lines[i] != exact)
            return fail(i, "expected \"" + exact + "\"");
        ++i;
        return "";
    };
    if (auto e = expect("OPENQASM 2.0;"); !e.empty())
        return e;
    if (auto e = expect("include \"qelib1.inc\";"); !e.empty())
        return e;
    if (auto e = expect("qreg q[" + std::to_string(n) + "];"); !e.empty())
        return e;
    if (options.full_qaoa) {
        if (auto e = expect("creg c[" + std::to_string(logical) + "];");
            !e.empty())
            return e;
    }

    std::int64_t cx = 0, rz = 0, rx = 0, h = 0, measure = 0;
    std::vector<bool> measured(static_cast<std::size_t>(logical), false);
    for (; i < lines.size(); ++i) {
        LineParser p(lines[i]);
        std::int32_t a = 0, b = 0;
        if (p.literal("cx ")) {
            if (!p.qubit(n, a) || !p.literal(",") || !p.qubit(n, b) ||
                !p.literal(";") || !p.done())
                return fail(i, "malformed cx");
            if (a == b)
                return fail(i, "cx with identical operands");
            if (!device.coupled(a, b))
                return fail(i, "cx on non-coupler");
            ++cx;
        } else if (p.literal("rz(")) {
            if (!p.number() || !p.literal(") ") || !p.qubit(n, a) ||
                !p.literal(";") || !p.done())
                return fail(i, "malformed rz");
            ++rz;
        } else if (p.literal("rx(")) {
            if (!p.number() || !p.literal(") ") || !p.qubit(n, a) ||
                !p.literal(";") || !p.done())
                return fail(i, "malformed rx");
            ++rx;
        } else if (p.literal("h ")) {
            if (!p.qubit(n, a) || !p.literal(";") || !p.done())
                return fail(i, "malformed h");
            ++h;
        } else if (p.literal("measure ")) {
            if (!p.qubit(n, a) || !p.literal(" -> c[") ||
                !p.integer(b) || !p.literal("];") || !p.done())
                return fail(i, "malformed measure");
            if (b >= logical)
                return fail(i, "classical bit out of range");
            if (measured[static_cast<std::size_t>(b)])
                return fail(i, "classical bit measured twice");
            measured[static_cast<std::size_t>(b)] = true;
            ++measure;
        } else {
            return fail(i, "unrecognized statement");
        }
    }

    // Cross-accounting against the metrics module. Each compute op
    // lowers to exactly one rz regardless of merging; CX totals must
    // agree with compute_metrics' independent merge billing.
    if (rz != circ.num_compute())
        return "qasm rz count " + std::to_string(rz) +
               " != compute gates " + std::to_string(circ.num_compute());
    if (options.merge_pairs) {
        auto m = circuit::compute_metrics(circ);
        if (cx != m.cx_count)
            return "qasm cx count " + std::to_string(cx) +
                   " != metrics cx count " + std::to_string(m.cx_count);
    } else {
        std::int64_t expected =
            2 * circ.num_compute() + 3 * circ.num_swaps();
        if (cx != expected)
            return "qasm cx count " + std::to_string(cx) +
                   " != unmerged expectation " + std::to_string(expected);
    }
    if (options.full_qaoa) {
        if (h != logical || rx != logical || measure != logical)
            return "full-qaoa surround incomplete: h=" +
                   std::to_string(h) + " rx=" + std::to_string(rx) +
                   " measure=" + std::to_string(measure) +
                   " for logical=" + std::to_string(logical);
    } else if (h != 0 || rx != 0 || measure != 0) {
        return "unexpected full-qaoa statements in bare export";
    }
    return "";
}

} // namespace permuq::verify
