#include "equivalence.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/rng.h"
#include "sim/diagonal.h"
#include "sim/statevector.h"

namespace permuq::verify {

namespace {

std::string
pair_str(std::int32_t a, std::int32_t b)
{
    std::ostringstream os;
    os << "(" << a << "," << b << ")";
    return os.str();
}

/** Distinct per-edge angles in (0.05, 0.95); collisions are harmless
 *  (the spectrum comparison is linear in the terms, not an inversion),
 *  but distinctness is what lets Tier A separate edge identities. */
std::vector<double>
edge_angles(std::int32_t num_edges, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<double> theta(static_cast<std::size_t>(num_edges));
    for (auto& t : theta)
        t = 0.05 + 0.9 * rng.next_double();
    return theta;
}

/** Fold an angle difference into [-pi, pi). */
double
wrap_angle(double a)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    a = std::fmod(a, two_pi);
    if (a >= std::numbers::pi)
        a -= two_pi;
    if (a < -std::numbers::pi)
        a += two_pi;
    return a;
}

} // namespace

std::string
SymbolicReport::summary() const
{
    if (ok)
        return "ok";
    std::ostringstream os;
    os << violations.size() << " violation(s); first: ";
    if (!violations.empty()) {
        if (violations.front().op_index >= 0)
            os << "op " << violations.front().op_index << ": ";
        os << violations.front().message;
    }
    return os.str();
}

SymbolicReport
check_symbolic(const arch::CouplingGraph& device,
               const graph::Graph& problem, const circuit::Circuit& circ)
{
    SymbolicReport report;
    auto flag = [&](std::int64_t index, std::string msg) {
        report.violations.push_back({index, std::move(msg)});
    };

    const circuit::Mapping& initial = circ.initial_mapping();
    if (initial.num_physical() != device.num_qubits()) {
        flag(-1, "circuit physical size " +
                     std::to_string(initial.num_physical()) +
                     " does not match device size " +
                     std::to_string(device.num_qubits()));
        report.ok = false;
        return report; // endpoints cannot be range-checked further
    }
    if (initial.num_logical() != problem.num_vertices())
        flag(-1, "circuit logical size " +
                     std::to_string(initial.num_logical()) +
                     " does not match problem size " +
                     std::to_string(problem.num_vertices()));

    // Independent replay of the mapping trajectory.
    circuit::Mapping replay = initial;
    std::unordered_map<VertexPair, std::int64_t, VertexPairHash> count;
    const auto& ops = circ.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        const auto index = static_cast<std::int64_t>(i);
        if (op.p < 0 || op.p >= device.num_qubits() || op.q < 0 ||
            op.q >= device.num_qubits() || op.p == op.q) {
            flag(index, "endpoints out of range " + pair_str(op.p, op.q));
            continue; // cannot replay this op
        }
        if (!device.coupled(op.p, op.q))
            flag(index, std::string(op.kind == circuit::OpKind::Compute
                                        ? "compute"
                                        : "swap") +
                            " on non-coupler " + pair_str(op.p, op.q));
        LogicalQubit la = replay.logical_at(op.p);
        LogicalQubit lb = replay.logical_at(op.q);
        if (la != op.a || lb != op.b)
            flag(index, "logical annotation " + pair_str(op.a, op.b) +
                            " disagrees with replayed occupants " +
                            pair_str(la, lb));
        if (op.kind == circuit::OpKind::Compute) {
            if (la == kInvalidQubit || lb == kInvalidQubit) {
                flag(index, "compute touches empty position " +
                                pair_str(op.p, op.q));
                ++report.spurious_computes;
            } else if (!problem.has_edge(la, lb)) {
                flag(index, "compute applies non-edge logical pair " +
                                pair_str(la, lb));
                ++report.spurious_computes;
            } else {
                ++count[VertexPair(la, lb)];
            }
        } else {
            replay.apply_swap(op.p, op.q);
        }
    }

    if (!(replay == circ.final_mapping()))
        flag(-1, "circuit final mapping disagrees with replayed mapping");

    for (const auto& e : problem.edges()) {
        auto it = count.find(e);
        std::int64_t applied = it == count.end() ? 0 : it->second;
        if (applied == 1)
            ++report.edges_covered;
        else if (applied == 0)
            flag(-1, "problem edge " + pair_str(e.a, e.b) +
                         " never executed");
        else
            flag(-1, "problem edge " + pair_str(e.a, e.b) + " executed " +
                         std::to_string(applied) + " times");
    }

    report.ok = report.violations.empty();
    return report;
}

std::map<VertexPair, std::int64_t>
applied_term_multiset(const circuit::Circuit& circ)
{
    std::map<VertexPair, std::int64_t> terms;
    circuit::Mapping replay = circ.initial_mapping();
    for (const auto& op : circ.ops()) {
        if (op.kind == circuit::OpKind::Compute)
            ++terms[VertexPair(replay.logical_at(op.p),
                               replay.logical_at(op.q))];
        else
            replay.apply_swap(op.p, op.q);
    }
    return terms;
}

ExactReport
check_exact(const arch::CouplingGraph& device, const graph::Graph& problem,
            const circuit::Circuit& circ, const ExactOptions& options)
{
    ExactReport report;
    const std::int32_t n_phys = circ.initial_mapping().num_physical();
    const std::int32_t n_logical = circ.initial_mapping().num_logical();
    if (n_phys > options.max_qubits) {
        report.skipped = true;
        report.message = "device too large for the exact tier";
        return report;
    }
    if (n_phys != device.num_qubits() ||
        n_logical != problem.num_vertices()) {
        report.ok = false;
        report.message = "circuit sizes do not match device/problem";
        return report;
    }

    const auto theta =
        edge_angles(problem.num_edges(), options.angle_seed);
    std::unordered_map<VertexPair, double, VertexPairHash> angle_of;
    for (std::size_t e = 0; e < problem.edges().size(); ++e)
        angle_of.emplace(problem.edges()[e], theta[e]);

    // Ideal program: one ZZ interaction per problem edge, in the
    // *logical* space.
    sim::DiagonalBatch ideal;
    for (std::size_t e = 0; e < problem.edges().size(); ++e)
        ideal.add_rzz(problem.edges()[e].a, problem.edges()[e].b,
                      theta[e]);

    // Compiled program, lifted to the logical space by an independent
    // mapping replay; simultaneously replayed gate by gate on a
    // physical-space statevector through the sim kernels.
    sim::DiagonalBatch compiled;
    sim::Statevector state(n_phys);
    state.reset_to_plus();
    circuit::Mapping replay = circ.initial_mapping();
    for (const auto& op : circ.ops()) {
        if (op.kind == circuit::OpKind::Swap) {
            state.apply_swap(op.p, op.q);
            replay.apply_swap(op.p, op.q);
            continue;
        }
        LogicalQubit la = replay.logical_at(op.p);
        LogicalQubit lb = replay.logical_at(op.q);
        if (la == kInvalidQubit || lb == kInvalidQubit ||
            !problem.has_edge(la, lb)) {
            // No ideal angle exists for this interaction: the circuit
            // applies a term outside the problem, so it cannot be
            // equivalent for generic angles.
            report.ok = false;
            report.message = "compute applies non-problem pair " +
                             pair_str(la, lb);
            return report;
        }
        double t = angle_of.at(VertexPair(la, lb));
        compiled.add_rzz(la, lb, t);
        state.apply_rzz(op.p, op.q, t);
    }

    // Spectrum comparison in the logical space, up to a global phase
    // (the offset at basis state 0).
    const auto ideal_spec = ideal.bake(n_logical);
    const auto compiled_spec = compiled.bake(n_logical);
    const double offset = wrap_angle(compiled_spec[0] - ideal_spec[0]);
    for (std::size_t z = 0; z < ideal_spec.size(); ++z) {
        double d = std::fabs(wrap_angle(compiled_spec[z] - ideal_spec[z] -
                                        offset));
        report.spectrum_error = std::max(report.spectrum_error, d);
    }

    // State comparison: the compiled state must equal the ideal logical
    // state re-indexed through the *replayed* final mapping, with every
    // empty position still in |+>. Both start from |+>^n_phys and all
    // gates are diagonal or permutations, so applying the ideal batch
    // at the final physical coordinates reproduces the ideal target.
    sim::DiagonalBatch target;
    for (std::size_t e = 0; e < problem.edges().size(); ++e) {
        const auto& edge = problem.edges()[e];
        target.add_rzz(replay.physical_of(edge.a),
                       replay.physical_of(edge.b), theta[e]);
    }
    sim::Statevector ideal_state(n_phys);
    ideal_state.reset_to_plus();
    target.apply(ideal_state);

    std::complex<double> overlap = 0.0;
    const auto& a = ideal_state.amplitudes();
    const auto& b = state.amplitudes();
    for (std::size_t i = 0; i < a.size(); ++i)
        overlap += std::conj(a[i]) * b[i];
    report.state_infidelity = 1.0 - std::abs(overlap);

    report.ok = report.spectrum_error <= options.tolerance &&
                report.state_infidelity <= options.tolerance;
    if (!report.ok) {
        std::ostringstream os;
        os << "spectrum error " << report.spectrum_error
           << ", state infidelity " << report.state_infidelity;
        report.message = os.str();
    }
    return report;
}

} // namespace permuq::verify
