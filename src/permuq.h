/**
 * @file
 * Umbrella header: the entire PermuQ public API.
 *
 * Most users need only:
 *   - arch::smallest_arch / arch::make_* to pick a device,
 *   - problem::random_graph / problem::nnn_* to build a workload,
 *   - core::compile to compile,
 *   - circuit::compute_metrics / circuit::to_qasm to consume results.
 */
#ifndef PERMUQ_PERMUQ_H
#define PERMUQ_PERMUQ_H

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "ata/ata.h"
#include "ata/replay.h"
#include "ata/verify.h"
#include "baselines/baselines.h"
#include "circuit/circuit.h"
#include "circuit/mapping.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "core/compiler.h"
#include "core/options.h"
#include "core/placement.h"
#include "problem/generators.h"
#include "problem/hamiltonians.h"
#include "problem/weighted.h"
#include "sim/hamiltonian.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/statevector.h"
#include "solver/astar.h"

#endif // PERMUQ_PERMUQ_H
