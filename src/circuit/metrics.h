/**
 * @file
 * Evaluation metrics over compiled circuits (paper §7.1): depth, CX
 * gate count after decomposition, and estimated fidelity.
 *
 * Decomposition rules (Fig 2(d) and standard identities):
 *   - CPHASE/RZZ      -> 2 CX (+ single-qubit rotations),
 *   - SWAP            -> 3 CX,
 *   - CPHASE followed immediately by SWAP on the same coupler (or vice
 *     versa) -> 3 CX total ("gate unifying", the identity that makes
 *     swap networks cheap and that 2QAN exploits).
 */
#ifndef PERMUQ_CIRCUIT_METRICS_H
#define PERMUQ_CIRCUIT_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "graph/graph.h"

namespace permuq::circuit {

/** Aggregate metrics of one compiled circuit. */
struct Metrics
{
    Cycle depth = 0;
    std::int64_t compute_gates = 0;
    std::int64_t swap_gates = 0;
    /** Pairs merged by the CPHASE+SWAP unification rule. */
    std::int64_t merged_pairs = 0;
    /** Two-qubit basis-gate (CX) count after decomposition. */
    std::int64_t cx_count = 0;
    /** Estimated success probability: product of per-CX (1 - error).
     *  1.0 under an ideal noise model. */
    double fidelity = 1.0;
};

/**
 * Compute metrics for @p circ. When @p noise is non-null, fidelity
 * multiplies per-coupler CX error; otherwise fidelity stays 1.
 */
Metrics compute_metrics(const Circuit& circ,
                        const arch::NoiseModel* noise = nullptr);

/**
 * Indices of ops that are merged into their predecessor by the
 * CPHASE+SWAP rule (the predecessor absorbs the pair at 3 CX).
 */
std::vector<bool> merged_with_previous(const Circuit& circ);

/**
 * merge_partner(circ)[i] = index j > i of the op that merges with op i
 * under the CPHASE+SWAP rule, or -1. The partner is the next op on the
 * same pair of positions, which is not necessarily adjacent in append
 * order (ops on disjoint qubits may be interleaved).
 */
std::vector<std::int64_t> merge_partner(const Circuit& circ);

/** One structural violation, anchored to the offending op. */
struct ValidationViolation
{
    /** Index into circ.ops(), or -1 for circuit-level violations
     *  (size mismatches, missing problem edges). */
    std::int64_t op_index = -1;
    std::string message;
};

/** Result of structural validation. */
struct ValidationReport
{
    bool ok = true;
    /** First violation's message (the historical single-error
     *  interface); empty when ok. */
    std::string message;
    /** Every violation found, in discovery order (op-stream order,
     *  then problem-edge order). */
    std::vector<ValidationViolation> violations;
};

/**
 * Validate that @p circ is a correct compilation of @p problem onto
 * @p device: every op lies on a coupler, every problem edge receives
 * exactly one computation gate, and no spurious computation appears.
 * All violations are collected (a miscompiled circuit usually breaks
 * several rules at once; seeing the full list localizes the bug).
 */
ValidationReport validate(const Circuit& circ,
                          const arch::CouplingGraph& device,
                          const graph::Graph& problem);

/** Throw PanicError if validation fails (test/debug helper). */
void expect_valid(const Circuit& circ, const arch::CouplingGraph& device,
                  const graph::Graph& problem);

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_METRICS_H
