/**
 * @file
 * The logical-to-physical qubit mapping, maintained in both directions.
 *
 * Every compiler pass in PermuQ mutates a Mapping only through swaps,
 * so the two directions can never disagree.
 */
#ifndef PERMUQ_CIRCUIT_MAPPING_H
#define PERMUQ_CIRCUIT_MAPPING_H

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace permuq::circuit {

/**
 * A partial injection of logical qubits into physical positions.
 * Physical positions not holding a program qubit hold kInvalidQubit
 * (they still participate in SWAPs as ancilla-free empty slots).
 */
class Mapping
{
  public:
    Mapping() = default;

    /**
     * Identity-prefix mapping: logical qubit i at physical position i.
     * @param num_logical number of program qubits
     * @param num_physical number of hardware positions (>= num_logical)
     */
    Mapping(std::int32_t num_logical, std::int32_t num_physical)
    {
        fatal_unless(num_logical >= 0 && num_physical >= num_logical,
                     "mapping needs num_physical >= num_logical");
        phys_of_.resize(static_cast<std::size_t>(num_logical));
        std::iota(phys_of_.begin(), phys_of_.end(), 0);
        logical_at_.assign(static_cast<std::size_t>(num_physical),
                           kInvalidQubit);
        for (std::int32_t l = 0; l < num_logical; ++l)
            logical_at_[static_cast<std::size_t>(l)] = l;
    }

    /** Build from an explicit logical->physical assignment. */
    Mapping(std::vector<PhysicalQubit> phys_of, std::int32_t num_physical)
        : phys_of_(std::move(phys_of))
    {
        logical_at_.assign(static_cast<std::size_t>(num_physical),
                           kInvalidQubit);
        for (std::size_t l = 0; l < phys_of_.size(); ++l) {
            PhysicalQubit p = phys_of_[l];
            fatal_unless(p >= 0 && p < num_physical,
                         "mapping target out of range");
            fatal_unless(logical_at_[static_cast<std::size_t>(p)] ==
                             kInvalidQubit,
                         "two logical qubits mapped to one position");
            logical_at_[static_cast<std::size_t>(p)] =
                static_cast<LogicalQubit>(l);
        }
    }

    std::int32_t
    num_logical() const
    {
        return static_cast<std::int32_t>(phys_of_.size());
    }

    std::int32_t
    num_physical() const
    {
        return static_cast<std::int32_t>(logical_at_.size());
    }

    /** Physical position of logical qubit @p l. */
    PhysicalQubit
    physical_of(LogicalQubit l) const
    {
        return phys_of_[static_cast<std::size_t>(l)];
    }

    /** Logical qubit at position @p p, or kInvalidQubit if empty. */
    LogicalQubit
    logical_at(PhysicalQubit p) const
    {
        return logical_at_[static_cast<std::size_t>(p)];
    }

    /** Exchange the contents of two physical positions. */
    void
    apply_swap(PhysicalQubit p, PhysicalQubit q)
    {
        LogicalQubit a = logical_at_[static_cast<std::size_t>(p)];
        LogicalQubit b = logical_at_[static_cast<std::size_t>(q)];
        logical_at_[static_cast<std::size_t>(p)] = b;
        logical_at_[static_cast<std::size_t>(q)] = a;
        if (a != kInvalidQubit)
            phys_of_[static_cast<std::size_t>(a)] = q;
        if (b != kInvalidQubit)
            phys_of_[static_cast<std::size_t>(b)] = p;
    }

    friend bool operator==(const Mapping&, const Mapping&) = default;

    /** Exact heap bytes held by the two direction tables. */
    std::size_t
    memory_bytes() const
    {
        return phys_of_.capacity() * sizeof(PhysicalQubit) +
               logical_at_.capacity() * sizeof(LogicalQubit);
    }

  private:
    std::vector<PhysicalQubit> phys_of_;  // logical -> physical
    std::vector<LogicalQubit> logical_at_; // physical -> logical
};

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_MAPPING_H
