#include "metrics.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/error.h"

namespace permuq::circuit {

std::vector<bool>
merged_with_previous(const Circuit& circ)
{
    const auto& ops = circ.ops();
    std::vector<bool> merged(ops.size(), false);
    // last_op[q] = index of the most recent op touching position q.
    std::vector<std::int64_t> last_op(
        static_cast<std::size_t>(circ.initial_mapping().num_physical()), -1);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        std::int64_t lp = last_op[static_cast<std::size_t>(op.p)];
        std::int64_t lq = last_op[static_cast<std::size_t>(op.q)];
        if (lp >= 0 && lp == lq && !merged[static_cast<std::size_t>(lp)]) {
            const auto& prev = ops[static_cast<std::size_t>(lp)];
            bool same_pair = VertexPair(prev.p, prev.q) ==
                             VertexPair(op.p, op.q);
            bool one_each = prev.kind != op.kind;
            if (same_pair && one_each && prev.cycle + 1 == op.cycle)
                merged[i] = true;
        }
        last_op[static_cast<std::size_t>(op.p)] =
            static_cast<std::int64_t>(i);
        last_op[static_cast<std::size_t>(op.q)] =
            static_cast<std::int64_t>(i);
    }
    return merged;
}

std::vector<std::int64_t>
merge_partner(const Circuit& circ)
{
    auto merged = merged_with_previous(circ);
    const auto& ops = circ.ops();
    std::vector<std::int64_t> partner(ops.size(), -1);
    // Reconstruct each merged op's predecessor: the last op touching
    // both of its positions.
    std::vector<std::int64_t> last_op(
        static_cast<std::size_t>(circ.initial_mapping().num_physical()),
        -1);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (merged[i]) {
            std::int64_t prev =
                last_op[static_cast<std::size_t>(ops[i].p)];
            partner[static_cast<std::size_t>(prev)] =
                static_cast<std::int64_t>(i);
        }
        last_op[static_cast<std::size_t>(ops[i].p)] =
            static_cast<std::int64_t>(i);
        last_op[static_cast<std::size_t>(ops[i].q)] =
            static_cast<std::int64_t>(i);
    }
    return partner;
}

Metrics
compute_metrics(const Circuit& circ, const arch::NoiseModel* noise)
{
    Metrics m;
    m.depth = circ.depth();
    m.compute_gates = circ.num_compute();
    m.swap_gates = circ.num_swaps();

    auto merged = merged_with_previous(circ);
    const auto& ops = circ.ops();
    double log_fid = 0.0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        std::int64_t cx;
        if (merged[i]) {
            // The pair (previous op + this op) costs 3 CX in total; the
            // previous op was already billed at its standalone price,
            // so bill the difference here.
            const std::int64_t pair_cost = 3;
            std::int64_t prev_cost = 0; // computed below from kind
            // Find previous kind by same-pair adjacency: this op merged,
            // so predecessor kind is the opposite of ours.
            prev_cost = (ops[i].kind == OpKind::Swap) ? 2 : 3;
            cx = pair_cost - prev_cost;
            ++m.merged_pairs;
        } else {
            cx = (ops[i].kind == OpKind::Compute) ? 2 : 3;
        }
        m.cx_count += cx;
        if (noise != nullptr && !noise->is_ideal()) {
            double e = noise->cx_error(ops[i].p, ops[i].q);
            for (std::int64_t k = 0; k < cx; ++k)
                log_fid += std::log(1.0 - e);
        }
    }
    m.fidelity = (noise != nullptr && !noise->is_ideal())
                     ? std::exp(log_fid)
                     : 1.0;
    return m;
}

ValidationReport
validate(const Circuit& circ, const arch::CouplingGraph& device,
         const graph::Graph& problem)
{
    ValidationReport report;
    auto flag = [&report](std::int64_t op_index, std::string msg) {
        if (report.violations.empty())
            report.message = msg;
        report.violations.push_back({op_index, std::move(msg)});
        report.ok = false;
    };
    if (circ.initial_mapping().num_physical() != device.num_qubits()) {
        // Op endpoints live in a different physical space; none of the
        // per-op rules below are meaningful.
        flag(-1, "circuit physical size does not match device");
        return report;
    }
    if (circ.initial_mapping().num_logical() != problem.num_vertices())
        flag(-1, "circuit logical size does not match problem");

    std::unordered_map<VertexPair, std::int64_t, VertexPairHash> done;
    const auto& ops = circ.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        const auto index = static_cast<std::int64_t>(i);
        if (!device.coupled(op.p, op.q)) {
            std::ostringstream os;
            os << "op on non-coupler (" << op.p << "," << op.q << ")";
            flag(index, os.str());
        }
        if (op.kind == OpKind::Compute) {
            if (op.a == kInvalidQubit || op.b == kInvalidQubit) {
                flag(index, "compute gate touching an empty position");
            } else if (!problem.has_edge(op.a, op.b)) {
                std::ostringstream os;
                os << "compute gate on non-edge logical pair (" << op.a
                   << "," << op.b << ")";
                flag(index, os.str());
            } else {
                ++done[VertexPair(op.a, op.b)];
            }
        }
    }
    for (const auto& e : problem.edges()) {
        auto it = done.find(e);
        if (it == done.end()) {
            std::ostringstream os;
            os << "problem edge (" << e.a << "," << e.b
               << ") never executed";
            flag(-1, os.str());
        } else if (it->second != 1) {
            std::ostringstream os;
            os << "problem edge (" << e.a << "," << e.b << ") executed "
               << it->second << " times";
            flag(-1, os.str());
        }
    }
    return report;
}

void
expect_valid(const Circuit& circ, const arch::CouplingGraph& device,
             const graph::Graph& problem)
{
    auto report = validate(circ, device, problem);
    panic_unless(report.ok, "invalid compiled circuit: " + report.message);
}

} // namespace permuq::circuit
