#include "circuit.h"

namespace permuq::circuit {

Circuit::Circuit(Mapping initial)
    : initial_(initial), current_(std::move(initial))
{
    busy_.assign(static_cast<std::size_t>(current_.num_physical()), 0);
}

void
Circuit::barrier()
{
    for (auto& b : busy_)
        b = depth_;
}

void
Circuit::append_circuit(const Circuit& tail)
{
    fatal_unless(tail.initial_mapping() == current_,
                 "appended circuit does not continue from this mapping");
    ops_.reserve(ops_.size() + tail.ops().size());
    for (const auto& op : tail.ops()) {
        if (op.kind == OpKind::Compute)
            add_compute(op.p, op.q);
        else
            add_swap(op.p, op.q);
    }
}

} // namespace permuq::circuit
