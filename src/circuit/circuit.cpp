#include "circuit.h"

#include <algorithm>

#include "common/error.h"

namespace permuq::circuit {

Circuit::Circuit(Mapping initial)
    : initial_(initial), current_(std::move(initial))
{
    busy_.assign(static_cast<std::size_t>(current_.num_physical()), 0);
}

ScheduledOp&
Circuit::push(OpKind kind, PhysicalQubit p, PhysicalQubit q)
{
    fatal_unless(p >= 0 && p < current_.num_physical() && q >= 0 &&
                     q < current_.num_physical() && p != q,
                 "op endpoints out of range");
    ScheduledOp op;
    op.kind = kind;
    op.p = p;
    op.q = q;
    op.a = current_.logical_at(p);
    op.b = current_.logical_at(q);
    Cycle start = std::max(busy_[static_cast<std::size_t>(p)],
                           busy_[static_cast<std::size_t>(q)]);
    op.cycle = start;
    busy_[static_cast<std::size_t>(p)] = start + 1;
    busy_[static_cast<std::size_t>(q)] = start + 1;
    depth_ = std::max(depth_, start + 1);
    ops_.push_back(op);
    return ops_.back();
}

const ScheduledOp&
Circuit::add_compute(PhysicalQubit p, PhysicalQubit q)
{
    const ScheduledOp& op = push(OpKind::Compute, p, q);
    panic_unless(op.a != kInvalidQubit && op.b != kInvalidQubit,
                 "compute gate on an empty position");
    ++num_compute_;
    return op;
}

const ScheduledOp&
Circuit::add_swap(PhysicalQubit p, PhysicalQubit q)
{
    const ScheduledOp& op = push(OpKind::Swap, p, q);
    current_.apply_swap(p, q);
    ++num_swaps_;
    return op;
}

void
Circuit::barrier()
{
    for (auto& b : busy_)
        b = depth_;
}

void
Circuit::append_circuit(const Circuit& tail)
{
    fatal_unless(tail.initial_mapping() == current_,
                 "appended circuit does not continue from this mapping");
    for (const auto& op : tail.ops()) {
        if (op.kind == OpKind::Compute)
            add_compute(op.p, op.q);
        else
            add_swap(op.p, op.q);
    }
}

} // namespace permuq::circuit
