/**
 * @file
 * Compiled-circuit container with built-in mapping tracking.
 *
 * Ops are appended in program order with physical endpoints only; the
 * circuit derives the logical operands from its internally tracked
 * mapping, so a compiled circuit can never be internally inconsistent.
 * Cycles are assigned ASAP: an op starts as soon as both its qubits are
 * free, which reproduces the paper's depth metric (critical-path length
 * with unit-latency gates).
 */
#ifndef PERMUQ_CIRCUIT_CIRCUIT_H
#define PERMUQ_CIRCUIT_CIRCUIT_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "circuit/gate.h"
#include "circuit/mapping.h"
#include "circuit/op_arena.h"
#include "common/error.h"
#include "common/types.h"

namespace permuq::circuit {

/** A compiled (hardware-compliant) circuit under construction. */
class Circuit
{
  public:
    Circuit() = default;

    /** Start from @p initial; the mapping is copied and then tracked. */
    explicit Circuit(Mapping initial);

    /** @name Appending ops (physical endpoints)
     *  @{ */

    /** Pre-size the op buffer (append-heavy compiler loops). */
    void reserve(std::size_t num_ops) { ops_.reserve(num_ops); }

    /** Append a computation gate between positions @p p and @p q.
     *  Inline: ATA replay appends millions of ops per tail, so the
     *  append path must not cost a function call per gate. */
    const ScheduledOp&
    add_compute(PhysicalQubit p, PhysicalQubit q)
    {
        const ScheduledOp& op = push(OpKind::Compute, p, q);
        panic_unless(op.a != kInvalidQubit && op.b != kInvalidQubit,
                     "compute gate on an empty position");
        ++num_compute_;
        return op;
    }

    /** Append a SWAP between positions @p p and @p q. */
    const ScheduledOp&
    add_swap(PhysicalQubit p, PhysicalQubit q)
    {
        const ScheduledOp& op = push(OpKind::Swap, p, q);
        current_.apply_swap(p, q);
        ++num_swaps_;
        return op;
    }

    /**
     * Force every subsequent op to start at or after the current depth
     * (used between pattern phases that must not overlap).
     */
    void barrier();

    /** Append all ops of @p tail (same physical space); the tail's
     *  initial mapping must equal this circuit's final mapping. */
    void append_circuit(const Circuit& tail);
    /** @} */

    /** All ops in append order (cycle values are non-decreasing per
     *  qubit but not globally sorted). */
    const OpArena& ops() const { return ops_; }

    /** Critical-path depth in cycles. */
    Cycle depth() const { return depth_; }

    /** Number of computation (problem) gates appended. */
    std::int64_t num_compute() const { return num_compute_; }

    /** Number of SWAP gates appended. */
    std::int64_t num_swaps() const { return num_swaps_; }

    /** The mapping the circuit started from. */
    const Mapping& initial_mapping() const { return initial_; }

    /** The mapping after all appended ops. */
    const Mapping& final_mapping() const { return current_; }

    /** Cycle at which position @p p becomes free. */
    Cycle
    busy_until(PhysicalQubit p) const
    {
        return busy_[static_cast<std::size_t>(p)];
    }

    /** Exact heap bytes held: op arena + busy table + both mappings. */
    std::size_t
    memory_bytes() const
    {
        return ops_.memory_bytes() + busy_.capacity() * sizeof(Cycle) +
               initial_.memory_bytes() + current_.memory_bytes();
    }

  private:
    ScheduledOp&
    push(OpKind kind, PhysicalQubit p, PhysicalQubit q)
    {
        fatal_unless(p >= 0 && p < current_.num_physical() && q >= 0 &&
                         q < current_.num_physical() && p != q,
                     "op endpoints out of range");
        ScheduledOp op;
        op.kind = kind;
        op.p = p;
        op.q = q;
        op.a = current_.logical_at(p);
        op.b = current_.logical_at(q);
        Cycle start = std::max(busy_[static_cast<std::size_t>(p)],
                               busy_[static_cast<std::size_t>(q)]);
        op.cycle = start;
        busy_[static_cast<std::size_t>(p)] = start + 1;
        busy_[static_cast<std::size_t>(q)] = start + 1;
        depth_ = std::max(depth_, start + 1);
        return ops_.push_back(op);
    }

    Mapping initial_;
    Mapping current_;
    OpArena ops_;
    std::vector<Cycle> busy_;
    Cycle depth_ = 0;
    std::int64_t num_compute_ = 0;
    std::int64_t num_swaps_ = 0;
};

/**
 * Visit the circuit's op stream in execution order, forward or
 * reversed. Reversed replay meets every pair again with the same
 * physical structure (the consumers of odd QAOA layers and alternate
 * Trotter steps rely on this). @p fn receives the op and its index in
 * the *append* order (so per-op side tables index correctly either
 * way).
 */
template <typename Fn>
void
for_each_replayed(const Circuit& circ, bool reversed, Fn&& fn)
{
    const auto& ops = circ.ops();
    const std::size_t count = ops.size();
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t i = reversed ? count - 1 - k : k;
        fn(ops[i], i);
    }
}

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_CIRCUIT_H
