/**
 * @file
 * Scheduled two-qubit operations of a compiled circuit.
 *
 * Following the paper's cost model (§4.1), compiled circuits consist of
 * abstract two-qubit slots — computation gates (CPHASE/RZZ) and SWAPs —
 * each occupying one cycle. Single-qubit gates (H, RX, RZ) are attached
 * only when a circuit is lowered for simulation (sim/qaoa.h), since they
 * do not affect routing.
 */
#ifndef PERMUQ_CIRCUIT_GATE_H
#define PERMUQ_CIRCUIT_GATE_H

#include <cstdint>

#include "common/types.h"

namespace permuq::circuit {

/** The two scheduling-relevant operation kinds. */
enum class OpKind : std::uint8_t
{
    /** A problem-graph two-qubit gate (CPHASE for QAOA, RZZ/unitary
     *  block for 2-local Hamiltonians). */
    Compute,
    /** A routing SWAP. */
    Swap,
};

/** One scheduled two-qubit operation. */
struct ScheduledOp
{
    OpKind kind = OpKind::Compute;
    /** Physical endpoints (must be a coupler of the target device). */
    PhysicalQubit p = kInvalidQubit;
    PhysicalQubit q = kInvalidQubit;
    /** Logical operands at execution time; for SWAPs either side may be
     *  kInvalidQubit when an empty position is moved. */
    LogicalQubit a = kInvalidQubit;
    LogicalQubit b = kInvalidQubit;
    /** Scheduling cycle (ASAP-assigned; all ops take one cycle). */
    Cycle cycle = 0;
};

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_GATE_H
