/**
 * @file
 * Chunked arena storage for scheduled ops.
 *
 * A fabric-scale compile appends tens of millions of ScheduledOps. A
 * plain std::vector doubles on growth, which transiently holds 1.5x
 * the final size (a multi-GB spike at 100k qubits) and copies every
 * element on each doubling. The arena instead allocates fixed-size
 * chunks and never relocates an op once written, so peak memory equals
 * live memory (rounded up to one chunk) and references returned by
 * push_back() stay valid forever.
 *
 * The read API mirrors the std::vector surface the rest of the
 * codebase uses on Circuit::ops(): size() / empty() / operator[] /
 * back() and random-access iteration (range-for and indexed loops).
 */
#ifndef PERMUQ_CIRCUIT_OP_ARENA_H
#define PERMUQ_CIRCUIT_OP_ARENA_H

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "circuit/gate.h"

namespace permuq::circuit {

/** Append-only chunked container of ScheduledOp. */
class OpArena
{
  public:
    /** Ops per chunk; 8192 * 24 B = 192 KiB, large enough that the
     *  chunk-pointer table stays tiny even at 10^8 ops. */
    static constexpr std::size_t kChunkOps = 8192;

    OpArena() = default;

    OpArena(const OpArena& other) { *this = other; }

    OpArena&
    operator=(const OpArena& other)
    {
        if (this == &other)
            return *this;
        chunks_.clear();
        chunks_.reserve(other.chunks_.size());
        size_ = other.size_;
        for (std::size_t c = 0; c < other.chunks_.size(); ++c) {
            chunks_.push_back(
                std::make_unique<ScheduledOp[]>(kChunkOps));
            const std::size_t used =
                c + 1 < other.chunks_.size() ? kChunkOps
                                             : size_ - c * kChunkOps;
            for (std::size_t i = 0; i < used; ++i)
                chunks_[c][i] = other.chunks_[c][i];
        }
        recache_tail();
        return *this;
    }

    OpArena(OpArena&& other) noexcept { *this = std::move(other); }

    OpArena&
    operator=(OpArena&& other) noexcept
    {
        if (this == &other)
            return *this;
        chunks_ = std::move(other.chunks_);
        size_ = other.size_;
        tail_ = other.tail_;
        tail_left_ = other.tail_left_;
        other.chunks_.clear();
        other.size_ = 0;
        other.tail_ = nullptr;
        other.tail_left_ = 0;
        return *this;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const ScheduledOp&
    operator[](std::size_t i) const
    {
        return chunks_[i / kChunkOps][i % kChunkOps];
    }

    const ScheduledOp& back() const { return (*this)[size_ - 1]; }

    /** Append a copy of @p op; the returned reference never moves. */
    ScheduledOp&
    push_back(const ScheduledOp& op)
    {
        if (tail_left_ == 0) {
            chunks_.push_back(
                std::make_unique<ScheduledOp[]>(kChunkOps));
            tail_ = chunks_.back().get();
            tail_left_ = kChunkOps;
        }
        ScheduledOp& slot = *tail_++;
        --tail_left_;
        slot = op;
        ++size_;
        return slot;
    }

    /** Pre-size the chunk-pointer table (chunks stay lazy). */
    void
    reserve(std::size_t num_ops)
    {
        chunks_.reserve((num_ops + kChunkOps - 1) / kChunkOps);
    }

    /** Release every chunk. */
    void
    clear()
    {
        chunks_.clear();
        size_ = 0;
        tail_ = nullptr;
        tail_left_ = 0;
    }

    /** Exact heap bytes held (allocated chunks + pointer table). */
    std::size_t
    memory_bytes() const
    {
        return chunks_.size() * kChunkOps * sizeof(ScheduledOp) +
               chunks_.capacity() * sizeof(chunks_[0]);
    }

    /** Random-access const iterator over the arena. */
    class const_iterator
    {
      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = ScheduledOp;
        using difference_type = std::ptrdiff_t;
        using pointer = const ScheduledOp*;
        using reference = const ScheduledOp&;

        const_iterator() = default;
        const_iterator(const OpArena* arena, std::size_t index)
            : arena_(arena), index_(index)
        {
            recache();
        }

        reference operator*() const { return *cur_; }
        pointer operator->() const { return cur_; }
        reference
        operator[](difference_type d) const
        {
            return (*arena_)[index_ + static_cast<std::size_t>(d)];
        }

        const_iterator&
        operator++()
        {
            // Fast path: stay inside the cached chunk; recache only on
            // a chunk boundary (every kChunkOps steps).
            ++index_;
            if (++cur_ == chunk_end_)
                recache();
            return *this;
        }
        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++(*this);
            return old;
        }
        const_iterator&
        operator--()
        {
            --index_;
            recache();
            return *this;
        }
        const_iterator
        operator--(int)
        {
            const_iterator old = *this;
            --(*this);
            return old;
        }
        const_iterator&
        operator+=(difference_type d)
        {
            index_ += static_cast<std::size_t>(d);
            recache();
            return *this;
        }
        const_iterator&
        operator-=(difference_type d)
        {
            index_ -= static_cast<std::size_t>(d);
            recache();
            return *this;
        }
        friend const_iterator
        operator+(const_iterator it, difference_type d)
        {
            return it += d;
        }
        friend const_iterator
        operator+(difference_type d, const_iterator it)
        {
            return it += d;
        }
        friend const_iterator
        operator-(const_iterator it, difference_type d)
        {
            return it -= d;
        }
        friend difference_type
        operator-(const_iterator a, const_iterator b)
        {
            return static_cast<difference_type>(a.index_) -
                   static_cast<difference_type>(b.index_);
        }
        friend bool
        operator==(const_iterator a, const_iterator b)
        {
            return a.index_ == b.index_;
        }
        friend bool
        operator!=(const_iterator a, const_iterator b)
        {
            return a.index_ != b.index_;
        }
        friend bool
        operator<(const_iterator a, const_iterator b)
        {
            return a.index_ < b.index_;
        }
        friend bool
        operator>(const_iterator a, const_iterator b)
        {
            return a.index_ > b.index_;
        }
        friend bool
        operator<=(const_iterator a, const_iterator b)
        {
            return a.index_ <= b.index_;
        }
        friend bool
        operator>=(const_iterator a, const_iterator b)
        {
            return a.index_ >= b.index_;
        }

      private:
        /** Point cur_/chunk_end_ into the chunk holding index_ (null
         *  past the end; comparisons only ever use index_). */
        void
        recache()
        {
            if (arena_ != nullptr && index_ < arena_->size_) {
                const ScheduledOp* chunk =
                    arena_->chunks_[index_ / kChunkOps].get();
                cur_ = chunk + index_ % kChunkOps;
                chunk_end_ = chunk + kChunkOps;
            } else {
                cur_ = nullptr;
                chunk_end_ = nullptr;
            }
        }

        const OpArena* arena_ = nullptr;
        std::size_t index_ = 0;
        const ScheduledOp* cur_ = nullptr;
        const ScheduledOp* chunk_end_ = nullptr;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    /** Rederive the push_back cursor from chunks_/size_ (after a copy
     *  assignment changed them behind the cache). */
    void
    recache_tail()
    {
        const std::size_t used = size_ % kChunkOps;
        if (!chunks_.empty() && used != 0) {
            tail_ = chunks_.back().get() + used;
            tail_left_ = kChunkOps - used;
        } else {
            tail_ = nullptr;
            tail_left_ = 0;
        }
    }

    std::vector<std::unique_ptr<ScheduledOp[]>> chunks_;
    std::size_t size_ = 0;
    ScheduledOp* tail_ = nullptr;
    std::size_t tail_left_ = 0;
};

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_OP_ARENA_H
