#include "qasm.h"

#include <sstream>

#include "circuit/metrics.h"
#include "common/error.h"

namespace permuq::circuit {

std::string
to_qasm(const Circuit& circ, const QasmOptions& options)
{
    std::ostringstream out;
    std::int32_t n = circ.initial_mapping().num_physical();
    std::int32_t logical = circ.initial_mapping().num_logical();
    out << "OPENQASM 2.0;\n"
        << "include \"qelib1.inc\";\n"
        << "qreg q[" << n << "];\n";
    if (options.full_qaoa)
        out << "creg c[" << logical << "];\n";

    if (options.full_qaoa) {
        // Initial |+> on every position holding a program qubit.
        for (std::int32_t l = 0; l < logical; ++l)
            out << "h q[" << circ.initial_mapping().physical_of(l)
                << "];\n";
    }

    std::vector<std::int64_t> partner(
        circ.ops().size(), -1);
    if (options.merge_pairs)
        partner = merge_partner(circ);
    const auto& ops = circ.ops();
    std::vector<bool> consumed(ops.size(), false);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (consumed[i])
            continue;
        const auto& op = ops[i];
        std::int64_t pair = partner[i];
        if (pair >= 0) {
            // Merged ZZ+SWAP (either order; the two commute):
            //   SWAP*RZZ(t) = CX(a,b) CX(b,a) RZ_b(t) CX(a,b),
            // i.e. in circuit order cx; rz; cx reversed; cx.
            consumed[static_cast<std::size_t>(pair)] = true;
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
            out << "rz(" << 2.0 * options.gamma << ") q[" << op.q
                << "];\n";
            out << "cx q[" << op.q << "],q[" << op.p << "];\n";
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
        } else if (op.kind == OpKind::Compute) {
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
            out << "rz(" << 2.0 * options.gamma << ") q[" << op.q
                << "];\n";
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
        } else {
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
            out << "cx q[" << op.q << "],q[" << op.p << "];\n";
            out << "cx q[" << op.p << "],q[" << op.q << "];\n";
        }
    }

    if (options.full_qaoa) {
        for (std::int32_t l = 0; l < logical; ++l)
            out << "rx(" << 2.0 * options.beta << ") q["
                << circ.final_mapping().physical_of(l) << "];\n";
        for (std::int32_t l = 0; l < logical; ++l)
            out << "measure q[" << circ.final_mapping().physical_of(l)
                << "] -> c[" << l << "];\n";
    }
    return out.str();
}

std::string
to_diagram(const Circuit& circ)
{
    std::int32_t n = circ.initial_mapping().num_physical();
    Cycle depth = circ.depth();
    fatal_unless(n <= 64 && depth <= 256,
                 "diagram limited to 64 qubits x 256 cycles");
    // grid[q][cycle] = 3-char cell.
    std::vector<std::vector<std::string>> grid(
        static_cast<std::size_t>(n),
        std::vector<std::string>(static_cast<std::size_t>(depth), "---"));
    for (const auto& op : circ.ops()) {
        const char* mark = op.kind == OpKind::Compute ? "-o-" : "-x-";
        grid[static_cast<std::size_t>(op.p)][static_cast<std::size_t>(
            op.cycle)] = mark;
        grid[static_cast<std::size_t>(op.q)][static_cast<std::size_t>(
            op.cycle)] = mark;
    }
    std::ostringstream out;
    for (std::int32_t q = 0; q < n; ++q) {
        out << "q" << q << (q < 10 ? " " : "") << " ";
        for (Cycle c = 0; c < depth; ++c)
            out << grid[static_cast<std::size_t>(q)][static_cast<
                std::size_t>(c)];
        out << "\n";
    }
    return out.str();
}

} // namespace permuq::circuit
