#include "qasm.h"

#include <ostream>
#include <sstream>

#include "circuit/metrics.h"
#include "common/error.h"

namespace permuq::circuit {

QasmStreamWriter::QasmStreamWriter(std::ostream& out,
                                   const QasmOptions& options)
    : out_(&out), options_(options)
{
}

void
QasmStreamWriter::begin(const Mapping& initial)
{
    fatal_unless(!begun_, "QasmStreamWriter::begin called twice");
    begun_ = true;
    std::ostream& out = *out_;
    out << "OPENQASM 2.0;\n"
        << "include \"qelib1.inc\";\n"
        << "qreg q[" << initial.num_physical() << "];\n";
    if (options_.full_qaoa) {
        out << "creg c[" << initial.num_logical() << "];\n";
        // Initial |+> on every position holding a program qubit.
        for (std::int32_t l = 0; l < initial.num_logical(); ++l)
            out << "h q[" << initial.physical_of(l) << "];\n";
    }
}

void
QasmStreamWriter::chunk(const Circuit& fragment, std::int32_t offset)
{
    fatal_unless(begun_ && !finished_,
                 "QasmStreamWriter::chunk outside begin/finish");
    std::ostream& out = *out_;
    std::vector<std::int64_t> partner(fragment.ops().size(), -1);
    if (options_.merge_pairs)
        partner = merge_partner(fragment);
    const auto& ops = fragment.ops();
    std::vector<bool> consumed(ops.size(), false);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (consumed[i])
            continue;
        const auto& op = ops[i];
        const std::int32_t p = op.p + offset;
        const std::int32_t q = op.q + offset;
        std::int64_t pair = partner[i];
        if (pair >= 0) {
            // Merged ZZ+SWAP (either order; the two commute):
            //   SWAP*RZZ(t) = CX(a,b) CX(b,a) RZ_b(t) CX(a,b),
            // i.e. in circuit order cx; rz; cx reversed; cx.
            consumed[static_cast<std::size_t>(pair)] = true;
            out << "cx q[" << p << "],q[" << q << "];\n";
            out << "rz(" << 2.0 * options_.gamma << ") q[" << q
                << "];\n";
            out << "cx q[" << q << "],q[" << p << "];\n";
            out << "cx q[" << p << "],q[" << q << "];\n";
        } else if (op.kind == OpKind::Compute) {
            out << "cx q[" << p << "],q[" << q << "];\n";
            out << "rz(" << 2.0 * options_.gamma << ") q[" << q
                << "];\n";
            out << "cx q[" << p << "],q[" << q << "];\n";
        } else {
            out << "cx q[" << p << "],q[" << q << "];\n";
            out << "cx q[" << q << "],q[" << p << "];\n";
            out << "cx q[" << p << "],q[" << q << "];\n";
        }
    }
}

void
QasmStreamWriter::finish(const Mapping& final_mapping)
{
    fatal_unless(begun_ && !finished_,
                 "QasmStreamWriter::finish outside begin");
    finished_ = true;
    std::ostream& out = *out_;
    if (options_.full_qaoa) {
        for (std::int32_t l = 0; l < final_mapping.num_logical(); ++l)
            out << "rx(" << 2.0 * options_.beta << ") q["
                << final_mapping.physical_of(l) << "];\n";
        for (std::int32_t l = 0; l < final_mapping.num_logical(); ++l)
            out << "measure q[" << final_mapping.physical_of(l)
                << "] -> c[" << l << "];\n";
    }
    out.flush();
}

std::string
to_qasm(const Circuit& circ, const QasmOptions& options)
{
    std::ostringstream out;
    QasmStreamWriter writer(out, options);
    writer.begin(circ.initial_mapping());
    writer.chunk(circ);
    writer.finish(circ.final_mapping());
    return out.str();
}

std::string
to_diagram(const Circuit& circ)
{
    std::int32_t n = circ.initial_mapping().num_physical();
    Cycle depth = circ.depth();
    fatal_unless(n <= 64 && depth <= 256,
                 "diagram limited to 64 qubits x 256 cycles");
    // grid[q][cycle] = 3-char cell.
    std::vector<std::vector<std::string>> grid(
        static_cast<std::size_t>(n),
        std::vector<std::string>(static_cast<std::size_t>(depth), "---"));
    for (const auto& op : circ.ops()) {
        const char* mark = op.kind == OpKind::Compute ? "-o-" : "-x-";
        grid[static_cast<std::size_t>(op.p)][static_cast<std::size_t>(
            op.cycle)] = mark;
        grid[static_cast<std::size_t>(op.q)][static_cast<std::size_t>(
            op.cycle)] = mark;
    }
    std::ostringstream out;
    for (std::int32_t q = 0; q < n; ++q) {
        out << "q" << q << (q < 10 ? " " : "") << " ";
        for (Cycle c = 0; c < depth; ++c)
            out << grid[static_cast<std::size_t>(q)][static_cast<
                std::size_t>(c)];
        out << "\n";
    }
    return out.str();
}

} // namespace permuq::circuit
