/**
 * @file
 * OpenQASM 2.0 export of compiled circuits, so PermuQ output can be
 * fed to external stacks (Qiskit, simulators, hardware queues).
 *
 * A compiled circuit is an abstract schedule of CPHASE/RZZ and SWAP
 * slots; export lowers it to the CX + single-qubit-rotation basis used
 * throughout the evaluation:
 *   - compute (ZZ-interaction, angle 2*gamma):
 *       cx a,b; rz(2*gamma) b; cx a,b
 *   - swap: cx a,b; cx b,a; cx a,b
 *   - compute immediately followed by swap on the same pair merges to
 *     three CX (the unification the metrics count):
 *       cx a,b; rz(2*gamma) b; cx b,a; cx a,b
 * Optionally a full QAOA program is emitted: initial Hadamards, the
 * phase separator (the compiled circuit), and the RX mixer.
 */
#ifndef PERMUQ_CIRCUIT_QASM_H
#define PERMUQ_CIRCUIT_QASM_H

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace permuq::circuit {

/** Options controlling QASM emission. */
struct QasmOptions
{
    /** ZZ-interaction angle (QAOA gamma); every compute op uses it. */
    double gamma = 0.5;
    /** Emit the full QAOA layer: H column, phase separator, RX mixer
     *  with this beta, and measurements of the logical qubits. */
    bool full_qaoa = false;
    double beta = 0.4;
    /** Apply the CPHASE+SWAP merging when lowering. */
    bool merge_pairs = true;
};

/** Serialize @p circ as an OpenQASM 2.0 program. */
std::string to_qasm(const Circuit& circ, const QasmOptions& options = {});

/**
 * Incremental OpenQASM 2.0 emission: the program is written to an
 * ostream in chunks as parts of the compilation complete, so a
 * fabric-scale (100k-qubit) compile never materializes the whole
 * program text — or even the whole circuit — in memory.
 *
 * Protocol: begin(global initial mapping), then chunk() once per
 * circuit fragment in program order, then finish(global final
 * mapping). CPHASE+SWAP pair merging is chunk-local (a merge never
 * spans a chunk boundary); the sharded compiler's canonical QASM is
 * defined as one chunk per region plus one stitch chunk, and a
 * single-chunk emission is byte-identical to to_qasm().
 */
class QasmStreamWriter
{
  public:
    /** @p out must outlive the writer. */
    explicit QasmStreamWriter(std::ostream& out,
                              const QasmOptions& options = {});

    /** Emit the header (and the |+> prelude when full_qaoa). */
    void begin(const Mapping& initial);

    /**
     * Lower and emit all ops of @p fragment, shifting every physical
     * qubit id by @p offset (region chunks are compiled in a local id
     * space; contiguous banding makes the translation a single add).
     */
    void chunk(const Circuit& fragment, std::int32_t offset = 0);

    /** Emit the RX mixer + measurements (full_qaoa) and flush. */
    void finish(const Mapping& final_mapping);

    const QasmOptions& options() const { return options_; }

  private:
    std::ostream* out_;
    QasmOptions options_;
    bool begun_ = false;
    bool finished_ = false;
};

/**
 * Render a fixed-width text diagram of the circuit, one line per
 * physical qubit, one column per cycle — the format used by the
 * pattern-explorer example and handy in tests/debugging.
 * Columns: "─●─" endpoints for computes, "─x─" for swaps.
 */
std::string to_diagram(const Circuit& circ);

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_QASM_H
