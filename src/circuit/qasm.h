/**
 * @file
 * OpenQASM 2.0 export of compiled circuits, so PermuQ output can be
 * fed to external stacks (Qiskit, simulators, hardware queues).
 *
 * A compiled circuit is an abstract schedule of CPHASE/RZZ and SWAP
 * slots; export lowers it to the CX + single-qubit-rotation basis used
 * throughout the evaluation:
 *   - compute (ZZ-interaction, angle 2*gamma):
 *       cx a,b; rz(2*gamma) b; cx a,b
 *   - swap: cx a,b; cx b,a; cx a,b
 *   - compute immediately followed by swap on the same pair merges to
 *     three CX (the unification the metrics count):
 *       cx a,b; rz(2*gamma) b; cx b,a; cx a,b
 * Optionally a full QAOA program is emitted: initial Hadamards, the
 * phase separator (the compiled circuit), and the RX mixer.
 */
#ifndef PERMUQ_CIRCUIT_QASM_H
#define PERMUQ_CIRCUIT_QASM_H

#include <string>

#include "circuit/circuit.h"

namespace permuq::circuit {

/** Options controlling QASM emission. */
struct QasmOptions
{
    /** ZZ-interaction angle (QAOA gamma); every compute op uses it. */
    double gamma = 0.5;
    /** Emit the full QAOA layer: H column, phase separator, RX mixer
     *  with this beta, and measurements of the logical qubits. */
    bool full_qaoa = false;
    double beta = 0.4;
    /** Apply the CPHASE+SWAP merging when lowering. */
    bool merge_pairs = true;
};

/** Serialize @p circ as an OpenQASM 2.0 program. */
std::string to_qasm(const Circuit& circ, const QasmOptions& options = {});

/**
 * Render a fixed-width text diagram of the circuit, one line per
 * physical qubit, one column per cycle — the format used by the
 * pattern-explorer example and handy in tests/debugging.
 * Columns: "─●─" endpoints for computes, "─x─" for swaps.
 */
std::string to_diagram(const Circuit& circ);

} // namespace permuq::circuit

#endif // PERMUQ_CIRCUIT_QASM_H
