/**
 * @file
 * Shared helpers for the statevector kernels: compact block-index
 * expansion and the common parallel grain size. Kernels enumerate the
 * 2^(n-1) / 2^(n-2) block space directly and expand each block index
 * to amplitude indices by inserting zero bits at the gate's qubit
 * positions — no skip-scanning of the full 2^n range.
 */
#ifndef PERMUQ_SIM_KERNEL_UTIL_H
#define PERMUQ_SIM_KERNEL_UTIL_H

#include <cstddef>

namespace permuq::sim {

/** Minimum elements per parallel chunk; below 2x this, run serially. */
inline constexpr std::size_t kKernelGrain = std::size_t(1) << 12;

/** Insert a zero bit: spread @p h so the bit covered by @p low_mask's
 *  top position becomes 0 (low_mask = (1 << pos) - 1). */
inline std::size_t
insert_zero(std::size_t h, std::size_t low_mask)
{
    return ((h & ~low_mask) << 1) | (h & low_mask);
}

/** Expand a 2^(n-2) block index over two qubit positions. @p lo_mask
 *  and @p hi_mask are (bit - 1) for the smaller and larger qubit bit
 *  respectively; the result has zeros at both positions. */
inline std::size_t
insert_two_zeros(std::size_t h, std::size_t lo_mask, std::size_t hi_mask)
{
    return insert_zero(insert_zero(h, lo_mask), hi_mask);
}

} // namespace permuq::sim

#endif // PERMUQ_SIM_KERNEL_UTIL_H
