/**
 * @file
 * AVX-512 tier of the statevector kernels (see sim/kernels.h for the
 * dispatch design and the determinism contract).
 *
 * Only the hottest kernels are reimplemented at 512-bit width — the
 * RX butterflies, the fused-diagonal phase sweep, the norm/objective
 * reductions, and the batched sweep kernels; everything else is
 * inherited from avx2_table(). Two constraints keep the tier
 * bit-identical to the scalar and AVX2 tiers:
 *
 *  - AVX-512 has no addsub instruction, so complex arithmetic negates
 *    alternate lanes (an exact IEEE operation) and uses a plain add:
 *    x - y == x + (-y) and x - (-y) == x + y bit-for-bit.
 *
 *  - Reductions must keep the fixed 4-lane accumulation order, so the
 *    512-bit bodies compute eight elements' terms at once but chain
 *    the two 256-bit halves through one 4-lane accumulator in
 *    ascending element order — never eight independent lanes, which
 *    would change the addition tree.
 *
 * This TU builds with -mavx512f -mavx512dq -ffp-contract=off; when
 * the toolchain can't target AVX-512 the #else branch aliases the
 * AVX2 tier (which itself falls back to scalar when absent).
 */
#include "sim/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "sim/kernel_util.h"
#include "sim/kernels_inline.h"

namespace permuq::sim::kernels {

namespace {

/** -0.0 in the even (real) lanes: xor then add emulates addsub. */
inline __m512d
neg_even()
{
    return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}

/** -0.0 in the odd (imag) lanes: xor then add emulates the
 *  negated-operand addsub of the RX mix. */
inline __m512d
neg_odd()
{
    return _mm512_set_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
}

/** Swap re/im within each complex value. */
inline __m512d
swap_halves8(__m512d v)
{
    return _mm512_permute_pd(v, 0x55);
}

/** Four complex multiplies by broadcast-per-complex phases: the lane
 *  sequence of detail::cmul, with addsub emulated as described in the
 *  file comment. */
inline __m512d
cmul_broadcast8(__m512d v, __m512d pr, __m512d pi)
{
    const __m512d t = _mm512_mul_pd(v, pr);
    const __m512d u = _mm512_mul_pd(swap_halves8(v), pi);
    return _mm512_add_pd(t, _mm512_xor_pd(u, neg_even()));
}

/** Four complex multiplies by the phases packed in @p p. */
inline __m512d
cmul_packed8(__m512d v, __m512d p)
{
    const __m512d pr = _mm512_movedup_pd(p);
    const __m512d pi = _mm512_permute_pd(p, 0xFF);
    return cmul_broadcast8(v, pr, pi);
}

/** Half an RX butterfly, the lane sequence of detail::rx_pair:
 *  re' = c*ar_self + s*ai_other, im' = c*ai_self - s*ar_other. */
inline __m512d
rx_mix8(__m512d self, __m512d other, __m512d c, __m512d s)
{
    const __m512d t = _mm512_mul_pd(self, c);
    const __m512d u = _mm512_mul_pd(swap_halves8(other), s);
    return _mm512_add_pd(t, _mm512_xor_pd(u, neg_odd()));
}

/** |a|^2 of eight consecutive complex values from the two 512-bit
 *  loads @p x (values 0-3) and @p y (values 4-7): per value one
 *  re*re + im*im add, the sequence of detail::norm2. */
inline __m512d
norm8(__m512d x, __m512d y)
{
    const __m512i idx_even =
        _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const __m512i idx_odd =
        _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    const __m512d sqx = _mm512_mul_pd(x, x);
    const __m512d sqy = _mm512_mul_pd(y, y);
    const __m512d re = _mm512_permutex2var_pd(sqx, idx_even, sqy);
    const __m512d im = _mm512_permutex2var_pd(sqx, idx_odd, sqy);
    return _mm512_add_pd(re, im);
}

void
avx512_rx(double* a, std::size_t hb, std::size_t he,
          std::size_t low_mask, std::size_t bit, double c, double s)
{
    if (low_mask < 3) { // qubits 0/1: pairs are not lane-contiguous
        scalar_table().rx(a, hb, he, low_mask, bit, c, s);
        return;
    }
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::rx_pair(a + 2 * i0, a + 2 * (i0 | bit), c, s);
    }
    const __m512d cv = _mm512_set1_pd(c);
    const __m512d sv = _mm512_set1_pd(s);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * i0;
        double* p1 = a + 2 * (i0 | bit);
        const __m512d v0 = _mm512_loadu_pd(p0);
        const __m512d v1 = _mm512_loadu_pd(p1);
        _mm512_storeu_pd(p0, rx_mix8(v0, v1, cv, sv));
        _mm512_storeu_pd(p1, rx_mix8(v1, v0, cv, sv));
    }
    for (; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::rx_pair(a + 2 * i0, a + 2 * (i0 | bit), c, s);
    }
}

void
avx512_rx2(double* a, std::size_t hb, std::size_t he,
           std::size_t lo_mask, std::size_t hi_mask, std::size_t pbit,
           std::size_t qbit, double c, double s)
{
    if (lo_mask < 3) {
        scalar_table().rx2(a, hb, he, lo_mask, hi_mask, pbit, qbit, c,
                           s);
        return;
    }
    auto one_block = [=](std::size_t h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p00 = a + 2 * i00;
        double* pp = a + 2 * (i00 | pbit);
        double* pq = a + 2 * (i00 | qbit);
        double* ppq = a + 2 * (i00 | pbit | qbit);
        detail::rx_pair(p00, pp, c, s);
        detail::rx_pair(pq, ppq, c, s);
        detail::rx_pair(p00, pq, c, s);
        detail::rx_pair(pp, ppq, c, s);
    };
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h)
        one_block(h);
    const __m512d cv = _mm512_set1_pd(c);
    const __m512d sv = _mm512_set1_pd(s);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p00 = a + 2 * i00;
        double* pp = a + 2 * (i00 | pbit);
        double* pq = a + 2 * (i00 | qbit);
        double* ppq = a + 2 * (i00 | pbit | qbit);
        __m512d v00 = _mm512_loadu_pd(p00);
        __m512d vp = _mm512_loadu_pd(pp);
        __m512d vq = _mm512_loadu_pd(pq);
        __m512d vpq = _mm512_loadu_pd(ppq);
        // RX on the pbit pairs...
        __m512d t;
        t = rx_mix8(v00, vp, cv, sv);
        vp = rx_mix8(vp, v00, cv, sv);
        v00 = t;
        t = rx_mix8(vq, vpq, cv, sv);
        vpq = rx_mix8(vpq, vq, cv, sv);
        vq = t;
        // ...then on the qbit pairs, all still in registers.
        t = rx_mix8(v00, vq, cv, sv);
        vq = rx_mix8(vq, v00, cv, sv);
        v00 = t;
        t = rx_mix8(vp, vpq, cv, sv);
        vpq = rx_mix8(vpq, vp, cv, sv);
        vp = t;
        _mm512_storeu_pd(p00, v00);
        _mm512_storeu_pd(pp, vp);
        _mm512_storeu_pd(pq, vq);
        _mm512_storeu_pd(ppq, vpq);
    }
    for (; h < he; ++h)
        one_block(h);
}

void
avx512_phase_lut(double* a, std::size_t ib, std::size_t ie,
                 const std::int32_t* key, std::int32_t span,
                 const double* lut_re, const double* lut_im)
{
    const __m256i span_v = _mm256_set1_epi32(span);
    const __m512i idx_lo = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
    const __m512i idx_hi = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
    const __m512d zero = _mm512_setzero_pd();
    std::size_t i = ib;
    for (; i + 8 <= ie; i += 8) {
        __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(key + i));
        k = _mm256_add_epi32(k, span_v);
        // Full-mask gather with a zeroed source: the plain gather
        // intrinsic expands through an undefined register and trips
        // -Wmaybe-uninitialized; with mask 0xff every lane is
        // overwritten, so the result is identical.
        const __m512d pr8 =
            _mm512_mask_i32gather_pd(zero, 0xff, k, lut_re, 8);
        const __m512d pi8 =
            _mm512_mask_i32gather_pd(zero, 0xff, k, lut_im, 8);
        const __m512d p_lo = _mm512_permutex2var_pd(pr8, idx_lo, pi8);
        const __m512d p_hi = _mm512_permutex2var_pd(pr8, idx_hi, pi8);
        double* p = a + 2 * i;
        _mm512_storeu_pd(p, cmul_packed8(_mm512_loadu_pd(p), p_lo));
        _mm512_storeu_pd(p + 8,
                         cmul_packed8(_mm512_loadu_pd(p + 8), p_hi));
    }
    for (; i < ie; ++i) {
        const std::int32_t k = key[i] + span;
        detail::cmul(a + 2 * i, lut_re[k], lut_im[k]);
    }
}

double
avx512_norm_sum(const double* a, std::size_t ib, std::size_t ie)
{
    const std::size_t len = ie - ib;
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 8 <= len; j += 8) {
        const double* p = a + 2 * (ib + j);
        const __m512d n = norm8(_mm512_loadu_pd(p),
                                _mm512_loadu_pd(p + 8));
        // Chain the halves in ascending element order to preserve the
        // 4-lane accumulation tree.
        acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(n));
        acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(n, 1));
    }
    alignas(32) double lane[kReductionLanes];
    _mm256_store_pd(lane, acc);
    for (; j < len; ++j)
        lane[j & (kReductionLanes - 1)] +=
            detail::norm2(a + 2 * (ib + j));
    return detail::combine_lanes(lane);
}

double
avx512_weighted_norm_sum(const double* a, const double* table,
                         double offset, std::size_t ib, std::size_t ie)
{
    const std::size_t len = ie - ib;
    const __m512d off = _mm512_set1_pd(offset);
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 8 <= len; j += 8) {
        const double* p = a + 2 * (ib + j);
        const __m512d n = norm8(_mm512_loadu_pd(p),
                                _mm512_loadu_pd(p + 8));
        const __m512d w =
            _mm512_add_pd(_mm512_loadu_pd(table + ib + j), off);
        const __m512d m = _mm512_mul_pd(n, w);
        acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(m));
        acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(m, 1));
    }
    alignas(32) double lane[kReductionLanes];
    _mm256_store_pd(lane, acc);
    for (; j < len; ++j)
        lane[j & (kReductionLanes - 1)] +=
            detail::norm2(a + 2 * (ib + j)) * (table[ib + j] + offset);
    return detail::combine_lanes(lane);
}

void
avx512_brx(double* a, std::size_t hb, std::size_t he,
           std::size_t low_mask, std::size_t bit, std::size_t batch,
           const double* c2, const double* s2)
{
    if (batch < 4) { // not enough points for a 512-bit lane group
        avx2_table().brx(a, hb, he, low_mask, bit, batch, c2, s2);
        return;
    }
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * batch * i0;
        double* p1 = a + 2 * batch * (i0 | bit);
        std::size_t b = 0;
        for (; b + 4 <= batch; b += 4) {
            const __m512d cv = _mm512_loadu_pd(c2 + 2 * b);
            const __m512d sv = _mm512_loadu_pd(s2 + 2 * b);
            const __m512d v0 = _mm512_loadu_pd(p0 + 2 * b);
            const __m512d v1 = _mm512_loadu_pd(p1 + 2 * b);
            _mm512_storeu_pd(p0 + 2 * b, rx_mix8(v0, v1, cv, sv));
            _mm512_storeu_pd(p1 + 2 * b, rx_mix8(v1, v0, cv, sv));
        }
        for (; b < batch; ++b)
            detail::rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b],
                            s2[2 * b]);
    }
}

void
avx512_brx_pair(double* a0, double* a1, std::size_t elems,
                std::size_t batch, const double* c2, const double* s2)
{
    if (batch < 4) {
        avx2_table().brx_pair(a0, a1, elems, batch, c2, s2);
        return;
    }
    for (std::size_t e = 0; e < elems; ++e) {
        double* p0 = a0 + 2 * batch * e;
        double* p1 = a1 + 2 * batch * e;
        std::size_t b = 0;
        for (; b + 4 <= batch; b += 4) {
            const __m512d cv = _mm512_loadu_pd(c2 + 2 * b);
            const __m512d sv = _mm512_loadu_pd(s2 + 2 * b);
            const __m512d v0 = _mm512_loadu_pd(p0 + 2 * b);
            const __m512d v1 = _mm512_loadu_pd(p1 + 2 * b);
            _mm512_storeu_pd(p0 + 2 * b, rx_mix8(v0, v1, cv, sv));
            _mm512_storeu_pd(p1 + 2 * b, rx_mix8(v1, v0, cv, sv));
        }
        for (; b < batch; ++b)
            detail::rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b],
                            s2[2 * b]);
    }
}

void
avx512_bphase_lut(double* a, std::size_t ib, std::size_t ie,
                  const std::int32_t* key, std::int32_t span,
                  std::size_t batch, const double* lut)
{
    if (batch < 4) {
        avx2_table().bphase_lut(a, ib, ie, key, span, batch, lut);
        return;
    }
    for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t k = static_cast<std::size_t>(key[i] + span);
        const double* ph = lut + 2 * batch * k;
        double* p = a + 2 * batch * i;
        std::size_t b = 0;
        for (; b + 4 <= batch; b += 4)
            _mm512_storeu_pd(
                p + 2 * b, cmul_packed8(_mm512_loadu_pd(p + 2 * b),
                                        _mm512_loadu_pd(ph + 2 * b)));
        for (; b < batch; ++b)
            detail::cmul(p + 2 * b, ph[2 * b], ph[2 * b + 1]);
    }
}

void
avx512_bweighted_norm_sum(const double* a, std::size_t batch,
                          const double* table, double offset,
                          std::size_t ib, std::size_t ie, double* out)
{
    if (batch < 8) {
        avx2_table().bweighted_norm_sum(a, batch, table, offset, ib,
                                        ie, out);
        return;
    }
    // Per-point accumulation is element-wise independent across
    // points, so the vector width only has to respect each point's
    // 4-lane row assignment — identical to the scalar tier.
    alignas(64) double lane[kReductionLanes][kMaxSweepBatch] = {};
    for (std::size_t i = ib; i < ie; ++i) {
        const double w = table[i] + offset;
        const __m512d wv = _mm512_set1_pd(w);
        const double* p = a + 2 * batch * i;
        double* lrow = lane[(i - ib) & (kReductionLanes - 1)];
        std::size_t b = 0;
        for (; b + 8 <= batch; b += 8) {
            const __m512d n = norm8(_mm512_loadu_pd(p + 2 * b),
                                    _mm512_loadu_pd(p + 2 * b + 8));
            _mm512_store_pd(lrow + b,
                            _mm512_add_pd(_mm512_load_pd(lrow + b),
                                          _mm512_mul_pd(n, wv)));
        }
        for (; b < batch; ++b)
            lrow[b] += detail::norm2(p + 2 * b) * w;
    }
    for (std::size_t b = 0; b < batch; ++b) {
        const double l[kReductionLanes] = {lane[0][b], lane[1][b],
                                           lane[2][b], lane[3][b]};
        out[b] = detail::combine_lanes(l);
    }
}

} // namespace

bool
avx512_compiled_in()
{
    return true;
}

const Table&
avx512_table()
{
    static const Table table = {
        "avx512",
        avx512_rx,
        avx2_table().h,
        avx512_rx2,
        avx2_table().rz,
        avx2_table().rzz,
        avx2_table().cphase,
        avx2_table().cx,
        avx2_table().swap,
        avx512_phase_lut,
        scalar_table().phase_angles, // trig-bound; shared (see kernels.h)
        avx2_table().probs,
        avx512_norm_sum,
        avx512_weighted_norm_sum,
        avx2_table().axpy,
        avx2_table().scale,
        avx2_table().mul_neg_i,
        avx2_table().rk4_combine,
        avx512_brx,
        avx512_brx_pair,
        avx512_bphase_lut,
        scalar_table().bphase_angles, // trig-bound; shared
        avx512_bweighted_norm_sum,
    };
    return table;
}

} // namespace permuq::sim::kernels

#else // !(__AVX512F__ && __AVX512DQ__)

namespace permuq::sim::kernels {

bool
avx512_compiled_in()
{
    return false;
}

const Table&
avx512_table()
{
    return avx2_table();
}

} // namespace permuq::sim::kernels

#endif
