#include "statevector.h"

#include <cmath>

#include "common/error.h"

namespace permuq::sim {

Statevector::Statevector(std::int32_t num_qubits)
    : num_qubits_(num_qubits)
{
    fatal_unless(num_qubits >= 1 && num_qubits <= 24,
                 "statevector supports 1..24 qubits");
    amp_.assign(std::size_t(1) << num_qubits, Amplitude(0.0, 0.0));
    amp_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::apply_h(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        if (i & bit)
            continue;
        Amplitude a0 = amp_[i];
        Amplitude a1 = amp_[i | bit];
        amp_[i] = inv_sqrt2 * (a0 + a1);
        amp_[i | bit] = inv_sqrt2 * (a0 - a1);
    }
}

void
Statevector::apply_x(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    for (std::size_t i = 0; i < amp_.size(); ++i)
        if (!(i & bit))
            std::swap(amp_[i], amp_[i | bit]);
}

void
Statevector::apply_y(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const Amplitude pos_i(0.0, 1.0), neg_i(0.0, -1.0);
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        if (i & bit)
            continue;
        Amplitude a0 = amp_[i];
        Amplitude a1 = amp_[i | bit];
        amp_[i] = neg_i * a1;
        amp_[i | bit] = pos_i * a0;
    }
}

void
Statevector::apply_z(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    for (std::size_t i = 0; i < amp_.size(); ++i)
        if (i & bit)
            amp_[i] = -amp_[i];
}

void
Statevector::apply_rx(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const double c = std::cos(theta / 2.0);
    const Amplitude ms(0.0, -std::sin(theta / 2.0));
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        if (i & bit)
            continue;
        Amplitude a0 = amp_[i];
        Amplitude a1 = amp_[i | bit];
        amp_[i] = c * a0 + ms * a1;
        amp_[i | bit] = ms * a0 + c * a1;
    }
}

void
Statevector::apply_rz(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const Amplitude e0 = std::polar(1.0, -theta / 2.0);
    const Amplitude e1 = std::polar(1.0, theta / 2.0);
    for (std::size_t i = 0; i < amp_.size(); ++i)
        amp_[i] *= (i & bit) ? e1 : e0;
}

void
Statevector::apply_cx(std::int32_t control, std::int32_t target)
{
    const std::size_t cbit = std::size_t(1) << control;
    const std::size_t tbit = std::size_t(1) << target;
    for (std::size_t i = 0; i < amp_.size(); ++i)
        if ((i & cbit) && !(i & tbit))
            std::swap(amp_[i], amp_[i | tbit]);
}

void
Statevector::apply_two_qubit(const std::array<Amplitude, 16>& u,
                             std::int32_t a, std::int32_t b)
{
    fatal_unless(a != b, "two-qubit gate needs distinct qubits");
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        if (i & (abit | bbit))
            continue; // visit each 4-amplitude block once (i = |00>)
        std::size_t idx[4] = {i, i | abit, i | bbit, i | abit | bbit};
        Amplitude in[4];
        for (int k = 0; k < 4; ++k)
            in[k] = amp_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Amplitude acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += u[static_cast<std::size_t>(4 * r + c)] * in[c];
            amp_[idx[r]] = acc;
        }
    }
}

void
Statevector::apply_swap(std::int32_t a, std::int32_t b)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    for (std::size_t i = 0; i < amp_.size(); ++i)
        if ((i & abit) && !(i & bbit))
            std::swap(amp_[i], amp_[(i & ~abit) | bbit]);
}

void
Statevector::apply_rzz(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const Amplitude same = std::polar(1.0, -theta / 2.0);
    const Amplitude diff = std::polar(1.0, theta / 2.0);
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        bool za = (i & abit) != 0, zb = (i & bbit) != 0;
        amp_[i] *= (za == zb) ? same : diff;
    }
}

void
Statevector::apply_cphase(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const Amplitude phase = std::polar(1.0, theta);
    for (std::size_t i = 0; i < amp_.size(); ++i)
        if ((i & abit) && (i & bbit))
            amp_[i] *= phase;
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amp_.size());
    for (std::size_t i = 0; i < amp_.size(); ++i)
        p[i] = std::norm(amp_[i]);
    return p;
}

std::uint64_t
Statevector::sample(Xoshiro256& rng) const
{
    double r = rng.next_double();
    double acc = 0.0;
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        acc += std::norm(amp_[i]);
        if (r < acc)
            return i;
    }
    return amp_.size() - 1;
}

double
Statevector::norm_sq() const
{
    double s = 0.0;
    for (const auto& a : amp_)
        s += std::norm(a);
    return s;
}

} // namespace permuq::sim
