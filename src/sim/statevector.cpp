#include "statevector.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "sim/kernel_util.h"
#include "sim/kernels.h"
#include "sim/simd.h"

namespace permuq::sim {

namespace {

constexpr std::size_t kGrain = kKernelGrain;

} // namespace

std::size_t
Statevector::memory_bytes(std::int32_t num_qubits)
{
    return (std::size_t(1) << num_qubits) * sizeof(Amplitude);
}

Statevector::Statevector(std::int32_t num_qubits)
    : num_qubits_(num_qubits)
{
    fatal_unless(num_qubits >= 1 && num_qubits <= kMaxSimQubits,
                 "statevector supports 1.." +
                     std::to_string(kMaxSimQubits) + " qubits (got " +
                     std::to_string(num_qubits) + ")");
    try {
        amp_.assign(std::size_t(1) << num_qubits, Amplitude(0.0, 0.0));
    } catch (const std::bad_alloc&) {
        throw FatalError(
            "cannot allocate the 2^" + std::to_string(num_qubits) +
            " amplitudes (" + std::to_string(memory_bytes(num_qubits)) +
            " bytes) of a " + std::to_string(num_qubits) +
            "-qubit statevector; reduce the qubit count or free memory");
    }
    amp_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset_to_plus()
{
    // Match the value an H-per-qubit chain produces: n rounded
    // multiplies by 1/sqrt(2), not pow(2, -n/2).
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    double v = 1.0;
    for (std::int32_t q = 0; q < num_qubits_; ++q)
        v *= inv_sqrt2;
    const Amplitude fill(v, 0.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                amp[i] = fill;
        });
}

void
Statevector::apply_h(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.h(a, b, e, low, bit, inv_sqrt2);
        });
}

void
Statevector::apply_x(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                std::swap(amp[i0], amp[i0 | bit]);
            }
        });
}

void
Statevector::apply_y(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const Amplitude pos_i(0.0, 1.0), neg_i(0.0, -1.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                const std::size_t i1 = i0 | bit;
                const Amplitude a0 = amp[i0];
                const Amplitude a1 = amp[i1];
                amp[i0] = neg_i * a1;
                amp[i1] = pos_i * a0;
            }
        });
}

void
Statevector::apply_z(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h)
                amp[insert_zero(h, low) | bit] *= -1.0;
        });
}

void
Statevector::apply_rx(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.rx(a, b, e, low, bit, c, s);
        });
}

void
Statevector::apply_rx_all(double theta)
{
    // The full RX(theta) mixer layer in two cache-friendly passes
    // instead of n full-state sweeps (see the header for the traversal
    // argument). Values are bit-identical to apply_rx on qubits
    // 0..n-1 in ascending order: within a tile the low qubits see the
    // same butterflies in the same order, and the fused rx2 kernel
    // performs the exact per-element sequence of its two passes.
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());

    // Pass 1: qubits below the tile width, one tile at a time. A
    // 2^kTileQubits-amplitude tile is closed under these butterflies,
    // so each tile takes every low-qubit pass while still cache-hot.
    const std::int32_t tq =
        std::min<std::int32_t>(kMixerTileQubits, num_qubits_);
    const std::size_t tile = std::size_t(1) << tq;
    const std::size_t ntiles = amp_.size() >> tq;
    common::parallel_for(
        0, ntiles, 1, [=, &t](std::size_t tb, std::size_t te) {
            for (std::size_t ti = tb; ti < te; ++ti) {
                const std::size_t h0 = (ti * tile) >> 1;
                for (std::int32_t q = 0; q < tq; ++q) {
                    const std::size_t bit = std::size_t(1) << q;
                    t.rx(a, h0, h0 + (tile >> 1), bit - 1, bit, c, s);
                }
            }
        });

    // Pass 2: the remaining high qubits, fused in pairs so each full
    // traversal of the state applies two butterfly layers.
    std::int32_t q = tq;
    for (; q + 1 < num_qubits_; q += 2) {
        const std::size_t pbit = std::size_t(1) << q;
        const std::size_t qbit = std::size_t(1) << (q + 1);
        common::parallel_for(
            0, amp_.size() >> 2, kGrain,
            [=, &t](std::size_t b, std::size_t e) {
                t.rx2(a, b, e, pbit - 1, qbit - 1, pbit, qbit, c, s);
            });
    }
    if (q < num_qubits_) {
        const std::size_t bit = std::size_t(1) << q;
        common::parallel_for(
            0, amp_.size() >> 1, kGrain,
            [=, &t](std::size_t b, std::size_t e) {
                t.rx(a, b, e, bit - 1, bit, c, s);
            });
    }
}

void
Statevector::apply_rz(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const Amplitude e0 = std::polar(1.0, -theta / 2.0);
    const Amplitude e1 = std::polar(1.0, theta / 2.0);
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size(), kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.rz(a, b, e, bit, e0.real(), e0.imag(), e1.real(),
                 e1.imag());
        });
}

void
Statevector::apply_cx(std::int32_t control, std::int32_t target)
{
    const std::size_t cbit = std::size_t(1) << control;
    const std::size_t tbit = std::size_t(1) << target;
    const std::size_t lo = std::min(cbit, tbit) - 1;
    const std::size_t hi = std::max(cbit, tbit) - 1;
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size() >> 2, kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.cx(a, b, e, lo, hi, cbit, tbit);
        });
}

void
Statevector::apply_two_qubit(const std::array<Amplitude, 16>& u,
                             std::int32_t a, std::int32_t b)
{
    fatal_unless(a != b, "two-qubit gate needs distinct qubits");
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    Amplitude* amp = amp_.data();
    const Amplitude* mat = u.data();
    common::parallel_for(
        0, amp_.size() >> 2, kGrain / 4,
        [=](std::size_t begin, std::size_t end) {
            for (std::size_t h = begin; h < end; ++h) {
                const std::size_t i00 =
                    insert_two_zeros(h, lo, hi);
                const std::size_t idx[4] = {i00, i00 | abit, i00 | bbit,
                                            i00 | abit | bbit};
                Amplitude in[4];
                for (int k = 0; k < 4; ++k)
                    in[k] = amp[idx[k]];
                for (int r = 0; r < 4; ++r) {
                    Amplitude acc(0.0, 0.0);
                    for (int c = 0; c < 4; ++c)
                        acc += mat[4 * r + c] * in[c];
                    amp[idx[r]] = acc;
                }
            }
        });
}

void
Statevector::apply_swap(std::int32_t a, std::int32_t b)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    const kernels::Table& t = kernels::active_counted();
    double* arr = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size() >> 2, kGrain,
        [=, &t](std::size_t b2, std::size_t e2) {
            t.swap(arr, b2, e2, lo, hi, abit, bbit);
        });
}

void
Statevector::apply_rzz(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const Amplitude same = std::polar(1.0, -theta / 2.0);
    const Amplitude diff = std::polar(1.0, theta / 2.0);
    const kernels::Table& t = kernels::active_counted();
    double* arr = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size(), kGrain, [=, &t](std::size_t b2, std::size_t e2) {
            t.rzz(arr, b2, e2, abit, bbit, same.real(), same.imag(),
                  diff.real(), diff.imag());
        });
}

void
Statevector::apply_cphase(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    const Amplitude phase = std::polar(1.0, theta);
    const kernels::Table& t = kernels::active_counted();
    double* arr = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size() >> 2, kGrain,
        [=, &t](std::size_t b2, std::size_t e2) {
            t.cphase(arr, b2, e2, lo, hi, abit | bbit, phase.real(),
                     phase.imag());
        });
}

void
Statevector::apply_phase_table(const std::vector<double>& angles,
                               double scale)
{
    fatal_unless(angles.size() == amp_.size(),
                 "phase table size must match the statevector");
    const double* angle = angles.data();
    const kernels::Table& t = kernels::active_counted();
    double* a = reinterpret_cast<double*>(amp_.data());
    common::parallel_for(
        0, amp_.size(), kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.phase_angles(a, b, e, angle, scale, 0.0);
        });
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amp_.size());
    double* out = p.data();
    const kernels::Table& t = kernels::active_counted();
    const double* a = reinterpret_cast<const double*>(amp_.data());
    common::parallel_for(
        0, amp_.size(), kGrain, [=, &t](std::size_t b, std::size_t e) {
            t.probs(a, out, b, e);
        });
    return p;
}

std::uint64_t
Statevector::sample(Xoshiro256& rng) const
{
    double r = rng.next_double();
    double acc = 0.0;
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        acc += std::norm(amp_[i]);
        if (r < acc)
            return i;
    }
    return amp_.size() - 1;
}

double
Statevector::norm_sq() const
{
    const kernels::Table& t = kernels::active_counted();
    const double* a = reinterpret_cast<const double*>(amp_.data());
    return common::parallel_reduce_sum<double>(
        0, amp_.size(), kGrain * 4, [=, &t](std::size_t b, std::size_t e) {
            return t.norm_sum(a, b, e);
        });
}

CdfSampler::CdfSampler(const Statevector& sv)
{
    const auto& amp = sv.amplitudes();
    cdf_.resize(amp.size());
    // Serial left-to-right accumulation, matching the order of
    // Statevector::sample's linear scan exactly so both samplers
    // agree bit-for-bit on the same draw.
    double acc = 0.0;
    for (std::size_t i = 0; i < amp.size(); ++i) {
        acc += std::norm(amp[i]);
        cdf_[i] = acc;
    }
}

std::uint64_t
CdfSampler::sample(Xoshiro256& rng) const
{
    const double r = rng.next_double();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace permuq::sim
