#include "statevector.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "sim/kernel_util.h"

namespace permuq::sim {

namespace {

constexpr std::size_t kGrain = kKernelGrain;

} // namespace

Statevector::Statevector(std::int32_t num_qubits)
    : num_qubits_(num_qubits)
{
    fatal_unless(num_qubits >= 1 && num_qubits <= kMaxSimQubits,
                 "statevector supports 1.." +
                     std::to_string(kMaxSimQubits) + " qubits (got " +
                     std::to_string(num_qubits) + ")");
    try {
        amp_.assign(std::size_t(1) << num_qubits, Amplitude(0.0, 0.0));
    } catch (const std::bad_alloc&) {
        throw FatalError(
            "cannot allocate the 2^" + std::to_string(num_qubits) +
            " amplitudes (" +
            std::to_string((std::size_t(1) << num_qubits) *
                           sizeof(Amplitude) / (1024 * 1024)) +
            " MiB) of a " + std::to_string(num_qubits) +
            "-qubit statevector; reduce the qubit count or free memory");
    }
    amp_[0] = Amplitude(1.0, 0.0);
}

void
Statevector::reset_to_plus()
{
    // Match the value an H-per-qubit chain produces: n rounded
    // multiplies by 1/sqrt(2), not pow(2, -n/2).
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    double v = 1.0;
    for (std::int32_t q = 0; q < num_qubits_; ++q)
        v *= inv_sqrt2;
    const Amplitude fill(v, 0.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                amp[i] = fill;
        });
}

void
Statevector::apply_h(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                const std::size_t i1 = i0 | bit;
                const Amplitude a0 = amp[i0];
                const Amplitude a1 = amp[i1];
                amp[i0] = inv_sqrt2 * (a0 + a1);
                amp[i1] = inv_sqrt2 * (a0 - a1);
            }
        });
}

void
Statevector::apply_x(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                std::swap(amp[i0], amp[i0 | bit]);
            }
        });
}

void
Statevector::apply_y(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const Amplitude pos_i(0.0, 1.0), neg_i(0.0, -1.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                const std::size_t i1 = i0 | bit;
                const Amplitude a0 = amp[i0];
                const Amplitude a1 = amp[i1];
                amp[i0] = neg_i * a1;
                amp[i1] = pos_i * a0;
            }
        });
}

void
Statevector::apply_z(std::int32_t q)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h)
                amp[insert_zero(h, low) | bit] *= -1.0;
        });
}

void
Statevector::apply_rx(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const std::size_t low = bit - 1;
    const double c = std::cos(theta / 2.0);
    const Amplitude ms(0.0, -std::sin(theta / 2.0));
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 1, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i0 = insert_zero(h, low);
                const std::size_t i1 = i0 | bit;
                const Amplitude a0 = amp[i0];
                const Amplitude a1 = amp[i1];
                amp[i0] = c * a0 + ms * a1;
                amp[i1] = ms * a0 + c * a1;
            }
        });
}

void
Statevector::apply_rz(std::int32_t q, double theta)
{
    const std::size_t bit = std::size_t(1) << q;
    const Amplitude e0 = std::polar(1.0, -theta / 2.0);
    const Amplitude e1 = std::polar(1.0, theta / 2.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                amp[i] *= (i & bit) ? e1 : e0;
        });
}

void
Statevector::apply_cx(std::int32_t control, std::int32_t target)
{
    const std::size_t cbit = std::size_t(1) << control;
    const std::size_t tbit = std::size_t(1) << target;
    const std::size_t lo = std::min(cbit, tbit) - 1;
    const std::size_t hi = std::max(cbit, tbit) - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 2, kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t h = b; h < e; ++h) {
                const std::size_t i00 =
                    insert_two_zeros(h, lo, hi);
                std::swap(amp[i00 | cbit], amp[i00 | cbit | tbit]);
            }
        });
}

void
Statevector::apply_two_qubit(const std::array<Amplitude, 16>& u,
                             std::int32_t a, std::int32_t b)
{
    fatal_unless(a != b, "two-qubit gate needs distinct qubits");
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    Amplitude* amp = amp_.data();
    const Amplitude* mat = u.data();
    common::parallel_for(
        0, amp_.size() >> 2, kGrain / 4,
        [=](std::size_t begin, std::size_t end) {
            for (std::size_t h = begin; h < end; ++h) {
                const std::size_t i00 =
                    insert_two_zeros(h, lo, hi);
                const std::size_t idx[4] = {i00, i00 | abit, i00 | bbit,
                                            i00 | abit | bbit};
                Amplitude in[4];
                for (int k = 0; k < 4; ++k)
                    in[k] = amp[idx[k]];
                for (int r = 0; r < 4; ++r) {
                    Amplitude acc(0.0, 0.0);
                    for (int c = 0; c < 4; ++c)
                        acc += mat[4 * r + c] * in[c];
                    amp[idx[r]] = acc;
                }
            }
        });
}

void
Statevector::apply_swap(std::int32_t a, std::int32_t b)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 2, kGrain, [=](std::size_t b2, std::size_t e2) {
            for (std::size_t h = b2; h < e2; ++h) {
                const std::size_t i00 =
                    insert_two_zeros(h, lo, hi);
                std::swap(amp[i00 | abit], amp[i00 | bbit]);
            }
        });
}

void
Statevector::apply_rzz(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const Amplitude same = std::polar(1.0, -theta / 2.0);
    const Amplitude diff = std::polar(1.0, theta / 2.0);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b2, std::size_t e2) {
            for (std::size_t i = b2; i < e2; ++i) {
                const bool za = (i & abit) != 0, zb = (i & bbit) != 0;
                amp[i] *= (za == zb) ? same : diff;
            }
        });
}

void
Statevector::apply_cphase(std::int32_t a, std::int32_t b, double theta)
{
    const std::size_t abit = std::size_t(1) << a;
    const std::size_t bbit = std::size_t(1) << b;
    const std::size_t lo = std::min(abit, bbit) - 1;
    const std::size_t hi = std::max(abit, bbit) - 1;
    const Amplitude phase = std::polar(1.0, theta);
    Amplitude* amp = amp_.data();
    common::parallel_for(
        0, amp_.size() >> 2, kGrain, [=](std::size_t b2, std::size_t e2) {
            for (std::size_t h = b2; h < e2; ++h) {
                const std::size_t i00 =
                    insert_two_zeros(h, lo, hi);
                amp[i00 | abit | bbit] *= phase;
            }
        });
}

void
Statevector::apply_phase_table(const std::vector<double>& angles,
                               double scale)
{
    fatal_unless(angles.size() == amp_.size(),
                 "phase table size must match the statevector");
    Amplitude* amp = amp_.data();
    const double* angle = angles.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                amp[i] *= std::polar(1.0, scale * angle[i]);
        });
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amp_.size());
    const Amplitude* amp = amp_.data();
    double* out = p.data();
    common::parallel_for(
        0, amp_.size(), kGrain, [=](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                out[i] = std::norm(amp[i]);
        });
    return p;
}

std::uint64_t
Statevector::sample(Xoshiro256& rng) const
{
    double r = rng.next_double();
    double acc = 0.0;
    for (std::size_t i = 0; i < amp_.size(); ++i) {
        acc += std::norm(amp_[i]);
        if (r < acc)
            return i;
    }
    return amp_.size() - 1;
}

double
Statevector::norm_sq() const
{
    const Amplitude* amp = amp_.data();
    return common::parallel_reduce_sum<double>(
        0, amp_.size(), kGrain * 4, [=](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t i = b; i < e; ++i)
                s += std::norm(amp[i]);
            return s;
        });
}

CdfSampler::CdfSampler(const Statevector& sv)
{
    const auto& amp = sv.amplitudes();
    cdf_.resize(amp.size());
    // Serial left-to-right accumulation, matching the order of
    // Statevector::sample's linear scan exactly so both samplers
    // agree bit-for-bit on the same draw.
    double acc = 0.0;
    for (std::size_t i = 0; i < amp.size(); ++i) {
        acc += std::norm(amp[i]);
        cdf_[i] = acc;
    }
}

std::uint64_t
CdfSampler::sample(Xoshiro256& rng) const
{
    const double r = rng.next_double();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace permuq::sim
