#include "qaoa.h"

#include <algorithm>

#include "common/error.h"
#include "sim/qaoa_objective.h"
#include "sim/statevector.h"

namespace permuq::sim {

// The simulation paths (ideal fused-layer evolution, noisy
// trajectories, expectation reductions) live in QaoaObjective
// (sim/qaoa_objective.h), which amortizes the per-problem state across
// evaluations. These free functions build a one-shot context and
// delegate, so single-call users and repeated-evaluation users run the
// identical code path.

std::int32_t
cut_value(const graph::Graph& problem, std::uint64_t z)
{
    std::int32_t cut = 0;
    for (const auto& e : problem.edges())
        if (((z >> e.a) & 1) != ((z >> e.b) & 1))
            ++cut;
    return cut;
}

std::int32_t
max_cut(const graph::Graph& problem)
{
    fatal_unless(problem.num_vertices() <= kMaxSimQubits,
                 "exhaustive max cut supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    std::int32_t best = 0;
    std::uint64_t states = std::uint64_t(1) << problem.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_value(problem, z));
    return best;
}

std::vector<double>
ideal_distribution(const graph::Graph& problem, const QaoaAngles& angles)
{
    return QaoaObjective(problem).ideal_distribution(angles);
}

double
ideal_expectation(const graph::Graph& problem, const QaoaAngles& angles)
{
    return QaoaObjective(problem).ideal_expectation(angles);
}

double
noisy_expectation(const graph::Graph& problem,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    return QaoaObjective(problem).noisy_expectation(compiled, noise,
                                                    angles, options);
}

std::vector<std::int64_t>
noisy_counts(const graph::Graph& problem, const circuit::Circuit& compiled,
             const arch::NoiseModel& noise, const QaoaAngles& angles,
             const NoisySimOptions& options)
{
    return QaoaObjective(problem).noisy_counts(compiled, noise, angles,
                                               options);
}

std::vector<double>
noisy_distribution(const graph::Graph& problem,
                   const circuit::Circuit& compiled,
                   const arch::NoiseModel& noise, const QaoaAngles& angles,
                   const NoisySimOptions& options)
{
    return QaoaObjective(problem).noisy_distribution(compiled, noise,
                                                     angles, options);
}

double
tvd(const std::vector<double>& ideal,
    const std::vector<std::int64_t>& counts)
{
    fatal_unless(ideal.size() == counts.size(),
                 "distribution sizes differ");
    std::int64_t shots = 0;
    for (std::int64_t c : counts)
        shots += c;
    fatal_unless(shots > 0, "no shots");
    double sum = 0.0;
    for (std::size_t z = 0; z < ideal.size(); ++z) {
        double q = static_cast<double>(counts[z]) /
                   static_cast<double>(shots);
        sum += std::abs(ideal[z] - q);
    }
    return 0.5 * sum;
}

double
tvd(const std::vector<double>& p, const std::vector<double>& q)
{
    fatal_unless(p.size() == q.size(), "distribution sizes differ");
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        sum += std::abs(p[z] - q[z]);
    return 0.5 * sum;
}

double
cut_weight(const problem::WeightedProblem& wp, std::uint64_t z)
{
    double total = 0.0;
    const auto& edges = wp.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (((z >> edges[e].a) & 1) != ((z >> edges[e].b) & 1))
            total += wp.weights[e];
    return total;
}

double
max_cut_weight(const problem::WeightedProblem& wp)
{
    fatal_unless(wp.graph.num_vertices() <= kMaxSimQubits,
                 "exhaustive max cut supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    double best = 0.0;
    std::uint64_t states = std::uint64_t(1) << wp.graph.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_weight(wp, z));
    return best;
}

double
ideal_expectation(const problem::WeightedProblem& wp,
                  const QaoaAngles& angles)
{
    return QaoaObjective(wp).ideal_expectation(angles);
}

double
noisy_expectation(const problem::WeightedProblem& wp,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    return QaoaObjective(wp).noisy_expectation(compiled, noise, angles,
                                               options);
}

} // namespace permuq::sim
