#include "qaoa.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "circuit/metrics.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "sim/diagonal.h"
#include "sim/statevector.h"

namespace permuq::sim {

namespace {

/** Per-op CX cost with CPHASE+SWAP merging applied. */
std::vector<std::int8_t>
per_op_cx(const circuit::Circuit& compiled)
{
    auto merged = circuit::merged_with_previous(compiled);
    const auto& ops = compiled.ops();
    std::vector<std::int8_t> cost(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (merged[i]) {
            // The merged pair costs 3 CX total; the predecessor was
            // billed standalone, so this op pays the difference.
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Swap ? 1 : 0);
        } else {
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Compute ? 2 : 3);
        }
    }
    return cost;
}

void
apply_pauli(Statevector& sv, std::int32_t q, std::int32_t which)
{
    switch (which) {
      case 1: sv.apply_x(q); break;
      case 2: sv.apply_y(q); break;
      case 3: sv.apply_z(q); break;
      default: break;
    }
}

using WeightTable =
    std::unordered_map<VertexPair, double, VertexPairHash>;

/**
 * Run each noisy trajectory and hand its final state to @p sink as
 * sink(trajectory_index, sv, rng). Trajectory t draws from the
 * t-times-jumped substream of options.seed, so every trajectory's
 * randomness — and therefore every result assembled from
 * per-trajectory partials in index order — is independent of the
 * thread count. When @p parallel is true, trajectories run
 * concurrently on the global pool; @p sink must only touch state
 * owned by its trajectory index (or synchronize internally).
 * @p weights optionally scales each edge's phase angle.
 */
template <typename Sink>
void
for_each_trajectory(const graph::Graph& problem,
                    const circuit::Circuit& compiled,
                    const arch::NoiseModel& noise,
                    const QaoaAngles& angles,
                    const NoisySimOptions& options, Sink&& sink,
                    const WeightTable* weights = nullptr,
                    bool parallel = true)
{
    std::int32_t n = problem.num_vertices();
    fatal_unless(n <= kMaxSimQubits,
                 "noisy simulation supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    fatal_unless(!angles.gamma.empty() &&
                     angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    std::int32_t layers = static_cast<std::int32_t>(angles.gamma.size());

    auto cx_cost = per_op_cx(compiled);

    auto run_one = [&](std::int64_t traj) {
        telemetry::ScopedSpan span("sim.trajectory");
        span.arg("traj", traj);
        Xoshiro256 rng(options.seed);
        for (std::int64_t j = 0; j < traj; ++j)
            rng.jump();

        Statevector sv(n);
        sv.reset_to_plus();

        DiagonalBatch batch;
        auto flush = [&] {
            if (!batch.empty()) {
                batch.apply(sv);
                batch.clear();
            }
        };

        for (std::int32_t layer = 0; layer < layers; ++layer) {
            double gamma = angles.gamma[static_cast<std::size_t>(layer)];
            // Odd layers replay the compiled circuit backwards: from
            // the final mapping, the reversed op sequence meets every
            // pair again with the same physical structure.
            circuit::for_each_replayed(
                compiled, layer % 2 == 1,
                [&](const circuit::ScheduledOp& op, std::size_t i) {
                    // Stochastic Pauli noise per physical CX of this
                    // op. Paulis do not commute with pending diagonal
                    // phases, so an error flushes the batch first.
                    double e = noise.cx_error(op.p, op.q);
                    for (std::int8_t c = 0; c < cx_cost[i]; ++c) {
                        if (rng.next_double() >= e)
                            continue;
                        std::int32_t which = static_cast<std::int32_t>(
                            rng.next_below(15)) + 1;
                        flush();
                        if (op.a != kInvalidQubit)
                            apply_pauli(sv, op.a, which & 3);
                        if (op.b != kInvalidQubit)
                            apply_pauli(sv, op.b, which >> 2);
                    }
                    if (op.kind == circuit::OpKind::Compute) {
                        double w = 1.0;
                        if (weights != nullptr)
                            w = weights->at(VertexPair(op.a, op.b));
                        if (options.fuse_diagonals)
                            batch.add_rzz(op.a, op.b, -gamma * w);
                        else
                            sv.apply_rzz(op.a, op.b, -gamma * w);
                    }
                    // SWAPs act as relabelings: the stored logical
                    // operands of later ops already account for them.
                });
            flush();
            double beta = angles.beta[static_cast<std::size_t>(layer)];
            for (std::int32_t q = 0; q < n; ++q)
                sv.apply_rx(q, 2.0 * beta);
        }

        sink(static_cast<std::int32_t>(traj), sv, rng);
    };

    if (parallel && options.trajectories > 1 && common::num_threads() > 1)
        common::parallel_tasks(options.trajectories, run_one);
    else
        for (std::int64_t t = 0; t < options.trajectories; ++t)
            run_one(t);
}

/**
 * Sample the readout-flipped shots of one finished trajectory,
 * calling shot_sink(z) per shot. Builds the CDF once; each shot is a
 * binary search instead of an O(2^n) scan.
 */
template <typename ShotSink>
void
sample_trajectory(const Statevector& sv, Xoshiro256& rng,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise,
                  const NoisySimOptions& options, std::int32_t n,
                  std::int32_t shots_per_traj, ShotSink&& shot_sink)
{
    CdfSampler sampler(sv);
    for (std::int32_t s = 0; s < shots_per_traj; ++s) {
        std::uint64_t z = sampler.sample(rng);
        if (options.readout_error && !noise.is_ideal()) {
            // Per-qubit readout error at the final physical location
            // of each logical qubit.
            for (std::int32_t l = 0; l < n; ++l) {
                PhysicalQubit p = compiled.final_mapping().physical_of(l);
                if (rng.next_double() < noise.readout_error(p))
                    z ^= std::uint64_t(1) << l;
            }
        }
        shot_sink(z);
    }
}

std::int32_t
shots_per_trajectory(const NoisySimOptions& options)
{
    return std::max(1, options.shots / std::max(1, options.trajectories));
}

} // namespace

std::int32_t
cut_value(const graph::Graph& problem, std::uint64_t z)
{
    std::int32_t cut = 0;
    for (const auto& e : problem.edges())
        if (((z >> e.a) & 1) != ((z >> e.b) & 1))
            ++cut;
    return cut;
}

std::int32_t
max_cut(const graph::Graph& problem)
{
    fatal_unless(problem.num_vertices() <= kMaxSimQubits,
                 "exhaustive max cut supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    std::int32_t best = 0;
    std::uint64_t states = std::uint64_t(1) << problem.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_value(problem, z));
    return best;
}

std::vector<double>
ideal_distribution(const graph::Graph& problem, const QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    fatal_unless(n <= kMaxSimQubits,
                 "ideal simulation supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    Statevector sv(n);
    sv.reset_to_plus();
    // One fused sweep per cost layer. The batch holds the unit-gamma
    // edge phases; each layer rescales it by its own -gamma (the cost
    // unitary is RZZ(-gamma) per edge, matching the per-gate path).
    DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost.apply(sv, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    return sv.probabilities();
}

double
ideal_expectation(const graph::Graph& problem, const QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    fatal_unless(n <= kMaxSimQubits,
                 "ideal simulation supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    Statevector sv(n);
    sv.reset_to_plus();
    DiagonalBatch cost;
    for (const auto& e : problem.edges())
        cost.add_rzz(e.a, e.b, 1.0);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost.apply(sv, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    // The unit-theta cost batch's angle spectrum is cut(z) - |E|/2
    // (each edge contributes -1/2 * s_a s_b), so the objective falls
    // out of the baked table — no per-state edge scan.
    auto table = cost.bake(n);
    const double offset =
        static_cast<double>(problem.edges().size()) / 2.0;
    const auto& amp = sv.amplitudes();
    const double* angle = table.data();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 13,
        [&](std::size_t b, std::size_t e) {
            double sum = 0.0;
            for (std::size_t z = b; z < e; ++z)
                sum += std::norm(amp[z]) * (angle[z] + offset);
            return sum;
        });
}

double
noisy_expectation(const graph::Graph& problem,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    std::int32_t n = problem.num_vertices();
    std::int32_t shots_per_traj = shots_per_trajectory(options);
    std::vector<double> partial(
        static_cast<std::size_t>(std::max(1, options.trajectories)), 0.0);
    for_each_trajectory(
        problem, compiled, noise, angles, options,
        [&](std::int32_t traj, const Statevector& sv, Xoshiro256& rng) {
            double total = 0.0;
            sample_trajectory(sv, rng, compiled, noise, options, n,
                              shots_per_traj, [&](std::uint64_t z) {
                                  total += cut_value(problem, z);
                              });
            partial[static_cast<std::size_t>(traj)] = total;
        });
    // Fixed-order combination: bit-identical at any thread count.
    double total = 0.0;
    for (double p : partial)
        total += p;
    std::int64_t shots = static_cast<std::int64_t>(shots_per_traj) *
                         std::max(1, options.trajectories);
    return total / static_cast<double>(std::max<std::int64_t>(1, shots));
}

std::vector<std::int64_t>
noisy_counts(const graph::Graph& problem, const circuit::Circuit& compiled,
             const arch::NoiseModel& noise, const QaoaAngles& angles,
             const NoisySimOptions& options)
{
    std::int32_t n = problem.num_vertices();
    std::int32_t shots_per_traj = shots_per_trajectory(options);
    std::vector<std::int64_t> counts(
        std::size_t(1) << problem.num_vertices(), 0);
    std::mutex merge_mutex;
    for_each_trajectory(
        problem, compiled, noise, angles, options,
        [&](std::int32_t, const Statevector& sv, Xoshiro256& rng) {
            // Histogram locally, then merge; integer addition is exact
            // and commutative, so merge order cannot affect results.
            std::vector<std::int64_t> local(counts.size(), 0);
            sample_trajectory(sv, rng, compiled, noise, options, n,
                              shots_per_traj,
                              [&](std::uint64_t z) { ++local[z]; });
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (std::size_t z = 0; z < counts.size(); ++z)
                counts[z] += local[z];
        });
    return counts;
}

std::vector<double>
noisy_distribution(const graph::Graph& problem,
                   const circuit::Circuit& compiled,
                   const arch::NoiseModel& noise, const QaoaAngles& angles,
                   const NoisySimOptions& options)
{
    std::vector<double> mix(std::size_t(1) << problem.num_vertices(),
                            0.0);
    std::int32_t trajectories = 0;
    // Serial over trajectories: the merge adds 2^n doubles per
    // trajectory, and a fixed order is what keeps the sum
    // bit-reproducible. Kernel-level parallelism still applies inside
    // each trajectory.
    for_each_trajectory(
        problem, compiled, noise, angles, options,
        [&](std::int32_t, const Statevector& sv, Xoshiro256&) {
            auto p = sv.probabilities();
            for (std::size_t z = 0; z < mix.size(); ++z)
                mix[z] += p[z];
            ++trajectories;
        },
        nullptr, /*parallel=*/false);
    for (auto& x : mix)
        x /= std::max(1, trajectories);
    return mix;
}

double
tvd(const std::vector<double>& ideal,
    const std::vector<std::int64_t>& counts)
{
    fatal_unless(ideal.size() == counts.size(),
                 "distribution sizes differ");
    std::int64_t shots = 0;
    for (std::int64_t c : counts)
        shots += c;
    fatal_unless(shots > 0, "no shots");
    double sum = 0.0;
    for (std::size_t z = 0; z < ideal.size(); ++z) {
        double q = static_cast<double>(counts[z]) /
                   static_cast<double>(shots);
        sum += std::abs(ideal[z] - q);
    }
    return 0.5 * sum;
}

double
tvd(const std::vector<double>& p, const std::vector<double>& q)
{
    fatal_unless(p.size() == q.size(), "distribution sizes differ");
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        sum += std::abs(p[z] - q[z]);
    return 0.5 * sum;
}

double
cut_weight(const problem::WeightedProblem& wp, std::uint64_t z)
{
    double total = 0.0;
    const auto& edges = wp.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (((z >> edges[e].a) & 1) != ((z >> edges[e].b) & 1))
            total += wp.weights[e];
    return total;
}

double
max_cut_weight(const problem::WeightedProblem& wp)
{
    fatal_unless(wp.graph.num_vertices() <= kMaxSimQubits,
                 "exhaustive max cut supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    double best = 0.0;
    std::uint64_t states = std::uint64_t(1) << wp.graph.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_weight(wp, z));
    return best;
}

double
ideal_expectation(const problem::WeightedProblem& wp,
                  const QaoaAngles& angles)
{
    std::int32_t n = wp.graph.num_vertices();
    fatal_unless(n <= kMaxSimQubits,
                 "ideal simulation supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    Statevector sv(n);
    sv.reset_to_plus();
    const auto& edges = wp.graph.edges();
    // Weighted fused cost layer: the batch carries w_e; each layer
    // rescales by -gamma (cost unitary is RZZ(-gamma w_e) per edge).
    DiagonalBatch cost;
    for (std::size_t e = 0; e < edges.size(); ++e)
        cost.add_rzz(edges[e].a, edges[e].b, wp.weights[e]);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost.apply(sv, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    // angle(z) = cut_weight(z) - W/2 for the w_e-coefficient batch,
    // so the weighted objective also falls out of the baked table.
    auto table = cost.bake(n);
    double total_weight = 0.0;
    for (double w : wp.weights)
        total_weight += w;
    const double offset = total_weight / 2.0;
    const auto& amp = sv.amplitudes();
    const double* angle = table.data();
    return common::parallel_reduce_sum<double>(
        0, amp.size(), std::size_t(1) << 13,
        [&](std::size_t b, std::size_t e) {
            double sum = 0.0;
            for (std::size_t z = b; z < e; ++z)
                sum += std::norm(amp[z]) * (angle[z] + offset);
            return sum;
        });
}

double
noisy_expectation(const problem::WeightedProblem& wp,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    WeightTable table;
    const auto& edges = wp.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        table.emplace(edges[e], wp.weights[e]);

    std::int32_t n = wp.graph.num_vertices();
    std::int32_t shots_per_traj = shots_per_trajectory(options);
    std::vector<double> partial(
        static_cast<std::size_t>(std::max(1, options.trajectories)), 0.0);
    for_each_trajectory(
        wp.graph, compiled, noise, angles, options,
        [&](std::int32_t traj, const Statevector& sv, Xoshiro256& rng) {
            double total = 0.0;
            sample_trajectory(sv, rng, compiled, noise, options, n,
                              shots_per_traj, [&](std::uint64_t z) {
                                  total += cut_weight(wp, z);
                              });
            partial[static_cast<std::size_t>(traj)] = total;
        },
        &table);
    double total = 0.0;
    for (double p : partial)
        total += p;
    std::int64_t shots = static_cast<std::int64_t>(shots_per_traj) *
                         std::max(1, options.trajectories);
    return total / static_cast<double>(std::max<std::int64_t>(1, shots));
}

} // namespace permuq::sim
