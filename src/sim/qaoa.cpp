#include "qaoa.h"

#include <algorithm>
#include <cmath>

#include "circuit/metrics.h"
#include "common/error.h"
#include <unordered_map>

#include "sim/statevector.h"

namespace permuq::sim {

namespace {

/** Per-op CX cost with CPHASE+SWAP merging applied. */
std::vector<std::int8_t>
per_op_cx(const circuit::Circuit& compiled)
{
    auto merged = circuit::merged_with_previous(compiled);
    const auto& ops = compiled.ops();
    std::vector<std::int8_t> cost(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (merged[i]) {
            // The merged pair costs 3 CX total; the predecessor was
            // billed standalone, so this op pays the difference.
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Swap ? 1 : 0);
        } else {
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Compute ? 2 : 3);
        }
    }
    return cost;
}

void
apply_pauli(Statevector& sv, std::int32_t q, std::int32_t which)
{
    switch (which) {
      case 1: sv.apply_x(q); break;
      case 2: sv.apply_y(q); break;
      case 3: sv.apply_z(q); break;
      default: break;
    }
}

using WeightTable =
    std::unordered_map<VertexPair, double, VertexPairHash>;

/** Run each noisy trajectory and hand its final state to @p sink.
 *  @p weights optionally scales each edge's phase angle. */
template <typename Sink>
void
for_each_trajectory(const graph::Graph& problem,
                    const circuit::Circuit& compiled,
                    const arch::NoiseModel& noise,
                    const QaoaAngles& angles,
                    const NoisySimOptions& options, Sink&& sink,
                    const WeightTable* weights = nullptr)
{
    std::int32_t n = problem.num_vertices();
    fatal_unless(n <= 24, "noisy simulation supports up to 24 qubits");
    fatal_unless(!angles.gamma.empty() &&
                     angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    std::int32_t layers = static_cast<std::int32_t>(angles.gamma.size());

    auto cx_cost = per_op_cx(compiled);
    const auto& ops = compiled.ops();
    Xoshiro256 rng(options.seed);

    for (std::int32_t traj = 0; traj < options.trajectories; ++traj) {
        Statevector sv(n);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_h(q);

        for (std::int32_t layer = 0; layer < layers; ++layer) {
            double gamma = angles.gamma[static_cast<std::size_t>(layer)];
            // Odd layers replay the compiled circuit backwards: from
            // the final mapping, the reversed op sequence meets every
            // pair again with the same physical structure.
            bool reversed = layer % 2 == 1;
            for (std::size_t k = 0; k < ops.size(); ++k) {
                std::size_t i = reversed ? ops.size() - 1 - k : k;
                const auto& op = ops[i];
                // Stochastic Pauli noise per physical CX of this op.
                double e = noise.cx_error(op.p, op.q);
                for (std::int8_t c = 0; c < cx_cost[i]; ++c) {
                    if (rng.next_double() >= e)
                        continue;
                    std::int32_t which = static_cast<std::int32_t>(
                        rng.next_below(15)) + 1;
                    if (op.a != kInvalidQubit)
                        apply_pauli(sv, op.a, which & 3);
                    if (op.b != kInvalidQubit)
                        apply_pauli(sv, op.b, which >> 2);
                }
                if (op.kind == circuit::OpKind::Compute) {
                    double w = 1.0;
                    if (weights != nullptr)
                        w = weights->at(VertexPair(op.a, op.b));
                    sv.apply_rzz(op.a, op.b, -gamma * w);
                }
                // SWAPs act as relabelings: the stored logical
                // operands of later ops already account for them.
            }
            double beta = angles.beta[static_cast<std::size_t>(layer)];
            for (std::int32_t q = 0; q < n; ++q)
                sv.apply_rx(q, 2.0 * beta);
        }

        sink(sv, rng);
    }
}

/** Run trajectories and hand each readout-flipped shot to @p sink. */
template <typename Sink>
void
run_trajectories(const graph::Graph& problem,
                 const circuit::Circuit& compiled,
                 const arch::NoiseModel& noise, const QaoaAngles& angles,
                 const NoisySimOptions& options, Sink&& sink)
{
    std::int32_t n = problem.num_vertices();
    std::int32_t shots_per_traj =
        std::max(1, options.shots / std::max(1, options.trajectories));
    for_each_trajectory(
        problem, compiled, noise, angles, options,
        [&](const Statevector& sv, Xoshiro256& rng) {
            // Sample shots, applying per-qubit readout error at the
            // final physical location of each logical qubit.
            for (std::int32_t s = 0; s < shots_per_traj; ++s) {
                std::uint64_t z = sv.sample(rng);
                if (options.readout_error && !noise.is_ideal()) {
                    for (std::int32_t l = 0; l < n; ++l) {
                        PhysicalQubit p =
                            compiled.final_mapping().physical_of(l);
                        if (rng.next_double() < noise.readout_error(p))
                            z ^= std::uint64_t(1) << l;
                    }
                }
                sink(z);
            }
        });
}

} // namespace

std::int32_t
cut_value(const graph::Graph& problem, std::uint64_t z)
{
    std::int32_t cut = 0;
    for (const auto& e : problem.edges())
        if (((z >> e.a) & 1) != ((z >> e.b) & 1))
            ++cut;
    return cut;
}

std::int32_t
max_cut(const graph::Graph& problem)
{
    fatal_unless(problem.num_vertices() <= 24,
                 "exhaustive max cut supports up to 24 qubits");
    std::int32_t best = 0;
    std::uint64_t states = std::uint64_t(1) << problem.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_value(problem, z));
    return best;
}

std::vector<double>
ideal_distribution(const graph::Graph& problem, const QaoaAngles& angles)
{
    std::int32_t n = problem.num_vertices();
    fatal_unless(n <= 24, "ideal simulation supports up to 24 qubits");
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (const auto& e : problem.edges())
            sv.apply_rzz(e.a, e.b, -angles.gamma[layer]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    return sv.probabilities();
}

double
ideal_expectation(const graph::Graph& problem, const QaoaAngles& angles)
{
    auto p = ideal_distribution(problem, angles);
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        if (p[z] > 0.0)
            sum += p[z] * cut_value(problem, z);
    return sum;
}

double
noisy_expectation(const graph::Graph& problem,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    double total = 0.0;
    std::int64_t shots = 0;
    run_trajectories(problem, compiled, noise, angles, options,
                     [&](std::uint64_t z) {
                         total += cut_value(problem, z);
                         ++shots;
                     });
    return total / static_cast<double>(std::max<std::int64_t>(1, shots));
}

std::vector<std::int64_t>
noisy_counts(const graph::Graph& problem, const circuit::Circuit& compiled,
             const arch::NoiseModel& noise, const QaoaAngles& angles,
             const NoisySimOptions& options)
{
    std::vector<std::int64_t> counts(
        std::size_t(1) << problem.num_vertices(), 0);
    run_trajectories(problem, compiled, noise, angles, options,
                     [&](std::uint64_t z) { ++counts[z]; });
    return counts;
}

std::vector<double>
noisy_distribution(const graph::Graph& problem,
                   const circuit::Circuit& compiled,
                   const arch::NoiseModel& noise, const QaoaAngles& angles,
                   const NoisySimOptions& options)
{
    std::vector<double> mix(std::size_t(1) << problem.num_vertices(),
                            0.0);
    std::int32_t trajectories = 0;
    for_each_trajectory(problem, compiled, noise, angles, options,
                        [&](const Statevector& sv, Xoshiro256&) {
                            auto p = sv.probabilities();
                            for (std::size_t z = 0; z < mix.size(); ++z)
                                mix[z] += p[z];
                            ++trajectories;
                        });
    for (auto& x : mix)
        x /= std::max(1, trajectories);
    return mix;
}

double
tvd(const std::vector<double>& ideal,
    const std::vector<std::int64_t>& counts)
{
    fatal_unless(ideal.size() == counts.size(),
                 "distribution sizes differ");
    std::int64_t shots = 0;
    for (std::int64_t c : counts)
        shots += c;
    fatal_unless(shots > 0, "no shots");
    double sum = 0.0;
    for (std::size_t z = 0; z < ideal.size(); ++z) {
        double q = static_cast<double>(counts[z]) /
                   static_cast<double>(shots);
        sum += std::abs(ideal[z] - q);
    }
    return 0.5 * sum;
}

double
tvd(const std::vector<double>& p, const std::vector<double>& q)
{
    fatal_unless(p.size() == q.size(), "distribution sizes differ");
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        sum += std::abs(p[z] - q[z]);
    return 0.5 * sum;
}

double
cut_weight(const problem::WeightedProblem& wp, std::uint64_t z)
{
    double total = 0.0;
    const auto& edges = wp.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (((z >> edges[e].a) & 1) != ((z >> edges[e].b) & 1))
            total += wp.weights[e];
    return total;
}

double
max_cut_weight(const problem::WeightedProblem& wp)
{
    fatal_unless(wp.graph.num_vertices() <= 24,
                 "exhaustive max cut supports up to 24 qubits");
    double best = 0.0;
    std::uint64_t states = std::uint64_t(1) << wp.graph.num_vertices();
    for (std::uint64_t z = 0; z < states; ++z)
        best = std::max(best, cut_weight(wp, z));
    return best;
}

double
ideal_expectation(const problem::WeightedProblem& wp,
                  const QaoaAngles& angles)
{
    std::int32_t n = wp.graph.num_vertices();
    fatal_unless(n <= 24, "ideal simulation supports up to 24 qubits");
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    Statevector sv(n);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    const auto& edges = wp.graph.edges();
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        for (std::size_t e = 0; e < edges.size(); ++e)
            sv.apply_rzz(edges[e].a, edges[e].b,
                         -angles.gamma[layer] * wp.weights[e]);
        for (std::int32_t q = 0; q < n; ++q)
            sv.apply_rx(q, 2.0 * angles.beta[layer]);
    }
    auto p = sv.probabilities();
    double sum = 0.0;
    for (std::size_t z = 0; z < p.size(); ++z)
        if (p[z] > 0.0)
            sum += p[z] * cut_weight(wp, static_cast<std::uint64_t>(z));
    return sum;
}

double
noisy_expectation(const problem::WeightedProblem& wp,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise, const QaoaAngles& angles,
                  const NoisySimOptions& options)
{
    WeightTable table;
    const auto& edges = wp.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        table.emplace(edges[e], wp.weights[e]);

    std::int32_t n = wp.graph.num_vertices();
    std::int32_t shots_per_traj =
        std::max(1, options.shots / std::max(1, options.trajectories));
    double total = 0.0;
    std::int64_t shots = 0;
    for_each_trajectory(
        wp.graph, compiled, noise, angles, options,
        [&](const Statevector& sv, Xoshiro256& rng) {
            for (std::int32_t s = 0; s < shots_per_traj; ++s) {
                std::uint64_t z = sv.sample(rng);
                if (options.readout_error && !noise.is_ideal()) {
                    for (std::int32_t l = 0; l < n; ++l) {
                        PhysicalQubit p =
                            compiled.final_mapping().physical_of(l);
                        if (rng.next_double() < noise.readout_error(p))
                            z ^= std::uint64_t(1) << l;
                    }
                }
                total += cut_weight(wp, z);
                ++shots;
            }
        },
        &table);
    return total / static_cast<double>(std::max<std::int64_t>(1, shots));
}

} // namespace permuq::sim
