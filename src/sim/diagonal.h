/**
 * @file
 * Diagonal-gate fusion for the statevector simulator.
 *
 * RZ, Z, RZZ and CPHASE are all diagonal in the computational basis,
 * so they commute freely with each other: an entire QAOA cost layer
 * (one RZZ per problem edge) can be accumulated symbolically and
 * applied to the state in a *single* sweep instead of one full-array
 * sweep per gate. On 2^20 amplitudes this turns |E| memory passes
 * into one, which is the dominant cost of the paper's §7.4 objective
 * evaluations.
 *
 * Every supported gate's phase angle decomposes over spin variables
 * s_q(i) = +1 if bit q of i is 0, else -1:
 *
 *     angle(i) = constant + sum_t coeff_t * prod_{q in mask_t} s_q(i)
 *
 * with masks of one bit (RZ/Z) or two bits (RZZ, and the quadratic
 * part of CPHASE).
 *
 * apply() goes through a lazily built per-basis-state key table.
 * When every |coeff_t| is the same value g (the common case: a QAOA
 * cost layer adds one RZZ(theta) per edge with a single theta, an
 * Ising Trotter step one RZZ(2 J dt) per edge), the angle spectrum is
 *
 *     angle(i) = constant + g * key(i),   key(i) in {-T..T} integer,
 *
 * so the sweep is one int32 load plus one complex multiply out of a
 * (2T+1)-entry phase look-up table — no trig per amplitude, and the
 * key table is reused across scales (QAOA reuses one edge-set batch
 * for every layer's gamma). Mixed-magnitude batches fall back to a
 * baked double-angle table with one polar() per amplitude.
 */
#ifndef PERMUQ_SIM_DIAGONAL_H
#define PERMUQ_SIM_DIAGONAL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/statevector.h"

namespace permuq::sim {

/** An accumulated batch of commuting diagonal gates. */
class DiagonalBatch
{
  public:
    /** Z on qubit @p q (equals RZ(pi) up to global phase). */
    void add_z(std::int32_t q);

    /** RZ(theta) on qubit @p q: diag(e^{-i theta/2}, e^{i theta/2}). */
    void add_rz(std::int32_t q, double theta);

    /** exp(-i theta/2 Z_a Z_b). */
    void add_rzz(std::int32_t a, std::int32_t b, double theta);

    /** diag(1, 1, 1, e^{i theta}). */
    void add_cphase(std::int32_t a, std::int32_t b, double theta);

    /** True when no gate has been added since the last clear(). */
    bool
    empty() const
    {
        return masks_.empty() && constant_ == 0.0;
    }

    /** Number of distinct accumulated phase terms. */
    std::size_t num_terms() const { return masks_.size(); }

    void clear();

    /**
     * Apply the batch in one sweep: amp[i] *= e^{i scale * angle(i)}.
     * @p scale uniformly multiplies every accumulated angle (QAOA
     * reuses one edge-set batch across layers with scale = gamma_l).
     * The first apply() after an add_*() bakes the key table; repeat
     * applications at any scale reuse it.
     */
    void apply(Statevector& sv, double scale = 1.0) const;

    /**
     * Materialize angle(i) for all 2^num_qubits basis states. Apply
     * with Statevector::apply_phase_table(table, scale); callers that
     * need the raw spectrum (e.g. a MaxCut objective, which is an
     * affine function of the cost batch's angles) read it directly.
     */
    std::vector<double> bake(std::int32_t num_qubits) const;

    /**
     * Read-only view of the lazily baked spectrum, in the exact form
     * apply() consumes: angle(i) = constant + quantum * keys[i] when
     * uniform, else constant + dense[i]. The sweep engine
     * (sim/sweep.h) uses it to build per-point phase tables that
     * replay apply()'s arithmetic bit-for-bit. Pointers stay valid
     * until the next add_*()/clear().
     */
    struct BakedView
    {
        bool uniform = false;
        double constant = 0.0;
        double quantum = 0.0;
        /** Uniform spectrum key range: keys[i] is in [-span, span]. */
        std::int32_t span = 0;
        const std::int32_t* keys = nullptr;
        const double* dense = nullptr;
    };
    BakedView baked_view(std::int32_t num_qubits) const;

  private:
    void add_term(std::uint64_t mask, double coeff);
    void invalidate_cache();
    /** Build (or reuse) the per-basis-state key table for n qubits. */
    void ensure_keys(std::int32_t num_qubits) const;

    double constant_ = 0.0;
    std::vector<std::uint64_t> masks_;
    std::vector<double> coeffs_;
    /** mask -> index into masks_/coeffs_, so repeated gates on the
     *  same support merge instead of growing the term loop. */
    std::unordered_map<std::uint64_t, std::size_t> index_;

    /**
     * Lazily baked key table: angle(i) = constant_ + quantum_ *
     * keys_[i] when uniform_, else angle(i) = dense_[i] + constant_.
     * Mutable cache only — rebuilt deterministically from the terms,
     * never observable through the public API.
     */
    mutable std::int32_t baked_qubits_ = -1;
    mutable bool uniform_ = false;
    mutable double quantum_ = 0.0;
    mutable std::vector<std::int32_t> keys_;
    mutable std::vector<double> dense_;
};

} // namespace permuq::sim

#endif // PERMUQ_SIM_DIAGONAL_H
