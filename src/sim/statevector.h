/**
 * @file
 * A dense statevector simulator for the end-to-end experiments
 * (paper §7.4). Sized for the 10–20 qubit circuits the paper runs on
 * IBM Mumbai; 24 qubits is the hard cap.
 */
#ifndef PERMUQ_SIM_STATEVECTOR_H
#define PERMUQ_SIM_STATEVECTOR_H

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace permuq::sim {

/** |0...0>-initialized dense state over n qubits. */
class Statevector
{
  public:
    using Amplitude = std::complex<double>;

    explicit Statevector(std::int32_t num_qubits);

    std::int32_t num_qubits() const { return num_qubits_; }

    /** @name Single-qubit gates
     *  @{ */
    void apply_h(std::int32_t q);
    void apply_x(std::int32_t q);
    void apply_y(std::int32_t q);
    void apply_z(std::int32_t q);
    void apply_rx(std::int32_t q, double theta);
    void apply_rz(std::int32_t q, double theta);
    /** @} */

    /** @name Two-qubit gates
     *  @{ */
    void apply_cx(std::int32_t control, std::int32_t target);
    /**
     * Apply an arbitrary two-qubit unitary. @p u is row-major 4x4 over
     * the basis |q_b q_a> = |00>, |01>, |10>, |11> (qubit @p a is the
     * low bit).
     */
    void apply_two_qubit(const std::array<Amplitude, 16>& u,
                         std::int32_t a, std::int32_t b);
    void apply_swap(std::int32_t a, std::int32_t b);
    /** exp(-i theta/2 Z_a Z_b). */
    void apply_rzz(std::int32_t a, std::int32_t b, double theta);
    /** diag(1,1,1,e^{i theta}). */
    void apply_cphase(std::int32_t a, std::int32_t b, double theta);
    /** @} */

    /** Measurement probabilities of all basis states. */
    std::vector<double> probabilities() const;

    /** Draw one basis state index from the current distribution. */
    std::uint64_t sample(Xoshiro256& rng) const;

    /** Squared norm (should stay 1 up to rounding). */
    double norm_sq() const;

    const std::vector<Amplitude>& amplitudes() const { return amp_; }

    /** Mutable amplitude access for the exact-evolution integrator;
     *  the caller owns normalization. */
    std::vector<Amplitude>& amplitudes_mut() { return amp_; }

  private:
    std::int32_t num_qubits_;
    std::vector<Amplitude> amp_;
};

} // namespace permuq::sim

#endif // PERMUQ_SIM_STATEVECTOR_H
