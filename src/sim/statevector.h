/**
 * @file
 * A dense statevector simulator for the end-to-end experiments
 * (paper §7.4), sized for the 10–20 qubit circuits the paper runs on
 * IBM Mumbai (26 qubits is the hard cap — 1 GiB of amplitudes).
 *
 * Every gate kernel iterates the compact 2^(n-1) (single-qubit) or
 * 2^(n-2) (two-qubit) block index space directly — no skip-scanning
 * of the full 2^n range — and parallelizes across the global thread
 * pool above a size threshold. The hot kernels dispatch through the
 * runtime-selected SIMD tier (sim/kernels.h, sim/simd.h); both tiers
 * are element-wise over disjoint blocks with identical per-element
 * arithmetic, so amplitudes are bit-identical at any thread count and
 * SIMD width. Reductions (norm_sq) compose the fixed-slice
 * deterministic reduction in common/parallel.h with the kernels'
 * fixed 4-lane accumulators.
 */
#ifndef PERMUQ_SIM_STATEVECTOR_H
#define PERMUQ_SIM_STATEVECTOR_H

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace permuq::sim {

/** Maximum supported qubit count (2^26 amplitudes = 1 GiB). */
inline constexpr std::int32_t kMaxSimQubits = 26;

/** Tile width (qubits) of the fused mixer pass: 2^12 amplitudes =
 *  64 KiB, sized to sit in L1/L2 while a tile takes all low-qubit
 *  RX butterflies back to back. */
inline constexpr std::int32_t kMixerTileQubits = 12;

/** |0...0>-initialized dense state over n qubits. */
class Statevector
{
  public:
    using Amplitude = std::complex<double>;

    explicit Statevector(std::int32_t num_qubits);

    /** Exact amplitude-storage footprint of an n-qubit statevector in
     *  bytes (2^n * sizeof(Amplitude)); what the constructor
     *  allocates. */
    static std::size_t memory_bytes(std::int32_t num_qubits);

    std::int32_t num_qubits() const { return num_qubits_; }

    /**
     * Prepare |+>^n analytically (the H column applied to |0...0>):
     * every amplitude becomes 2^{-n/2} in a single fill sweep instead
     * of n Hadamard passes. This is how every QAOA/trajectory run
     * starts, so it removes n full-array sweeps per evaluation.
     */
    void reset_to_plus();

    /** @name Single-qubit gates
     *  @{ */
    void apply_h(std::int32_t q);
    void apply_x(std::int32_t q);
    void apply_y(std::int32_t q);
    void apply_z(std::int32_t q);
    void apply_rx(std::int32_t q, double theta);
    void apply_rz(std::int32_t q, double theta);
    /** @} */

    /**
     * Apply RX(theta) to every qubit — the QAOA mixer layer — in two
     * cache-blocked passes instead of n full-state sweeps. Pass 1
     * walks 2^kMixerTileQubits-amplitude tiles once, applying all
     * low-qubit butterflies while the tile is cache-hot (a tile is
     * closed under those butterflies); pass 2 fuses the remaining
     * high qubits in pairs, so a 22-qubit mixer costs ~6 memory
     * traversals instead of 22. Bit-identical to calling apply_rx on
     * qubits 0..n-1 in ascending order.
     */
    void apply_rx_all(double theta);

    /** @name Two-qubit gates
     *  @{ */
    void apply_cx(std::int32_t control, std::int32_t target);
    /**
     * Apply an arbitrary two-qubit unitary. @p u is row-major 4x4 over
     * the basis |q_b q_a> = |00>, |01>, |10>, |11> (qubit @p a is the
     * low bit).
     */
    void apply_two_qubit(const std::array<Amplitude, 16>& u,
                         std::int32_t a, std::int32_t b);
    void apply_swap(std::int32_t a, std::int32_t b);
    /** exp(-i theta/2 Z_a Z_b). */
    void apply_rzz(std::int32_t a, std::int32_t b, double theta);
    /** diag(1,1,1,e^{i theta}). */
    void apply_cphase(std::int32_t a, std::int32_t b, double theta);
    /** @} */

    /**
     * Multiply amplitude i by e^{i * scale * angles[i]}. @p angles must
     * have 2^n entries; this is the sweep a baked DiagonalBatch (see
     * sim/diagonal.h) reduces an entire layer of diagonal gates to.
     */
    void apply_phase_table(const std::vector<double>& angles,
                           double scale = 1.0);

    /** Measurement probabilities of all basis states. */
    std::vector<double> probabilities() const;

    /**
     * Draw one basis state index from the current distribution by a
     * linear scan (O(2^n) per shot). Reference sampler: multi-shot
     * callers should build a CdfSampler instead.
     */
    std::uint64_t sample(Xoshiro256& rng) const;

    /** Squared norm (should stay 1 up to rounding). */
    double norm_sq() const;

    const std::vector<Amplitude>& amplitudes() const { return amp_; }

    /** Mutable amplitude access for the exact-evolution integrator;
     *  the caller owns normalization. */
    std::vector<Amplitude>& amplitudes_mut() { return amp_; }

  private:
    std::int32_t num_qubits_;
    std::vector<Amplitude> amp_;
};

/**
 * One-time prefix-sum CDF over a statevector's probabilities; each
 * shot is then a binary search (O(n) instead of O(2^n)). The CDF is
 * accumulated left-to-right in the exact order Statevector::sample's
 * linear scan uses, so on the same RNG draw both samplers return the
 * same basis state bit-for-bit.
 */
class CdfSampler
{
  public:
    explicit CdfSampler(const Statevector& sv);

    /** Draw one basis state index (consumes one rng.next_double()). */
    std::uint64_t sample(Xoshiro256& rng) const;

  private:
    std::vector<double> cdf_; ///< cdf_[i] = sum of p[0..i]
};

} // namespace permuq::sim

#endif // PERMUQ_SIM_STATEVECTOR_H
