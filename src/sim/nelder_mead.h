/**
 * @file
 * Derivative-free minimization for the end-to-end QAOA loop.
 *
 * The paper uses Qiskit's default COBYLA; Nelder-Mead is a comparable
 * derivative-free local optimizer, and the Figs 24/25 experiment holds
 * the optimizer fixed while varying the compiled circuit, so the
 * substitution preserves the comparison (see DESIGN.md).
 */
#ifndef PERMUQ_SIM_NELDER_MEAD_H
#define PERMUQ_SIM_NELDER_MEAD_H

#include <cstdint>
#include <functional>
#include <vector>

namespace permuq::sim {

/** Result of a minimization run. */
struct OptimizeResult
{
    std::vector<double> best_x;
    double best_f = 0.0;
    /** f value after each objective evaluation ("rounds" axis of
     *  Figs 24/25): history[k] = best f seen within the first k+1
     *  evaluations. */
    std::vector<double> history;
};

/**
 * Nelder-Mead simplex minimization of @p f from @p x0.
 * @param initial_step edge length of the initial simplex
 * @param max_evals objective-evaluation budget
 */
OptimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, double initial_step, std::int32_t max_evals);

} // namespace permuq::sim

#endif // PERMUQ_SIM_NELDER_MEAD_H
