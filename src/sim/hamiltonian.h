/**
 * @file
 * 2-local Hamiltonian dynamics (the paper's second application class,
 * §7.5): exact time evolution of small spin systems and Trotterized
 * evolution driven by a compiled circuit's gate order.
 *
 * A model attaches a two-body interaction (ZZ for Ising, XX+YY for XY,
 * XX+YY+ZZ for Heisenberg) to every edge of an interaction graph. One
 * first-order Trotter step applies exp(-i J dt h_e) for each term; all
 * orderings are equally valid Trotterizations (this is exactly the
 * permutability the compiler exploits), differing only in Trotter
 * error, so a compiled circuit's compute-op order defines a concrete
 * step. Exact evolution (RK4 on the Schrödinger equation) provides the
 * ground truth for error measurements.
 */
#ifndef PERMUQ_SIM_HAMILTONIAN_H
#define PERMUQ_SIM_HAMILTONIAN_H

#include <cstdint>

#include "circuit/circuit.h"
#include "graph/graph.h"
#include "sim/statevector.h"

namespace permuq::sim {

/** The two-body interaction attached to every edge. */
enum class SpinModel
{
    Ising,      ///< J Z_a Z_b (all terms commute; zero Trotter error)
    XY,         ///< J (X_a X_b + Y_a Y_b)
    Heisenberg, ///< J (X_a X_b + Y_a Y_b + Z_a Z_b)
};

/** A 2-local spin Hamiltonian H = sum_edges J * h_model(a, b). */
struct SpinHamiltonian
{
    graph::Graph interactions;
    SpinModel model = SpinModel::Heisenberg;
    double coupling = 1.0;
};

/** |psi> -> H|psi| (no normalization; used by the exact integrator). */
void apply_hamiltonian(const SpinHamiltonian& h, const Statevector& in,
                       std::vector<Statevector::Amplitude>& out);

/**
 * Exact evolution |psi(t)> = exp(-i H t)|psi(0)> via classic RK4 with
 * @p integration_steps sub-steps (n <= 14 or so for practical runs).
 */
void exact_evolution(const SpinHamiltonian& h, Statevector& state,
                     double time, std::int32_t integration_steps);

/**
 * One first-order Trotter step of duration @p dt, applying the exact
 * two-qubit term unitaries exp(-i J dt h_e) in the order the compiled
 * circuit executes its compute ops (SWAPs are tracked as relabelings,
 * exactly like the noisy QAOA simulation).
 */
void trotter_step(const SpinHamiltonian& h,
                  const circuit::Circuit& compiled, Statevector& state,
                  double dt);

/**
 * Trotterized evolution over @p steps steps of t/steps each, using the
 * compiled circuit forward/backward alternately (the reversed replay
 * covers every term with the same physical structure).
 */
void trotter_evolution(const SpinHamiltonian& h,
                       const circuit::Circuit& compiled,
                       Statevector& state, double time,
                       std::int32_t steps);

/** |<a|b>|^2 between two states of equal size. */
double state_fidelity(const Statevector& a, const Statevector& b);

/** <psi| H |psi> (real by Hermiticity). */
double energy_expectation(const SpinHamiltonian& h,
                          const Statevector& state);

} // namespace permuq::sim

#endif // PERMUQ_SIM_HAMILTONIAN_H
