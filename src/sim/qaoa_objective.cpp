#include "qaoa_objective.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>

#include "circuit/metrics.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "sim/kernel_util.h"
#include "sim/kernels.h"

namespace permuq::sim {

namespace {

/** Per-op CX cost with CPHASE+SWAP merging applied. */
std::vector<std::int8_t>
per_op_cx(const circuit::Circuit& compiled)
{
    auto merged = circuit::merged_with_previous(compiled);
    const auto& ops = compiled.ops();
    std::vector<std::int8_t> cost(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (merged[i]) {
            // The merged pair costs 3 CX total; the predecessor was
            // billed standalone, so this op pays the difference.
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Swap ? 1 : 0);
        } else {
            cost[i] = static_cast<std::int8_t>(
                ops[i].kind == circuit::OpKind::Compute ? 2 : 3);
        }
    }
    return cost;
}

void
apply_pauli(Statevector& sv, std::int32_t q, std::int32_t which)
{
    switch (which) {
      case 1: sv.apply_x(q); break;
      case 2: sv.apply_y(q); break;
      case 3: sv.apply_z(q); break;
      default: break;
    }
}

/** One pre-drawn Pauli-error decision of a layer, keyed by the
 *  position of its op in the replay sequence. */
struct ErrorEvent
{
    std::size_t seq;
    std::int32_t a, b;
    std::int32_t which;
};

/**
 * Sample the readout-flipped shots of one finished trajectory,
 * calling shot_sink(z) per shot. Builds the CDF once; each shot is a
 * binary search instead of an O(2^n) scan.
 */
template <typename ShotSink>
void
sample_trajectory(const Statevector& sv, Xoshiro256& rng,
                  const circuit::Circuit& compiled,
                  const arch::NoiseModel& noise,
                  const NoisySimOptions& options, std::int32_t n,
                  std::int32_t shots_per_traj, ShotSink&& shot_sink)
{
    CdfSampler sampler(sv);
    for (std::int32_t s = 0; s < shots_per_traj; ++s) {
        std::uint64_t z = sampler.sample(rng);
        if (options.readout_error && !noise.is_ideal()) {
            // Per-qubit readout error at the final physical location
            // of each logical qubit.
            for (std::int32_t l = 0; l < n; ++l) {
                PhysicalQubit p = compiled.final_mapping().physical_of(l);
                if (rng.next_double() < noise.readout_error(p))
                    z ^= std::uint64_t(1) << l;
            }
        }
        shot_sink(z);
    }
}

std::int32_t
shots_per_trajectory(const NoisySimOptions& options)
{
    return std::max(1, options.shots / std::max(1, options.trajectories));
}

} // namespace

QaoaObjective::QaoaObjective(const graph::Graph& problem)
    : problem_(problem), sv_(problem.num_vertices())
{
    build(nullptr);
}

QaoaObjective::QaoaObjective(const problem::WeightedProblem& wp)
    : problem_(wp.graph), sv_(wp.graph.num_vertices())
{
    build(&wp.weights);
}

void
QaoaObjective::build(const std::vector<double>* weights)
{
    const std::int32_t n = problem_.num_vertices();
    fatal_unless(n <= kMaxSimQubits,
                 "QAOA simulation supports up to " +
                     std::to_string(kMaxSimQubits) + " qubits");
    const auto& edges = problem_.edges();
    double total_weight = 0.0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const double w = weights != nullptr ? (*weights)[e] : 1.0;
        // Unit-gamma (or w_e-coefficient) edge phases; every layer of
        // every evaluation rescales this one batch by its own -gamma.
        cost_.add_rzz(edges[e].a, edges[e].b, w);
        total_weight += w;
    }
    if (weights != nullptr) {
        weights_ = *weights;
        weight_map_.reserve(edges.size());
        for (std::size_t e = 0; e < edges.size(); ++e)
            weight_map_.emplace(edges[e], (*weights)[e]);
    }
    // The batch's angle spectrum is cut(z) - W/2 (each edge phase is
    // -w_e/2 * s_a s_b), so the baked table plus this offset serves
    // both cut() and the expectation reduction. Baking here also
    // freezes the batch's lazy key cache before any parallel
    // trajectory can race to build it.
    cost_table_ = cost_.bake(n);
    offset_ = total_weight / 2.0;
}

std::size_t
QaoaObjective::memory_bytes() const
{
    return Statevector::memory_bytes(sv_.num_qubits()) +
           cost_table_.size() * sizeof(double);
}

void
QaoaObjective::prepare_ideal(const QaoaAngles& angles)
{
    fatal_unless(angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    sv_.reset_to_plus();
    // One fused sweep per cost layer (the cost unitary is RZZ(-gamma)
    // per edge) and one blocked traversal per mixer layer.
    for (std::size_t layer = 0; layer < angles.gamma.size(); ++layer) {
        cost_.apply(sv_, -angles.gamma[layer]);
        sv_.apply_rx_all(2.0 * angles.beta[layer]);
    }
}

double
QaoaObjective::ideal_expectation(const QaoaAngles& angles)
{
    telemetry::ScopedSpan span("sim.objective.eval");
    span.arg("qubits", num_qubits());
    span.arg("layers", static_cast<std::int64_t>(angles.gamma.size()));
    prepare_ideal(angles);
    const kernels::Table& t = kernels::active_counted();
    const double* a =
        reinterpret_cast<const double*>(sv_.amplitudes().data());
    const double* table = cost_table_.data();
    const double offset = offset_;
    return common::parallel_reduce_sum<double>(
        0, sv_.amplitudes().size(), std::size_t(1) << 13,
        [=, &t](std::size_t b, std::size_t e) {
            return t.weighted_norm_sum(a, table, offset, b, e);
        });
}

std::vector<double>
QaoaObjective::ideal_distribution(const QaoaAngles& angles)
{
    telemetry::ScopedSpan span("sim.objective.eval");
    span.arg("qubits", num_qubits());
    span.arg("layers", static_cast<std::int64_t>(angles.gamma.size()));
    prepare_ideal(angles);
    return sv_.probabilities();
}

const QaoaObjective::Plan&
QaoaObjective::plan_for(const circuit::Circuit& compiled)
{
    const auto& ops = compiled.ops();
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const auto& op : ops) {
        mix((std::uint64_t(static_cast<std::uint32_t>(op.p)) << 32) |
            std::uint64_t(static_cast<std::uint32_t>(op.q)));
        mix((std::uint64_t(static_cast<std::uint32_t>(op.a)) << 32) |
            std::uint64_t(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(op.kind));
    }
    if (plan_.circuit != static_cast<const void*>(&compiled) ||
        plan_.num_ops != ops.size() || plan_.hash != h) {
        plan_.circuit = &compiled;
        plan_.num_ops = ops.size();
        plan_.hash = h;
        plan_.cx_cost = per_op_cx(compiled);
    }
    return plan_;
}

/**
 * Run each noisy trajectory and hand its final state to @p sink as
 * sink(trajectory_index, sv, rng). Trajectory t draws from the
 * t-times-jumped substream of options.seed, so every trajectory's
 * randomness — and therefore every result assembled from
 * per-trajectory partials in index order — is independent of the
 * thread count. When @p parallel is true, trajectories run
 * concurrently on the global pool; @p sink must only touch state
 * owned by its trajectory index (or synchronize internally).
 */
template <typename Sink>
void
QaoaObjective::for_each_trajectory(const circuit::Circuit& compiled,
                                   const arch::NoiseModel& noise,
                                   const QaoaAngles& angles,
                                   const NoisySimOptions& options,
                                   Sink&& sink, bool parallel)
{
    const std::int32_t n = num_qubits();
    fatal_unless(!angles.gamma.empty() &&
                     angles.gamma.size() == angles.beta.size(),
                 "need one gamma and beta per QAOA layer");
    const std::int32_t layers =
        static_cast<std::int32_t>(angles.gamma.size());
    const auto& cx_cost = plan_for(compiled).cx_cost;
    // An error-free layer's fused batch equals the cached cost batch
    // rescaled by -gamma (the replay meets every edge exactly once),
    // so it can skip the per-layer key rebuild entirely. Weighted
    // problems keep the per-layer build: their mixed-magnitude phase
    // products round differently under the cached formulation.
    const bool cached_layers = !weighted() && options.fuse_diagonals;

    auto run_one = [&](std::int64_t traj) {
        telemetry::ScopedSpan span("sim.trajectory");
        span.arg("traj", traj);
        Xoshiro256 rng(options.seed);
        for (std::int64_t j = 0; j < traj; ++j)
            rng.jump();

        Statevector sv(n);
        sv.reset_to_plus();

        DiagonalBatch batch;
        auto flush = [&] {
            if (!batch.empty()) {
                batch.apply(sv);
                batch.clear();
            }
        };
        std::vector<ErrorEvent> events;

        for (std::int32_t layer = 0; layer < layers; ++layer) {
            const double gamma =
                angles.gamma[static_cast<std::size_t>(layer)];
            const bool reversed = layer % 2 == 1;
            // Pre-draw the layer's stochastic Pauli decisions in the
            // exact RNG order of the gate-by-gate walk: one
            // next_double per physical CX, one next_below(15) per
            // error. The stream is identical whichever execution path
            // the layer takes below.
            events.clear();
            std::size_t seq = 0;
            circuit::for_each_replayed(
                compiled, reversed,
                [&](const circuit::ScheduledOp& op, std::size_t i) {
                    const double e = noise.cx_error(op.p, op.q);
                    for (std::int8_t c = 0; c < cx_cost[i]; ++c) {
                        if (rng.next_double() >= e)
                            continue;
                        const std::int32_t which =
                            static_cast<std::int32_t>(
                                rng.next_below(15)) + 1;
                        events.push_back({seq, op.a, op.b, which});
                    }
                    ++seq;
                });

            if (events.empty() && cached_layers) {
                // No error interrupts the layer: the whole replay is
                // one diagonal sweep off the prebaked key cache.
                cost_.apply(sv, -gamma);
            } else {
                // Replay op by op, applying the recorded decisions at
                // their drawn positions. Paulis do not commute with
                // pending diagonal phases, so an error flushes first.
                std::size_t cursor = 0;
                std::size_t replay_seq = 0;
                circuit::for_each_replayed(
                    compiled, reversed,
                    [&](const circuit::ScheduledOp& op, std::size_t) {
                        while (cursor < events.size() &&
                               events[cursor].seq == replay_seq) {
                            const ErrorEvent& ev = events[cursor];
                            flush();
                            if (ev.a != kInvalidQubit)
                                apply_pauli(sv, ev.a, ev.which & 3);
                            if (ev.b != kInvalidQubit)
                                apply_pauli(sv, ev.b, ev.which >> 2);
                            ++cursor;
                        }
                        if (op.kind == circuit::OpKind::Compute) {
                            double w = 1.0;
                            if (weighted())
                                w = weight_map_.at(
                                    VertexPair(op.a, op.b));
                            if (options.fuse_diagonals)
                                batch.add_rzz(op.a, op.b, -gamma * w);
                            else
                                sv.apply_rzz(op.a, op.b, -gamma * w);
                        }
                        // SWAPs act as relabelings: the stored logical
                        // operands of later ops already account for
                        // them.
                        ++replay_seq;
                    });
                flush();
            }
            sv.apply_rx_all(
                2.0 * angles.beta[static_cast<std::size_t>(layer)]);
        }

        sink(static_cast<std::int32_t>(traj), sv, rng);
    };

    if (parallel && options.trajectories > 1 && common::num_threads() > 1)
        common::parallel_tasks(options.trajectories, run_one);
    else
        for (std::int64_t t = 0; t < options.trajectories; ++t)
            run_one(t);
}

double
QaoaObjective::noisy_expectation(const circuit::Circuit& compiled,
                                 const arch::NoiseModel& noise,
                                 const QaoaAngles& angles,
                                 const NoisySimOptions& options)
{
    telemetry::ScopedSpan span("sim.objective.eval");
    span.arg("qubits", num_qubits());
    span.arg("layers", static_cast<std::int64_t>(angles.gamma.size()));
    const std::int32_t n = num_qubits();
    const std::int32_t shots_per_traj = shots_per_trajectory(options);
    std::vector<double> partial(
        static_cast<std::size_t>(std::max(1, options.trajectories)), 0.0);
    for_each_trajectory(
        compiled, noise, angles, options,
        [&](std::int32_t traj, const Statevector& sv, Xoshiro256& rng) {
            double total = 0.0;
            sample_trajectory(sv, rng, compiled, noise, options, n,
                              shots_per_traj, [&](std::uint64_t z) {
                                  total += cut(z);
                              });
            partial[static_cast<std::size_t>(traj)] = total;
        },
        /*parallel=*/true);
    // Fixed-order combination: bit-identical at any thread count.
    double total = 0.0;
    for (double p : partial)
        total += p;
    std::int64_t shots = static_cast<std::int64_t>(shots_per_traj) *
                         std::max(1, options.trajectories);
    return total / static_cast<double>(std::max<std::int64_t>(1, shots));
}

std::vector<std::int64_t>
QaoaObjective::noisy_counts(const circuit::Circuit& compiled,
                            const arch::NoiseModel& noise,
                            const QaoaAngles& angles,
                            const NoisySimOptions& options)
{
    const std::int32_t n = num_qubits();
    const std::int32_t shots_per_traj = shots_per_trajectory(options);
    std::vector<std::int64_t> counts(std::size_t(1) << n, 0);
    std::mutex merge_mutex;
    for_each_trajectory(
        compiled, noise, angles, options,
        [&](std::int32_t, const Statevector& sv, Xoshiro256& rng) {
            // Histogram locally, then merge; integer addition is exact
            // and commutative, so merge order cannot affect results.
            std::vector<std::int64_t> local(counts.size(), 0);
            sample_trajectory(sv, rng, compiled, noise, options, n,
                              shots_per_traj,
                              [&](std::uint64_t z) { ++local[z]; });
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (std::size_t z = 0; z < counts.size(); ++z)
                counts[z] += local[z];
        },
        /*parallel=*/true);
    return counts;
}

std::vector<double>
QaoaObjective::noisy_distribution(const circuit::Circuit& compiled,
                                  const arch::NoiseModel& noise,
                                  const QaoaAngles& angles,
                                  const NoisySimOptions& options)
{
    std::vector<double> mix(std::size_t(1) << num_qubits(), 0.0);
    std::int32_t trajectories = 0;
    // Serial over trajectories: the merge adds 2^n doubles per
    // trajectory, and a fixed order is what keeps the sum
    // bit-reproducible. Kernel-level parallelism still applies inside
    // each trajectory.
    for_each_trajectory(
        compiled, noise, angles, options,
        [&](std::int32_t, const Statevector& sv, Xoshiro256&) {
            auto p = sv.probabilities();
            for (std::size_t z = 0; z < mix.size(); ++z)
                mix[z] += p[z];
            ++trajectories;
        },
        /*parallel=*/false);
    for (auto& x : mix)
        x /= std::max(1, trajectories);
    return mix;
}

} // namespace permuq::sim
