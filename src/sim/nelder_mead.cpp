#include "nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace permuq::sim {

OptimizeResult
nelder_mead(const std::function<double(const std::vector<double>&)>& f,
            std::vector<double> x0, double initial_step,
            std::int32_t max_evals)
{
    std::size_t dim = x0.size();
    fatal_unless(dim >= 1, "need at least one parameter");
    fatal_unless(max_evals >= static_cast<std::int32_t>(dim) + 1,
                 "evaluation budget too small for the initial simplex");

    OptimizeResult result;
    std::int32_t evals = 0;
    auto eval = [&](const std::vector<double>& x) {
        double v = f(x);
        ++evals;
        if (result.history.empty() || v < result.best_f) {
            result.best_f = v;
            result.best_x = x;
        }
        result.history.push_back(result.best_f);
        return v;
    };

    // Initial simplex: x0 plus a step along each axis.
    std::vector<std::vector<double>> simplex;
    std::vector<double> value;
    simplex.push_back(x0);
    value.push_back(eval(x0));
    for (std::size_t d = 0; d < dim; ++d) {
        auto x = x0;
        x[d] += initial_step;
        simplex.push_back(x);
        value.push_back(eval(x));
    }

    const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
    while (evals < max_evals) {
        // Sort simplex by value.
        std::vector<std::size_t> order(simplex.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return value[a] < value[b];
                  });
        std::vector<std::vector<double>> s2;
        std::vector<double> v2;
        for (std::size_t i : order) {
            s2.push_back(simplex[i]);
            v2.push_back(value[i]);
        }
        simplex = std::move(s2);
        value = std::move(v2);

        // Centroid of all but the worst.
        std::vector<double> centroid(dim, 0.0);
        for (std::size_t i = 0; i < dim; ++i)
            for (std::size_t d = 0; d < dim; ++d)
                centroid[d] += simplex[i][d] / static_cast<double>(dim);

        auto blend = [&](double t) {
            std::vector<double> x(dim);
            for (std::size_t d = 0; d < dim; ++d)
                x[d] = centroid[d] + t * (simplex[dim][d] - centroid[d]);
            return x;
        };

        auto reflected = blend(-alpha);
        double fr = eval(reflected);
        if (evals >= max_evals)
            break;
        if (fr < value[0]) {
            auto expanded = blend(-gamma);
            double fe = eval(expanded);
            if (fe < fr) {
                simplex[dim] = expanded;
                value[dim] = fe;
            } else {
                simplex[dim] = reflected;
                value[dim] = fr;
            }
        } else if (fr < value[dim - 1]) {
            simplex[dim] = reflected;
            value[dim] = fr;
        } else {
            auto contracted = blend(rho);
            double fc = eval(contracted);
            if (evals >= max_evals)
                break;
            if (fc < value[dim]) {
                simplex[dim] = contracted;
                value[dim] = fc;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 1; i <= dim && evals < max_evals;
                     ++i) {
                    for (std::size_t d = 0; d < dim; ++d)
                        simplex[i][d] =
                            simplex[0][d] +
                            sigma * (simplex[i][d] - simplex[0][d]);
                    value[i] = eval(simplex[i]);
                }
            }
        }
    }
    return result;
}

} // namespace permuq::sim
