/**
 * @file
 * Runtime SIMD dispatch for the statevector kernels.
 *
 * The simulator ships three kernel tiers: a portable scalar tier, a
 * hand-vectorized AVX2 tier, and an AVX-512 tier covering the hottest
 * kernels (see sim/kernels.h). The active tier is chosen once at
 * startup from CPU feature detection, overridable by the PERMUQ_SIMD
 * environment variable:
 *
 *   PERMUQ_SIMD=off     force the scalar tier
 *   PERMUQ_SIMD=avx2    request AVX2 (falls back to scalar when the
 *                       CPU or the build lacks it)
 *   PERMUQ_SIMD=avx512  request AVX-512 (falls back to AVX2, then
 *                       scalar)
 *   unset / auto        use the best tier the CPU supports
 *
 * Determinism contract: all tiers execute the *same* IEEE-754
 * operations per amplitude in the same order (every kernel TU is
 * compiled with FP contraction off, and reductions use the fixed
 * 4-lane scheme of sim/kernels.h), so amplitudes and expectation
 * values are bit-identical across tiers — PERMUQ_SIMD changes speed,
 * never results. tests/test_kernels.cpp holds this as an
 * exact-equality invariant.
 */
#ifndef PERMUQ_SIM_SIMD_H
#define PERMUQ_SIM_SIMD_H

namespace permuq::sim {

/** Kernel implementation tiers, worst to best. */
enum class SimdTier
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** True when any vector tier was compiled into this binary. */
bool simd_compiled_in();

/** Best tier the running CPU supports (ignores PERMUQ_SIMD). */
SimdTier detected_simd_tier();

/** The tier kernels currently dispatch to. Initialized once from
 *  detection + PERMUQ_SIMD; tests override it via set_simd_tier(). */
SimdTier active_simd_tier();

/**
 * Select the dispatch tier at runtime (tests/benchmarks compare the
 * tiers in-process). Requests above the detected capability clamp to
 * the best supported tier. Not thread-safe against concurrently
 * running kernels; call from quiescent points.
 */
void set_simd_tier(SimdTier tier);

/** Human-readable tier name ("scalar" / "avx2" / "avx512"). */
const char* simd_tier_name(SimdTier tier);

} // namespace permuq::sim

#endif // PERMUQ_SIM_SIMD_H
