#include "diagonal.h"

#include <bit>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "sim/kernel_util.h"
#include "sim/kernels.h"

namespace permuq::sim {

namespace {

constexpr std::size_t kGrain = kKernelGrain;

} // namespace

void
DiagonalBatch::add_term(std::uint64_t mask, double coeff)
{
    auto [it, inserted] = index_.emplace(mask, masks_.size());
    if (inserted) {
        masks_.push_back(mask);
        coeffs_.push_back(coeff);
    } else {
        coeffs_[it->second] += coeff;
    }
    invalidate_cache();
}

void
DiagonalBatch::add_z(std::int32_t q)
{
    // diag(1, -1) = e^{i pi/2} diag(e^{-i pi/2}, e^{i pi/2}).
    constant_ += std::numbers::pi / 2.0;
    add_term(std::uint64_t(1) << q, -std::numbers::pi / 2.0);
}

void
DiagonalBatch::add_rz(std::int32_t q, double theta)
{
    add_term(std::uint64_t(1) << q, -theta / 2.0);
}

void
DiagonalBatch::add_rzz(std::int32_t a, std::int32_t b, double theta)
{
    fatal_unless(a != b, "rzz needs distinct qubits");
    add_term((std::uint64_t(1) << a) | (std::uint64_t(1) << b),
             -theta / 2.0);
}

void
DiagonalBatch::add_cphase(std::int32_t a, std::int32_t b, double theta)
{
    fatal_unless(a != b, "cphase needs distinct qubits");
    // theta * z_a z_b = theta/4 (1 - s_a - s_b + s_a s_b).
    constant_ += theta / 4.0;
    add_term(std::uint64_t(1) << a, -theta / 4.0);
    add_term(std::uint64_t(1) << b, -theta / 4.0);
    add_term((std::uint64_t(1) << a) | (std::uint64_t(1) << b),
             theta / 4.0);
}

void
DiagonalBatch::clear()
{
    constant_ = 0.0;
    masks_.clear();
    coeffs_.clear();
    index_.clear();
    invalidate_cache();
}

void
DiagonalBatch::invalidate_cache()
{
    baked_qubits_ = -1;
    keys_.clear();
    keys_.shrink_to_fit();
    dense_.clear();
    dense_.shrink_to_fit();
}

void
DiagonalBatch::ensure_keys(std::int32_t num_qubits) const
{
    if (baked_qubits_ == num_qubits)
        return;
    const std::size_t size = std::size_t(1) << num_qubits;
    const std::uint64_t* mask = masks_.data();
    const double* coeff = coeffs_.data();
    const std::size_t terms = masks_.size();

    // Uniform-magnitude batches (a cost layer with a single theta)
    // have an integer spectrum: angle = constant + g * sum_t ±s_t.
    uniform_ = terms > 0;
    quantum_ = terms > 0 ? std::abs(coeff[0]) : 0.0;
    for (std::size_t t = 1; t < terms && uniform_; ++t)
        uniform_ = std::abs(coeff[t]) == quantum_;

    if (uniform_) {
        std::vector<std::int8_t> sign(terms);
        for (std::size_t t = 0; t < terms; ++t)
            sign[t] = coeff[t] < 0.0 ? -1 : 1;
        keys_.assign(size, 0);
        dense_.clear();
        std::int32_t* key = keys_.data();
        const std::int8_t* sgn = sign.data();
        // Term-outer / element-inner over L1-resident blocks: no
        // cross-element dependency chain, so the popcount/add loop
        // vectorizes instead of serializing on one accumulator.
        common::parallel_for(
            0, size, kGrain, [=](std::size_t b, std::size_t e) {
                for (std::size_t t = 0; t < terms; ++t) {
                    const std::uint64_t m = mask[t];
                    const std::int32_t s = sgn[t];
                    for (std::size_t i = b; i < e; ++i)
                        key[i] += (std::popcount(i & m) & 1) ? -s : s;
                }
            });
    } else {
        dense_.assign(size, 0.0);
        keys_.clear();
        double* out = dense_.data();
        common::parallel_for(
            0, size, kGrain, [=](std::size_t b, std::size_t e) {
                for (std::size_t t = 0; t < terms; ++t) {
                    const std::uint64_t m = mask[t];
                    const double c = coeff[t];
                    for (std::size_t i = b; i < e; ++i)
                        out[i] += (std::popcount(i & m) & 1) ? -c : c;
                }
            });
    }
    baked_qubits_ = num_qubits;
}

void
DiagonalBatch::apply(Statevector& sv, double scale) const
{
    if (empty())
        return;
    if (telemetry::enabled()) {
        static telemetry::Histogram& batch_size = telemetry::histogram(
            "permuq.sim.fusion.batch_size");
        batch_size.record(static_cast<double>(num_terms()));
    }
    auto& amp = sv.amplitudes_mut();
    double* a = reinterpret_cast<double*>(amp.data());
    ensure_keys(sv.num_qubits());
    const kernels::Table& t = kernels::active_counted();
    if (uniform_) {
        // key(i) is in {-T..T}; one complex multiply out of a phase
        // LUT per amplitude, no trig in the sweep. The LUT is split
        // into real/imag planes for the AVX2 tier's gathers.
        const std::int32_t span =
            static_cast<std::int32_t>(masks_.size());
        const std::size_t entries = 2 * static_cast<std::size_t>(span) + 1;
        std::vector<double> lut_re(entries), lut_im(entries);
        for (std::int32_t k = -span; k <= span; ++k) {
            const double ang = scale * (constant_ + quantum_ * k);
            lut_re[static_cast<std::size_t>(k + span)] = std::cos(ang);
            lut_im[static_cast<std::size_t>(k + span)] = std::sin(ang);
        }
        const double* lre = lut_re.data();
        const double* lim = lut_im.data();
        const std::int32_t* key = keys_.data();
        common::parallel_for(
            0, amp.size(), kGrain, [=, &t](std::size_t b, std::size_t e) {
                t.phase_lut(a, b, e, key, span, lre, lim);
            });
    } else {
        const double* angle = dense_.data();
        const double constant = constant_;
        common::parallel_for(
            0, amp.size(), kGrain, [=, &t](std::size_t b, std::size_t e) {
                t.phase_angles(a, b, e, angle, scale, constant);
            });
    }
}

DiagonalBatch::BakedView
DiagonalBatch::baked_view(std::int32_t num_qubits) const
{
    ensure_keys(num_qubits);
    BakedView view;
    view.uniform = uniform_;
    view.constant = constant_;
    view.quantum = quantum_;
    view.span = static_cast<std::int32_t>(masks_.size());
    view.keys = keys_.empty() ? nullptr : keys_.data();
    view.dense = dense_.empty() ? nullptr : dense_.data();
    return view;
}

std::vector<double>
DiagonalBatch::bake(std::int32_t num_qubits) const
{
    ensure_keys(num_qubits);
    std::vector<double> table(std::size_t(1) << num_qubits);
    double* out = table.data();
    const double constant = constant_;
    if (uniform_) {
        const double quantum = quantum_;
        const std::int32_t* key = keys_.data();
        common::parallel_for(
            0, table.size(), kGrain, [=](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    out[i] = constant + quantum * key[i];
            });
    } else {
        const double* angle = dense_.data();
        common::parallel_for(
            0, table.size(), kGrain, [=](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    out[i] = constant + angle[i];
            });
    }
    return table;
}

} // namespace permuq::sim
