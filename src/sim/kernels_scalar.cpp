/**
 * @file
 * Portable scalar tier of the statevector kernels (see sim/kernels.h
 * for the dispatch design and the determinism contract). Every loop
 * is written over the shared per-element helpers of kernels_inline.h;
 * the reductions keep four explicit accumulator lanes mirroring the
 * AVX2 register lanes. This TU builds with -ffp-contract=off so no
 * FMA contraction can diverge from the vector tier.
 */
#include "sim/kernels.h"

#include <cmath>

#include "sim/kernel_util.h"
#include "sim/kernels_inline.h"

namespace permuq::sim::kernels {

namespace {

using detail::cmul;
using detail::combine_lanes;
using detail::cswap;
using detail::h_pair;
using detail::norm2;
using detail::rx_pair;

void
scalar_rx(double* a, std::size_t hb, std::size_t he,
          std::size_t low_mask, std::size_t bit, double c, double s)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        rx_pair(a + 2 * i0, a + 2 * (i0 | bit), c, s);
    }
}

void
scalar_h(double* a, std::size_t hb, std::size_t he, std::size_t low_mask,
         std::size_t bit, double inv_sqrt2)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        h_pair(a + 2 * i0, a + 2 * (i0 | bit), inv_sqrt2);
    }
}

void
scalar_rx2(double* a, std::size_t hb, std::size_t he,
           std::size_t lo_mask, std::size_t hi_mask, std::size_t pbit,
           std::size_t qbit, double c, double s)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p00 = a + 2 * i00;
        double* pp = a + 2 * (i00 | pbit);
        double* pq = a + 2 * (i00 | qbit);
        double* ppq = a + 2 * (i00 | pbit | qbit);
        // RX on pbit pairs first, then on qbit pairs — the exact
        // per-element sequence of two full rx passes.
        rx_pair(p00, pp, c, s);
        rx_pair(pq, ppq, c, s);
        rx_pair(p00, pq, c, s);
        rx_pair(pp, ppq, c, s);
    }
}

void
scalar_rz(double* a, std::size_t ib, std::size_t ie, std::size_t bit,
          double e0r, double e0i, double e1r, double e1i)
{
    for (std::size_t i = ib; i < ie; ++i) {
        if (i & bit)
            cmul(a + 2 * i, e1r, e1i);
        else
            cmul(a + 2 * i, e0r, e0i);
    }
}

void
scalar_rzz(double* a, std::size_t ib, std::size_t ie, std::size_t abit,
           std::size_t bbit, double sr, double si, double dr, double di)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const bool aligned = ((i & abit) != 0) == ((i & bbit) != 0);
        if (aligned)
            cmul(a + 2 * i, sr, si);
        else
            cmul(a + 2 * i, dr, di);
    }
}

void
scalar_cphase(double* a, std::size_t hb, std::size_t he,
              std::size_t lo_mask, std::size_t hi_mask,
              std::size_t target_bits, double pr, double pi)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        cmul(a + 2 * (i00 | target_bits), pr, pi);
    }
}

void
scalar_cx(double* a, std::size_t hb, std::size_t he, std::size_t lo_mask,
          std::size_t hi_mask, std::size_t cbit, std::size_t tbit)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        cswap(a + 2 * (i00 | cbit), a + 2 * (i00 | cbit | tbit));
    }
}

void
scalar_swap(double* a, std::size_t hb, std::size_t he,
            std::size_t lo_mask, std::size_t hi_mask, std::size_t abit,
            std::size_t bbit)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        cswap(a + 2 * (i00 | abit), a + 2 * (i00 | bbit));
    }
}

void
scalar_phase_lut(double* a, std::size_t ib, std::size_t ie,
                 const std::int32_t* key, std::int32_t span,
                 const double* lut_re, const double* lut_im)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const std::int32_t k = key[i] + span;
        cmul(a + 2 * i, lut_re[k], lut_im[k]);
    }
}

void
scalar_probs(const double* a, double* out, std::size_t ib, std::size_t ie)
{
    for (std::size_t i = ib; i < ie; ++i)
        out[i] = norm2(a + 2 * i);
}

double
scalar_norm_sum(const double* a, std::size_t ib, std::size_t ie)
{
    double lane[kReductionLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = ib; i < ie; ++i)
        lane[(i - ib) & (kReductionLanes - 1)] += norm2(a + 2 * i);
    return combine_lanes(lane);
}

double
scalar_weighted_norm_sum(const double* a, const double* table,
                         double offset, std::size_t ib, std::size_t ie)
{
    double lane[kReductionLanes] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = ib; i < ie; ++i)
        lane[(i - ib) & (kReductionLanes - 1)] +=
            norm2(a + 2 * i) * (table[i] + offset);
    return combine_lanes(lane);
}

void
scalar_axpy(double* y, const double* x, double s, std::size_t b,
            std::size_t e)
{
    for (std::size_t i = b; i < e; ++i)
        y[i] += s * x[i];
}

void
scalar_scale(double* y, double s, std::size_t b, std::size_t e)
{
    for (std::size_t i = b; i < e; ++i)
        y[i] *= s;
}

void
scalar_mul_neg_i(double* a, std::size_t ib, std::size_t ie)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const double re = a[2 * i], im = a[2 * i + 1];
        a[2 * i] = im;
        a[2 * i + 1] = -re;
    }
}

void
scalar_rk4_combine(double* y, const double* k1, const double* k2,
                   const double* k3, const double* k4, double w,
                   std::size_t b, std::size_t e)
{
    for (std::size_t i = b; i < e; ++i)
        y[i] += w * (((k1[i] + 2.0 * k2[i]) + 2.0 * k3[i]) + k4[i]);
}

/** Dense phase sweep: trig-bound, one implementation shared by both
 *  tiers (kernels_avx2.cpp reuses it via scalar_table()). */
void
scalar_phase_angles(double* a, std::size_t ib, std::size_t ie,
                    const double* angle, double scale, double constant)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const double ang = scale * (constant + angle[i]);
        cmul(a + 2 * i, std::cos(ang), std::sin(ang));
    }
}

void
scalar_brx(double* a, std::size_t hb, std::size_t he,
           std::size_t low_mask, std::size_t bit, std::size_t batch,
           const double* c2, const double* s2)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * batch * i0;
        double* p1 = a + 2 * batch * (i0 | bit);
        for (std::size_t b = 0; b < batch; ++b)
            rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b], s2[2 * b]);
    }
}

void
scalar_brx_pair(double* a0, double* a1, std::size_t elems,
                std::size_t batch, const double* c2, const double* s2)
{
    for (std::size_t e = 0; e < elems; ++e) {
        double* p0 = a0 + 2 * batch * e;
        double* p1 = a1 + 2 * batch * e;
        for (std::size_t b = 0; b < batch; ++b)
            rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b], s2[2 * b]);
    }
}

void
scalar_bphase_lut(double* a, std::size_t ib, std::size_t ie,
                  const std::int32_t* key, std::int32_t span,
                  std::size_t batch, const double* lut)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t k = static_cast<std::size_t>(key[i] + span);
        const double* ph = lut + 2 * batch * k;
        double* p = a + 2 * batch * i;
        for (std::size_t b = 0; b < batch; ++b)
            cmul(p + 2 * b, ph[2 * b], ph[2 * b + 1]);
    }
}

/** Batched dense phase sweep: trig-bound, one implementation shared
 *  by every tier. The per-point angle replays phase_angles' exact
 *  scale * (constant + angle[i]) operation sequence. */
void
scalar_bphase_angles(double* a, std::size_t ib, std::size_t ie,
                     const double* angle, std::size_t batch,
                     const double* scale, double constant)
{
    for (std::size_t i = ib; i < ie; ++i) {
        const double base = constant + angle[i];
        double* p = a + 2 * batch * i;
        for (std::size_t b = 0; b < batch; ++b) {
            const double ang = scale[b] * base;
            cmul(p + 2 * b, std::cos(ang), std::sin(ang));
        }
    }
}

void
scalar_bweighted_norm_sum(const double* a, std::size_t batch,
                          const double* table, double offset,
                          std::size_t ib, std::size_t ie, double* out)
{
    double lane[kMaxSweepBatch][kReductionLanes] = {};
    for (std::size_t i = ib; i < ie; ++i) {
        const double w = table[i] + offset;
        const double* p = a + 2 * batch * i;
        const std::size_t l = (i - ib) & (kReductionLanes - 1);
        for (std::size_t b = 0; b < batch; ++b)
            lane[b][l] += norm2(p + 2 * b) * w;
    }
    for (std::size_t b = 0; b < batch; ++b)
        out[b] = combine_lanes(lane[b]);
}

} // namespace

const Table&
scalar_table()
{
    static const Table table = {
        "scalar",
        scalar_rx,
        scalar_h,
        scalar_rx2,
        scalar_rz,
        scalar_rzz,
        scalar_cphase,
        scalar_cx,
        scalar_swap,
        scalar_phase_lut,
        scalar_phase_angles,
        scalar_probs,
        scalar_norm_sum,
        scalar_weighted_norm_sum,
        scalar_axpy,
        scalar_scale,
        scalar_mul_neg_i,
        scalar_rk4_combine,
        scalar_brx,
        scalar_brx_pair,
        scalar_bphase_lut,
        scalar_bphase_angles,
        scalar_bweighted_norm_sum,
    };
    return table;
}

} // namespace permuq::sim::kernels
