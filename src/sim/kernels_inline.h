/**
 * @file
 * Shared per-element arithmetic of the statevector kernels.
 *
 * Both kernel tiers (kernels_scalar.cpp, kernels_avx2.cpp) include
 * this header and build with -ffp-contract=off, so the scalar loops
 * and the vector tails/low-qubit fallbacks execute literally the same
 * IEEE-754 operation sequence — the root of the scalar-vs-SIMD
 * bit-identity contract documented in sim/kernels.h. Each helper's
 * formula is written to match the AVX2 lane arithmetic:
 *
 *  - complex multiply:  re' = ar*pr - ai*pi ; im' = ai*pr + ar*pi
 *    (the _mm256_addsub_pd arrangement: t = a * dup_even(p),
 *    u = swap(a) * dup_odd(p), result = addsub(t, u))
 *  - RX mix:            re' = c*ar_self + s*ai_other ;
 *                       im' = c*ai_self - s*ar_other
 *    (addsub with the negated second product)
 *
 * This header is internal to src/sim; include sim/kernels.h for the
 * dispatch API.
 */
#ifndef PERMUQ_SIM_KERNELS_INLINE_H
#define PERMUQ_SIM_KERNELS_INLINE_H

#include <cstddef>

namespace permuq::sim::kernels::detail {

/** In-place complex multiply of the amplitude at @p p (interleaved
 *  [re, im]) by (pr, pi). */
inline void
cmul(double* p, double pr, double pi)
{
    const double ar = p[0], ai = p[1];
    p[0] = ar * pr - ai * pi;
    p[1] = ai * pr + ar * pi;
}

/** One RX butterfly over the amplitude pair at @p p0 / @p p1. */
inline void
rx_pair(double* p0, double* p1, double c, double s)
{
    const double ar0 = p0[0], ai0 = p0[1];
    const double ar1 = p1[0], ai1 = p1[1];
    p0[0] = c * ar0 + s * ai1;
    p0[1] = c * ai0 - s * ar1;
    p1[0] = c * ar1 + s * ai0;
    p1[1] = c * ai1 - s * ar0;
}

/** One Hadamard butterfly over the amplitude pair at @p p0 / @p p1. */
inline void
h_pair(double* p0, double* p1, double inv_sqrt2)
{
    const double ar0 = p0[0], ai0 = p0[1];
    const double ar1 = p1[0], ai1 = p1[1];
    p0[0] = inv_sqrt2 * (ar0 + ar1);
    p0[1] = inv_sqrt2 * (ai0 + ai1);
    p1[0] = inv_sqrt2 * (ar0 - ar1);
    p1[1] = inv_sqrt2 * (ai0 - ai1);
}

/** Swap the two complex amplitudes at @p p0 / @p p1. */
inline void
cswap(double* p0, double* p1)
{
    const double r = p0[0], i = p0[1];
    p0[0] = p1[0];
    p0[1] = p1[1];
    p1[0] = r;
    p1[1] = i;
}

/** |a_i|^2 of the amplitude at @p p. */
inline double
norm2(const double* p)
{
    return p[0] * p[0] + p[1] * p[1];
}

/** Final combine of the fixed 4-lane reduction accumulators. */
inline double
combine_lanes(const double* lane)
{
    return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

} // namespace permuq::sim::kernels::detail

#endif // PERMUQ_SIM_KERNELS_INLINE_H
