/**
 * @file
 * Batched multi-angle QAOA sweep engine (landscape scans, grid
 * searches, multi-start optimizer seeding).
 *
 * A landscape scan evaluates one problem at many (gamma, beta)
 * points. Evaluated one point at a time through QaoaObjective, every
 * point pays the full memory traffic of its own statevector passes —
 * at 22 qubits each evaluation streams hundreds of megabytes, and the
 * arithmetic per byte is tiny. SweepEvaluator amortizes that traffic
 * across a batch of B points held *interleaved* in one buffer: batched
 * element i stores B consecutive [re, im] slots (point b of element i
 * at `a + 2*B*i + 2*b`), so one pass over the buffer advances all B
 * points at once through the batched kernels of sim/kernels.h.
 *
 * Per QAOA layer the engine makes:
 *
 *  - one fused block pass: within each L2-resident block, L1-resident
 *    tiles apply the diagonal cost phase (a B-wide rotation out of a
 *    packed per-point LUT built from the cost batch's baked spectrum)
 *    plus the low-qubit RX butterflies while each tile is cache-hot,
 *    then the mid qubits sweep the block before it is evicted; layer
 *    0 also folds the |+>^n fill into the same pass, and
 *
 *  - one grouped pass per 3 remaining high qubits: the group's 2^3
 *    contiguous runs are walked in L2-sized column chunks, so all 3
 *    butterfly levels touch DRAM once,
 *
 * versus |layers| * (1 fused sweep + ~n/2 blocked traversals) per
 * point sequentially. The final expectation is one batched
 * weighted-norm reduction.
 *
 * Determinism: every (element, point) sees exactly the IEEE-754
 * operation sequence of the sequential QaoaObjective evaluation —
 * same fill value, same LUT angle formula, same butterfly order
 * (qubits ascending), same fixed-lane reduction slicing — so sweep
 * results are *bit-identical* to a per-point QaoaObjective loop, on
 * every SIMD tier and thread count. The noisy sweep replays the exact
 * trajectory RNG stream (error pre-draws are angle-independent, so
 * one stream serves the whole batch; each point samples shots from a
 * copy of the shared post-evolution RNG state) and is bit-identical
 * per point as well, including sampled shots. Weighted problems'
 * noisy path delegates to QaoaObjective per point (their
 * mixed-magnitude phase products round differently under batching).
 *
 * Multi-problem batching (sweep_problems) schedules independent
 * QaoaObjective instances across the common/parallel pool in waves
 * sized by a memory budget, so a many-problem sweep at high qubit
 * counts cannot blow the RSS: each in-flight problem owns one batched
 * buffer, and when only one problem fits the budget (or the pool),
 * problems run serially with full kernel-level parallelism each.
 */
#ifndef PERMUQ_SIM_SWEEP_H
#define PERMUQ_SIM_SWEEP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"

namespace permuq::sim {

/** Knobs of a batched sweep. */
struct SweepOptions
{
    /** Requested points per batched pass; clamped to
     *  [1, kernels::kMaxSweepBatch] and shrunk until the evaluator
     *  footprint fits the memory budget (preferring multiples of 4,
     *  whose [re, im] point slots stay cache-line aligned). */
    std::size_t batch = 8;

    /**
     * Upper bound on batched-buffer bytes. For a single evaluator the
     * batch width shrinks to fit; sweep_problems() additionally caps
     * how many problems evaluate concurrently so the sum of in-flight
     * footprints stays within this budget.
     */
    std::size_t memory_budget_bytes = std::size_t(4) << 30;
};

/** Result of one sweep over a point list. */
struct SweepResult
{
    /** Expected cut per point, in input order. Bit-identical to
     *  evaluating each point through QaoaObjective. */
    std::vector<double> values;
    /** Index of the best (maximum) value; first on ties. */
    std::size_t best_index = 0;
    double best_value = 0.0;
    std::size_t points = 0;
    /** Batch width actually used (after clamping to the budget). */
    std::size_t batch = 0;
    double seconds = 0.0;
    double points_per_sec = 0.0;
    /** Evaluator footprint (see SweepEvaluator::memory_bytes). */
    std::size_t memory_bytes = 0;
};

/**
 * Batched sweep engine over one QaoaObjective. Borrows the objective
 * (and reads its cost batch / baked spectrum directly); keep it alive
 * for the evaluator's lifetime. Not thread-safe — sweep_problems()
 * gives each concurrent problem its own evaluator.
 */
class SweepEvaluator
{
  public:
    explicit SweepEvaluator(QaoaObjective& objective,
                            const SweepOptions& options = {});

    /** Batch width after clamping to the options and the budget. */
    std::size_t batch() const { return batch_; }

    /**
     * Exact bytes of the evaluator's batched buffers: the interleaved
     * amplitude buffer (2^n * 2 * batch doubles) plus the packed
     * per-point phase LUT ((2*span + 1) * 2 * batch doubles when the
     * cost spectrum is uniform; dense spectra reuse the objective's
     * baked table and need no LUT). Computable before allocation —
     * the multi-problem scheduler budgets with this same formula.
     */
    std::size_t memory_bytes() const;

    /** The footprint formula itself. @p uniform_span is the cost
     *  spectrum's key span (0 for dense or empty spectra). */
    static std::size_t memory_bytes(std::int32_t num_qubits,
                                    std::int32_t uniform_span,
                                    std::size_t batch);

    /** Batch width sweep construction would choose for @p objective
     *  under @p options, without building anything. */
    static std::size_t planned_batch(const QaoaObjective& objective,
                                     const SweepOptions& options);

    /** Footprint of planned_batch()'s choice. */
    static std::size_t planned_memory_bytes(const QaoaObjective& objective,
                                            const SweepOptions& options);

    /** Ideal (noiseless) expectation at every point. All points must
     *  share one layer count. */
    SweepResult ideal_sweep(const std::vector<QaoaAngles>& points);

    /** Noisy expectation at every point (see sim/qaoa.h for the
     *  trajectory model). Bit-identical per point to
     *  QaoaObjective::noisy_expectation, sampled shots included. */
    SweepResult noisy_sweep(const circuit::Circuit& compiled,
                            const arch::NoiseModel& noise,
                            const std::vector<QaoaAngles>& points,
                            const NoisySimOptions& options);

    /** Per-point shot histograms of the noisy execution;
     *  counts[p][z] matches QaoaObjective::noisy_counts at point p. */
    std::vector<std::vector<std::int64_t>> noisy_sweep_counts(
        const circuit::Circuit& compiled, const arch::NoiseModel& noise,
        const std::vector<QaoaAngles>& points,
        const NoisySimOptions& options);

  private:
    struct LayerTables;

    void ensure_buffers();
    /** Key span of @p objective's cost spectrum when uniform, 0 for
     *  dense or empty spectra. */
    static std::int32_t spectrum_span(const QaoaObjective& objective);
    std::int32_t uniform_span() const;
    /** Build layer @p layer's phase LUT / mixer tables for the chunk
     *  of @p nb points starting at @p pts, packing the LUT into
     *  @p lut_storage (per-trajectory storage on the noisy path). */
    void build_layer_tables(const QaoaAngles* pts, std::size_t nb,
                            std::size_t layer, LayerTables& tables,
                            std::vector<double>& lut_storage);
    /** One fused pass over @p state: optional |+> fill, optional
     *  diagonal phase, low-qubit butterflies per tile, then the
     *  grouped high-qubit passes. Mixer-only when @p phase is null. */
    void mixer_layer(double* state, std::size_t nb,
                     const LayerTables* phase, const double* c2,
                     const double* s2, bool fill);
    void fill_plus(double* state, std::size_t nb);
    /** Batched objective reduction replicating the sequential
     *  fixed-slice parallel_reduce_sum boundaries. */
    void reduce_expectation(const double* state, std::size_t nb,
                            double* out);
    void run_ideal_chunk(const QaoaAngles* pts, std::size_t nb,
                         double* out);

    template <typename PointSink>
    void run_noisy_chunk(const circuit::Circuit& compiled,
                         const arch::NoiseModel& noise,
                         const QaoaAngles* pts, std::size_t nb,
                         const NoisySimOptions& options,
                         std::size_t extra_bytes_per_point,
                         PointSink&& sink);

    QaoaObjective& obj_;
    std::size_t batch_ = 1;
    std::size_t budget_ = 0;
    std::vector<double> amp_; ///< batched ideal-path buffer (lazy)
    std::vector<double> lut_; ///< packed per-point phase LUT (lazy)
};

/** Result of a multi-problem sweep. */
struct MultiSweepResult
{
    /** One per objective, in input order; each bit-identical to a
     *  standalone SweepEvaluator over that objective. */
    std::vector<SweepResult> problems;
    /** Problems evaluated concurrently per wave. */
    std::size_t problems_in_flight = 0;
    /** Largest sum of in-flight evaluator footprints. */
    std::size_t peak_memory_bytes = 0;
    double seconds = 0.0;
    /** Aggregate throughput: problems * points / seconds. */
    double points_per_sec = 0.0;
};

/**
 * Ideal-sweep @p points over every objective, scheduling problems
 * across the thread pool in memory-budgeted waves. Results are a pure
 * function of (objectives, points, options) — identical at any thread
 * count or wave size.
 */
MultiSweepResult sweep_problems(
    const std::vector<QaoaObjective*>& objectives,
    const std::vector<QaoaAngles>& points,
    const SweepOptions& options = {});

/**
 * A gammas x betas angle grid with @p layers layers (all layers share
 * a point's angles): gamma_i = (i+1) * pi / (gammas+1), beta_j =
 * (j+1) * (pi/2) / (betas+1), row-major over (i, j).
 */
std::vector<QaoaAngles> sweep_grid(std::size_t gammas, std::size_t betas,
                                   std::int32_t layers);

} // namespace permuq::sim

#endif // PERMUQ_SIM_SWEEP_H
