#include "hamiltonian.h"

#include <cmath>

#include "common/error.h"

namespace permuq::sim {

namespace {

using Amplitude = Statevector::Amplitude;

/** The 4x4 unitary exp(-i J dt h_model) over |q_b q_a>. */
std::array<Amplitude, 16>
term_unitary(SpinModel model, double theta)
{
    std::array<Amplitude, 16> u{};
    auto at = [&u](int r, int c) -> Amplitude& {
        return u[static_cast<std::size_t>(4 * r + c)];
    };
    const Amplitude one(1.0, 0.0);
    switch (model) {
      case SpinModel::Ising: {
        // exp(-i theta ZZ) = diag(e^-it, e^it, e^it, e^-it).
        at(0, 0) = std::polar(1.0, -theta);
        at(1, 1) = std::polar(1.0, theta);
        at(2, 2) = std::polar(1.0, theta);
        at(3, 3) = std::polar(1.0, -theta);
        return u;
      }
      case SpinModel::XY: {
        // XX+YY couples |01>,|10> with strength 2; |00>,|11> idle.
        at(0, 0) = one;
        at(3, 3) = one;
        at(1, 1) = Amplitude(std::cos(2 * theta), 0.0);
        at(2, 2) = Amplitude(std::cos(2 * theta), 0.0);
        at(1, 2) = Amplitude(0.0, -std::sin(2 * theta));
        at(2, 1) = Amplitude(0.0, -std::sin(2 * theta));
        return u;
      }
      case SpinModel::Heisenberg: {
        // ZZ adds diag(1,-1,-1,1): outer states pick up e^{-i theta},
        // the inner block e^{+i theta} times the XY rotation.
        at(0, 0) = std::polar(1.0, -theta);
        at(3, 3) = std::polar(1.0, -theta);
        Amplitude inner_phase = std::polar(1.0, theta);
        at(1, 1) = inner_phase * Amplitude(std::cos(2 * theta), 0.0);
        at(2, 2) = inner_phase * Amplitude(std::cos(2 * theta), 0.0);
        at(1, 2) = inner_phase * Amplitude(0.0, -std::sin(2 * theta));
        at(2, 1) = inner_phase * Amplitude(0.0, -std::sin(2 * theta));
        return u;
      }
    }
    throw PanicError("unknown spin model");
}

} // namespace

void
apply_hamiltonian(const SpinHamiltonian& h, const Statevector& in,
                  std::vector<Amplitude>& out)
{
    const auto& amp = in.amplitudes();
    out.assign(amp.size(), Amplitude(0.0, 0.0));
    const double j = h.coupling;
    for (const auto& e : h.interactions.edges()) {
        const std::size_t abit = std::size_t(1) << e.a;
        const std::size_t bbit = std::size_t(1) << e.b;
        for (std::size_t i = 0; i < amp.size(); ++i) {
            bool za = (i & abit) != 0, zb = (i & bbit) != 0;
            if (h.model != SpinModel::XY) {
                // ZZ term.
                out[i] += (za == zb ? j : -j) * amp[i];
            }
            if (h.model != SpinModel::Ising && za != zb) {
                // (XX + YY) |01> = 2 |10> and vice versa.
                out[i ^ (abit | bbit)] += 2.0 * j * amp[i];
            }
        }
    }
}

void
exact_evolution(const SpinHamiltonian& h, Statevector& state, double time,
                std::int32_t integration_steps)
{
    fatal_unless(integration_steps >= 1, "need at least one step");
    double dt = time / integration_steps;
    auto& psi = state.amplitudes_mut();
    std::vector<Amplitude> k1, k2, k3, k4, tmp;
    Statevector scratch(state.num_qubits());
    auto deriv = [&](const std::vector<Amplitude>& from,
                     std::vector<Amplitude>& to) {
        scratch.amplitudes_mut() = from;
        apply_hamiltonian(h, scratch, to);
        const Amplitude minus_i(0.0, -1.0);
        for (auto& x : to)
            x *= minus_i;
    };
    for (std::int32_t s = 0; s < integration_steps; ++s) {
        deriv(psi, k1);
        tmp = psi;
        for (std::size_t i = 0; i < psi.size(); ++i)
            tmp[i] += 0.5 * dt * k1[i];
        deriv(tmp, k2);
        tmp = psi;
        for (std::size_t i = 0; i < psi.size(); ++i)
            tmp[i] += 0.5 * dt * k2[i];
        deriv(tmp, k3);
        tmp = psi;
        for (std::size_t i = 0; i < psi.size(); ++i)
            tmp[i] += dt * k3[i];
        deriv(tmp, k4);
        for (std::size_t i = 0; i < psi.size(); ++i)
            psi[i] += dt / 6.0 *
                      (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        // RK4 drifts off the unit sphere slowly; renormalize.
        double norm = std::sqrt(state.norm_sq());
        for (auto& x : psi)
            x /= norm;
    }
}

void
trotter_step(const SpinHamiltonian& h, const circuit::Circuit& compiled,
             Statevector& state, double dt)
{
    auto u = term_unitary(h.model, h.coupling * dt);
    for (const auto& op : compiled.ops())
        if (op.kind == circuit::OpKind::Compute)
            state.apply_two_qubit(u, op.a, op.b);
}

void
trotter_evolution(const SpinHamiltonian& h,
                  const circuit::Circuit& compiled, Statevector& state,
                  double time, std::int32_t steps)
{
    fatal_unless(steps >= 1, "need at least one Trotter step");
    double dt = time / steps;
    auto u = term_unitary(h.model, h.coupling * dt);
    const auto& ops = compiled.ops();
    for (std::int32_t s = 0; s < steps; ++s) {
        bool reversed = s % 2 == 1;
        for (std::size_t k = 0; k < ops.size(); ++k) {
            const auto& op = ops[reversed ? ops.size() - 1 - k : k];
            if (op.kind == circuit::OpKind::Compute)
                state.apply_two_qubit(u, op.a, op.b);
        }
    }
}

double
state_fidelity(const Statevector& a, const Statevector& b)
{
    fatal_unless(a.num_qubits() == b.num_qubits(),
                 "fidelity of different-size states");
    Amplitude inner(0.0, 0.0);
    for (std::size_t i = 0; i < a.amplitudes().size(); ++i)
        inner += std::conj(a.amplitudes()[i]) * b.amplitudes()[i];
    return std::norm(inner);
}

double
energy_expectation(const SpinHamiltonian& h, const Statevector& state)
{
    std::vector<Amplitude> h_psi;
    apply_hamiltonian(h, state, h_psi);
    Amplitude inner(0.0, 0.0);
    for (std::size_t i = 0; i < h_psi.size(); ++i)
        inner += std::conj(state.amplitudes()[i]) * h_psi[i];
    return inner.real();
}

} // namespace permuq::sim
