#include "hamiltonian.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "sim/diagonal.h"
#include "sim/kernel_util.h"
#include "sim/kernels.h"

namespace permuq::sim {

namespace {

using Amplitude = Statevector::Amplitude;

/** The 4x4 unitary exp(-i J dt h_model) over |q_b q_a>. */
std::array<Amplitude, 16>
term_unitary(SpinModel model, double theta)
{
    std::array<Amplitude, 16> u{};
    auto at = [&u](int r, int c) -> Amplitude& {
        return u[static_cast<std::size_t>(4 * r + c)];
    };
    const Amplitude one(1.0, 0.0);
    switch (model) {
      case SpinModel::Ising: {
        // exp(-i theta ZZ) = diag(e^-it, e^it, e^it, e^-it).
        at(0, 0) = std::polar(1.0, -theta);
        at(1, 1) = std::polar(1.0, theta);
        at(2, 2) = std::polar(1.0, theta);
        at(3, 3) = std::polar(1.0, -theta);
        return u;
      }
      case SpinModel::XY: {
        // XX+YY couples |01>,|10> with strength 2; |00>,|11> idle.
        at(0, 0) = one;
        at(3, 3) = one;
        at(1, 1) = Amplitude(std::cos(2 * theta), 0.0);
        at(2, 2) = Amplitude(std::cos(2 * theta), 0.0);
        at(1, 2) = Amplitude(0.0, -std::sin(2 * theta));
        at(2, 1) = Amplitude(0.0, -std::sin(2 * theta));
        return u;
      }
      case SpinModel::Heisenberg: {
        // ZZ adds diag(1,-1,-1,1): outer states pick up e^{-i theta},
        // the inner block e^{+i theta} times the XY rotation.
        at(0, 0) = std::polar(1.0, -theta);
        at(3, 3) = std::polar(1.0, -theta);
        Amplitude inner_phase = std::polar(1.0, theta);
        at(1, 1) = inner_phase * Amplitude(std::cos(2 * theta), 0.0);
        at(2, 2) = inner_phase * Amplitude(std::cos(2 * theta), 0.0);
        at(1, 2) = inner_phase * Amplitude(0.0, -std::sin(2 * theta));
        at(2, 1) = inner_phase * Amplitude(0.0, -std::sin(2 * theta));
        return u;
      }
    }
    throw PanicError("unknown spin model");
}

/** Fuse one Ising Trotter step (all terms diagonal, all commuting)
 *  into a single phase sweep: exp(-i theta ZZ) = RZZ(2 theta). */
DiagonalBatch
ising_step_batch(const circuit::Circuit& compiled, double theta)
{
    DiagonalBatch batch;
    for (const auto& op : compiled.ops())
        if (op.kind == circuit::OpKind::Compute)
            batch.add_rzz(op.a, op.b, 2.0 * theta);
    return batch;
}

} // namespace

void
apply_hamiltonian(const SpinHamiltonian& h, const Statevector& in,
                  std::vector<Amplitude>& out)
{
    const auto& amp = in.amplitudes();
    out.assign(amp.size(), Amplitude(0.0, 0.0));
    const double j = h.coupling;
    const bool with_zz = h.model != SpinModel::XY;
    const bool with_xy = h.model != SpinModel::Ising;
    const Amplitude* src = amp.data();
    Amplitude* dst = out.data();
    // Edges stay serial (out accumulates across them in a fixed
    // order); within an edge, disjoint 4-amplitude blocks are
    // element-wise and parallelize deterministically.
    for (const auto& e : h.interactions.edges()) {
        const std::size_t abit = std::size_t(1) << e.a;
        const std::size_t bbit = std::size_t(1) << e.b;
        const std::size_t lo = std::min(abit, bbit) - 1;
        const std::size_t hi = std::max(abit, bbit) - 1;
        common::parallel_for(
            0, amp.size() >> 2, kKernelGrain,
            [=](std::size_t begin, std::size_t end) {
                for (std::size_t blk = begin; blk < end; ++blk) {
                    const std::size_t i00 = insert_two_zeros(blk, lo, hi);
                    const std::size_t i01 = i00 | abit;
                    const std::size_t i10 = i00 | bbit;
                    const std::size_t i11 = i00 | abit | bbit;
                    if (with_zz) {
                        // ZZ term: +J on aligned, -J on anti-aligned.
                        dst[i00] += j * src[i00];
                        dst[i01] -= j * src[i01];
                        dst[i10] -= j * src[i10];
                        dst[i11] += j * src[i11];
                    }
                    if (with_xy) {
                        // (XX + YY) |01> = 2 |10> and vice versa.
                        dst[i01] += 2.0 * j * src[i10];
                        dst[i10] += 2.0 * j * src[i01];
                    }
                }
            });
    }
}

void
exact_evolution(const SpinHamiltonian& h, Statevector& state, double time,
                std::int32_t integration_steps)
{
    fatal_unless(integration_steps >= 1, "need at least one step");
    double dt = time / integration_steps;
    auto& psi = state.amplitudes_mut();
    std::vector<Amplitude> k1, k2, k3, k4, tmp;
    Statevector scratch(state.num_qubits());
    // The blend/combine/renormalize loops are plain element-wise
    // double arithmetic: run them through the SIMD kernel tier
    // (interleaved [re, im] doubles, complex index range doubled).
    const kernels::Table& kern = kernels::active_counted();
    auto deriv = [&](const std::vector<Amplitude>& from,
                     std::vector<Amplitude>& to) {
        scratch.amplitudes_mut() = from;
        apply_hamiltonian(h, scratch, to);
        double* t = reinterpret_cast<double*>(to.data());
        common::parallel_for(
            0, to.size(), kKernelGrain,
            [=, &kern](std::size_t b, std::size_t e) {
                kern.mul_neg_i(t, b, e);
            });
    };
    // y <- psi + scale * k, element-wise (deterministic in parallel).
    auto blend = [&](std::vector<Amplitude>& y,
                     const std::vector<Amplitude>& k, double scale) {
        y = psi;
        double* yp = reinterpret_cast<double*>(y.data());
        const double* kp = reinterpret_cast<const double*>(k.data());
        common::parallel_for(
            0, y.size(), kKernelGrain,
            [=, &kern](std::size_t b, std::size_t e) {
                kern.axpy(yp, kp, scale, 2 * b, 2 * e);
            });
    };
    for (std::int32_t s = 0; s < integration_steps; ++s) {
        deriv(psi, k1);
        blend(tmp, k1, 0.5 * dt);
        deriv(tmp, k2);
        blend(tmp, k2, 0.5 * dt);
        deriv(tmp, k3);
        blend(tmp, k3, dt);
        deriv(tmp, k4);
        double* p = reinterpret_cast<double*>(psi.data());
        const double* a1 = reinterpret_cast<const double*>(k1.data());
        const double* a2 = reinterpret_cast<const double*>(k2.data());
        const double* a3 = reinterpret_cast<const double*>(k3.data());
        const double* a4 = reinterpret_cast<const double*>(k4.data());
        const double w = dt / 6.0;
        common::parallel_for(
            0, psi.size(), kKernelGrain,
            [=, &kern](std::size_t b, std::size_t e) {
                kern.rk4_combine(p, a1, a2, a3, a4, w, 2 * b, 2 * e);
            });
        // RK4 drifts off the unit sphere slowly; renormalize.
        const double inv_norm = 1.0 / std::sqrt(state.norm_sq());
        common::parallel_for(
            0, psi.size(), kKernelGrain,
            [=, &kern](std::size_t b, std::size_t e) {
                kern.scale(p, inv_norm, 2 * b, 2 * e);
            });
    }
}

void
trotter_step(const SpinHamiltonian& h, const circuit::Circuit& compiled,
             Statevector& state, double dt)
{
    const double theta = h.coupling * dt;
    if (h.model == SpinModel::Ising) {
        // Every Ising term commutes: the whole step is one sweep.
        ising_step_batch(compiled, theta).apply(state);
        return;
    }
    auto u = term_unitary(h.model, theta);
    for (const auto& op : compiled.ops())
        if (op.kind == circuit::OpKind::Compute)
            state.apply_two_qubit(u, op.a, op.b);
}

void
trotter_evolution(const SpinHamiltonian& h,
                  const circuit::Circuit& compiled, Statevector& state,
                  double time, std::int32_t steps)
{
    fatal_unless(steps >= 1, "need at least one Trotter step");
    double dt = time / steps;
    if (h.model == SpinModel::Ising) {
        // Order-independent (zero Trotter error): build the fused
        // step once and sweep it per step.
        auto batch = ising_step_batch(compiled, h.coupling * dt);
        for (std::int32_t s = 0; s < steps; ++s)
            batch.apply(state);
        return;
    }
    auto u = term_unitary(h.model, h.coupling * dt);
    for (std::int32_t s = 0; s < steps; ++s)
        circuit::for_each_replayed(
            compiled, s % 2 == 1,
            [&](const circuit::ScheduledOp& op, std::size_t) {
                if (op.kind == circuit::OpKind::Compute)
                    state.apply_two_qubit(u, op.a, op.b);
            });
}

double
state_fidelity(const Statevector& a, const Statevector& b)
{
    fatal_unless(a.num_qubits() == b.num_qubits(),
                 "fidelity of different-size states");
    const Amplitude* pa = a.amplitudes().data();
    const Amplitude* pb = b.amplitudes().data();
    Amplitude inner = common::parallel_reduce_sum<Amplitude>(
        0, a.amplitudes().size(), kKernelGrain * 4,
        [=](std::size_t begin, std::size_t end) {
            Amplitude s(0.0, 0.0);
            for (std::size_t i = begin; i < end; ++i)
                s += std::conj(pa[i]) * pb[i];
            return s;
        });
    return std::norm(inner);
}

double
energy_expectation(const SpinHamiltonian& h, const Statevector& state)
{
    std::vector<Amplitude> h_psi;
    apply_hamiltonian(h, state, h_psi);
    const Amplitude* psi = state.amplitudes().data();
    const Amplitude* hp = h_psi.data();
    Amplitude inner = common::parallel_reduce_sum<Amplitude>(
        0, h_psi.size(), kKernelGrain * 4,
        [=](std::size_t begin, std::size_t end) {
            Amplitude s(0.0, 0.0);
            for (std::size_t i = begin; i < end; ++i)
                s += std::conj(psi[i]) * hp[i];
            return s;
        });
    return inner.real();
}

} // namespace permuq::sim
