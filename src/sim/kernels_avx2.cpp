/**
 * @file
 * AVX2 tier of the statevector kernels (see sim/kernels.h for the
 * dispatch design and the determinism contract).
 *
 * Layout: amplitudes are interleaved [re, im], so one __m256d holds
 * two complex values. Complex multiplies use the movedup / permute /
 * addsub arrangement whose per-lane operation sequence matches the
 * scalar helpers in kernels_inline.h exactly; reductions accumulate
 * into the four register lanes (element j of a range lands in lane
 * j mod 4, combined as (l0+l1)+(l2+l3)), which the scalar tier
 * mirrors with four explicit accumulators. Gates vectorize when the
 * qubit stride leaves 4 consecutive amplitudes per group (block mask
 * >= 3, i.e. qubit index >= 2) and fall back to the shared scalar
 * loop otherwise; alignment prologues/tails run the identical
 * per-element helpers, so chunk boundaries (which depend on thread
 * count) cannot perturb any element's value.
 *
 * This TU builds with -mavx2 -ffp-contract=off; when the toolchain
 * can't target AVX2 the #else branch aliases the scalar tier.
 */
#include "sim/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "sim/kernel_util.h"
#include "sim/kernels_inline.h"

namespace permuq::sim::kernels {

namespace {

/** Swap re/im within each complex: [a0,a1,a2,a3] -> [a1,a0,a3,a2]. */
inline __m256d
swap_halves(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

/** Multiply two complex values in @p v by the broadcast phase
 *  (pr, pi): per lane pair, re' = ar*pr - ai*pi, im' = ai*pr + ar*pi
 *  — the lane sequence of detail::cmul. */
inline __m256d
cmul_broadcast(__m256d v, __m256d pr, __m256d pi)
{
    const __m256d t = _mm256_mul_pd(v, pr);
    const __m256d u = _mm256_mul_pd(swap_halves(v), pi);
    return _mm256_addsub_pd(t, u);
}

/** Multiply two complex values in @p v by the two phases packed in
 *  @p p = [pr0, pi0, pr1, pi1]. */
inline __m256d
cmul_packed(__m256d v, __m256d p)
{
    const __m256d pr = _mm256_movedup_pd(p);
    const __m256d pi = _mm256_permute_pd(p, 0xF);
    return cmul_broadcast(v, pr, pi);
}

/** Half an RX butterfly: re' = c*ar_self + s*ai_other,
 *  im' = c*ai_self - s*ar_other (the lane sequence of
 *  detail::rx_pair). @p sign must be set1(-0.0). */
inline __m256d
rx_mix(__m256d self, __m256d other, __m256d c, __m256d s, __m256d sign)
{
    const __m256d t = _mm256_mul_pd(self, c);
    const __m256d u = _mm256_mul_pd(swap_halves(other), s);
    // addsub subtracts in even lanes and adds in odd lanes; negating
    // u flips that to the +re/-im pattern RX needs. IEEE negation is
    // exact, so x - (-y) == x + y bit-for-bit.
    return _mm256_addsub_pd(t, _mm256_xor_pd(u, sign));
}

/** |a|^2 of four consecutive complex values: returns [n0,n1,n2,n3].
 *  hadd computes re*re + im*im per value (the sequence of
 *  detail::norm2); the cross-lane permute restores element order. */
inline __m256d
norm4(__m256d a01, __m256d a23)
{
    const __m256d h = _mm256_hadd_pd(_mm256_mul_pd(a01, a01),
                                     _mm256_mul_pd(a23, a23));
    return _mm256_permute4x64_pd(h, 0xD8); // [n0,n2,n1,n3] -> order
}

void
avx2_rx(double* a, std::size_t hb, std::size_t he, std::size_t low_mask,
        std::size_t bit, double c, double s)
{
    if (low_mask < 3) { // qubits 0/1: pairs are not lane-contiguous
        scalar_table().rx(a, hb, he, low_mask, bit, c, s);
        return;
    }
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::rx_pair(a + 2 * i0, a + 2 * (i0 | bit), c, s);
    }
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d sv = _mm256_set1_pd(s);
    const __m256d sign = _mm256_set1_pd(-0.0);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * i0;
        double* p1 = a + 2 * (i0 | bit);
        const __m256d v0a = _mm256_loadu_pd(p0);
        const __m256d v0b = _mm256_loadu_pd(p0 + 4);
        const __m256d v1a = _mm256_loadu_pd(p1);
        const __m256d v1b = _mm256_loadu_pd(p1 + 4);
        _mm256_storeu_pd(p0, rx_mix(v0a, v1a, cv, sv, sign));
        _mm256_storeu_pd(p0 + 4, rx_mix(v0b, v1b, cv, sv, sign));
        _mm256_storeu_pd(p1, rx_mix(v1a, v0a, cv, sv, sign));
        _mm256_storeu_pd(p1 + 4, rx_mix(v1b, v0b, cv, sv, sign));
    }
    for (; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::rx_pair(a + 2 * i0, a + 2 * (i0 | bit), c, s);
    }
}

void
avx2_h(double* a, std::size_t hb, std::size_t he, std::size_t low_mask,
       std::size_t bit, double inv_sqrt2)
{
    if (low_mask < 3) {
        scalar_table().h(a, hb, he, low_mask, bit, inv_sqrt2);
        return;
    }
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::h_pair(a + 2 * i0, a + 2 * (i0 | bit), inv_sqrt2);
    }
    const __m256d inv = _mm256_set1_pd(inv_sqrt2);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * i0;
        double* p1 = a + 2 * (i0 | bit);
        const __m256d v0a = _mm256_loadu_pd(p0);
        const __m256d v0b = _mm256_loadu_pd(p0 + 4);
        const __m256d v1a = _mm256_loadu_pd(p1);
        const __m256d v1b = _mm256_loadu_pd(p1 + 4);
        _mm256_storeu_pd(
            p0, _mm256_mul_pd(inv, _mm256_add_pd(v0a, v1a)));
        _mm256_storeu_pd(
            p0 + 4, _mm256_mul_pd(inv, _mm256_add_pd(v0b, v1b)));
        _mm256_storeu_pd(
            p1, _mm256_mul_pd(inv, _mm256_sub_pd(v0a, v1a)));
        _mm256_storeu_pd(
            p1 + 4, _mm256_mul_pd(inv, _mm256_sub_pd(v0b, v1b)));
    }
    for (; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        detail::h_pair(a + 2 * i0, a + 2 * (i0 | bit), inv_sqrt2);
    }
}

void
avx2_rx2(double* a, std::size_t hb, std::size_t he, std::size_t lo_mask,
         std::size_t hi_mask, std::size_t pbit, std::size_t qbit,
         double c, double s)
{
    if (lo_mask < 3) {
        scalar_table().rx2(a, hb, he, lo_mask, hi_mask, pbit, qbit, c,
                           s);
        return;
    }
    auto one_block = [=](std::size_t h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p00 = a + 2 * i00;
        double* pp = a + 2 * (i00 | pbit);
        double* pq = a + 2 * (i00 | qbit);
        double* ppq = a + 2 * (i00 | pbit | qbit);
        detail::rx_pair(p00, pp, c, s);
        detail::rx_pair(pq, ppq, c, s);
        detail::rx_pair(p00, pq, c, s);
        detail::rx_pair(pp, ppq, c, s);
    };
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h)
        one_block(h);
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d sv = _mm256_set1_pd(s);
    const __m256d sign = _mm256_set1_pd(-0.0);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p00 = a + 2 * i00;
        double* pp = a + 2 * (i00 | pbit);
        double* pq = a + 2 * (i00 | qbit);
        double* ppq = a + 2 * (i00 | pbit | qbit);
        __m256d v00a = _mm256_loadu_pd(p00);
        __m256d v00b = _mm256_loadu_pd(p00 + 4);
        __m256d vpa = _mm256_loadu_pd(pp);
        __m256d vpb = _mm256_loadu_pd(pp + 4);
        __m256d vqa = _mm256_loadu_pd(pq);
        __m256d vqb = _mm256_loadu_pd(pq + 4);
        __m256d vpqa = _mm256_loadu_pd(ppq);
        __m256d vpqb = _mm256_loadu_pd(ppq + 4);
        // RX on the pbit pairs...
        __m256d t;
        t = rx_mix(v00a, vpa, cv, sv, sign);
        vpa = rx_mix(vpa, v00a, cv, sv, sign);
        v00a = t;
        t = rx_mix(v00b, vpb, cv, sv, sign);
        vpb = rx_mix(vpb, v00b, cv, sv, sign);
        v00b = t;
        t = rx_mix(vqa, vpqa, cv, sv, sign);
        vpqa = rx_mix(vpqa, vqa, cv, sv, sign);
        vqa = t;
        t = rx_mix(vqb, vpqb, cv, sv, sign);
        vpqb = rx_mix(vpqb, vqb, cv, sv, sign);
        vqb = t;
        // ...then on the qbit pairs, all still in registers.
        t = rx_mix(v00a, vqa, cv, sv, sign);
        vqa = rx_mix(vqa, v00a, cv, sv, sign);
        v00a = t;
        t = rx_mix(v00b, vqb, cv, sv, sign);
        vqb = rx_mix(vqb, v00b, cv, sv, sign);
        v00b = t;
        t = rx_mix(vpa, vpqa, cv, sv, sign);
        vpqa = rx_mix(vpqa, vpa, cv, sv, sign);
        vpa = t;
        t = rx_mix(vpb, vpqb, cv, sv, sign);
        vpqb = rx_mix(vpqb, vpb, cv, sv, sign);
        vpb = t;
        _mm256_storeu_pd(p00, v00a);
        _mm256_storeu_pd(p00 + 4, v00b);
        _mm256_storeu_pd(pp, vpa);
        _mm256_storeu_pd(pp + 4, vpb);
        _mm256_storeu_pd(pq, vqa);
        _mm256_storeu_pd(pq + 4, vqb);
        _mm256_storeu_pd(ppq, vpqa);
        _mm256_storeu_pd(ppq + 4, vpqb);
    }
    for (; h < he; ++h)
        one_block(h);
}

void
avx2_rz(double* a, std::size_t ib, std::size_t ie, std::size_t bit,
        double e0r, double e0i, double e1r, double e1i)
{
    if (bit < 4) { // phase alternates within a 4-amplitude group
        scalar_table().rz(a, ib, ie, bit, e0r, e0i, e1r, e1i);
        return;
    }
    auto one = [=](std::size_t i) {
        if (i & bit)
            detail::cmul(a + 2 * i, e1r, e1i);
        else
            detail::cmul(a + 2 * i, e0r, e0i);
    };
    std::size_t i = ib;
    for (; i < ie && (i & 3) != 0; ++i)
        one(i);
    const __m256d r0 = _mm256_set1_pd(e0r), im0 = _mm256_set1_pd(e0i);
    const __m256d r1 = _mm256_set1_pd(e1r), im1 = _mm256_set1_pd(e1i);
    for (; i + 4 <= ie; i += 4) {
        const bool hi = (i & bit) != 0;
        const __m256d pr = hi ? r1 : r0;
        const __m256d pi = hi ? im1 : im0;
        double* p = a + 2 * i;
        _mm256_storeu_pd(p, cmul_broadcast(_mm256_loadu_pd(p), pr, pi));
        _mm256_storeu_pd(
            p + 4, cmul_broadcast(_mm256_loadu_pd(p + 4), pr, pi));
    }
    for (; i < ie; ++i)
        one(i);
}

void
avx2_rzz(double* a, std::size_t ib, std::size_t ie, std::size_t abit,
         std::size_t bbit, double sr, double si, double dr, double di)
{
    if (abit < 4 || bbit < 4) {
        scalar_table().rzz(a, ib, ie, abit, bbit, sr, si, dr, di);
        return;
    }
    auto one = [=](std::size_t i) {
        const bool aligned = ((i & abit) != 0) == ((i & bbit) != 0);
        if (aligned)
            detail::cmul(a + 2 * i, sr, si);
        else
            detail::cmul(a + 2 * i, dr, di);
    };
    std::size_t i = ib;
    for (; i < ie && (i & 3) != 0; ++i)
        one(i);
    const __m256d rs = _mm256_set1_pd(sr), is = _mm256_set1_pd(si);
    const __m256d rd = _mm256_set1_pd(dr), id = _mm256_set1_pd(di);
    for (; i + 4 <= ie; i += 4) {
        const bool aligned = ((i & abit) != 0) == ((i & bbit) != 0);
        const __m256d pr = aligned ? rs : rd;
        const __m256d pi = aligned ? is : id;
        double* p = a + 2 * i;
        _mm256_storeu_pd(p, cmul_broadcast(_mm256_loadu_pd(p), pr, pi));
        _mm256_storeu_pd(
            p + 4, cmul_broadcast(_mm256_loadu_pd(p + 4), pr, pi));
    }
    for (; i < ie; ++i)
        one(i);
}

void
avx2_cphase(double* a, std::size_t hb, std::size_t he,
            std::size_t lo_mask, std::size_t hi_mask,
            std::size_t target_bits, double pr, double pi)
{
    if (lo_mask < 3) {
        scalar_table().cphase(a, hb, he, lo_mask, hi_mask, target_bits,
                              pr, pi);
        return;
    }
    auto one = [=](std::size_t h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        detail::cmul(a + 2 * (i00 | target_bits), pr, pi);
    };
    std::size_t h = hb;
    for (; h < he && (h & 3) != 0; ++h)
        one(h);
    const __m256d prv = _mm256_set1_pd(pr);
    const __m256d piv = _mm256_set1_pd(pi);
    for (; h + 4 <= he; h += 4) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p = a + 2 * (i00 | target_bits);
        _mm256_storeu_pd(p,
                         cmul_broadcast(_mm256_loadu_pd(p), prv, piv));
        _mm256_storeu_pd(
            p + 4, cmul_broadcast(_mm256_loadu_pd(p + 4), prv, piv));
    }
    for (; h < he; ++h)
        one(h);
}

void
avx2_cx(double* a, std::size_t hb, std::size_t he, std::size_t lo_mask,
        std::size_t hi_mask, std::size_t cbit, std::size_t tbit)
{
    // Pure 16-byte moves, one complex per __m128d; no arithmetic, so
    // values are trivially identical to the scalar tier.
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p0 = a + 2 * (i00 | cbit);
        double* p1 = a + 2 * (i00 | cbit | tbit);
        const __m128d x = _mm_loadu_pd(p0);
        const __m128d y = _mm_loadu_pd(p1);
        _mm_storeu_pd(p0, y);
        _mm_storeu_pd(p1, x);
    }
}

void
avx2_swap(double* a, std::size_t hb, std::size_t he, std::size_t lo_mask,
          std::size_t hi_mask, std::size_t abit, std::size_t bbit)
{
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i00 = insert_two_zeros(h, lo_mask, hi_mask);
        double* p0 = a + 2 * (i00 | abit);
        double* p1 = a + 2 * (i00 | bbit);
        const __m128d x = _mm_loadu_pd(p0);
        const __m128d y = _mm_loadu_pd(p1);
        _mm_storeu_pd(p0, y);
        _mm_storeu_pd(p1, x);
    }
}

// GCC's non-masked gather intrinsics expand through an undefined
// source register, tripping -Wmaybe-uninitialized; the full-ones mask
// below means every lane is written.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void
avx2_phase_lut(double* a, std::size_t ib, std::size_t ie,
               const std::int32_t* key, std::int32_t span,
               const double* lut_re, const double* lut_im)
{
    const __m128i span_v = _mm_set1_epi32(span);
    std::size_t i = ib;
    for (; i + 4 <= ie; i += 4) {
        __m128i k = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(key + i));
        k = _mm_add_epi32(k, span_v);
        const __m256d pr4 = _mm256_i32gather_pd(lut_re, k, 8);
        const __m256d pi4 = _mm256_i32gather_pd(lut_im, k, 8);
        const __m256d lo = _mm256_unpacklo_pd(pr4, pi4);
        const __m256d hi = _mm256_unpackhi_pd(pr4, pi4);
        const __m256d p01 = _mm256_permute2f128_pd(lo, hi, 0x20);
        const __m256d p23 = _mm256_permute2f128_pd(lo, hi, 0x31);
        double* p = a + 2 * i;
        _mm256_storeu_pd(p, cmul_packed(_mm256_loadu_pd(p), p01));
        _mm256_storeu_pd(p + 4,
                         cmul_packed(_mm256_loadu_pd(p + 4), p23));
    }
    for (; i < ie; ++i) {
        const std::int32_t k = key[i] + span;
        detail::cmul(a + 2 * i, lut_re[k], lut_im[k]);
    }
}
#pragma GCC diagnostic pop

void
avx2_probs(const double* a, double* out, std::size_t ib, std::size_t ie)
{
    std::size_t i = ib;
    for (; i + 4 <= ie; i += 4) {
        const double* p = a + 2 * i;
        _mm256_storeu_pd(out + i, norm4(_mm256_loadu_pd(p),
                                        _mm256_loadu_pd(p + 4)));
    }
    for (; i < ie; ++i)
        out[i] = detail::norm2(a + 2 * i);
}

double
avx2_norm_sum(const double* a, std::size_t ib, std::size_t ie)
{
    const std::size_t len = ie - ib;
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= len; j += 4) {
        const double* p = a + 2 * (ib + j);
        acc = _mm256_add_pd(
            acc, norm4(_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)));
    }
    alignas(32) double lane[kReductionLanes];
    _mm256_store_pd(lane, acc);
    for (; j < len; ++j)
        lane[j & (kReductionLanes - 1)] +=
            detail::norm2(a + 2 * (ib + j));
    return detail::combine_lanes(lane);
}

double
avx2_weighted_norm_sum(const double* a, const double* table,
                       double offset, std::size_t ib, std::size_t ie)
{
    const std::size_t len = ie - ib;
    const __m256d off = _mm256_set1_pd(offset);
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= len; j += 4) {
        const double* p = a + 2 * (ib + j);
        const __m256d n =
            norm4(_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4));
        const __m256d w =
            _mm256_add_pd(_mm256_loadu_pd(table + ib + j), off);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(n, w));
    }
    alignas(32) double lane[kReductionLanes];
    _mm256_store_pd(lane, acc);
    for (; j < len; ++j)
        lane[j & (kReductionLanes - 1)] +=
            detail::norm2(a + 2 * (ib + j)) * (table[ib + j] + offset);
    return detail::combine_lanes(lane);
}

void
avx2_axpy(double* y, const double* x, double s, std::size_t b,
          std::size_t e)
{
    const __m256d sv = _mm256_set1_pd(s);
    std::size_t i = b;
    for (; i + 4 <= e; i += 4)
        _mm256_storeu_pd(
            y + i,
            _mm256_add_pd(_mm256_loadu_pd(y + i),
                          _mm256_mul_pd(sv, _mm256_loadu_pd(x + i))));
    for (; i < e; ++i)
        y[i] += s * x[i];
}

void
avx2_scale(double* y, double s, std::size_t b, std::size_t e)
{
    const __m256d sv = _mm256_set1_pd(s);
    std::size_t i = b;
    for (; i + 4 <= e; i += 4)
        _mm256_storeu_pd(y + i,
                         _mm256_mul_pd(sv, _mm256_loadu_pd(y + i)));
    for (; i < e; ++i)
        y[i] *= s;
}

void
avx2_mul_neg_i(double* a, std::size_t ib, std::size_t ie)
{
    // (re, im) -> (im, -re): swap halves, negate the imag lanes.
    const __m256d neg_odd = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    std::size_t i = ib;
    for (; i + 2 <= ie; i += 2) {
        double* p = a + 2 * i;
        _mm256_storeu_pd(
            p, _mm256_xor_pd(swap_halves(_mm256_loadu_pd(p)), neg_odd));
    }
    for (; i < ie; ++i) {
        const double re = a[2 * i], im = a[2 * i + 1];
        a[2 * i] = im;
        a[2 * i + 1] = -re;
    }
}

void
avx2_brx(double* a, std::size_t hb, std::size_t he, std::size_t low_mask,
         std::size_t bit, std::size_t batch, const double* c2,
         const double* s2)
{
    if (batch < 2) { // a lone point leaves no packed [re, im] pair
        scalar_table().brx(a, hb, he, low_mask, bit, batch, c2, s2);
        return;
    }
    const __m256d sign = _mm256_set1_pd(-0.0);
    for (std::size_t h = hb; h < he; ++h) {
        const std::size_t i0 = insert_zero(h, low_mask);
        double* p0 = a + 2 * batch * i0;
        double* p1 = a + 2 * batch * (i0 | bit);
        std::size_t b = 0;
        for (; b + 2 <= batch; b += 2) {
            const __m256d cv = _mm256_loadu_pd(c2 + 2 * b);
            const __m256d sv = _mm256_loadu_pd(s2 + 2 * b);
            const __m256d v0 = _mm256_loadu_pd(p0 + 2 * b);
            const __m256d v1 = _mm256_loadu_pd(p1 + 2 * b);
            _mm256_storeu_pd(p0 + 2 * b, rx_mix(v0, v1, cv, sv, sign));
            _mm256_storeu_pd(p1 + 2 * b, rx_mix(v1, v0, cv, sv, sign));
        }
        for (; b < batch; ++b)
            detail::rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b],
                            s2[2 * b]);
    }
}

void
avx2_brx_pair(double* a0, double* a1, std::size_t elems,
              std::size_t batch, const double* c2, const double* s2)
{
    if (batch < 2) {
        scalar_table().brx_pair(a0, a1, elems, batch, c2, s2);
        return;
    }
    const __m256d sign = _mm256_set1_pd(-0.0);
    for (std::size_t e = 0; e < elems; ++e) {
        double* p0 = a0 + 2 * batch * e;
        double* p1 = a1 + 2 * batch * e;
        std::size_t b = 0;
        for (; b + 2 <= batch; b += 2) {
            const __m256d cv = _mm256_loadu_pd(c2 + 2 * b);
            const __m256d sv = _mm256_loadu_pd(s2 + 2 * b);
            const __m256d v0 = _mm256_loadu_pd(p0 + 2 * b);
            const __m256d v1 = _mm256_loadu_pd(p1 + 2 * b);
            _mm256_storeu_pd(p0 + 2 * b, rx_mix(v0, v1, cv, sv, sign));
            _mm256_storeu_pd(p1 + 2 * b, rx_mix(v1, v0, cv, sv, sign));
        }
        for (; b < batch; ++b)
            detail::rx_pair(p0 + 2 * b, p1 + 2 * b, c2[2 * b],
                            s2[2 * b]);
    }
}

void
avx2_bphase_lut(double* a, std::size_t ib, std::size_t ie,
                const std::int32_t* key, std::int32_t span,
                std::size_t batch, const double* lut)
{
    if (batch < 2) {
        scalar_table().bphase_lut(a, ib, ie, key, span, batch, lut);
        return;
    }
    for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t k = static_cast<std::size_t>(key[i] + span);
        const double* ph = lut + 2 * batch * k;
        double* p = a + 2 * batch * i;
        std::size_t b = 0;
        for (; b + 2 <= batch; b += 2)
            _mm256_storeu_pd(
                p + 2 * b, cmul_packed(_mm256_loadu_pd(p + 2 * b),
                                       _mm256_loadu_pd(ph + 2 * b)));
        for (; b < batch; ++b)
            detail::cmul(p + 2 * b, ph[2 * b], ph[2 * b + 1]);
    }
}

void
avx2_bweighted_norm_sum(const double* a, std::size_t batch,
                        const double* table, double offset,
                        std::size_t ib, std::size_t ie, double* out)
{
    if (batch < 4) {
        scalar_table().bweighted_norm_sum(a, batch, table, offset, ib,
                                          ie, out);
        return;
    }
    // Accumulator rows indexed [reduction lane][point]; the vector
    // body adds four points of one lane row at a time, so each
    // point's lane sequence matches the scalar tier exactly.
    alignas(32) double lane[kReductionLanes][kMaxSweepBatch] = {};
    for (std::size_t i = ib; i < ie; ++i) {
        const double w = table[i] + offset;
        const __m256d wv = _mm256_set1_pd(w);
        const double* p = a + 2 * batch * i;
        double* lrow = lane[(i - ib) & (kReductionLanes - 1)];
        std::size_t b = 0;
        for (; b + 4 <= batch; b += 4) {
            const __m256d n = norm4(_mm256_loadu_pd(p + 2 * b),
                                    _mm256_loadu_pd(p + 2 * b + 4));
            _mm256_store_pd(lrow + b,
                            _mm256_add_pd(_mm256_load_pd(lrow + b),
                                          _mm256_mul_pd(n, wv)));
        }
        for (; b < batch; ++b)
            lrow[b] += detail::norm2(p + 2 * b) * w;
    }
    for (std::size_t b = 0; b < batch; ++b) {
        const double l[kReductionLanes] = {lane[0][b], lane[1][b],
                                           lane[2][b], lane[3][b]};
        out[b] = detail::combine_lanes(l);
    }
}

void
avx2_rk4_combine(double* y, const double* k1, const double* k2,
                 const double* k3, const double* k4, double w,
                 std::size_t b, std::size_t e)
{
    const __m256d wv = _mm256_set1_pd(w);
    const __m256d two = _mm256_set1_pd(2.0);
    std::size_t i = b;
    for (; i + 4 <= e; i += 4) {
        const __m256d t = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_loadu_pd(k1 + i),
                    _mm256_mul_pd(two, _mm256_loadu_pd(k2 + i))),
                _mm256_mul_pd(two, _mm256_loadu_pd(k3 + i))),
            _mm256_loadu_pd(k4 + i));
        _mm256_storeu_pd(y + i,
                         _mm256_add_pd(_mm256_loadu_pd(y + i),
                                       _mm256_mul_pd(wv, t)));
    }
    for (; i < e; ++i)
        y[i] += w * (((k1[i] + 2.0 * k2[i]) + 2.0 * k3[i]) + k4[i]);
}

} // namespace

bool
avx2_compiled_in()
{
    return true;
}

const Table&
avx2_table()
{
    static const Table table = {
        "avx2",
        avx2_rx,
        avx2_h,
        avx2_rx2,
        avx2_rz,
        avx2_rzz,
        avx2_cphase,
        avx2_cx,
        avx2_swap,
        avx2_phase_lut,
        scalar_table().phase_angles, // trig-bound; shared (see kernels.h)
        avx2_probs,
        avx2_norm_sum,
        avx2_weighted_norm_sum,
        avx2_axpy,
        avx2_scale,
        avx2_mul_neg_i,
        avx2_rk4_combine,
        avx2_brx,
        avx2_brx_pair,
        avx2_bphase_lut,
        scalar_table().bphase_angles, // trig-bound; shared (see kernels.h)
        avx2_bweighted_norm_sum,
    };
    return table;
}

} // namespace permuq::sim::kernels

#else // !defined(__AVX2__)

namespace permuq::sim::kernels {

bool
avx2_compiled_in()
{
    return false;
}

const Table&
avx2_table()
{
    return scalar_table();
}

} // namespace permuq::sim::kernels

#endif
