#include "sweep.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <complex>
#include <mutex>
#include <numbers>
#include <unordered_set>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "common/types.h"
#include "sim/kernel_util.h"
#include "sim/kernels.h"
#include "sim/simd.h"

namespace permuq::sim {

namespace {

constexpr std::size_t kGrain = kKernelGrain;

/** Footprint budget of one pass-1 tile (all B points of 2^tq
 *  amplitudes). Sized to the L1 data cache so every low-qubit
 *  butterfly re-traversal of the tile is an L1 hit — on machines
 *  whose L2 is barely faster than L3, an L2-resident tile makes the
 *  re-traversals cost as much as full-state passes. */
constexpr std::size_t kSweepTileBytes = std::size_t(32) << 10;

/** Footprint budget of one pass-1 block (all B points of 2^bq
 *  amplitudes). Sized to stay L2-resident so the mid-qubit
 *  butterflies (tq..bq-1) re-traverse the block at L2 speed: one
 *  DRAM traversal then covers every qubit below bq. */
constexpr std::size_t kSweepBlockBytes = std::size_t(1) << 20;

/** Working-set budget of one pass-2 column chunk (2^g parallel runs
 *  of `cols` slots each). Sized so the g butterfly levels of a
 *  high-qubit group re-touch the chunk in L2. */
constexpr std::size_t kSweepColumnBytes = std::size_t(1) << 19;

/** High qubits folded into one pass-2 traversal. Each group of g
 *  qubits reads and writes the state once (2^g contiguous streams),
 *  instead of once per qubit. */
constexpr std::int32_t kSweepGroupQubits = 3;

/** Reduction grain — must match QaoaObjective::ideal_expectation's
 *  parallel_reduce_sum grain so slice boundaries (and therefore the
 *  fixed-lane sums) are identical. */
constexpr std::size_t kReduceGrain = std::size_t(1) << 13;

/** Largest q with 2^q slots of @p slot_bytes within @p budget
 *  (floor 1). */
std::int32_t
qubits_in_budget(std::size_t budget, std::size_t slot_bytes)
{
    const std::size_t slots = std::max<std::size_t>(2, budget / slot_bytes);
    return static_cast<std::int32_t>(std::bit_width(slots) - 1);
}

/** The |+>^n amplitude exactly as Statevector::reset_to_plus computes
 *  it (n sequential multiplies by 1/sqrt(2)). */
double
plus_amplitude(std::int32_t n)
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    double v = 1.0;
    for (std::int32_t q = 0; q < n; ++q)
        v *= inv_sqrt2;
    return v;
}

std::int32_t
shots_per_trajectory(const NoisySimOptions& options)
{
    return std::max(1, options.shots / std::max(1, options.trajectories));
}

/** One pre-drawn Pauli-error decision (see qaoa_objective.cpp). */
struct ErrorEvent
{
    std::size_t seq;
    std::int32_t a, b;
    std::int32_t which;
};

/**
 * Replica of the sequential shot sampler: CDF once, then per shot one
 * binary search plus the per-qubit readout-flip draws, in the exact
 * RNG order of QaoaObjective's sample_trajectory.
 */
template <typename ShotSink>
void
sample_shots(const Statevector& sv, Xoshiro256& rng,
             const circuit::Circuit& compiled,
             const arch::NoiseModel& noise,
             const NoisySimOptions& options, std::int32_t n,
             std::int32_t shots_per_traj, ShotSink&& shot_sink)
{
    CdfSampler sampler(sv);
    for (std::int32_t s = 0; s < shots_per_traj; ++s) {
        std::uint64_t z = sampler.sample(rng);
        if (options.readout_error && !noise.is_ideal()) {
            for (std::int32_t l = 0; l < n; ++l) {
                PhysicalQubit p = compiled.final_mapping().physical_of(l);
                if (rng.next_double() < noise.readout_error(p))
                    z ^= std::uint64_t(1) << l;
            }
        }
        shot_sink(z);
    }
}

/** True when two Compute ops act on the same logical pair: their
 *  phases would merge inside one replay segment, breaking the
 *  uniform-spectrum batching trick (the batched sweep then delegates
 *  per point). Compiled QAOA circuits have one Compute per edge. */
bool
has_duplicate_compute_edges(const circuit::Circuit& compiled)
{
    std::unordered_set<std::uint64_t> seen;
    for (const auto& op : compiled.ops()) {
        if (op.kind != circuit::OpKind::Compute)
            continue;
        const std::uint64_t mask = (std::uint64_t(1) << op.a) |
                                   (std::uint64_t(1) << op.b);
        if (!seen.insert(mask).second)
            return true;
    }
    return false;
}

void
validate_points(const std::vector<QaoaAngles>& points, bool require_layer)
{
    const std::size_t layers = points[0].gamma.size();
    for (const QaoaAngles& p : points)
        fatal_unless(p.gamma.size() == p.beta.size() &&
                         p.gamma.size() == layers,
                     "sweep points need one gamma and beta per layer, "
                     "with the same layer count at every point");
    if (require_layer)
        fatal_unless(layers > 0,
                     "need one gamma and beta per QAOA layer");
}

double
elapsed_seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
record_batch_size(std::size_t nb)
{
    if (!telemetry::enabled())
        return;
    static telemetry::Histogram& batch_size =
        telemetry::histogram("permuq.sim.sweep.batch_size");
    batch_size.record(static_cast<double>(nb));
}

void
count_points(std::size_t points)
{
    if (!telemetry::enabled())
        return;
    static telemetry::Counter& swept =
        telemetry::counter("permuq.sim.sweep.points");
    swept.add(static_cast<std::int64_t>(points));
}

/** Waves of at most this many concurrent tasks keep per-task buffers
 *  within the budget; always at least one. */
std::size_t
wave_width(std::size_t budget, std::size_t per_task, std::size_t tasks)
{
    std::size_t w = std::min(
        tasks, static_cast<std::size_t>(common::num_threads()));
    if (per_task > 0)
        w = std::min(w, std::max<std::size_t>(1, budget / per_task));
    return std::max<std::size_t>(1, w);
}

void
finalize(SweepResult& res, std::chrono::steady_clock::time_point t0)
{
    res.seconds = elapsed_seconds(t0);
    res.points_per_sec =
        res.seconds > 0.0
            ? static_cast<double>(res.points) / res.seconds
            : 0.0;
    res.best_index = 0;
    res.best_value = res.values.empty() ? 0.0 : res.values[0];
    for (std::size_t i = 1; i < res.values.size(); ++i) {
        if (res.values[i] > res.best_value) {
            res.best_value = res.values[i];
            res.best_index = i;
        }
    }
}

} // namespace

/** Per-layer, per-chunk phase tables of one batched cost sweep. */
struct SweepEvaluator::LayerTables
{
    bool uniform = false;
    double constant = 0.0;
    std::int32_t span = 0;
    const std::int32_t* keys = nullptr;
    /** Packed LUT: row k+span holds 2*nb doubles (cos, sin per
     *  point). */
    const double* lut = nullptr;
    const double* dense = nullptr;
    double scales[kernels::kMaxSweepBatch] = {};
};

SweepEvaluator::SweepEvaluator(QaoaObjective& objective,
                               const SweepOptions& options)
    : obj_(objective), budget_(options.memory_budget_bytes)
{
    batch_ = planned_batch(objective, options);
}

std::int32_t
SweepEvaluator::spectrum_span(const QaoaObjective& objective)
{
    if (objective.cost_.empty())
        return 0;
    const DiagonalBatch::BakedView view =
        objective.cost_.baked_view(objective.num_qubits());
    return view.uniform ? view.span : 0;
}

std::int32_t
SweepEvaluator::uniform_span() const
{
    return spectrum_span(obj_);
}

std::size_t
SweepEvaluator::memory_bytes(std::int32_t num_qubits,
                             std::int32_t uniform_span, std::size_t batch)
{
    const std::size_t size = std::size_t(1) << num_qubits;
    std::size_t bytes = size * 2 * batch * sizeof(double);
    if (uniform_span > 0)
        bytes += (2 * static_cast<std::size_t>(uniform_span) + 1) * 2 *
                 batch * sizeof(double);
    return bytes;
}

std::size_t
SweepEvaluator::memory_bytes() const
{
    return memory_bytes(obj_.num_qubits(), uniform_span(), batch_);
}

std::size_t
SweepEvaluator::planned_batch(const QaoaObjective& objective,
                              const SweepOptions& options)
{
    std::size_t b = std::clamp<std::size_t>(options.batch, 1,
                                            kernels::kMaxSweepBatch);
    const std::int32_t span = spectrum_span(objective);
    // Shrink via multiples of 4 while possible: a 16*b-byte slot is
    // cache-line aligned only when 4 | b, and an unaligned slot (say
    // b = 7) straddles lines and drops the vector kernels to their
    // per-element tails — better to give up a little batch width than
    // the whole SIMD lane structure.
    while (b > 1 && memory_bytes(objective.num_qubits(), span, b) >
                        options.memory_budget_bytes)
        b = b > 4 ? (b - 1) & ~std::size_t(3) : b - 1;
    return b;
}

std::size_t
SweepEvaluator::planned_memory_bytes(const QaoaObjective& objective,
                                     const SweepOptions& options)
{
    return memory_bytes(objective.num_qubits(), spectrum_span(objective),
                        planned_batch(objective, options));
}

void
SweepEvaluator::ensure_buffers()
{
    const std::size_t size = std::size_t(1) << obj_.num_qubits();
    amp_.resize(2 * batch_ * size);
    const std::int32_t span = uniform_span();
    if (span > 0)
        lut_.resize((2 * static_cast<std::size_t>(span) + 1) * 2 *
                    batch_);
}

void
SweepEvaluator::build_layer_tables(const QaoaAngles* pts, std::size_t nb,
                                   std::size_t layer, LayerTables& tables,
                                   std::vector<double>& lut_storage)
{
    const std::int32_t n = obj_.num_qubits();
    const DiagonalBatch::BakedView view = obj_.cost_.baked_view(n);
    if (telemetry::enabled()) {
        static telemetry::Histogram& fusion =
            telemetry::histogram("permuq.sim.fusion.batch_size");
        fusion.record(static_cast<double>(obj_.cost_.num_terms()));
    }
    tables.uniform = view.uniform;
    tables.constant = view.constant;
    for (std::size_t b = 0; b < nb; ++b)
        tables.scales[b] = -pts[b].gamma[layer];
    if (view.uniform) {
        tables.span = view.span;
        tables.keys = view.keys;
        const std::size_t rows =
            2 * static_cast<std::size_t>(view.span) + 1;
        lut_storage.resize(rows * 2 * nb);
        double* lut = lut_storage.data();
        for (std::int32_t k = -view.span; k <= view.span; ++k) {
            const std::size_t row =
                static_cast<std::size_t>(k + view.span) * nb;
            for (std::size_t b = 0; b < nb; ++b) {
                // Exactly DiagonalBatch::apply's LUT formula, with
                // this point's scale.
                const double ang =
                    tables.scales[b] * (view.constant + view.quantum * k);
                lut[2 * (row + b)] = std::cos(ang);
                lut[2 * (row + b) + 1] = std::sin(ang);
            }
        }
        tables.lut = lut;
    } else {
        tables.dense = view.dense;
    }
}

void
SweepEvaluator::fill_plus(double* state, std::size_t nb)
{
    const std::size_t size = std::size_t(1) << obj_.num_qubits();
    const double v = plus_amplitude(obj_.num_qubits());
    common::parallel_for(
        0, size, kGrain, [=](std::size_t ib, std::size_t ie) {
            for (std::size_t i = ib; i < ie; ++i) {
                double* p = state + 2 * nb * i;
                for (std::size_t b = 0; b < nb; ++b) {
                    p[2 * b] = v;
                    p[2 * b + 1] = 0.0;
                }
            }
        });
}

void
SweepEvaluator::mixer_layer(double* state, std::size_t nb,
                            const LayerTables* phase, const double* c2,
                            const double* s2, bool fill)
{
    const std::int32_t n = obj_.num_qubits();
    const std::size_t size = std::size_t(1) << n;
    const std::size_t sd = 2 * nb; // doubles per amplitude slot
    const std::size_t slot_bytes = sd * 8;
    const std::int32_t tq =
        std::min(qubits_in_budget(kSweepTileBytes, slot_bytes), n);
    const std::int32_t bq = std::max(
        tq, std::min(qubits_in_budget(kSweepBlockBytes, slot_bytes), n));
    const std::size_t tile = std::size_t(1) << tq;
    const std::size_t block = std::size_t(1) << bq;
    const std::size_t nblocks = size >> bq;
    const kernels::Table& t = kernels::active_counted();
    const double fillv = fill ? plus_amplitude(n) : 0.0;

    // Pass 1: one DRAM traversal covers fill, the B-wide diagonal
    // cost rotation, and every qubit below bq. Within an L2-resident
    // block, L1-resident tiles run fill -> phase -> rx(0..tq-1) while
    // each tile is hot, then the mid qubits tq..bq-1 sweep the whole
    // block while it is still L2-resident. Per-element order matches
    // the sequential fill -> phase sweep -> rx(0..bq-1) exactly: a
    // tile (block) is closed under its butterflies, and the phase
    // sweep is element-wise.
    common::parallel_for(
        0, nblocks, 1, [&](std::size_t blb, std::size_t ble) {
            for (std::size_t bi = blb; bi < ble; ++bi) {
                const std::size_t b0 = bi * block;
                for (std::size_t i0 = b0; i0 < b0 + block; i0 += tile) {
                    if (fill) {
                        double* p = state + sd * i0;
                        const std::size_t slots = tile * nb;
                        for (std::size_t s = 0; s < slots; ++s) {
                            p[2 * s] = fillv;
                            p[2 * s + 1] = 0.0;
                        }
                    }
                    if (phase != nullptr) {
                        if (phase->uniform)
                            t.bphase_lut(state, i0, i0 + tile,
                                         phase->keys, phase->span, nb,
                                         phase->lut);
                        else
                            t.bphase_angles(state, i0, i0 + tile,
                                            phase->dense, nb,
                                            phase->scales,
                                            phase->constant);
                    }
                    for (std::int32_t q = 0; q < tq; ++q) {
                        const std::size_t bit = std::size_t(1) << q;
                        t.brx(state, i0 >> 1, (i0 >> 1) + (tile >> 1),
                              bit - 1, bit, nb, c2, s2);
                    }
                }
                for (std::int32_t q = tq; q < bq; ++q) {
                    const std::size_t bit = std::size_t(1) << q;
                    t.brx(state, b0 >> 1, (b0 >> 1) + (block >> 1),
                          bit - 1, bit, nb, c2, s2);
                }
            }
        });

    // Pass 2: the high qubits (bq..n-1) in groups of g, one DRAM
    // traversal per group instead of per qubit. A group's 2^g runs of
    // 2^q0 contiguous slots are walked in column chunks: `cols` slots
    // from each run — 2^g sequential streams the hardware prefetcher
    // tracks — stay L2-resident while all g butterfly levels are
    // applied via brx_pair on the in-chunk run pairs. (The previous
    // design gathered strided pencils into an L1 scratch; at high q0
    // the gather stride is megabytes, and the resulting TLB-miss-per-
    // slot walk was measured ~3x slower than these contiguous
    // streams.) Bit-identical to rx on each qubit in ascending order:
    // chunks are disjoint and closed under the group's bits, levels
    // run rel-ascending, and brx_pair applies the same per-element
    // arithmetic as rx.
    std::int32_t q0 = bq;
    while (q0 < n) {
        const std::int32_t g = std::min<std::int32_t>(kSweepGroupQubits,
                                                      n - q0);
        const std::size_t run = std::size_t(1) << q0;
        const std::size_t fan = std::size_t(1) << g;
        const std::size_t groups = size >> (q0 + g);
        const std::size_t cols = std::min(
            run, std::max<std::size_t>(
                     1, kSweepColumnBytes / (fan * slot_bytes)));
        const std::size_t nchunks = (run + cols - 1) / cols;
        common::parallel_for(
            0, groups * nchunks, 1,
            [&](std::size_t wb, std::size_t we) {
                for (std::size_t w = wb; w < we; ++w) {
                    const std::size_t base = (w / nchunks) << (q0 + g);
                    const std::size_t c0 = (w % nchunks) * cols;
                    const std::size_t len = std::min(cols, run - c0);
                    for (std::int32_t rel = 0; rel < g; ++rel) {
                        const std::size_t rbit = std::size_t(1) << rel;
                        for (std::size_t m = 0; m < fan; ++m) {
                            if (m & rbit)
                                continue;
                            double* a0 =
                                state + sd * (base + m * run + c0);
                            double* a1 = state +
                                         sd * (base + (m | rbit) * run +
                                               c0);
                            t.brx_pair(a0, a1, len, nb, c2, s2);
                        }
                    }
                }
            });
        q0 += g;
    }
}

void
SweepEvaluator::reduce_expectation(const double* state, std::size_t nb,
                                   double* out)
{
    const std::size_t size = std::size_t(1) << obj_.num_qubits();
    const kernels::Table& t = kernels::active_counted();
    const double* table = obj_.cost_table_.data();
    const double offset = obj_.offset_;
    // Replicates parallel_reduce_sum(0, size, 1 << 13, ...): same
    // slice boundaries, per-point partials combined in slice order,
    // single direct call when one slice — so each point's sum is
    // bit-identical to the sequential objective reduction.
    const std::size_t slices =
        common::reduction_slices(size, kReduceGrain);
    if (slices <= 1) {
        t.bweighted_norm_sum(state, nb, table, offset, 0, size, out);
        return;
    }
    std::vector<double> partial(slices * nb, 0.0);
    common::parallel_tasks(
        static_cast<std::int64_t>(slices), [&](std::int64_t s) {
            const std::size_t b =
                size * static_cast<std::size_t>(s) / slices;
            const std::size_t e =
                size * (static_cast<std::size_t>(s) + 1) / slices;
            t.bweighted_norm_sum(state, nb, table, offset, b, e,
                                 partial.data() +
                                     static_cast<std::size_t>(s) * nb);
        });
    for (std::size_t b = 0; b < nb; ++b) {
        double sum = 0.0;
        for (std::size_t s = 0; s < slices; ++s)
            sum += partial[s * nb + b];
        out[b] = sum;
    }
}

void
SweepEvaluator::run_ideal_chunk(const QaoaAngles* pts, std::size_t nb,
                                double* out)
{
    const std::size_t layers = pts[0].gamma.size();
    const bool have_phase = !obj_.cost_.empty();
    LayerTables tables;
    alignas(64) double c2[2 * kernels::kMaxSweepBatch];
    alignas(64) double s2[2 * kernels::kMaxSweepBatch];
    if (layers == 0)
        fill_plus(amp_.data(), nb);
    for (std::size_t layer = 0; layer < layers; ++layer) {
        if (have_phase)
            build_layer_tables(pts, nb, layer, tables, lut_);
        for (std::size_t b = 0; b < nb; ++b) {
            // theta = 2 * beta, c = cos(theta/2), s = sin(theta/2):
            // the literal apply_rx_all arithmetic.
            const double theta = 2.0 * pts[b].beta[layer];
            const double c = std::cos(theta / 2.0);
            const double s = std::sin(theta / 2.0);
            c2[2 * b] = c;
            c2[2 * b + 1] = c;
            s2[2 * b] = s;
            s2[2 * b + 1] = s;
        }
        mixer_layer(amp_.data(), nb, have_phase ? &tables : nullptr, c2,
                    s2, /*fill=*/layer == 0);
    }
    reduce_expectation(amp_.data(), nb, out);
}

SweepResult
SweepEvaluator::ideal_sweep(const std::vector<QaoaAngles>& points)
{
    SweepResult res;
    res.points = points.size();
    res.batch = batch_;
    res.memory_bytes = memory_bytes();
    if (points.empty())
        return res;
    validate_points(points, /*require_layer=*/false);
    telemetry::ScopedSpan span("sim.sweep.eval");
    span.arg("tier", simd_tier_name(active_simd_tier()));
    span.arg("mode", "ideal");
    span.arg("qubits", obj_.num_qubits());
    span.arg("layers",
             static_cast<std::int64_t>(points[0].gamma.size()));
    span.arg("points", static_cast<std::int64_t>(points.size()));
    span.arg("batch", static_cast<std::int64_t>(batch_));
    count_points(points.size());
    const auto t0 = std::chrono::steady_clock::now();
    ensure_buffers();
    res.values.resize(points.size());
    for (std::size_t start = 0; start < points.size(); start += batch_) {
        const std::size_t nb = std::min(batch_, points.size() - start);
        record_batch_size(nb);
        run_ideal_chunk(points.data() + start, nb,
                        res.values.data() + start);
    }
    finalize(res, t0);
    return res;
}

template <typename PointSink>
void
SweepEvaluator::run_noisy_chunk(const circuit::Circuit& compiled,
                                const arch::NoiseModel& noise,
                                const QaoaAngles* pts, std::size_t nb,
                                const NoisySimOptions& options,
                                std::size_t extra_bytes_per_point,
                                PointSink&& sink)
{
    const std::int32_t n = obj_.num_qubits();
    const std::size_t size = std::size_t(1) << n;
    const std::int32_t layers =
        static_cast<std::int32_t>(pts[0].gamma.size());
    const auto& cx_cost = obj_.plan_for(compiled).cx_cost;
    const bool have_phase = !obj_.cost_.empty();

    auto run_one = [&](std::int64_t traj) {
        telemetry::ScopedSpan span("sim.trajectory");
        span.arg("traj", traj);
        Xoshiro256 rng(options.seed);
        for (std::int64_t j = 0; j < traj; ++j)
            rng.jump();

        std::vector<double> state(2 * nb * size);
        double* a = state.data();
        fill_plus(a, nb);

        std::vector<ErrorEvent> events;
        std::vector<double> seg_lut;
        std::vector<double> cost_lut;
        LayerTables tables;
        DiagonalBatch seg;
        alignas(64) double c2[2 * kernels::kMaxSweepBatch];
        alignas(64) double s2[2 * kernels::kMaxSweepBatch];
        double gneg[kernels::kMaxSweepBatch];

        // Apply the pending unit-coefficient segment at per-point
        // scale -gamma_b. The segment's |coeff| is uniformly 1/2, so
        // angle = -gamma_b * (k/2) — the same single-rounding product
        // as the sequential segment's 1.0 * ((gamma/2) * k) — and the
        // sign flip between the unit and sequential key tables
        // cancels against the scale's sign. Bit-identical per point.
        auto flush = [&] {
            if (seg.empty())
                return;
            if (telemetry::enabled()) {
                static telemetry::Histogram& fusion =
                    telemetry::histogram("permuq.sim.fusion.batch_size");
                fusion.record(static_cast<double>(seg.num_terms()));
            }
            const DiagonalBatch::BakedView v = seg.baked_view(n);
            fatal_unless(v.uniform,
                         "replay segment spectrum must be uniform");
            const std::size_t rows =
                2 * static_cast<std::size_t>(v.span) + 1;
            seg_lut.resize(rows * 2 * nb);
            double* lut = seg_lut.data();
            for (std::int32_t k = -v.span; k <= v.span; ++k) {
                const std::size_t row =
                    static_cast<std::size_t>(k + v.span) * nb;
                for (std::size_t b = 0; b < nb; ++b) {
                    const double ang =
                        gneg[b] * (v.constant + v.quantum * k);
                    lut[2 * (row + b)] = std::cos(ang);
                    lut[2 * (row + b) + 1] = std::sin(ang);
                }
            }
            const kernels::Table& t = kernels::active_counted();
            common::parallel_for(
                0, size, kGrain,
                [&](std::size_t ib, std::size_t ie) {
                    t.bphase_lut(a, ib, ie, v.keys, v.span, nb, lut);
                });
            seg.clear();
        };

        // Batched Pauli replicas. X is a swap and Z a negation (both
        // exact); Y multiplies by -i/+i with the literal complex
        // formula (every product by 0/±1 is exact), so all three are
        // bit-identical to the sequential apply_x/y/z.
        auto bpauli = [&](std::int32_t q, std::int32_t which) {
            if (which == 0)
                return;
            const std::size_t bit = std::size_t(1) << q;
            const std::size_t low = bit - 1;
            common::parallel_for(
                0, size >> 1, kGrain,
                [&](std::size_t hb, std::size_t he) {
                    for (std::size_t h = hb; h < he; ++h) {
                        const std::size_t i0 = insert_zero(h, low);
                        double* p0 = a + 2 * nb * i0;
                        double* p1 = a + 2 * nb * (i0 | bit);
                        switch (which) {
                        case 1:
                            for (std::size_t s = 0; s < 2 * nb; ++s)
                                std::swap(p0[s], p1[s]);
                            break;
                        case 2:
                            for (std::size_t b = 0; b < nb; ++b) {
                                const double r0 = p0[2 * b];
                                const double m0 = p0[2 * b + 1];
                                const double r1 = p1[2 * b];
                                const double m1 = p1[2 * b + 1];
                                p0[2 * b] = 0.0 * r1 - (-1.0) * m1;
                                p0[2 * b + 1] = 0.0 * m1 + (-1.0) * r1;
                                p1[2 * b] = 0.0 * r0 - 1.0 * m0;
                                p1[2 * b + 1] = 0.0 * m0 + 1.0 * r0;
                            }
                            break;
                        default:
                            for (std::size_t s = 0; s < 2 * nb; ++s)
                                p1[s] = -p1[s];
                            break;
                        }
                    }
                });
        };

        // Batched RZZ for the unfused replay: per point the literal
        // apply_rzz arithmetic (theta = -gamma * 1.0, polar phases,
        // one complex multiply per amplitude).
        auto brzz = [&](std::int32_t qa, std::int32_t qb) {
            double pr[2][kernels::kMaxSweepBatch];
            double pi[2][kernels::kMaxSweepBatch];
            for (std::size_t b = 0; b < nb; ++b) {
                const double theta = gneg[b] * 1.0;
                const std::complex<double> same =
                    std::polar(1.0, -theta / 2.0);
                const std::complex<double> diff =
                    std::polar(1.0, theta / 2.0);
                pr[1][b] = same.real();
                pi[1][b] = same.imag();
                pr[0][b] = diff.real();
                pi[0][b] = diff.imag();
            }
            const std::size_t abit = std::size_t(1) << qa;
            const std::size_t bbit = std::size_t(1) << qb;
            common::parallel_for(
                0, size, kGrain, [&](std::size_t ib, std::size_t ie) {
                    for (std::size_t i = ib; i < ie; ++i) {
                        const std::size_t aligned =
                            ((i & abit) != 0) == ((i & bbit) != 0) ? 1
                                                                   : 0;
                        double* p = a + 2 * nb * i;
                        for (std::size_t b = 0; b < nb; ++b) {
                            const double ar = p[2 * b];
                            const double ai = p[2 * b + 1];
                            const double cr = pr[aligned][b];
                            const double ci = pi[aligned][b];
                            p[2 * b] = ar * cr - ai * ci;
                            p[2 * b + 1] = ai * cr + ar * ci;
                        }
                    }
                });
        };

        for (std::int32_t layer = 0; layer < layers; ++layer) {
            const std::size_t l = static_cast<std::size_t>(layer);
            for (std::size_t b = 0; b < nb; ++b) {
                gneg[b] = -pts[b].gamma[l];
                const double theta = 2.0 * pts[b].beta[l];
                const double c = std::cos(theta / 2.0);
                const double s = std::sin(theta / 2.0);
                c2[2 * b] = c;
                c2[2 * b + 1] = c;
                s2[2 * b] = s;
                s2[2 * b + 1] = s;
            }
            const bool reversed = layer % 2 == 1;
            // Pre-draw the layer's error decisions in the exact
            // sequential RNG order. The draws are angle-independent,
            // so one stream serves every point of the batch.
            events.clear();
            std::size_t seq = 0;
            circuit::for_each_replayed(
                compiled, reversed,
                [&](const circuit::ScheduledOp& op, std::size_t i) {
                    const double e = noise.cx_error(op.p, op.q);
                    for (std::int8_t c = 0; c < cx_cost[i]; ++c) {
                        if (rng.next_double() >= e)
                            continue;
                        const std::int32_t which =
                            static_cast<std::int32_t>(
                                rng.next_below(15)) + 1;
                        events.push_back({seq, op.a, op.b, which});
                    }
                    ++seq;
                });

            if (events.empty() && options.fuse_diagonals) {
                // Error-free layer: cost phase + mixer in one fused
                // batched pass set (the sequential cached sweep).
                if (have_phase)
                    build_layer_tables(pts, nb, l, tables, cost_lut);
                mixer_layer(a, nb, have_phase ? &tables : nullptr, c2,
                            s2, /*fill=*/false);
            } else {
                std::size_t cursor = 0;
                std::size_t replay_seq = 0;
                circuit::for_each_replayed(
                    compiled, reversed,
                    [&](const circuit::ScheduledOp& op, std::size_t) {
                        while (cursor < events.size() &&
                               events[cursor].seq == replay_seq) {
                            const ErrorEvent& ev = events[cursor];
                            flush();
                            if (ev.a != kInvalidQubit)
                                bpauli(ev.a, ev.which & 3);
                            if (ev.b != kInvalidQubit)
                                bpauli(ev.b, ev.which >> 2);
                            ++cursor;
                        }
                        if (op.kind == circuit::OpKind::Compute) {
                            if (options.fuse_diagonals)
                                seg.add_rzz(op.a, op.b, 1.0);
                            else
                                brzz(op.a, op.b);
                        }
                        ++replay_seq;
                    });
                flush();
                mixer_layer(a, nb, nullptr, c2, s2, /*fill=*/false);
            }
        }

        // Hand each point's state to the sink: copy it out to a
        // scratch statevector and give the sink its own copy of the
        // shared RNG — the sequential per-point stream state at this
        // moment, since the evolution itself draws nothing.
        Statevector scratch(n);
        auto& samp = scratch.amplitudes_mut();
        for (std::size_t b = 0; b < nb; ++b) {
            common::parallel_for(
                0, size, kGrain, [&](std::size_t ib, std::size_t ie) {
                    for (std::size_t i = ib; i < ie; ++i)
                        samp[i] = Statevector::Amplitude(
                            a[2 * nb * i + 2 * b],
                            a[2 * nb * i + 2 * b + 1]);
                });
            Xoshiro256 prng = rng;
            sink(static_cast<std::int32_t>(traj), b, scratch, prng);
        }
    };

    const std::int64_t trajectories = options.trajectories;
    const std::size_t per_traj =
        size * (2 * nb + 3) * sizeof(double) +
        extra_bytes_per_point * nb;
    const bool parallel =
        trajectories > 1 && common::num_threads() > 1;
    const std::size_t w = wave_width(
        budget_, per_traj,
        parallel ? static_cast<std::size_t>(trajectories) : 1);
    if (!parallel || w <= 1) {
        for (std::int64_t t = 0; t < trajectories; ++t)
            run_one(t);
    } else {
        for (std::int64_t t0 = 0; t0 < trajectories;
             t0 += static_cast<std::int64_t>(w)) {
            const std::int64_t cnt = std::min<std::int64_t>(
                static_cast<std::int64_t>(w), trajectories - t0);
            common::parallel_tasks(
                cnt, [&](std::int64_t k) { run_one(t0 + k); });
        }
    }
}

SweepResult
SweepEvaluator::noisy_sweep(const circuit::Circuit& compiled,
                            const arch::NoiseModel& noise,
                            const std::vector<QaoaAngles>& points,
                            const NoisySimOptions& options)
{
    SweepResult res;
    res.points = points.size();
    res.batch = batch_;
    res.memory_bytes = memory_bytes();
    if (points.empty())
        return res;
    validate_points(points, /*require_layer=*/true);
    telemetry::ScopedSpan span("sim.sweep.eval");
    span.arg("tier", simd_tier_name(active_simd_tier()));
    span.arg("mode", "noisy");
    span.arg("qubits", obj_.num_qubits());
    span.arg("layers",
             static_cast<std::int64_t>(points[0].gamma.size()));
    span.arg("points", static_cast<std::int64_t>(points.size()));
    span.arg("batch", static_cast<std::int64_t>(batch_));
    count_points(points.size());
    const auto t0 = std::chrono::steady_clock::now();
    res.values.resize(points.size());

    if (obj_.weighted() || has_duplicate_compute_edges(compiled)) {
        // Mixed-magnitude phase products round differently under the
        // batched formulation; evaluate per point instead.
        for (std::size_t i = 0; i < points.size(); ++i)
            res.values[i] = obj_.noisy_expectation(compiled, noise,
                                                   points[i], options);
        finalize(res, t0);
        return res;
    }

    const std::int32_t n = obj_.num_qubits();
    const std::int32_t spt = shots_per_trajectory(options);
    const std::int32_t traj_count = std::max(1, options.trajectories);
    for (std::size_t start = 0; start < points.size(); start += batch_) {
        const std::size_t nb = std::min(batch_, points.size() - start);
        record_batch_size(nb);
        std::vector<double> partial(
            static_cast<std::size_t>(traj_count) * nb, 0.0);
        run_noisy_chunk(
            compiled, noise, points.data() + start, nb, options, 0,
            [&](std::int32_t traj, std::size_t b, const Statevector& sv,
                Xoshiro256& rng) {
                double total = 0.0;
                sample_shots(sv, rng, compiled, noise, options, n, spt,
                             [&](std::uint64_t z) {
                                 total += obj_.cut(z);
                             });
                partial[static_cast<std::size_t>(traj) * nb + b] = total;
            });
        const std::int64_t shots =
            static_cast<std::int64_t>(spt) * traj_count;
        for (std::size_t b = 0; b < nb; ++b) {
            // Fixed trajectory-order combination, as the sequential
            // noisy_expectation does.
            double total = 0.0;
            for (std::int32_t traj = 0; traj < traj_count; ++traj)
                total +=
                    partial[static_cast<std::size_t>(traj) * nb + b];
            res.values[start + b] =
                total /
                static_cast<double>(std::max<std::int64_t>(1, shots));
        }
    }
    finalize(res, t0);
    return res;
}

std::vector<std::vector<std::int64_t>>
SweepEvaluator::noisy_sweep_counts(const circuit::Circuit& compiled,
                                   const arch::NoiseModel& noise,
                                   const std::vector<QaoaAngles>& points,
                                   const NoisySimOptions& options)
{
    std::vector<std::vector<std::int64_t>> counts(points.size());
    if (points.empty())
        return counts;
    validate_points(points, /*require_layer=*/true);
    telemetry::ScopedSpan span("sim.sweep.eval");
    span.arg("tier", simd_tier_name(active_simd_tier()));
    span.arg("mode", "noisy-counts");
    span.arg("qubits", obj_.num_qubits());
    span.arg("points", static_cast<std::int64_t>(points.size()));
    span.arg("batch", static_cast<std::int64_t>(batch_));
    count_points(points.size());

    if (obj_.weighted() || has_duplicate_compute_edges(compiled)) {
        for (std::size_t i = 0; i < points.size(); ++i)
            counts[i] =
                obj_.noisy_counts(compiled, noise, points[i], options);
        return counts;
    }

    const std::int32_t n = obj_.num_qubits();
    const std::size_t size = std::size_t(1) << n;
    for (auto& c : counts)
        c.assign(size, 0);
    const std::int32_t spt = shots_per_trajectory(options);
    std::mutex merge_mutex;
    for (std::size_t start = 0; start < points.size(); start += batch_) {
        const std::size_t nb = std::min(batch_, points.size() - start);
        record_batch_size(nb);
        run_noisy_chunk(
            compiled, noise, points.data() + start, nb, options,
            size * sizeof(std::int64_t),
            [&](std::int32_t, std::size_t b, const Statevector& sv,
                Xoshiro256& rng) {
                // Histogram locally, merge under the lock: integer
                // adds commute, so merge order cannot matter.
                std::vector<std::int64_t> local(size, 0);
                sample_shots(sv, rng, compiled, noise, options, n, spt,
                             [&](std::uint64_t z) { ++local[z]; });
                std::lock_guard<std::mutex> lock(merge_mutex);
                auto& out = counts[start + b];
                for (std::size_t z = 0; z < size; ++z)
                    out[z] += local[z];
            });
    }
    return counts;
}

MultiSweepResult
sweep_problems(const std::vector<QaoaObjective*>& objectives,
               const std::vector<QaoaAngles>& points,
               const SweepOptions& options)
{
    MultiSweepResult out;
    const std::size_t count = objectives.size();
    out.problems.resize(count);
    if (count == 0)
        return out;
    const auto t0 = std::chrono::steady_clock::now();

    // Split the budget across the workers we would like to run, pick
    // each problem's batch under that share, then cap the wave so the
    // sum of in-flight footprints stays within the total budget.
    const std::size_t threads =
        static_cast<std::size_t>(common::num_threads());
    const std::size_t target =
        std::max<std::size_t>(1, std::min(threads, count));
    SweepOptions per = options;
    per.memory_budget_bytes =
        std::max<std::size_t>(1, options.memory_budget_bytes / target);
    std::vector<std::size_t> bytes(count);
    std::size_t max_bytes = 0;
    for (std::size_t j = 0; j < count; ++j) {
        bytes[j] =
            SweepEvaluator::planned_memory_bytes(*objectives[j], per);
        max_bytes = std::max(max_bytes, bytes[j]);
    }
    std::size_t wave = target;
    if (max_bytes > 0)
        wave = std::min(
            wave, std::max<std::size_t>(
                      1, options.memory_budget_bytes / max_bytes));
    out.problems_in_flight = wave;

    auto run_j = [&](std::size_t j) {
        SweepEvaluator ev(*objectives[j], per);
        out.problems[j] = ev.ideal_sweep(points);
    };
    if (wave <= 1) {
        // One problem at a time: kernel-level parallelism still uses
        // the whole pool inside each sweep.
        for (std::size_t j = 0; j < count; ++j) {
            run_j(j);
            out.peak_memory_bytes =
                std::max(out.peak_memory_bytes, bytes[j]);
        }
    } else {
        for (std::size_t start = 0; start < count; start += wave) {
            const std::size_t cnt = std::min(wave, count - start);
            std::size_t wave_bytes = 0;
            for (std::size_t k = 0; k < cnt; ++k)
                wave_bytes += bytes[start + k];
            out.peak_memory_bytes =
                std::max(out.peak_memory_bytes, wave_bytes);
            common::parallel_tasks(
                static_cast<std::int64_t>(cnt), [&](std::int64_t k) {
                    run_j(start + static_cast<std::size_t>(k));
                });
        }
    }

    out.seconds = elapsed_seconds(t0);
    out.points_per_sec =
        out.seconds > 0.0
            ? static_cast<double>(count * points.size()) / out.seconds
            : 0.0;
    return out;
}

std::vector<QaoaAngles>
sweep_grid(std::size_t gammas, std::size_t betas, std::int32_t layers)
{
    std::vector<QaoaAngles> pts;
    pts.reserve(gammas * betas);
    for (std::size_t i = 0; i < gammas; ++i) {
        const double gamma = static_cast<double>(i + 1) *
                             std::numbers::pi /
                             static_cast<double>(gammas + 1);
        for (std::size_t j = 0; j < betas; ++j) {
            const double beta = static_cast<double>(j + 1) *
                                (std::numbers::pi / 2.0) /
                                static_cast<double>(betas + 1);
            QaoaAngles p;
            p.gamma.assign(static_cast<std::size_t>(layers), gamma);
            p.beta.assign(static_cast<std::size_t>(layers), beta);
            pts.push_back(std::move(p));
        }
    }
    return pts;
}

} // namespace permuq::sim
