/**
 * @file
 * QAOA-MaxCut evaluation on top of the statevector simulator
 * (paper §7.4): ideal expectation, noisy expectation/sampling driven
 * by a compiled circuit plus a device noise model, and TVD.
 *
 * The noisy simulation runs in the *logical* space: SWAPs are tracked
 * as relabelings, while stochastic Pauli errors are injected per
 * physical CX of the compiled circuit (using its per-link error rate,
 * with CPHASE+SWAP merging already applied), onto the logical qubits
 * that CX touches. This keeps 20-logical-qubit experiments tractable
 * on a 27-qubit device while preserving what the experiment measures:
 * circuits with fewer/better-placed CXs accumulate fewer errors.
 * Errors on transiently empty positions are folded onto the involved
 * logical qubit (documented substitution, see DESIGN.md).
 */
#ifndef PERMUQ_SIM_QAOA_H
#define PERMUQ_SIM_QAOA_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "graph/graph.h"
#include "problem/weighted.h"

namespace permuq::sim {

/** QAOA angles; gamma/beta per layer. */
struct QaoaAngles
{
    std::vector<double> gamma;
    std::vector<double> beta;
};

/** Number of cut edges of basis state @p z. */
std::int32_t cut_value(const graph::Graph& problem, std::uint64_t z);

/** The maximum cut (exhaustive; n <= 26). */
std::int32_t max_cut(const graph::Graph& problem);

/** Ideal (noiseless) expected cut value <C>. */
double ideal_expectation(const graph::Graph& problem,
                         const QaoaAngles& angles);

/** Ideal output distribution over the 2^n logical basis states. */
std::vector<double> ideal_distribution(const graph::Graph& problem,
                                       const QaoaAngles& angles);

/**
 * Knobs of the noisy simulation.
 *
 * Trajectory t draws its randomness from the t-times-jumped
 * Xoshiro256 substream of @p seed, so results are a pure function of
 * (seed, trajectories, shots) — independent of thread count and of
 * how trajectories are scheduled. Expectations are assembled from
 * per-trajectory partial sums combined in trajectory order, making
 * them bit-reproducible at any parallelism level.
 */
struct NoisySimOptions
{
    std::int32_t trajectories = 16;
    std::int32_t shots = 8000;
    std::uint64_t seed = 7;
    bool readout_error = true;
    /** Accumulate each run of commuting diagonal gates (an entire
     *  QAOA cost layer when no Pauli error interposes) into a single
     *  fused sweep. Off only for benchmarking the unfused path. */
    bool fuse_diagonals = true;
};

/**
 * Expected cut value when the compiled circuit executes under the
 * noise model (Monte-Carlo over Pauli-error trajectories, cut averaged
 * over sampled, readout-flipped shots).
 */
double noisy_expectation(const graph::Graph& problem,
                         const circuit::Circuit& compiled,
                         const arch::NoiseModel& noise,
                         const QaoaAngles& angles,
                         const NoisySimOptions& options = {});

/**
 * Trajectory-averaged output distribution of the noisy execution
 * (exact per-trajectory probabilities, no shot sampling, no readout
 * flips). Preferred for TVD at larger qubit counts, where finite-shot
 * histograms over 2^n bins saturate from sparsity alone.
 */
std::vector<double> noisy_distribution(const graph::Graph& problem,
                                       const circuit::Circuit& compiled,
                                       const arch::NoiseModel& noise,
                                       const QaoaAngles& angles,
                                       const NoisySimOptions& options = {});

/**
 * Shot histogram (counts per logical basis state) of the noisy
 * execution; used for TVD against the ideal distribution.
 */
std::vector<std::int64_t> noisy_counts(const graph::Graph& problem,
                                       const circuit::Circuit& compiled,
                                       const arch::NoiseModel& noise,
                                       const QaoaAngles& angles,
                                       const NoisySimOptions& options = {});

/** @name Weighted MaxCut
 *  Weights scale both the phase angle of each edge's ZZ interaction
 *  (gamma_e = w_e * gamma) and the objective; routing is unaffected.
 *  @{ */

/** Total weight of edges cut by basis state @p z. */
double cut_weight(const problem::WeightedProblem& wp, std::uint64_t z);

/** The maximum weighted cut (exhaustive; n <= 26). */
double max_cut_weight(const problem::WeightedProblem& wp);

/** Ideal expected weighted cut. */
double ideal_expectation(const problem::WeightedProblem& wp,
                         const QaoaAngles& angles);

/** Noisy expected weighted cut of a compiled circuit. */
double noisy_expectation(const problem::WeightedProblem& wp,
                         const circuit::Circuit& compiled,
                         const arch::NoiseModel& noise,
                         const QaoaAngles& angles,
                         const NoisySimOptions& options = {});
/** @} */

/** Total variation distance between a distribution and counts. */
double tvd(const std::vector<double>& ideal,
           const std::vector<std::int64_t>& counts);

/** Total variation distance between two distributions. */
double tvd(const std::vector<double>& p, const std::vector<double>& q);

} // namespace permuq::sim

#endif // PERMUQ_SIM_QAOA_H
