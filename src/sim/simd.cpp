/**
 * @file
 * Runtime SIMD tier selection (see sim/simd.h). Detection uses the
 * compiler's CPU-feature builtin on x86; every request is clamped to
 * what both the build and the running CPU support, so a vector tier
 * can never be dispatched on a machine that would fault on it.
 */
#include "sim/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/telemetry/telemetry.h"
#include "sim/kernels.h"

namespace permuq::sim {

namespace {

bool
cpu_has_avx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpu_has_avx512()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

/** Clamp a requested tier to what this binary + CPU can run, degrading
 *  one tier at a time (avx512 -> avx2 -> scalar). */
SimdTier
clamp_tier(SimdTier tier)
{
    if (tier == SimdTier::Avx512 &&
        (!kernels::avx512_compiled_in() || !cpu_has_avx512()))
        tier = SimdTier::Avx2;
    if (tier == SimdTier::Avx2 &&
        (!kernels::avx2_compiled_in() || !cpu_has_avx2()))
        tier = SimdTier::Scalar;
    return tier;
}

SimdTier
initial_tier()
{
    if (const char* env = std::getenv("PERMUQ_SIMD")) {
        if (std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "scalar") == 0)
            return SimdTier::Scalar;
        if (std::strcmp(env, "avx2") == 0)
            return clamp_tier(SimdTier::Avx2);
        if (std::strcmp(env, "avx512") == 0)
            return clamp_tier(SimdTier::Avx512);
        // Unknown values (including "auto") fall through to detection.
    }
    return detected_simd_tier();
}

std::atomic<SimdTier>&
tier_slot()
{
    static std::atomic<SimdTier> tier{initial_tier()};
    return tier;
}

} // namespace

bool
simd_compiled_in()
{
    return kernels::avx2_compiled_in() || kernels::avx512_compiled_in();
}

SimdTier
detected_simd_tier()
{
    return clamp_tier(SimdTier::Avx512);
}

SimdTier
active_simd_tier()
{
    return tier_slot().load(std::memory_order_relaxed);
}

void
set_simd_tier(SimdTier tier)
{
    tier_slot().store(clamp_tier(tier), std::memory_order_relaxed);
}

const char*
simd_tier_name(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Avx512:
        return "avx512";
    case SimdTier::Avx2:
        return "avx2";
    default:
        return "scalar";
    }
}

namespace kernels {

const Table&
active()
{
    switch (active_simd_tier()) {
    case SimdTier::Avx512:
        return avx512_table();
    case SimdTier::Avx2:
        return avx2_table();
    default:
        return scalar_table();
    }
}

const Table&
active_counted()
{
    const Table& t = active();
    if (telemetry::enabled()) {
        static telemetry::Counter& scalar_calls =
            telemetry::counter("permuq.sim.kernels.scalar");
        static telemetry::Counter& avx2_calls =
            telemetry::counter("permuq.sim.kernels.avx2");
        static telemetry::Counter& avx512_calls =
            telemetry::counter("permuq.sim.kernels.avx512");
        // Count by the table actually served (an aliased tier counts
        // as what it aliases to), keyed on the tier label so fallback
        // tables are attributed correctly.
        const char* name = t.name;
        (std::strcmp(name, "scalar") == 0
             ? scalar_calls
             : (std::strcmp(name, "avx512") == 0 ? avx512_calls
                                                 : avx2_calls))
            .add();
    }
    return t;
}

} // namespace kernels

} // namespace permuq::sim
