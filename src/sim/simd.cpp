/**
 * @file
 * Runtime SIMD tier selection (see sim/simd.h). Detection uses the
 * compiler's CPU-feature builtin on x86; every request is clamped to
 * what both the build and the running CPU support, so the AVX2 tier
 * can never be dispatched on a machine that would fault on it.
 */
#include "sim/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/telemetry/telemetry.h"
#include "sim/kernels.h"

namespace permuq::sim {

namespace {

bool
cpu_has_avx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/** Clamp a requested tier to what this binary + CPU can run. */
SimdTier
clamp_tier(SimdTier tier)
{
    if (tier == SimdTier::Avx2 &&
        (!kernels::avx2_compiled_in() || !cpu_has_avx2()))
        return SimdTier::Scalar;
    return tier;
}

SimdTier
initial_tier()
{
    if (const char* env = std::getenv("PERMUQ_SIMD")) {
        if (std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "scalar") == 0)
            return SimdTier::Scalar;
        if (std::strcmp(env, "avx2") == 0)
            return clamp_tier(SimdTier::Avx2);
        // Unknown values (including "auto") fall through to detection.
    }
    return detected_simd_tier();
}

std::atomic<SimdTier>&
tier_slot()
{
    static std::atomic<SimdTier> tier{initial_tier()};
    return tier;
}

} // namespace

bool
simd_compiled_in()
{
    return kernels::avx2_compiled_in();
}

SimdTier
detected_simd_tier()
{
    return clamp_tier(SimdTier::Avx2);
}

SimdTier
active_simd_tier()
{
    return tier_slot().load(std::memory_order_relaxed);
}

void
set_simd_tier(SimdTier tier)
{
    tier_slot().store(clamp_tier(tier), std::memory_order_relaxed);
}

const char*
simd_tier_name(SimdTier tier)
{
    return tier == SimdTier::Avx2 ? "avx2" : "scalar";
}

namespace kernels {

const Table&
active()
{
    return active_simd_tier() == SimdTier::Avx2 ? avx2_table()
                                                : scalar_table();
}

const Table&
active_counted()
{
    const Table& t = active();
    if (telemetry::enabled()) {
        static telemetry::Counter& scalar_calls =
            telemetry::counter("permuq.sim.kernels.scalar");
        static telemetry::Counter& avx2_calls =
            telemetry::counter("permuq.sim.kernels.avx2");
        (&t == &scalar_table() ? scalar_calls : avx2_calls).add();
    }
    return t;
}

} // namespace kernels

} // namespace permuq::sim
