/**
 * @file
 * The statevector kernel dispatch table.
 *
 * Every hot inner loop of the simulator — gate butterflies, diagonal
 * phase sweeps, probability/expectation reductions, the integrator's
 * blend/scale loops — is a free function over a raw interleaved
 * [re, im] double array, collected into a Table of function pointers.
 * Three tiers provide the table: a portable scalar tier
 * (kernels_scalar.cpp), a hand-vectorized AVX2 tier
 * (kernels_avx2.cpp), and an AVX-512 tier (kernels_avx512.cpp) that
 * overrides the hottest entries — the RX butterflies, the diagonal
 * phase sweep, the expectation reductions, and the batched sweep
 * kernels — and inherits everything else from AVX2.
 * Statevector/DiagonalBatch pick the tier once per gate call through
 * active() and hand each parallel_for chunk to the kernel, so thread
 * partitioning (common/parallel.h) and SIMD width compose without
 * knowing about each other.
 *
 * Determinism contract (held by tests/test_kernels.cpp as exact
 * bit-equality):
 *
 *  - All tiers perform the *same* IEEE-754 operations per element in
 *    the same order. The shared per-element formulas live in
 *    kernels_inline.h; the vector tiers arrange their lanes so each
 *    element sees an identical mul/add/sub sequence (no FMA — all
 *    kernel TUs build with -ffp-contract=off), and fall back to the
 *    shared scalar loop whenever a gate's stride breaks lane
 *    contiguity (qubit index too low for 4 consecutive amplitudes;
 *    AVX-512 lacks addsub, so its complex arithmetic negates
 *    alternate lanes before a plain add — IEEE negation is exact, so
 *    x - (-y) == x + y bit-for-bit).
 *
 *  - Reductions (norm_sum / weighted_norm_sum and their batched
 *    forms) accumulate into four fixed lanes — element j (relative to
 *    the range begin) lands in lane j mod kReductionLanes — combined
 *    as (l0+l1) + (l2+l3). The scalar tier keeps four explicit
 *    accumulators in the same pattern, and the AVX-512 tier chains
 *    its two 256-bit half-rows through the accumulator in ascending
 *    element order instead of keeping eight independent lanes, so the
 *    sum is a pure function of the element range: invariant to SIMD
 *    width and, composed with the fixed-slice reduction of
 *    common/parallel.h, to thread count.
 *
 *  - Batched sweep kernels (the b* entries) view one "element" as
 *    `batch` interleaved [re, im] points — the storage of
 *    sim/sweep.h's SweepEvaluator, which evaluates many QAOA angle
 *    points per statevector pass. Per (element, point) they perform
 *    exactly the arithmetic of the corresponding unbatched kernel, so
 *    a batched sweep is bit-identical to evaluating each point
 *    sequentially.
 *
 *  - phase_angles (the mixed-magnitude diagonal fallback) is trig-
 *    bound, not bandwidth-bound; both tiers share one scalar
 *    implementation so libm's sin/cos stay the single source of its
 *    rounding.
 *
 * Index-space conventions ("block" ranges follow sim/kernel_util.h):
 * single-qubit kernels take an [hb, he) range over the compact
 * 2^(n-1) block space with the qubit's low_mask/bit; two-qubit
 * kernels take the 2^(n-2) block space with lo_mask/hi_mask; diagonal
 * sweeps and reductions take plain amplitude-index ranges.
 */
#ifndef PERMUQ_SIM_KERNELS_H
#define PERMUQ_SIM_KERNELS_H

#include <cstddef>
#include <cstdint>

namespace permuq::sim::kernels {

/** Fixed accumulator-lane count of the deterministic reductions. */
inline constexpr std::size_t kReductionLanes = 4;

/** Hard cap on the point count a batched sweep kernel accepts, so
 *  kernels can keep fixed-size stack lane buffers. */
inline constexpr std::size_t kMaxSweepBatch = 16;

/** One tier's kernel set. All `a`/`y`/`x` pointers are interleaved
 *  [re, im] amplitude storage unless a parameter says otherwise.
 *
 *  Batched (b*) kernels operate on SweepEvaluator storage: batched
 *  element i is `batch` consecutive [re, im] point slots starting at
 *  a + 2*batch*i, point b at a + 2*batch*i + 2*b. `batch` is in
 *  [1, kMaxSweepBatch]. */
struct Table
{
    /** Tier label ("scalar" / "avx2" / "avx512") for telemetry and
     *  tests. */
    const char* name;

    /** RX(theta) butterfly, c = cos(theta/2), s = sin(theta/2):
     *  block range [hb, he) over the 2^(n-1) space. */
    void (*rx)(double* a, std::size_t hb, std::size_t he,
               std::size_t low_mask, std::size_t bit, double c, double s);

    /** Hadamard butterfly over the same block space. */
    void (*h)(double* a, std::size_t hb, std::size_t he,
              std::size_t low_mask, std::size_t bit, double inv_sqrt2);

    /**
     * Fused RX(theta) on two distinct qubits in one pass: block range
     * [hb, he) over the 2^(n-2) space, pbit/qbit the two qubit bits
     * (pbit applied first). Bit-identical to rx on pbit followed by
     * rx on qbit, one memory traversal instead of two.
     */
    void (*rx2)(double* a, std::size_t hb, std::size_t he,
                std::size_t lo_mask, std::size_t hi_mask,
                std::size_t pbit, std::size_t qbit, double c, double s);

    /** RZ sweep over amplitude range [ib, ie): multiply by (e0r,e0i)
     *  where the qubit bit is clear, (e1r,e1i) where set. */
    void (*rz)(double* a, std::size_t ib, std::size_t ie,
               std::size_t bit, double e0r, double e0i, double e1r,
               double e1i);

    /** RZZ sweep over [ib, ie): (sr,si) on aligned spins, (dr,di) on
     *  anti-aligned. */
    void (*rzz)(double* a, std::size_t ib, std::size_t ie,
                std::size_t abit, std::size_t bbit, double sr, double si,
                double dr, double di);

    /** CPHASE over the 2^(n-2) block space: multiply the amplitude at
     *  i00 | target_bits by (pr, pi). */
    void (*cphase)(double* a, std::size_t hb, std::size_t he,
                   std::size_t lo_mask, std::size_t hi_mask,
                   std::size_t target_bits, double pr, double pi);

    /** CX over the 2^(n-2) block space: swap the amplitudes at
     *  i00|cbit and i00|cbit|tbit. */
    void (*cx)(double* a, std::size_t hb, std::size_t he,
               std::size_t lo_mask, std::size_t hi_mask, std::size_t cbit,
               std::size_t tbit);

    /** SWAP over the 2^(n-2) block space: swap i00|abit and i00|bbit. */
    void (*swap)(double* a, std::size_t hb, std::size_t he,
                 std::size_t lo_mask, std::size_t hi_mask,
                 std::size_t abit, std::size_t bbit);

    /**
     * Fused-diagonal phase sweep over [ib, ie): amplitude i is
     * multiplied by (lut_re[k], lut_im[k]) with k = key[i] + span.
     * The LUT is split into real/imag planes so the AVX2 tier can
     * gather each with one instruction.
     */
    void (*phase_lut)(double* a, std::size_t ib, std::size_t ie,
                      const std::int32_t* key, std::int32_t span,
                      const double* lut_re, const double* lut_im);

    /** Dense phase sweep over [ib, ie): amplitude i is multiplied by
     *  e^{i * scale * (constant + angle[i])}. Shared scalar
     *  implementation in both tiers (see file comment). */
    void (*phase_angles)(double* a, std::size_t ib, std::size_t ie,
                         const double* angle, double scale,
                         double constant);

    /** out[i] = |a_i|^2 over [ib, ie). */
    void (*probs)(const double* a, double* out, std::size_t ib,
                  std::size_t ie);

    /** Sum of |a_i|^2 over [ib, ie), fixed 4-lane accumulation. */
    double (*norm_sum)(const double* a, std::size_t ib, std::size_t ie);

    /** Sum of |a_i|^2 * (table[i] + offset) over [ib, ie), fixed
     *  4-lane accumulation — the QAOA objective reduction. */
    double (*weighted_norm_sum)(const double* a, const double* table,
                                double offset, std::size_t ib,
                                std::size_t ie);

    /** y[i] += s * x[i] over a plain double range [b, e). */
    void (*axpy)(double* y, const double* x, double s, std::size_t b,
                 std::size_t e);

    /** y[i] *= s over a plain double range [b, e). */
    void (*scale)(double* y, double s, std::size_t b, std::size_t e);

    /** Multiply every amplitude in [ib, ie) by -i: (re,im)->(im,-re). */
    void (*mul_neg_i)(double* a, std::size_t ib, std::size_t ie);

    /** RK4 combine over a plain double range [b, e):
     *  y[i] += w * (((k1[i] + 2*k2[i]) + 2*k3[i]) + k4[i]). */
    void (*rk4_combine)(double* y, const double* k1, const double* k2,
                        const double* k3, const double* k4, double w,
                        std::size_t b, std::size_t e);

    /**
     * Batched RX butterfly over the block range [hb, he) of the
     * 2^(n-1) space: point b of each element pair mixes with
     * c2[2b]/s2[2b]. c2/s2 hold 2*batch doubles with each point's
     * cos(theta_b/2)/sin(theta_b/2) duplicated (c2[2b] == c2[2b+1])
     * so vector tiers can load them packed against [re, im] slots.
     */
    void (*brx)(double* a, std::size_t hb, std::size_t he,
                std::size_t low_mask, std::size_t bit, std::size_t batch,
                const double* c2, const double* s2);

    /** Batched RX butterfly over two contiguous runs of @p elems
     *  batched elements each (a0 holds the bit-clear halves) — the
     *  grouped high-qubit pass of the sweep engine. */
    void (*brx_pair)(double* a0, double* a1, std::size_t elems,
                     std::size_t batch, const double* c2,
                     const double* s2);

    /** Batched fused-diagonal phase sweep over element range [ib, ie):
     *  point b of element i is multiplied by the [re, im] phase at
     *  lut + 2*((key[i] + span)*batch + b) — one packed LUT row per
     *  spectrum key, no gathers needed. */
    void (*bphase_lut)(double* a, std::size_t ib, std::size_t ie,
                       const std::int32_t* key, std::int32_t span,
                       std::size_t batch, const double* lut);

    /** Batched dense phase sweep over [ib, ie): point b of element i
     *  is multiplied by e^{i * scale[b] * (constant + angle[i])}.
     *  Trig-bound; shared scalar implementation in every tier. */
    void (*bphase_angles)(double* a, std::size_t ib, std::size_t ie,
                          const double* angle, std::size_t batch,
                          const double* scale, double constant);

    /** Batched objective reduction over [ib, ie): out[b] = sum over i
     *  of |a_{i,b}|^2 * (table[i] + offset), fixed 4-lane
     *  accumulation per point (lane (i - ib) mod kReductionLanes). */
    void (*bweighted_norm_sum)(const double* a, std::size_t batch,
                               const double* table, double offset,
                               std::size_t ib, std::size_t ie,
                               double* out);
};

/** The portable tier (always available). */
const Table& scalar_table();

/** The AVX2 tier; aliases scalar_table() when the build lacks AVX2
 *  support (non-x86 target or compiler without -mavx2). */
const Table& avx2_table();

/** True when avx2_table() is a real AVX2 implementation. */
bool avx2_compiled_in();

/** The AVX-512 tier; overrides the hottest kernels and inherits the
 *  rest from avx2_table(). Aliases avx2_table() when the build lacks
 *  AVX-512 support. */
const Table& avx512_table();

/** True when avx512_table() is a real AVX-512 implementation. */
bool avx512_compiled_in();

/** The table selected by sim::active_simd_tier(). */
const Table& active();

/** active(), also counting the dispatch under the telemetry counter
 *  permuq.sim.kernels.<tier> — call once per gate/sweep, not per
 *  thread chunk. */
const Table& active_counted();

} // namespace permuq::sim::kernels

#endif // PERMUQ_SIM_KERNELS_H
