/**
 * @file
 * Amortized QAOA objective evaluation (paper §7.4).
 *
 * Every Nelder–Mead iteration, landscape scan, and trajectory batch
 * evaluates the same MaxCut problem at different (gamma, beta)
 * angles. The free functions in sim/qaoa.h rebuild the fused cost
 * batch, re-bake its 2^n spectrum, and re-allocate a statevector per
 * call; QaoaObjective builds them once per problem and serves
 * repeated evaluations against the cached state:
 *
 *  - the fused diagonal cost batch (keys baked once, reused by every
 *    layer of every evaluation at any gamma),
 *  - the baked cut-value spectrum, making cut(z) an O(1) lookup and
 *    the expectation one weighted-norm reduction — no per-shot or
 *    per-state edge scan,
 *  - a scratch statevector reused across ideal evaluations,
 *  - per-circuit replay metadata (CX cost per op, edge weights) for
 *    the noisy path, cached across calls with the same compiled
 *    circuit.
 *
 * The noisy path additionally pre-draws each layer's Pauli-error
 * decisions in the exact RNG order of the gate-by-gate walk: layers
 * that draw no error collapse to one cached fused sweep plus the
 * blocked mixer, while layers with errors replay op by op with the
 * recorded decisions. The random stream, and therefore every sampled
 * shot, is identical to the unamortized walk.
 *
 * Results are a pure function of (problem, angles, options): the
 * free functions of sim/qaoa.h delegate here, and everything runs on
 * the deterministic kernels of sim/kernels.h, so values are
 * bit-identical across thread counts and SIMD tiers.
 *
 * The context borrows the problem graph (and weighted problem, when
 * given): callers keep them alive for the objective's lifetime.
 */
#ifndef PERMUQ_SIM_QAOA_OBJECTIVE_H
#define PERMUQ_SIM_QAOA_OBJECTIVE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/diagonal.h"
#include "sim/qaoa.h"
#include "sim/statevector.h"

namespace permuq::sim {

/** Reusable evaluation context for one (possibly weighted) MaxCut
 *  problem. Not thread-safe: one context per concurrent optimizer. */
class QaoaObjective
{
  public:
    /** Unweighted MaxCut over @p problem (borrowed). */
    explicit QaoaObjective(const graph::Graph& problem);

    /** Weighted MaxCut over @p wp (borrowed). */
    explicit QaoaObjective(const problem::WeightedProblem& wp);

    std::int32_t num_qubits() const { return sv_.num_qubits(); }

    bool weighted() const { return !weights_.empty(); }

    /** Cut value (weight) of basis state @p z — O(1) out of the baked
     *  spectrum. Exact for unweighted problems (integer halves). */
    double
    cut(std::uint64_t z) const
    {
        return cost_table_[z] + offset_;
    }

    /** Ideal (noiseless) expected cut <C> at @p angles. */
    double ideal_expectation(const QaoaAngles& angles);

    /** Ideal output distribution at @p angles. */
    std::vector<double> ideal_distribution(const QaoaAngles& angles);

    /** Noisy expected cut (see sim/qaoa.h for the trajectory model). */
    double noisy_expectation(const circuit::Circuit& compiled,
                             const arch::NoiseModel& noise,
                             const QaoaAngles& angles,
                             const NoisySimOptions& options);

    /** Shot histogram over basis states across all trajectories. */
    std::vector<std::int64_t> noisy_counts(
        const circuit::Circuit& compiled, const arch::NoiseModel& noise,
        const QaoaAngles& angles, const NoisySimOptions& options);

    /** Trajectory-averaged output distribution (pre-readout). */
    std::vector<double> noisy_distribution(
        const circuit::Circuit& compiled, const arch::NoiseModel& noise,
        const QaoaAngles& angles, const NoisySimOptions& options);

    /** Exact bytes of the context's cached state: the scratch
     *  statevector plus the baked cut spectrum. */
    std::size_t memory_bytes() const;

  private:
    /** The batched sweep engine (sim/sweep.h) replays this context's
     *  exact evaluation arithmetic across many angle points at once;
     *  it reads the cost batch, the baked spectrum, and the replay
     *  plan directly instead of widening the public API. */
    friend class SweepEvaluator;

    void build(const std::vector<double>* weights);
    /** Run the ideal circuit at @p angles into the scratch state. */
    void prepare_ideal(const QaoaAngles& angles);
    /** Per-circuit replay metadata, cached across calls. */
    struct Plan
    {
        const void* circuit = nullptr;
        std::size_t num_ops = 0;
        std::uint64_t hash = 0;
        std::vector<std::int8_t> cx_cost;
    };
    const Plan& plan_for(const circuit::Circuit& compiled);

    template <typename Sink>
    void for_each_trajectory(const circuit::Circuit& compiled,
                             const arch::NoiseModel& noise,
                             const QaoaAngles& angles,
                             const NoisySimOptions& options, Sink&& sink,
                             bool parallel);

    const graph::Graph& problem_;
    std::vector<double> weights_; ///< empty = unweighted
    /** Edge -> weight for the noisy replay (weighted problems). */
    std::unordered_map<VertexPair, double, VertexPairHash> weight_map_;
    DiagonalBatch cost_;              ///< unit/weighted edge batch
    std::vector<double> cost_table_;  ///< baked spectrum: cut(z) - offset_
    double offset_ = 0.0;             ///< |E|/2 (or total weight / 2)
    Statevector sv_;                  ///< ideal-path scratch state
    Plan plan_;                       ///< last compiled circuit's metadata
};

} // namespace permuq::sim

#endif // PERMUQ_SIM_QAOA_OBJECTIVE_H
