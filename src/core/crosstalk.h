/**
 * @file
 * Crosstalk model (paper §5.3/§6.2): on fixed-frequency devices, two
 * CX gates on parallel adjacent couplers interfere. We precompute, for
 * every coupler, the set of couplers that are "close and parallel":
 * disjoint couplers whose endpoints are pairwise adjacent.
 */
#ifndef PERMUQ_CORE_CROSSTALK_H
#define PERMUQ_CORE_CROSSTALK_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"

namespace permuq::core {

/** Per-coupler lists of crosstalking couplers (by coupler index). */
class CrosstalkMap
{
  public:
    /** Build the map for @p device (O(couplers x degree^2)). */
    explicit CrosstalkMap(const arch::CouplingGraph& device);

    /** Couplers that crosstalk with coupler @p c. */
    const std::vector<std::int32_t>&
    neighbors(std::int32_t c) const
    {
        return lists_[static_cast<std::size_t>(c)];
    }

    std::int64_t
    total_pairs() const
    {
        return total_pairs_;
    }

  private:
    std::vector<std::vector<std::int32_t>> lists_;
    std::int64_t total_pairs_ = 0;
};

} // namespace permuq::core

#endif // PERMUQ_CORE_CROSSTALK_H
