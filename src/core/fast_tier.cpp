/**
 * @file
 * Single-pass fast-tier pipeline (see fast_tier.h). The engine reuses
 * the incremental executable-edge frontier of the greedy engine but
 * strips everything search-shaped: gates are scheduled by first-fit
 * maximal independent set in ascending coupler order (no conflict
 * graph, no coloring, no allocation per cycle), SWAPs by first-fit
 * distance-reducing pulls (no weighted matching), and the run is one
 * bounded burst completed by a single ATA-tail replay (no snapshots,
 * no candidate materialization, no selector).
 */
#include "core/fast_tier.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ata/replay.h"
#include "common/error.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "core/crosstalk.h"
#include "core/engine_util.h"
#include "core/prediction.h"
#include "graph/routing.h"

namespace permuq::core {

namespace {

/**
 * Cycle budget of the greedy burst. The burst executes the locally
 * cheap gates and pulls distant pairs together; whatever remains is
 * finished by the ATA tail, so a small fixed budget bounds latency
 * without threatening termination. 128 cycles keeps 100-512 qubit
 * compiles well under a millisecond while leaving little work for
 * the (deeper) pattern tail on typical QAOA densities.
 */
constexpr std::int64_t kFastBurstCycles = 128;

/**
 * O(n + E) locality placement: the breadth-first orders of the
 * problem and device graphs, matched index for index. Both orders
 * are expanding balls around the highest-degree vertex/qubit, so
 * problem-adjacent logicals land a few positions — and therefore a
 * few couplers — apart, without touching the distance table and
 * without any annealing or multi-start search. Roots and component
 * restarts break ties by ascending index, so the placement is
 * deterministic.
 */
circuit::Mapping
bfs_locality_placement(const arch::CouplingGraph& device,
                       const graph::Graph& problem)
{
    auto bfs_order = [](const graph::Graph& g) {
        std::int32_t n = g.num_vertices();
        std::vector<std::int32_t> order;
        order.reserve(static_cast<std::size_t>(n));
        std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
        auto visit = [&](std::int32_t v) {
            if (seen[static_cast<std::size_t>(v)] == 0) {
                seen[static_cast<std::size_t>(v)] = 1;
                order.push_back(v);
            }
        };
        std::int32_t root = 0;
        for (std::int32_t v = 1; v < n; ++v)
            if (g.degree(v) > g.degree(root))
                root = v;
        if (n > 0)
            visit(root);
        std::size_t head = 0;
        std::int32_t restart = 0;
        while (order.size() < static_cast<std::size_t>(n)) {
            if (head == order.size()) {
                while (seen[static_cast<std::size_t>(restart)] != 0)
                    ++restart;
                visit(restart);
            }
            std::int32_t v = order[head++];
            for (std::int32_t w : g.neighbors(v))
                visit(w);
        }
        return order;
    };
    auto dev_order = bfs_order(device.connectivity());
    auto prob_order = bfs_order(problem);
    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(problem.num_vertices()));
    for (std::size_t i = 0; i < prob_order.size(); ++i)
        phys_of[static_cast<std::size_t>(prob_order[i])] =
            dev_order[i];
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}

/** The fast tier's lean scheduling engine: one object per compile,
 *  fully sequential (trivially thread-count invariant). */
class FastEngine
{
  public:
    FastEngine(const arch::CouplingGraph& device,
               const graph::Graph& problem,
               const CompilerOptions& options,
               const CrosstalkMap* crosstalk, const EdgeTable& edges,
               const DeviceIndex& index, circuit::Mapping initial)
        : device_(device),
          problem_(problem),
          options_(options),
          crosstalk_(crosstalk),
          edges_(edges),
          index_(index),
          circ_(std::move(initial)),
          done_(static_cast<std::size_t>(problem.num_edges()), false),
          done8_(static_cast<std::size_t>(problem.num_edges()), 0),
          pending_deg_(static_cast<std::size_t>(problem.num_vertices()),
                       0),
          last_swap_cycle_(device.couplers().size(), -10)
    {
        // CSR-flattened pending adjacency: one allocation, contiguous
        // per-vertex slices, in-place compaction via adj_len_.
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            ++pending_deg_[static_cast<std::size_t>(edge.a)];
            ++pending_deg_[static_cast<std::size_t>(edge.b)];
        }
        const std::size_t n =
            static_cast<std::size_t>(problem.num_vertices());
        adj_off_.resize(n + 1, 0);
        adj_len_.resize(n, 0);
        for (std::size_t v = 0; v < n; ++v)
            adj_off_[v + 1] = adj_off_[v] + pending_deg_[v];
        adj_flat_.resize(adj_off_[n]);
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            auto place = [&](std::int32_t v, std::int32_t other) {
                std::size_t slot =
                    adj_off_[static_cast<std::size_t>(v)] +
                    static_cast<std::size_t>(
                        adj_len_[static_cast<std::size_t>(v)]++);
                adj_flat_[slot] = {other, e};
            };
            place(edge.a, edge.b);
            place(edge.b, edge.a);
        }
        pending_ = problem.num_edges();
        // Gates plus the typical SWAP volume of sparse QAOA routing
        // (~7 per gate) in one allocation.
        circ_.reserve(static_cast<std::size_t>(problem.num_edges()) * 8);

        std::int32_t num_couplers =
            static_cast<std::int32_t>(device.couplers().size());
        frontier_edge_.assign(static_cast<std::size_t>(num_couplers), -1);
        frontier_bits_.assign(
            (static_cast<std::size_t>(num_couplers) + 63) / 64, 0);
        for (std::int32_t c = 0; c < num_couplers; ++c)
            refresh_coupler(c);

        used_.assign(static_cast<std::size_t>(device.num_qubits()), 0);
        if (crosstalk_ != nullptr)
            xt_busy_.assign(static_cast<std::size_t>(num_couplers), 0);
    }

    /** Run the bounded greedy burst, then finish with one ATA tail. */
    void
    run()
    {
        telemetry::ScopedSpan span("compile.fast");
        span.arg("pending_gates", pending_);
        const std::int64_t max_cycles = static_cast<std::int64_t>(
            options_.max_cycle_factor *
                (4.0 * device_.num_qubits() + 64.0) +
            64.0);
        const std::int64_t burst =
            std::min(max_cycles, kFastBurstCycles);
        std::int64_t cycle = 0;
        for (; pending_ > 0 && cycle < burst; ++cycle)
            if (!step(cycle))
                break; // stalled; the ATA tail finishes it
        if (pending_ > 0) {
            if (device_.kind() == arch::ArchKind::Custom) {
                // Unreached via compile() (fast falls back to balanced
                // on custom devices), but kept so the engine terminates
                // on any input.
                route_remaining();
            } else {
                telemetry::ScopedSpan replay_span("ata.replay");
                prefix_ops_ =
                    static_cast<std::int64_t>(circ_.ops().size());
                auto plan = detect_regions(device_, problem_, done_,
                                           circ_.final_mapping());
                auto sched = tail_schedule(device_, plan);
                auto tail = ata::replay(device_, problem_,
                                        circ_.final_mapping(), sched, {},
                                        &done_);
                circ_.append_circuit(tail);
                pending_ = 0;
            }
        }
        telemetry::counter("permuq.core.greedy.swaps_inserted")
            .add(circ_.num_swaps());
        telemetry::counter("permuq.core.greedy.gates_scheduled")
            .add(circ_.num_compute());
        telemetry::counter("permuq.core.greedy.pull_cache.hit")
            .add(pull_hits_);
        telemetry::counter("permuq.core.greedy.pull_cache.miss")
            .add(pull_misses_);
        span.arg("burst_cycles", cycle);
        span.arg("swaps", circ_.num_swaps());
    }

    circuit::Circuit take_circuit() && { return std::move(circ_); }

    /** Ops before the ATA tail (everything, when no tail ran). */
    std::int64_t
    prefix_ops() const
    {
        return prefix_ops_ >= 0
                   ? prefix_ops_
                   : static_cast<std::int64_t>(circ_.ops().size());
    }

    std::int64_t pull_hits() const { return pull_hits_; }
    std::int64_t pull_misses() const { return pull_misses_; }

  private:
    /** Recompute whether coupler @p c hosts an executable pending gate
     *  under the current mapping, and update the frontier. */
    void
    refresh_coupler(std::int32_t c)
    {
        const auto& link = device_.couplers()[static_cast<std::size_t>(c)];
        LogicalQubit a = circ_.final_mapping().logical_at(link.a);
        LogicalQubit b = circ_.final_mapping().logical_at(link.b);
        std::int32_t e = -1;
        if (a != kInvalidQubit && b != kInvalidQubit) {
            std::int32_t cand = edges_.at(a, b);
            if (cand >= 0 && done8_[static_cast<std::size_t>(cand)] == 0)
                e = cand;
        }
        frontier_edge_[static_cast<std::size_t>(c)] = e;
        std::uint64_t bit = std::uint64_t(1) << (c & 63);
        if (e >= 0)
            frontier_bits_[static_cast<std::size_t>(c) >> 6] |= bit;
        else
            frontier_bits_[static_cast<std::size_t>(c) >> 6] &= ~bit;
    }

    /**
     * Lazy frontier update after the occupant of @p pos moved there:
     * SET the bit of every coupler the move made gate-ready,
     * discovered through the moved logical's (short) pending list.
     * Bits staled by a move are not cleared here — the gate stage
     * re-validates every candidate against the live mapping before
     * committing, so over-approximate bits are harmless. (Eagerly
     * recomputing all incident couplers — the greedy engine's
     * refresh_around — is the dominant per-SWAP cost at fast-tier
     * SWAP rates.)
     */
    void
    seed_frontier(PhysicalQubit pos)
    {
        const auto& mapping = circ_.final_mapping();
        LogicalQubit l = mapping.logical_at(pos);
        if (l == kInvalidQubit ||
            pending_deg_[static_cast<std::size_t>(l)] == 0)
            return;
        const std::uint16_t* row = device_.distances().row(pos);
        auto* adj = &adj_flat_[adj_off_[static_cast<std::size_t>(l)]];
        std::int32_t len = adj_len_[static_cast<std::size_t>(l)];
        std::int32_t keep = 0;
        for (std::int32_t k = 0; k < len; ++k) {
            if (done8_[static_cast<std::size_t>(adj[k].second)] != 0)
                continue;
            adj[keep++] = adj[k];
            const auto& [b, e] = adj[keep - 1];
            PhysicalQubit pb =
                mapping.physical_of(b);
            if (graph::DistanceMatrix::decode(
                    row[static_cast<std::size_t>(pb)]) == 1) {
                std::int32_t c = index_.coupler_at(pos, pb);
                frontier_edge_[static_cast<std::size_t>(c)] = e;
                frontier_bits_[static_cast<std::size_t>(c) >> 6] |=
                    std::uint64_t(1) << (c & 63);
            }
        }
        adj_len_[static_cast<std::size_t>(l)] = keep;
    }

    /**
     * @p moved_to_q_d: known post-SWAP distance from @p q to the
     * moved logical's pull target, or -1 when unknown. When it is
     * >= 2 the pull cannot have made any of the mover's gates ready,
     * so its seed scan is skipped (the waiting-adjacent safety net in
     * the SWAP stage covers the rare stale-cache case where another
     * partner became adjacent).
     */
    void
    do_swap(PhysicalQubit p, PhysicalQubit q,
            std::int32_t moved_to_q_d = -1)
    {
        circ_.add_swap(p, q);
        seed_frontier(p);
        if (moved_to_q_d < 2)
            seed_frontier(q);
    }

    void
    mark_done(std::int32_t e, std::int32_t c)
    {
        done_[static_cast<std::size_t>(e)] = true;
        done8_[static_cast<std::size_t>(e)] = 1;
        const auto& edge = problem_.edges()[static_cast<std::size_t>(e)];
        --pending_deg_[static_cast<std::size_t>(edge.a)];
        --pending_deg_[static_cast<std::size_t>(edge.b)];
        --pending_;
        refresh_coupler(c);
    }

    /** Termination fallback for devices without an ATA decomposition:
     *  route every remaining gate along shortest paths. */
    void
    route_remaining()
    {
        const auto& dist = device_.distances();
        for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
            if (done_[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(e)];
            PhysicalQubit pa = circ_.final_mapping().physical_of(edge.a);
            PhysicalQubit pb = circ_.final_mapping().physical_of(edge.b);
            pa = graph::walk_toward(
                device_.connectivity(), dist, pa, pb,
                [&](PhysicalQubit from, PhysicalQubit to) {
                    do_swap(from, to);
                });
            circ_.add_compute(pa, pb);
            mark_done(e, index_.coupler_at(pa, pb));
        }
    }

    /** One scheduling cycle; returns false if nothing could be done. */
    bool
    step(std::int64_t cycle)
    {
        const auto& mapping = circ_.final_mapping();
        const auto& couplers = device_.couplers();
        const auto& dist = device_.distances();

        // ---- Gate scheduling: first-fit independent set ------------
        // Snapshot the frontier's set bits ascending, then take every
        // gate whose qubits (and, with crosstalk, neighboring
        // couplers) are still free. First-fit over the ascending
        // coupler order is a maximal independent set of the conflict
        // graph — the coloring machinery of the full pipeline buys
        // better class choices, not feasibility.
        executable_.clear();
        for (std::size_t word = 0; word < frontier_bits_.size(); ++word) {
            std::uint64_t bits = frontier_bits_[word];
            while (bits != 0) {
                std::int32_t c = static_cast<std::int32_t>(word * 64) +
                                 std::countr_zero(bits);
                bits &= bits - 1;
                executable_.push_back(
                    {c, frontier_edge_[static_cast<std::size_t>(c)]});
            }
        }
        std::fill(used_.begin(), used_.end(), 0);
        bool did_something = false;
        xt_touched_.clear();
        for (const auto& ex : executable_) {
            const auto& link =
                couplers[static_cast<std::size_t>(ex.coupler)];
            if (used_[static_cast<std::size_t>(link.a)] != 0 ||
                used_[static_cast<std::size_t>(link.b)] != 0)
                continue;
            if (crosstalk_ != nullptr &&
                xt_busy_[static_cast<std::size_t>(ex.coupler)] != 0)
                continue;
            // Lazy frontier: SWAPs only SET bits, so a snapshot entry
            // may be stale; re-derive the hosted gate from the live
            // mapping before committing, clearing dead bits as they
            // are discovered.
            LogicalQubit la = mapping.logical_at(link.a);
            LogicalQubit lb = mapping.logical_at(link.b);
            std::int32_t gate = -1;
            if (la != kInvalidQubit && lb != kInvalidQubit) {
                std::int32_t cand = edges_.at(la, lb);
                if (cand >= 0 &&
                    done8_[static_cast<std::size_t>(cand)] == 0)
                    gate = cand;
            }
            if (gate < 0) {
                frontier_edge_[static_cast<std::size_t>(ex.coupler)] =
                    -1;
                frontier_bits_[static_cast<std::size_t>(ex.coupler) >>
                               6] &=
                    ~(std::uint64_t(1) << (ex.coupler & 63));
                continue;
            }
            circ_.add_compute(link.a, link.b);
            mark_done(gate, ex.coupler);
            used_[static_cast<std::size_t>(link.a)] = 1;
            used_[static_cast<std::size_t>(link.b)] = 1;
            did_something = true;
            if (crosstalk_ != nullptr) {
                for (std::int32_t other :
                     crosstalk_->neighbors(ex.coupler)) {
                    xt_busy_[static_cast<std::size_t>(other)] = 1;
                    xt_touched_.push_back(other);
                }
            }
            // Gate unification rider (Fig 2(d) identity): a SWAP on
            // the pair that just computed costs 1 extra CX instead of
            // 3; take it when it reduces the pending-distance
            // potential.
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(gate)];
            if (swap_rider_gain(edge.a, edge.b) < 0) {
                do_swap(link.a, link.b);
                last_swap_cycle_[static_cast<std::size_t>(ex.coupler)] =
                    cycle;
            }
        }
        for (std::int32_t c : xt_touched_)
            xt_busy_[static_cast<std::size_t>(c)] = 0;
        if (pending_ == 0)
            return did_something;

        // ---- SWAP insertion: first-fit distance-reducing pulls -----
        // Every logical qubit with pending work pulls toward its
        // nearest pending partner along the first free distance-
        // reducing coupler (lowest-error such coupler under a noise
        // model). No matching: conflicts are resolved first-come in
        // ascending logical order, which is deterministic and cheap.
        if (pull_cache_.empty()) {
            pull_cache_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
            active_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
            for (LogicalQubit a = 0; a < problem_.num_vertices(); ++a)
                active_[static_cast<std::size_t>(a)] = a;
        }
        std::size_t active_keep = 0;
        for (std::size_t idx = 0; idx < active_.size(); ++idx) {
            LogicalQubit a = active_[idx];
            if (pending_deg_[static_cast<std::size_t>(a)] == 0)
                continue;
            active_[active_keep++] = a;
            PhysicalQubit pa = mapping.physical_of(a);
            if (used_[static_cast<std::size_t>(pa)] != 0)
                continue;
            auto& cache = pull_cache_[static_cast<std::size_t>(a)];
            std::int32_t best_d;
            PhysicalQubit target;
            if (cache.expires > cycle && cache.partner >= 0 &&
                done8_[static_cast<std::size_t>(cache.edge)] == 0) {
                ++pull_hits_;
                target = mapping.physical_of(cache.partner);
                best_d = dist.at(pa, target);
            } else {
                ++pull_misses_;
                best_d = kUnreachable;
                target = kInvalidQubit;
                LogicalQubit partner = kInvalidQubit;
                std::int32_t edge = -1;
                const std::uint16_t* row_pa = dist.row(pa);
                auto* adj =
                    &adj_flat_[adj_off_[static_cast<std::size_t>(a)]];
                std::int32_t len = adj_len_[static_cast<std::size_t>(a)];
                std::int32_t keep = 0;
                for (std::int32_t k = 0; k < len; ++k) {
                    if (done8_[static_cast<std::size_t>(
                            adj[k].second)] != 0)
                        continue;
                    adj[keep++] = adj[k];
                    const auto& [b, e] = adj[keep - 1];
                    std::int32_t d = graph::DistanceMatrix::decode(
                        row_pa[static_cast<std::size_t>(
                            mapping.physical_of(b))]);
                    if (d < best_d) {
                        best_d = d;
                        target = mapping.physical_of(b);
                        partner = b;
                        edge = e;
                    }
                }
                adj_len_[static_cast<std::size_t>(a)] = keep;
                cache.partner = partner;
                cache.edge = edge;
                cache.expires =
                    cycle + 1 + problem_.num_vertices() / 128;
            }
            if (best_d <= 1 || target == kInvalidQubit) {
                // Adjacent pairs are the gate stage's job — but make
                // sure it can see this one: do_swap skips the mover's
                // seed scan when the pull landed short of adjacency,
                // so a pair that became adjacent under a stale pull
                // cache re-seeds its coupler bit here.
                if (best_d == 1) {
                    std::int32_t c = index_.coupler_at(pa, target);
                    frontier_edge_[static_cast<std::size_t>(c)] =
                        cache.edge;
                    frontier_bits_[static_cast<std::size_t>(c) >> 6] |=
                        std::uint64_t(1) << (c & 63);
                }
                continue;
            }
            const std::uint16_t* row_t = dist.row(target);
            // Two-level preference: a distance-reducing coupler whose
            // displaced occupant is not pushed away from its own
            // cached partner beats one that churns it; within a level,
            // first fit (or best (1-e)^3 SWAP fidelity under noise).
            // The fallback level guarantees the pull still progresses
            // when every free neighbor hosts contended work. Pulls
            // advance one step per cycle: both endpoints of a far pair
            // inch toward each other in parallel, which halves the
            // serial SWAP-chain depth compared to routing one endpoint
            // the whole way.
            PhysicalQubit pick = kInvalidQubit, fb_pick = kInvalidQubit;
            std::int32_t pick_c = -1, fb_c = -1;
            double pick_w = -1.0, fb_w = -1.0;
            bool ideal = options_.noise == nullptr ||
                         options_.noise->is_ideal();
            for (const auto& [nb, c] : index_.incident(pa)) {
                if (used_[static_cast<std::size_t>(nb)] != 0)
                    continue;
                if (graph::DistanceMatrix::decode(
                        row_t[static_cast<std::size_t>(nb)]) >= best_d)
                    continue;
                if (last_swap_cycle_[static_cast<std::size_t>(c)] ==
                    cycle - 1)
                    continue; // anti-oscillation tabu
                bool churns = false;
                LogicalQubit occ = mapping.logical_at(nb);
                if (occ != kInvalidQubit &&
                    pending_deg_[static_cast<std::size_t>(occ)] > 0) {
                    const auto& oc =
                        pull_cache_[static_cast<std::size_t>(occ)];
                    if (oc.partner != kInvalidQubit && oc.edge >= 0 &&
                        done8_[static_cast<std::size_t>(oc.edge)] == 0) {
                        const std::uint16_t* row_o = dist.row(
                            mapping.physical_of(oc.partner));
                        churns =
                            graph::DistanceMatrix::decode(
                                row_o[static_cast<std::size_t>(pa)]) >
                            graph::DistanceMatrix::decode(
                                row_o[static_cast<std::size_t>(nb)]);
                    }
                }
                double w = 0.0;
                if (!ideal) {
                    const auto& link =
                        couplers[static_cast<std::size_t>(c)];
                    double e = options_.noise->cx_error(link.a, link.b);
                    w = std::pow(1.0 - std::min(e, 0.5), 3.0);
                }
                if (!churns) {
                    if (ideal) {
                        pick = nb;
                        pick_c = c;
                        break; // first fit
                    }
                    if (w > pick_w) {
                        pick_w = w;
                        pick = nb;
                        pick_c = c;
                    }
                } else if (pick == kInvalidQubit) {
                    if (ideal) {
                        if (fb_pick == kInvalidQubit) {
                            fb_pick = nb;
                            fb_c = c;
                        }
                    } else if (w > fb_w) {
                        fb_w = w;
                        fb_pick = nb;
                        fb_c = c;
                    }
                }
            }
            if (pick == kInvalidQubit) {
                pick = fb_pick;
                pick_c = fb_c;
            }
            if (pick == kInvalidQubit)
                continue;
            do_swap(pa, pick,
                    graph::DistanceMatrix::decode(
                        row_t[static_cast<std::size_t>(pick)]));
            last_swap_cycle_[static_cast<std::size_t>(pick_c)] = cycle;
            used_[static_cast<std::size_t>(pa)] = 1;
            used_[static_cast<std::size_t>(pick)] = 1;
            did_something = true;
        }
        active_.resize(active_keep);
        return did_something;
    }

    /** Net pending-distance change of exchanging the two logicals
     *  (negative = the merged swap pays off). Same tally as the full
     *  greedy engine, including the pending_adj_ compaction. */
    std::int64_t
    swap_rider_gain(LogicalQubit a, LogicalQubit b)
    {
        if (pending_deg_[static_cast<std::size_t>(a)] == 0 &&
            pending_deg_[static_cast<std::size_t>(b)] == 0)
            return 0;
        const auto& mapping = circ_.final_mapping();
        const auto& dist = device_.distances();
        PhysicalQubit pa = mapping.physical_of(a);
        PhysicalQubit pb = mapping.physical_of(b);
        std::int64_t delta = 0;
        auto tally = [&](LogicalQubit q, PhysicalQubit from,
                         PhysicalQubit to) {
            if (pending_deg_[static_cast<std::size_t>(q)] == 0)
                return;
            const std::uint16_t* row_to = dist.row(to);
            const std::uint16_t* row_from = dist.row(from);
            auto* adj = &adj_flat_[adj_off_[static_cast<std::size_t>(q)]];
            std::int32_t len = adj_len_[static_cast<std::size_t>(q)];
            std::int32_t keep = 0;
            for (std::int32_t k = 0; k < len; ++k) {
                if (done8_[static_cast<std::size_t>(adj[k].second)] != 0)
                    continue;
                adj[keep++] = adj[k];
                PhysicalQubit pp =
                    mapping.physical_of(adj[keep - 1].first);
                delta += graph::DistanceMatrix::decode(
                             row_to[static_cast<std::size_t>(pp)]) -
                         graph::DistanceMatrix::decode(
                             row_from[static_cast<std::size_t>(pp)]);
            }
            adj_len_[static_cast<std::size_t>(q)] = keep;
        };
        tally(a, pa, pb);
        tally(b, pb, pa);
        return delta;
    }

    const arch::CouplingGraph& device_;
    const graph::Graph& problem_;
    const CompilerOptions& options_;
    const CrosstalkMap* crosstalk_;
    const EdgeTable& edges_;
    const DeviceIndex& index_;
    circuit::Circuit circ_;
    std::vector<bool> done_;
    std::vector<std::uint8_t> done8_;
    std::vector<std::int32_t> pending_deg_;
    /** CSR pending adjacency: vertex v's live (partner, edge) entries
     *  are adj_flat_[adj_off_[v] .. adj_off_[v] + adj_len_[v]). */
    std::vector<std::size_t> adj_off_;
    std::vector<std::int32_t> adj_len_;
    std::vector<std::pair<LogicalQubit, std::int32_t>> adj_flat_;
    std::vector<std::int64_t> last_swap_cycle_;

    std::vector<std::uint64_t> frontier_bits_;
    std::vector<std::int32_t> frontier_edge_;

    struct Executable
    {
        std::int32_t coupler;
        std::int32_t edge;
    };
    std::vector<Executable> executable_;
    std::vector<std::uint8_t> used_;
    std::vector<std::uint8_t> xt_busy_;
    std::vector<std::int32_t> xt_touched_;

    struct PullCache
    {
        LogicalQubit partner = kInvalidQubit;
        std::int32_t edge = -1;
        std::int64_t expires = -1;
    };
    std::vector<PullCache> pull_cache_;
    std::vector<LogicalQubit> active_;
    // Explain-report tallies (plain ints; the engine is
    // single-threaded).
    std::int64_t pull_hits_ = 0;
    std::int64_t pull_misses_ = 0;
    std::int64_t prefix_ops_ = -1; ///< -1 = no ATA tail appended
    std::int64_t pending_ = 0;
};

} // namespace

bool
fast_tier_supported(const arch::CouplingGraph& device)
{
    return device.kind() != arch::ArchKind::Custom;
}

CompileResult
fast_compile(const arch::CouplingGraph& device,
             const graph::Graph& problem, const CompilerOptions& options)
{
    std::unique_ptr<CrosstalkMap> crosstalk;
    if (options.crosstalk_aware)
        crosstalk = std::make_unique<CrosstalkMap>(device);
    const EdgeTable edge_table(problem);
    const DeviceIndex device_index(device);
    Timer placement_timer;
    circuit::Mapping initial =
        options.smart_placement
            ? bfs_locality_placement(device, problem)
            : circuit::Mapping(problem.num_vertices(),
                               device.num_qubits());
    const double placement_seconds = placement_timer.elapsed_seconds();
    FastEngine engine(device, problem, options, crosstalk.get(),
                      edge_table, device_index, std::move(initial));
    Timer greedy_timer;
    engine.run();
    CompileResult result;
    result.report.placement_seconds = placement_seconds;
    result.report.greedy_seconds = greedy_timer.elapsed_seconds();
    result.report.pull_cache_hits = engine.pull_hits();
    result.report.pull_cache_misses = engine.pull_misses();
    const std::int64_t prefix_ops = engine.prefix_ops();
    result.circuit = std::move(engine).take_circuit();
    result.metrics = circuit::compute_metrics(result.circuit,
                                              options.noise);
    result.selected = "fast";
    result.snapshots = 0;
    attribute_prefix_tail(result.circuit, prefix_ops, result.report);
    result.report.selected = result.selected;
    return result;
}

} // namespace permuq::core
