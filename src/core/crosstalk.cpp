#include "crosstalk.h"

#include <algorithm>
#include <unordered_map>

#include "common/types.h"

namespace permuq::core {

CrosstalkMap::CrosstalkMap(const arch::CouplingGraph& device)
{
    const auto& couplers = device.couplers();
    std::int32_t num = static_cast<std::int32_t>(couplers.size());
    lists_.resize(static_cast<std::size_t>(num));

    std::unordered_map<VertexPair, std::int32_t, VertexPairHash> index;
    for (std::int32_t c = 0; c < num; ++c)
        index.emplace(couplers[static_cast<std::size_t>(c)], c);

    const auto& g = device.connectivity();
    for (std::int32_t c = 0; c < num; ++c) {
        const auto& e = couplers[static_cast<std::size_t>(c)];
        // Candidates: couplers (r, s) with r ~ e.a and s ~ e.b (or the
        // crossed orientation), disjoint from e.
        for (std::int32_t r : g.neighbors(e.a)) {
            if (r == e.b)
                continue;
            for (std::int32_t s : g.neighbors(e.b)) {
                if (s == e.a || s == r)
                    continue;
                auto it = index.find(VertexPair(r, s));
                if (it != index.end() && it->second > c) {
                    lists_[static_cast<std::size_t>(c)].push_back(
                        it->second);
                    lists_[static_cast<std::size_t>(it->second)].push_back(
                        c);
                    ++total_pairs_;
                }
            }
        }
    }
    for (auto& list : lists_) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
}

} // namespace permuq::core
