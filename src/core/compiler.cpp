#include "compiler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ata/replay.h"
#include "common/error.h"
#include "common/timer.h"
#include "core/crosstalk.h"
#include "core/placement.h"
#include "core/prediction.h"
#include "graph/coloring.h"
#include "graph/matching.h"

namespace permuq::core {

namespace {

/** A recorded greedy prefix to be completed by an ATA tail. */
struct Snapshot
{
    std::int64_t prefix_ops = 0;
    double est_depth = 0.0;
    double est_cx = 0.0;
};

/**
 * The greedy processing component (§6.2): one object per compilation,
 * advancing cycle by cycle and recording prediction snapshots.
 */
class GreedyEngine
{
  public:
    GreedyEngine(const arch::CouplingGraph& device,
                 const graph::Graph& problem,
                 const CompilerOptions& options,
                 const CrosstalkMap* crosstalk,
                 circuit::Mapping initial)
        : device_(device),
          problem_(problem),
          options_(options),
          crosstalk_(crosstalk),
          circ_(std::move(initial)),
          done_(static_cast<std::size_t>(problem.num_edges()), false),
          pending_deg_(static_cast<std::size_t>(problem.num_vertices()),
                       0),
          last_swap_cycle_(device.couplers().size(), -10)
    {
        pending_adj_.resize(
            static_cast<std::size_t>(problem.num_vertices()));
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            edge_index_.emplace(edge, e);
            ++pending_deg_[static_cast<std::size_t>(edge.a)];
            ++pending_deg_[static_cast<std::size_t>(edge.b)];
            pending_adj_[static_cast<std::size_t>(edge.a)].emplace_back(
                edge.b, e);
            pending_adj_[static_cast<std::size_t>(edge.b)].emplace_back(
                edge.a, e);
        }
        pending_ = problem.num_edges();
        for (std::int32_t c = 0;
             c < static_cast<std::int32_t>(device.couplers().size()); ++c)
            coupler_index_.emplace(
                device.couplers()[static_cast<std::size_t>(c)], c);
        if (options.noise != nullptr && !options.noise->is_ideal()) {
            std::vector<double> errs;
            for (const auto& c : device.couplers())
                errs.push_back(options.noise->cx_error(c.a, c.b));
            std::nth_element(errs.begin(),
                             errs.begin() +
                                 static_cast<std::ptrdiff_t>(errs.size() /
                                                             2),
                             errs.end());
            median_error_ = errs[errs.size() / 2];
        }
    }

    /** Run to completion (or the cycle cap). */
    void
    run()
    {
        std::int64_t max_cycles = static_cast<std::int64_t>(
            options_.max_cycle_factor *
                (4.0 * device_.num_qubits() + 64.0) +
            64.0);
        std::int64_t snapshot_step = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(options_.snapshot_fraction *
                                         problem_.num_edges()));
        std::int64_t next_snapshot = pending_ - snapshot_step;
        maybe_snapshot(); // snapshot at cycle 0 == cc0

        for (std::int64_t cycle = 0; pending_ > 0 && cycle < max_cycles;
             ++cycle) {
            bool progress = step(cycle);
            if (options_.use_ata_prediction && pending_ <= next_snapshot) {
                maybe_snapshot();
                next_snapshot = pending_ - snapshot_step;
            }
            if (!progress)
                break; // stalled; the selector's ATA tail finishes it
        }
        if (pending_ > 0) {
            if (device_.kind() == arch::ArchKind::Custom) {
                // No ATA decomposition on irregular devices (§6.5):
                // finish by routing each remaining gate directly.
                route_remaining();
            } else {
                // Cycle cap or stall: complete with the region-
                // restricted ATA tail so even the "greedy" candidate
                // terminates with the linear-depth bound.
                auto plan =
                    detect_regions(device_, problem_, done_,
                                   circ_.final_mapping());
                auto sched = tail_schedule(device_, plan);
                auto tail = ata::replay(device_, problem_,
                                        circ_.final_mapping(), sched, {},
                                        &done_);
                circ_.append_circuit(tail);
                pending_ = 0;
            }
        }
    }

    const circuit::Circuit& circuit() const { return circ_; }
    const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  private:
    /** Route every remaining gate along shortest paths (termination
     *  fallback for devices without an ATA decomposition). */
    void
    route_remaining()
    {
        const auto& dist = device_.distances();
        for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
            if (done_[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(e)];
            PhysicalQubit pa = circ_.final_mapping().physical_of(edge.a);
            PhysicalQubit pb = circ_.final_mapping().physical_of(edge.b);
            while (dist.at(pa, pb) > 1) {
                std::int32_t d = dist.at(pa, pb);
                for (PhysicalQubit nb :
                     device_.connectivity().neighbors(pa)) {
                    if (dist.at(nb, pb) < d) {
                        circ_.add_swap(pa, nb);
                        pa = nb;
                        break;
                    }
                }
            }
            circ_.add_compute(pa, pb);
            done_[static_cast<std::size_t>(e)] = true;
            --pending_deg_[static_cast<std::size_t>(edge.a)];
            --pending_deg_[static_cast<std::size_t>(edge.b)];
            --pending_;
        }
    }

    /** One scheduling cycle; returns false if nothing could be done. */
    bool
    step(std::int64_t cycle)
    {
        const auto& mapping = circ_.final_mapping();
        const auto& couplers = device_.couplers();
        std::int32_t num_couplers =
            static_cast<std::int32_t>(couplers.size());

        // Focus mode: the pull/matching dynamics can enter limit
        // cycles on symmetric configurations. If no gate has executed
        // for a while, break out by routing the globally closest
        // pending pair along a shortest path outright.
        if (cycle - last_compute_cycle_ > 8) {
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = device_.distances().at(
                    mapping.physical_of(edge.a),
                    mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            while (device_.distances().at(pa, pb) > 1) {
                std::int32_t d = device_.distances().at(pa, pb);
                for (PhysicalQubit nb :
                     device_.connectivity().neighbors(pa)) {
                    if (device_.distances().at(nb, pb) < d) {
                        circ_.add_swap(pa, nb);
                        pa = nb;
                        break;
                    }
                }
            }
            circ_.add_compute(pa, pb);
            done_[static_cast<std::size_t>(best_e)] = true;
            --pending_deg_[static_cast<std::size_t>(edge.a)];
            --pending_deg_[static_cast<std::size_t>(edge.b)];
            --pending_;
            last_compute_cycle_ = cycle;
            return true;
        }

        // ---- Gate scheduling via conflict-graph coloring (§6.2) ----
        struct Executable
        {
            std::int32_t coupler;
            std::int32_t edge;
        };
        std::vector<Executable> executable;
        for (std::int32_t c = 0; c < num_couplers; ++c) {
            const auto& link = couplers[static_cast<std::size_t>(c)];
            LogicalQubit a = mapping.logical_at(link.a);
            LogicalQubit b = mapping.logical_at(link.b);
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            auto it = edge_index_.find(VertexPair(a, b));
            if (it != edge_index_.end() &&
                !done_[static_cast<std::size_t>(it->second)])
                executable.push_back({c, it->second});
        }

        std::vector<bool> used(
            static_cast<std::size_t>(device_.num_qubits()), false);
        bool did_something = false;
        if (!executable.empty()) {
            graph::Graph conflict(
                static_cast<std::int32_t>(executable.size()));
            // Shared-qubit conflicts.
            std::unordered_map<std::int32_t, std::vector<std::int32_t>>
                by_qubit;
            for (std::size_t i = 0; i < executable.size(); ++i) {
                const auto& link = couplers[static_cast<std::size_t>(
                    executable[i].coupler)];
                by_qubit[link.a].push_back(static_cast<std::int32_t>(i));
                by_qubit[link.b].push_back(static_cast<std::int32_t>(i));
            }
            for (const auto& [q, list] : by_qubit)
                for (std::size_t i = 0; i < list.size(); ++i)
                    for (std::size_t j = i + 1; j < list.size(); ++j)
                        if (!conflict.has_edge(list[i], list[j]))
                            conflict.add_edge(list[i], list[j]);
            // Crosstalk conflicts.
            if (crosstalk_ != nullptr) {
                std::unordered_map<std::int32_t, std::int32_t> by_coupler;
                for (std::size_t i = 0; i < executable.size(); ++i)
                    by_coupler.emplace(executable[i].coupler,
                                       static_cast<std::int32_t>(i));
                for (std::size_t i = 0; i < executable.size(); ++i)
                    for (std::int32_t other :
                         crosstalk_->neighbors(executable[i].coupler)) {
                        auto it = by_coupler.find(other);
                        if (it != by_coupler.end() &&
                            it->second >
                                static_cast<std::int32_t>(i) &&
                            !conflict.has_edge(
                                static_cast<std::int32_t>(i), it->second))
                            conflict.add_edge(
                                static_cast<std::int32_t>(i), it->second);
                    }
            }
            auto coloring = graph::greedy_coloring(conflict);
            std::int32_t cls = graph::largest_class(coloring);
            for (std::int32_t i :
                 coloring.classes[static_cast<std::size_t>(cls)]) {
                const auto& ex = executable[static_cast<std::size_t>(i)];
                const auto& link =
                    couplers[static_cast<std::size_t>(ex.coupler)];
                circ_.add_compute(link.a, link.b);
                done_[static_cast<std::size_t>(ex.edge)] = true;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(ex.edge)];
                --pending_deg_[static_cast<std::size_t>(edge.a)];
                --pending_deg_[static_cast<std::size_t>(edge.b)];
                --pending_;
                used[static_cast<std::size_t>(link.a)] = true;
                used[static_cast<std::size_t>(link.b)] = true;
                last_compute_cycle_ = cycle;
                did_something = true;
                // Gate unification rider (Fig 2(d) identity): a SWAP on
                // the pair that just computed merges into 3 CX total,
                // so it costs 1 CX instead of 3. Take it whenever it
                // strictly reduces the pending-distance potential of
                // the two logicals.
                if (swap_rider_gain(edge.a, edge.b) < 0) {
                    circ_.add_swap(link.a, link.b);
                    last_swap_cycle_[static_cast<std::size_t>(
                        ex.coupler)] = cycle;
                }
            }
        }
        if (pending_ == 0)
            return did_something;

        // ---- SWAP insertion via weighted matching (§6.2/§5.3) ------
        // Every logical qubit with pending gates pulls toward its
        // nearest pending partner; each coupler accumulates the pull
        // weights of the moves it enables, and a maximum-weight
        // matching of positive-gain couplers is swapped. Engaging all
        // active qubits each cycle is what keeps the compiled depth
        // (not just the gate count) low.
        const auto& dist = device_.distances();
        std::unordered_map<std::int32_t, double> gain;
        if (pull_cache_.empty())
            pull_cache_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
        for (LogicalQubit a = 0; a < problem_.num_vertices(); ++a) {
            if (pending_deg_[static_cast<std::size_t>(a)] == 0)
                continue;
            PhysicalQubit pa = mapping.physical_of(a);
            if (used[static_cast<std::size_t>(pa)])
                continue;
            // Nearest pending partner of a. Recomputing this for every
            // active qubit each cycle is the dominant O(E)-per-cycle
            // term at 1024 qubits, so the result is cached for a few
            // cycles; a slightly stale pull target still points the
            // right way, and the cache is refreshed when the cached
            // partner's gate completes.
            auto& cache = pull_cache_[static_cast<std::size_t>(a)];
            std::int32_t best_d;
            PhysicalQubit target;
            if (cache.expires > cycle && cache.partner >= 0 &&
                !done_[static_cast<std::size_t>(cache.edge)]) {
                target = mapping.physical_of(cache.partner);
                best_d = dist.at(pa, target);
            } else {
                best_d = kUnreachable;
                target = kInvalidQubit;
                LogicalQubit partner = kInvalidQubit;
                std::int32_t edge = -1;
                for (const auto& [b, e] :
                     pending_adj_[static_cast<std::size_t>(a)]) {
                    if (done_[static_cast<std::size_t>(e)])
                        continue;
                    std::int32_t d = dist.at(pa, mapping.physical_of(b));
                    if (d < best_d) {
                        best_d = d;
                        target = mapping.physical_of(b);
                        partner = b;
                        edge = e;
                    }
                }
                cache.partner = partner;
                cache.edge = edge;
                // Fresh targets on small problems (the scan is cheap
                // there); longer reuse where the scan dominates.
                cache.expires =
                    cycle + 1 + problem_.num_vertices() / 128;
            }
            if (best_d <= 1 || target == kInvalidQubit)
                continue; // adjacent pairs are the gate stage's job
            for (PhysicalQubit nb :
                 device_.connectivity().neighbors(pa)) {
                if (used[static_cast<std::size_t>(nb)])
                    continue;
                if (dist.at(nb, target) >= best_d)
                    continue;
                auto it = coupler_index_.find(VertexPair(pa, nb));
                panic_unless(it != coupler_index_.end(),
                             "neighbor without coupler");
                if (last_swap_cycle_[static_cast<std::size_t>(
                        it->second)] == cycle - 1)
                    continue; // anti-oscillation tabu
                double w = 1.0 / static_cast<double>(best_d);
                // Deterministic jitter breaks symmetric limit cycles.
                w *= 1.0 + 1e-7 * static_cast<double>(it->second % 97);
                if (options_.noise != nullptr &&
                    !options_.noise->is_ideal()) {
                    // Bounded error preference: a SWAP on link e costs
                    // ~3 CX, so weight by its success probability
                    // (1-e)^3. This acts as a tiebreak among routes of
                    // similar gain — a noisy link can never veto a
                    // materially shorter route, which measurably hurt
                    // overall fidelity in earlier designs.
                    const auto& link =
                        device_.couplers()[static_cast<std::size_t>(
                            it->second)];
                    double e = options_.noise->cx_error(link.a, link.b);
                    w *= std::pow(1.0 - std::min(e, 0.5), 3.0);
                }
                gain[it->second] += w;
            }
        }

        std::vector<graph::WeightedEdge> candidates;
        std::vector<std::int32_t> candidate_coupler;
        for (const auto& [c, w] : gain) {
            const auto& link =
                device_.couplers()[static_cast<std::size_t>(c)];
            candidates.push_back({link.a, link.b, w});
            candidate_coupler.push_back(c);
        }
        auto picks = graph::greedy_max_weight_matching(
            device_.num_qubits(), candidates);
        for (std::int32_t i : picks) {
            const auto& cand = candidates[static_cast<std::size_t>(i)];
            circ_.add_swap(cand.u, cand.v);
            last_swap_cycle_[static_cast<std::size_t>(
                candidate_coupler[static_cast<std::size_t>(i)])] = cycle;
            did_something = true;
        }

        if (!did_something && pending_ > 0) {
            // Stall breaker: force one routing swap for the closest
            // pending gate, ignoring the tabu.
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = dist.at(mapping.physical_of(edge.a),
                                         mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            for (PhysicalQubit nb :
                 device_.connectivity().neighbors(pa)) {
                if (dist.at(nb, pb) < best_d) {
                    circ_.add_swap(pa, nb);
                    did_something = true;
                    break;
                }
            }
        }
        return did_something;
    }

    /**
     * Net change of the summed distance from each of the two logicals
     * to its pending partners if their positions were exchanged
     * (negative = the merged swap pays off).
     */
    std::int64_t
    swap_rider_gain(LogicalQubit a, LogicalQubit b) const
    {
        const auto& mapping = circ_.final_mapping();
        const auto& dist = device_.distances();
        PhysicalQubit pa = mapping.physical_of(a);
        PhysicalQubit pb = mapping.physical_of(b);
        std::int64_t delta = 0;
        auto tally = [&](LogicalQubit q, PhysicalQubit from,
                         PhysicalQubit to) {
            for (const auto& [partner, e] :
                 pending_adj_[static_cast<std::size_t>(q)]) {
                if (done_[static_cast<std::size_t>(e)])
                    continue;
                PhysicalQubit pp = mapping.physical_of(partner);
                delta += dist.at(to, pp) - dist.at(from, pp);
            }
        };
        tally(a, pa, pb);
        tally(b, pb, pa);
        return delta;
    }

    void
    maybe_snapshot()
    {
        if (!options_.use_ata_prediction)
            return;
        auto plan = detect_regions(device_, problem_, done_,
                                   circ_.final_mapping());
        Snapshot snap;
        snap.prefix_ops = static_cast<std::int64_t>(circ_.ops().size());
        snap.est_depth = static_cast<double>(circ_.depth()) +
                         estimate_tail_depth(device_, plan);
        snap.est_cx =
            2.0 * static_cast<double>(circ_.num_compute()) +
            3.0 * static_cast<double>(circ_.num_swaps()) +
            estimate_tail_cx(device_, plan, pending_);
        snapshots_.push_back(snap);
    }

    const arch::CouplingGraph& device_;
    const graph::Graph& problem_;
    const CompilerOptions& options_;
    const CrosstalkMap* crosstalk_;
    circuit::Circuit circ_;
    std::vector<bool> done_;
    std::vector<std::int32_t> pending_deg_;
    std::vector<std::vector<std::pair<LogicalQubit, std::int32_t>>>
        pending_adj_;
    std::vector<std::int64_t> last_swap_cycle_;
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        edge_index_;
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        coupler_index_;
    struct PullCache
    {
        LogicalQubit partner = kInvalidQubit;
        std::int32_t edge = -1;
        std::int64_t expires = -1;
    };
    std::vector<PullCache> pull_cache_;
    std::int64_t pending_ = 0;
    std::int64_t last_compute_cycle_ = 0;
    double median_error_ = 1e-2;
    std::vector<Snapshot> snapshots_;
};

/** Rebuild a greedy prefix and complete it with the ATA tail. */
circuit::Circuit
materialize_hybrid(const arch::CouplingGraph& device,
                   const graph::Graph& problem,
                   const circuit::Circuit& greedy,
                   std::int64_t prefix_ops)
{
    circuit::Circuit circ(greedy.initial_mapping());
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash>
        edge_index;
    for (std::int32_t e = 0; e < problem.num_edges(); ++e)
        edge_index.emplace(problem.edges()[static_cast<std::size_t>(e)],
                           e);
    for (std::int64_t i = 0; i < prefix_ops; ++i) {
        const auto& op = greedy.ops()[static_cast<std::size_t>(i)];
        if (op.kind == circuit::OpKind::Compute) {
            circ.add_compute(op.p, op.q);
            auto it = edge_index.find(VertexPair(op.a, op.b));
            panic_unless(it != edge_index.end(),
                         "prefix compute on unknown edge");
            done[static_cast<std::size_t>(it->second)] = true;
        } else {
            circ.add_swap(op.p, op.q);
        }
    }
    auto plan = detect_regions(device, problem, done, circ.final_mapping());
    auto sched = tail_schedule(device, plan);
    auto tail = ata::replay(device, problem, circ.final_mapping(), sched,
                            {}, &done);
    circ.append_circuit(tail);
    return circ;
}

} // namespace

double
selector_cost(const circuit::Metrics& m, const circuit::Metrics& reference,
              const arch::NoiseModel* noise, double alpha)
{
    double ref_depth = std::max<double>(1.0, reference.depth);
    double depth_ratio = static_cast<double>(m.depth) / ref_depth;
    double err, ref_err;
    if (noise != nullptr && !noise->is_ideal()) {
        err = -std::log(std::max(m.fidelity, 1e-300));
        ref_err = std::max(-std::log(std::max(reference.fidelity, 1e-300)),
                           1e-12);
    } else {
        err = static_cast<double>(m.cx_count);
        ref_err = std::max<double>(1.0, reference.cx_count);
    }
    return alpha * depth_ratio + (1.0 - alpha) * err / ref_err;
}

CompileResult
compile(const arch::CouplingGraph& device, const graph::Graph& problem,
        const CompilerOptions& options_in)
{
    fatal_unless(problem.num_vertices() <= device.num_qubits(),
                 "problem does not fit on the device");
    Timer timer;
    CompileResult result;

    CompilerOptions options = options_in;
    if (device.kind() == arch::ArchKind::Custom &&
        options.use_ata_prediction) {
        // Irregular devices have no ATA decomposition (paper §6.5);
        // compile with the greedy component alone.
        options.use_ata_prediction = false;
    }

    std::unique_ptr<CrosstalkMap> crosstalk;
    if (options.crosstalk_aware)
        crosstalk = std::make_unique<CrosstalkMap>(device);

    circuit::Mapping initial =
        options.smart_placement
            ? connectivity_strength_placement(device, problem)
            : circuit::Mapping(problem.num_vertices(),
                               device.num_qubits());
    GreedyEngine engine(device, problem, options, crosstalk.get(),
                        std::move(initial));
    engine.run();
    const circuit::Circuit& greedy = engine.circuit();
    auto greedy_metrics = circuit::compute_metrics(greedy, options.noise);

    result.circuit = greedy;
    result.metrics = greedy_metrics;
    result.selected = "greedy";
    result.snapshots =
        static_cast<std::int32_t>(engine.snapshots().size());

    if (options.use_ata_prediction && problem.num_edges() > 0) {
        // Rank snapshots by estimated F and materialize the best few;
        // the prefix-0 snapshot (cc0, the pure ATA solution) is always
        // among the candidates, which yields the Theorem 6.1 bound.
        std::vector<std::size_t> order(engine.snapshots().size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        double ref_depth = std::max<double>(1.0, greedy_metrics.depth);
        double ref_cx = std::max<double>(1.0, greedy_metrics.cx_count);
        auto est_cost = [&](const Snapshot& s) {
            return options.alpha * s.est_depth / ref_depth +
                   (1.0 - options.alpha) * s.est_cx / ref_cx;
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return est_cost(engine.snapshots()[a]) <
                                    est_cost(engine.snapshots()[b]);
                         });

        std::vector<std::int64_t> to_materialize = {0}; // cc0 prefix
        for (std::size_t i = 0;
             i < order.size() &&
             static_cast<std::int32_t>(to_materialize.size()) <
                 options.max_materialized_candidates;
             ++i) {
            std::int64_t prefix =
                engine.snapshots()[order[i]].prefix_ops;
            if (std::find(to_materialize.begin(), to_materialize.end(),
                          prefix) == to_materialize.end())
                to_materialize.push_back(prefix);
        }

        double best_cost = selector_cost(greedy_metrics, greedy_metrics,
                                         options.noise, options.alpha);
        for (std::int64_t prefix : to_materialize) {
            auto candidate =
                materialize_hybrid(device, problem, greedy, prefix);
            auto metrics =
                circuit::compute_metrics(candidate, options.noise);
            double cost = selector_cost(metrics, greedy_metrics,
                                        options.noise, options.alpha);
            if (cost < best_cost) {
                best_cost = cost;
                result.circuit = std::move(candidate);
                result.metrics = metrics;
                result.selected = prefix == 0 ? "ata" : "hybrid";
            }
        }
    }

    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

} // namespace permuq::core
