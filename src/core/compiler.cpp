#include "compiler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "ata/replay.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "core/crosstalk.h"
#include "core/engine_util.h"
#include "core/fast_tier.h"
#include "core/placement.h"
#include "core/shard.h"
#include "core/prediction.h"
#include "graph/coloring.h"
#include "graph/matching.h"
#include "graph/routing.h"

namespace permuq::core {

namespace {

/** A recorded greedy prefix to be completed by an ATA tail. */
struct Snapshot
{
    std::int64_t prefix_ops = 0;
    double est_depth = 0.0;
    double est_cx = 0.0;
};

/**
 * Memoized region ATA schedules. ata_schedule() is a pure function of
 * (device, region) and region detection converges to the same few
 * regions across snapshots, materialized candidates, and placement
 * trials, so one compile-wide cache removes most repeated pattern
 * construction. Thread-safe for the parallel materialize/trial fan-out;
 * results are identical whichever thread populates an entry first.
 */
class ScheduleCache
{
  public:
    const ata::SwapSchedule&
    get(const arch::CouplingGraph& device, const ata::Region& region)
    {
        static telemetry::Counter& hits =
            telemetry::counter("permuq.core.schedule_cache.hit");
        static telemetry::Counter& misses =
            telemetry::counter("permuq.core.schedule_cache.miss");
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [r, s] : entries_)
            if (r == region) {
                hits.add();
                hits_.fetch_add(1, std::memory_order_relaxed);
                return s;
            }
        misses.add();
        misses_.fetch_add(1, std::memory_order_relaxed);
        entries_.emplace_back(region, ata::ata_schedule(device, region));
        return entries_.back().second;
    }

    /**
     * Cached equivalent of tail_schedule(device, plan). Whole plans
     * are memoized too: region detection converges to the same plan
     * across snapshots and candidates, and a full-device tail runs to
     * millions of slots, so returning a reference instead of a fresh
     * concatenation avoids repeated multi-megabyte copies.
     */
    const ata::SwapSchedule&
    tail(const arch::CouplingGraph& device, const RegionPlan& plan)
    {
        static telemetry::Counter& hits =
            telemetry::counter("permuq.core.schedule_cache.hit");
        static telemetry::Counter& misses =
            telemetry::counter("permuq.core.schedule_cache.miss");
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto& [regions, s] : tails_)
                if (regions == plan.regions) {
                    hits.add();
                    hits_.fetch_add(1, std::memory_order_relaxed);
                    return s;
                }
        }
        misses.add();
        misses_.fetch_add(1, std::memory_order_relaxed);
        ata::SwapSchedule out;
        for (const auto& region : plan.regions)
            out.append(get(device, region));
        std::lock_guard<std::mutex> lock(mu_);
        // Recheck after reacquiring: a racing thread may have inserted
        // the same plan; the schedules are identical, so keep either.
        for (const auto& [regions, s] : tails_)
            if (regions == plan.regions)
                return s;
        tails_.emplace_back(plan.regions, std::move(out));
        return tails_.back().second;
    }

    // Compile-local tallies for the explain report. The telemetry
    // counters above are process-wide and gated on enabled(); these
    // are per-compile and unconditional.
    std::int64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    std::int64_t
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

  private:
    std::mutex mu_;
    std::atomic<std::int64_t> hits_{0};
    std::atomic<std::int64_t> misses_{0};
    // Deque: references handed out stay valid as entries accumulate.
    std::deque<std::pair<ata::Region, ata::SwapSchedule>> entries_;
    std::deque<std::pair<std::vector<ata::Region>, ata::SwapSchedule>>
        tails_;
};

/**
 * The greedy processing component (§6.2): one object per compilation,
 * advancing cycle by cycle and recording prediction snapshots.
 *
 * Incremental-state design: instead of rescanning every coupler per
 * cycle for executable gates (O(couplers) hash probes per cycle in the
 * original implementation), the engine maintains an executable-edge
 * *frontier* — a bitmap over couplers plus the pending edge id hosted
 * by each — that is refreshed only for the couplers incident to a
 * mapping change (every SWAP goes through do_swap()) or a completed
 * gate (mark_done()). Iterating the bitmap's set bits ascending visits
 * couplers in exactly the order of the old full scan, so the emitted
 * circuit is bit-identical.
 */
class GreedyEngine
{
  public:
    GreedyEngine(const arch::CouplingGraph& device,
                 const graph::Graph& problem,
                 const CompilerOptions& options,
                 const CrosstalkMap* crosstalk, const EdgeTable& edges,
                 const DeviceIndex& index, ScheduleCache& sched_cache,
                 circuit::Mapping initial)
        : device_(device),
          problem_(problem),
          options_(options),
          crosstalk_(crosstalk),
          edges_(edges),
          index_(index),
          sched_cache_(sched_cache),
          circ_(std::move(initial)),
          done_(static_cast<std::size_t>(problem.num_edges()), false),
          done8_(static_cast<std::size_t>(problem.num_edges()), 0),
          pending_deg_(static_cast<std::size_t>(problem.num_vertices()),
                       0),
          last_swap_cycle_(device.couplers().size(), -10)
    {
        pending_adj_.resize(
            static_cast<std::size_t>(problem.num_vertices()));
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            ++pending_deg_[static_cast<std::size_t>(edge.a)];
            ++pending_deg_[static_cast<std::size_t>(edge.b)];
            pending_adj_[static_cast<std::size_t>(edge.a)].emplace_back(
                edge.b, e);
            pending_adj_[static_cast<std::size_t>(edge.b)].emplace_back(
                edge.a, e);
        }
        pending_ = problem.num_edges();
        circ_.reserve(static_cast<std::size_t>(problem.num_edges()) * 2);

        std::int32_t num_couplers =
            static_cast<std::int32_t>(device.couplers().size());
        frontier_edge_.assign(static_cast<std::size_t>(num_couplers), -1);
        frontier_bits_.assign(
            (static_cast<std::size_t>(num_couplers) + 63) / 64, 0);
        for (std::int32_t c = 0; c < num_couplers; ++c)
            refresh_coupler(c);

        gain_.assign(static_cast<std::size_t>(num_couplers), 0.0);
        coupler_slot_.assign(static_cast<std::size_t>(num_couplers), -1);
        by_qubit_.resize(static_cast<std::size_t>(device.num_qubits()));
        used_.assign(static_cast<std::size_t>(device.num_qubits()), 0);

        if (options.noise != nullptr && !options.noise->is_ideal()) {
            std::vector<double> errs;
            for (const auto& c : device.couplers())
                errs.push_back(options.noise->cx_error(c.a, c.b));
            std::nth_element(errs.begin(),
                             errs.begin() +
                                 static_cast<std::ptrdiff_t>(errs.size() /
                                                             2),
                             errs.end());
            median_error_ = errs[errs.size() / 2];
        }
    }

    /** Run to completion (or the cycle cap). */
    void
    run()
    {
        telemetry::ScopedSpan span("greedy.run");
        span.arg("pending_gates", pending_);
        std::int64_t max_cycles = static_cast<std::int64_t>(
            options_.max_cycle_factor *
                (4.0 * device_.num_qubits() + 64.0) +
            64.0);
        std::int64_t snapshot_step = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(options_.snapshot_fraction *
                                         problem_.num_edges()));
        std::int64_t next_snapshot = pending_ - snapshot_step;
        maybe_snapshot(); // snapshot at cycle 0 == cc0

        for (std::int64_t cycle = 0; pending_ > 0 && cycle < max_cycles;
             ++cycle) {
            bool progress = step(cycle);
            if (options_.use_ata_prediction && pending_ <= next_snapshot) {
                maybe_snapshot();
                next_snapshot = pending_ - snapshot_step;
            }
            if (!progress)
                break; // stalled; the selector's ATA tail finishes it
        }
        if (pending_ > 0) {
            if (device_.kind() == arch::ArchKind::Custom) {
                // No ATA decomposition on irregular devices (§6.5):
                // finish by routing each remaining gate directly.
                route_remaining();
            } else {
                // Cycle cap or stall: complete with the region-
                // restricted ATA tail so even the "greedy" candidate
                // terminates with the linear-depth bound.
                telemetry::ScopedSpan replay_span("ata.replay");
                auto plan =
                    detect_regions(device_, problem_, done_,
                                   circ_.final_mapping());
                const auto& sched = sched_cache_.tail(device_, plan);
                auto tail = ata::replay(device_, problem_,
                                        circ_.final_mapping(), sched, {},
                                        &done_);
                circ_.append_circuit(tail);
                pending_ = 0;
            }
        }
        // Flushed once per run, not per op, to keep the hot loops free
        // of recording sites.
        telemetry::counter("permuq.core.greedy.swaps_inserted")
            .add(circ_.num_swaps());
        telemetry::counter("permuq.core.greedy.gates_scheduled")
            .add(circ_.num_compute());
        telemetry::counter("permuq.core.greedy.pull_cache.hit")
            .add(pull_hits_);
        telemetry::counter("permuq.core.greedy.pull_cache.miss")
            .add(pull_misses_);
        span.arg("swaps", circ_.num_swaps());
    }

    const circuit::Circuit& circuit() const { return circ_; }
    const std::vector<Snapshot>& snapshots() const { return snapshots_; }
    std::int64_t pull_hits() const { return pull_hits_; }
    std::int64_t pull_misses() const { return pull_misses_; }

  private:
    /** Recompute whether coupler @p c hosts an executable pending gate
     *  under the current mapping, and update the frontier. */
    void
    refresh_coupler(std::int32_t c)
    {
        const auto& link = device_.couplers()[static_cast<std::size_t>(c)];
        LogicalQubit a = circ_.final_mapping().logical_at(link.a);
        LogicalQubit b = circ_.final_mapping().logical_at(link.b);
        std::int32_t e = -1;
        if (a != kInvalidQubit && b != kInvalidQubit) {
            std::int32_t cand = edges_.at(a, b);
            if (cand >= 0 && done8_[static_cast<std::size_t>(cand)] == 0)
                e = cand;
        }
        frontier_edge_[static_cast<std::size_t>(c)] = e;
        std::uint64_t bit = std::uint64_t(1) << (c & 63);
        if (e >= 0)
            frontier_bits_[static_cast<std::size_t>(c) >> 6] |= bit;
        else
            frontier_bits_[static_cast<std::size_t>(c) >> 6] &= ~bit;
    }

    /** Refresh every coupler incident to @p p, whose occupant is
     *  already known to be @p occupant (saves one mapping read per
     *  coupler relative to refresh_coupler()). */
    void
    refresh_around(PhysicalQubit p, LogicalQubit occupant)
    {
        const auto& mapping = circ_.final_mapping();
        for (const auto& [nb, c] : index_.incident(p)) {
            std::int32_t e = -1;
            if (occupant != kInvalidQubit) {
                LogicalQubit other = mapping.logical_at(nb);
                if (other != kInvalidQubit) {
                    std::int32_t cand = edges_.at(occupant, other);
                    if (cand >= 0 &&
                        done8_[static_cast<std::size_t>(cand)] == 0)
                        e = cand;
                }
            }
            frontier_edge_[static_cast<std::size_t>(c)] = e;
            std::uint64_t bit = std::uint64_t(1) << (c & 63);
            if (e >= 0)
                frontier_bits_[static_cast<std::size_t>(c) >> 6] |= bit;
            else
                frontier_bits_[static_cast<std::size_t>(c) >> 6] &= ~bit;
        }
    }

    /** Append a SWAP and refresh the frontier around both endpoints —
     *  the only mutation that moves logical qubits, so routing every
     *  SWAP through here keeps the frontier exact. */
    void
    do_swap(PhysicalQubit p, PhysicalQubit q)
    {
        circ_.add_swap(p, q);
        const auto& mapping = circ_.final_mapping();
        refresh_around(p, mapping.logical_at(p));
        refresh_around(q, mapping.logical_at(q));
    }

    /** Retire edge @p e (just computed at coupler @p c). */
    void
    mark_done(std::int32_t e, std::int32_t c)
    {
        done_[static_cast<std::size_t>(e)] = true;
        done8_[static_cast<std::size_t>(e)] = 1;
        const auto& edge = problem_.edges()[static_cast<std::size_t>(e)];
        --pending_deg_[static_cast<std::size_t>(edge.a)];
        --pending_deg_[static_cast<std::size_t>(edge.b)];
        --pending_;
        refresh_coupler(c);
    }

    /** Route every remaining gate along shortest paths (termination
     *  fallback for devices without an ATA decomposition). */
    void
    route_remaining()
    {
        const auto& dist = device_.distances();
        for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
            if (done_[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(e)];
            PhysicalQubit pa = circ_.final_mapping().physical_of(edge.a);
            PhysicalQubit pb = circ_.final_mapping().physical_of(edge.b);
            pa = graph::walk_toward(
                device_.connectivity(), dist, pa, pb,
                [&](PhysicalQubit from, PhysicalQubit to) {
                    do_swap(from, to);
                });
            circ_.add_compute(pa, pb);
            mark_done(e, index_.coupler_at(pa, pb));
        }
    }

    /** One scheduling cycle; returns false if nothing could be done. */
    bool
    step(std::int64_t cycle)
    {
        telemetry::ScopedSpan span("greedy.round");
        span.arg("cycle", cycle);
        const auto& mapping = circ_.final_mapping();
        const auto& couplers = device_.couplers();

        // Focus mode: the pull/matching dynamics can enter limit
        // cycles on symmetric configurations. If no gate has executed
        // for a while, break out by routing the globally closest
        // pending pair along a shortest path outright.
        if (cycle - last_compute_cycle_ > 8) {
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done8_[static_cast<std::size_t>(e)] != 0)
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = device_.distances().at(
                    mapping.physical_of(edge.a),
                    mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            pa = graph::walk_toward(
                device_.connectivity(), device_.distances(), pa, pb,
                [&](PhysicalQubit from, PhysicalQubit to) {
                    do_swap(from, to);
                });
            circ_.add_compute(pa, pb);
            mark_done(best_e, index_.coupler_at(pa, pb));
            last_compute_cycle_ = cycle;
            return true;
        }

        // ---- Gate scheduling via conflict-graph coloring (§6.2) ----
        // Snapshot the frontier; set bits ascending == the coupler
        // order of the original full scan.
        executable_.clear();
        for (std::size_t word = 0; word < frontier_bits_.size(); ++word) {
            std::uint64_t bits = frontier_bits_[word];
            while (bits != 0) {
                std::int32_t c = static_cast<std::int32_t>(word * 64) +
                                 std::countr_zero(bits);
                bits &= bits - 1;
                executable_.push_back(
                    {c, frontier_edge_[static_cast<std::size_t>(c)]});
            }
        }
        if (telemetry::enabled()) {
            static telemetry::Histogram& frontier = telemetry::histogram(
                "permuq.core.greedy.frontier_size");
            frontier.record(static_cast<double>(executable_.size()));
        }

        std::fill(used_.begin(), used_.end(), 0);
        bool did_something = false;
        if (!executable_.empty()) {
            graph::Graph conflict(
                static_cast<std::int32_t>(executable_.size()));
            // Shared-qubit conflicts via flat per-qubit slots (the
            // conflict edge *set* is what matters — greedy_coloring
            // reads the graph's sorted adjacency, so insertion order
            // is irrelevant).
            touched_qubits_.clear();
            for (std::size_t i = 0; i < executable_.size(); ++i) {
                const auto& link = couplers[static_cast<std::size_t>(
                    executable_[i].coupler)];
                for (PhysicalQubit q : {link.a, link.b}) {
                    auto& list = by_qubit_[static_cast<std::size_t>(q)];
                    if (list.empty())
                        touched_qubits_.push_back(q);
                    list.push_back(static_cast<std::int32_t>(i));
                }
            }
            for (PhysicalQubit q : touched_qubits_) {
                auto& list = by_qubit_[static_cast<std::size_t>(q)];
                for (std::size_t i = 0; i < list.size(); ++i)
                    for (std::size_t j = i + 1; j < list.size(); ++j)
                        if (!conflict.has_edge(list[i], list[j]))
                            conflict.add_edge(list[i], list[j]);
                list.clear();
            }
            // Crosstalk conflicts.
            if (crosstalk_ != nullptr) {
                for (std::size_t i = 0; i < executable_.size(); ++i)
                    coupler_slot_[static_cast<std::size_t>(
                        executable_[i].coupler)] =
                        static_cast<std::int32_t>(i);
                for (std::size_t i = 0; i < executable_.size(); ++i)
                    for (std::int32_t other :
                         crosstalk_->neighbors(executable_[i].coupler)) {
                        std::int32_t j =
                            coupler_slot_[static_cast<std::size_t>(other)];
                        if (j > static_cast<std::int32_t>(i) &&
                            !conflict.has_edge(
                                static_cast<std::int32_t>(i), j))
                            conflict.add_edge(
                                static_cast<std::int32_t>(i), j);
                    }
                for (const auto& ex : executable_)
                    coupler_slot_[static_cast<std::size_t>(ex.coupler)] =
                        -1;
            }
            auto coloring = graph::greedy_coloring(conflict);
            std::int32_t cls = graph::largest_class(coloring);
            for (std::int32_t i :
                 coloring.classes[static_cast<std::size_t>(cls)]) {
                const auto& ex = executable_[static_cast<std::size_t>(i)];
                const auto& link =
                    couplers[static_cast<std::size_t>(ex.coupler)];
                circ_.add_compute(link.a, link.b);
                mark_done(ex.edge, ex.coupler);
                used_[static_cast<std::size_t>(link.a)] = 1;
                used_[static_cast<std::size_t>(link.b)] = 1;
                last_compute_cycle_ = cycle;
                did_something = true;
                // Gate unification rider (Fig 2(d) identity): a SWAP on
                // the pair that just computed merges into 3 CX total,
                // so it costs 1 CX instead of 3. Take it whenever it
                // strictly reduces the pending-distance potential of
                // the two logicals.
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(ex.edge)];
                if (swap_rider_gain(edge.a, edge.b) < 0) {
                    do_swap(link.a, link.b);
                    last_swap_cycle_[static_cast<std::size_t>(
                        ex.coupler)] = cycle;
                }
            }
        }
        if (pending_ == 0)
            return did_something;

        // ---- SWAP insertion via weighted matching (§6.2/§5.3) ------
        // Every logical qubit with pending gates pulls toward its
        // nearest pending partner; each coupler accumulates the pull
        // weights of the moves it enables, and a maximum-weight
        // matching of positive-gain couplers is swapped. Engaging all
        // active qubits each cycle is what keeps the compiled depth
        // (not just the gate count) low.
        const auto& dist = device_.distances();
        touched_.clear();
        if (pull_cache_.empty()) {
            pull_cache_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
            active_.resize(
                static_cast<std::size_t>(problem_.num_vertices()));
            for (LogicalQubit a = 0; a < problem_.num_vertices(); ++a)
                active_[static_cast<std::size_t>(a)] = a;
        }
        // Sweep the ascending active-qubit list, compacting out qubits
        // whose last pending gate completed — the visit order stays
        // "all qubits with pending work, ascending", but late cycles
        // no longer pay for the finished majority.
        std::size_t active_keep = 0;
        for (std::size_t idx = 0; idx < active_.size(); ++idx) {
            LogicalQubit a = active_[idx];
            if (pending_deg_[static_cast<std::size_t>(a)] == 0)
                continue;
            active_[active_keep++] = a;
            PhysicalQubit pa = mapping.physical_of(a);
            if (used_[static_cast<std::size_t>(pa)] != 0)
                continue;
            // Nearest pending partner of a. Recomputing this for every
            // active qubit each cycle is the dominant O(E)-per-cycle
            // term at 1024 qubits, so the result is cached for a few
            // cycles; a slightly stale pull target still points the
            // right way, and the cache is refreshed when the cached
            // partner's gate completes.
            auto& cache = pull_cache_[static_cast<std::size_t>(a)];
            std::int32_t best_d;
            PhysicalQubit target;
            if (cache.expires > cycle && cache.partner >= 0 &&
                done8_[static_cast<std::size_t>(cache.edge)] == 0) {
                ++pull_hits_;
                target = mapping.physical_of(cache.partner);
                best_d = dist.at(pa, target);
            } else {
                ++pull_misses_;
                best_d = kUnreachable;
                target = kInvalidQubit;
                LogicalQubit partner = kInvalidQubit;
                std::int32_t edge = -1;
                // The scan doubles as an order-preserving compaction:
                // retired edges are dropped so future scans shrink
                // with the remaining work.
                const std::uint16_t* row_pa = dist.row(pa);
                auto& adj = pending_adj_[static_cast<std::size_t>(a)];
                std::size_t keep = 0;
                for (std::size_t k = 0; k < adj.size(); ++k) {
                    if (done8_[static_cast<std::size_t>(adj[k].second)] !=
                        0)
                        continue;
                    adj[keep++] = adj[k];
                    const auto& [b, e] = adj[keep - 1];
                    std::int32_t d = graph::DistanceMatrix::decode(
                        row_pa[static_cast<std::size_t>(
                            mapping.physical_of(b))]);
                    if (d < best_d) {
                        best_d = d;
                        target = mapping.physical_of(b);
                        partner = b;
                        edge = e;
                    }
                }
                adj.resize(keep);
                cache.partner = partner;
                cache.edge = edge;
                // Fresh targets on small problems (the scan is cheap
                // there); longer reuse where the scan dominates.
                cache.expires =
                    cycle + 1 + problem_.num_vertices() / 128;
            }
            if (best_d <= 1 || target == kInvalidQubit)
                continue; // adjacent pairs are the gate stage's job
            const std::uint16_t* row_t = dist.row(target);
            for (const auto& [nb, c] : index_.incident(pa)) {
                if (used_[static_cast<std::size_t>(nb)] != 0)
                    continue;
                if (graph::DistanceMatrix::decode(
                        row_t[static_cast<std::size_t>(nb)]) >= best_d)
                    continue;
                if (last_swap_cycle_[static_cast<std::size_t>(c)] ==
                    cycle - 1)
                    continue; // anti-oscillation tabu
                double w = 1.0 / static_cast<double>(best_d);
                // Deterministic jitter breaks symmetric limit cycles.
                w *= 1.0 + 1e-7 * static_cast<double>(c % 97);
                if (options_.noise != nullptr &&
                    !options_.noise->is_ideal()) {
                    // Bounded error preference: a SWAP on link e costs
                    // ~3 CX, so weight by its success probability
                    // (1-e)^3. This acts as a tiebreak among routes of
                    // similar gain — a noisy link can never veto a
                    // materially shorter route, which measurably hurt
                    // overall fidelity in earlier designs.
                    const auto& link =
                        couplers[static_cast<std::size_t>(c)];
                    double e = options_.noise->cx_error(link.a, link.b);
                    w *= std::pow(1.0 - std::min(e, 0.5), 3.0);
                }
                if (gain_[static_cast<std::size_t>(c)] == 0.0)
                    touched_.push_back(c);
                gain_[static_cast<std::size_t>(c)] += w;
            }
        }
        active_.resize(active_keep);

        // The matching's sort key (weight desc, endpoints asc) is
        // total over distinct couplers, so the candidate build order
        // is irrelevant to which SWAPs come out — flat accumulation
        // and the old unordered_map iteration pick the same set.
        candidates_.clear();
        candidate_coupler_.clear();
        for (std::int32_t c : touched_) {
            const auto& link = couplers[static_cast<std::size_t>(c)];
            candidates_.push_back(
                {link.a, link.b, gain_[static_cast<std::size_t>(c)]});
            candidate_coupler_.push_back(c);
            gain_[static_cast<std::size_t>(c)] = 0.0;
        }
        auto picks = graph::greedy_max_weight_matching(
            device_.num_qubits(), candidates_);
        for (std::int32_t i : picks) {
            const auto& cand = candidates_[static_cast<std::size_t>(i)];
            do_swap(cand.u, cand.v);
            last_swap_cycle_[static_cast<std::size_t>(
                candidate_coupler_[static_cast<std::size_t>(i)])] = cycle;
            did_something = true;
        }

        if (!did_something && pending_ > 0) {
            // Stall breaker: force one routing swap for the closest
            // pending gate, ignoring the tabu.
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem_.num_edges(); ++e) {
                if (done8_[static_cast<std::size_t>(e)] != 0)
                    continue;
                const auto& edge =
                    problem_.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = dist.at(mapping.physical_of(edge.a),
                                         mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "pending without edges");
            const auto& edge =
                problem_.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            for (PhysicalQubit nb :
                 device_.connectivity().neighbors(pa)) {
                if (dist.at(nb, pb) < best_d) {
                    do_swap(pa, nb);
                    did_something = true;
                    break;
                }
            }
        }
        return did_something;
    }

    /**
     * Net change of the summed distance from each of the two logicals
     * to its pending partners if their positions were exchanged
     * (negative = the merged swap pays off).
     */
    std::int64_t
    swap_rider_gain(LogicalQubit a, LogicalQubit b)
    {
        // Both endpoints out of pending work => every tally is empty
        // (compaction of already-retired entries can wait for the next
        // real scan).
        if (pending_deg_[static_cast<std::size_t>(a)] == 0 &&
            pending_deg_[static_cast<std::size_t>(b)] == 0)
            return 0;
        const auto& mapping = circ_.final_mapping();
        const auto& dist = device_.distances();
        PhysicalQubit pa = mapping.physical_of(a);
        PhysicalQubit pb = mapping.physical_of(b);
        std::int64_t delta = 0;
        auto tally = [&](LogicalQubit q, PhysicalQubit from,
                         PhysicalQubit to) {
            if (pending_deg_[static_cast<std::size_t>(q)] == 0)
                return;
            const std::uint16_t* row_to = dist.row(to);
            const std::uint16_t* row_from = dist.row(from);
            auto& adj = pending_adj_[static_cast<std::size_t>(q)];
            std::size_t keep = 0;
            for (std::size_t k = 0; k < adj.size(); ++k) {
                if (done8_[static_cast<std::size_t>(adj[k].second)] != 0)
                    continue;
                adj[keep++] = adj[k];
                PhysicalQubit pp = mapping.physical_of(adj[keep - 1].first);
                delta += graph::DistanceMatrix::decode(
                             row_to[static_cast<std::size_t>(pp)]) -
                         graph::DistanceMatrix::decode(
                             row_from[static_cast<std::size_t>(pp)]);
            }
            adj.resize(keep);
        };
        tally(a, pa, pb);
        tally(b, pb, pa);
        return delta;
    }

    void
    maybe_snapshot()
    {
        if (!options_.use_ata_prediction)
            return;
        telemetry::ScopedSpan span("greedy.snapshot");
        auto plan = detect_regions(device_, problem_, done_,
                                   circ_.final_mapping());
        Snapshot snap;
        snap.prefix_ops = static_cast<std::int64_t>(circ_.ops().size());
        snap.est_depth = static_cast<double>(circ_.depth()) +
                         estimate_tail_depth(device_, plan);
        snap.est_cx =
            2.0 * static_cast<double>(circ_.num_compute()) +
            3.0 * static_cast<double>(circ_.num_swaps()) +
            estimate_tail_cx(device_, plan, pending_);
        snapshots_.push_back(snap);
    }

    const arch::CouplingGraph& device_;
    const graph::Graph& problem_;
    const CompilerOptions& options_;
    const CrosstalkMap* crosstalk_;
    const EdgeTable& edges_;
    const DeviceIndex& index_;
    ScheduleCache& sched_cache_;
    circuit::Circuit circ_;
    // done_ (vector<bool>) feeds detect_regions/replay; done8_ mirrors
    // it as plain bytes because the frontier/pull/rider hot loops test
    // an edge per iteration and the packed bit probe is measurably
    // slower than a byte load there.
    std::vector<bool> done_;
    std::vector<std::uint8_t> done8_;
    std::vector<std::int32_t> pending_deg_;
    std::vector<std::vector<std::pair<LogicalQubit, std::int32_t>>>
        pending_adj_;
    std::vector<std::int64_t> last_swap_cycle_;

    // Executable-edge frontier: one bit per coupler, plus the pending
    // edge currently hosted there (-1 when the bit is clear).
    std::vector<std::uint64_t> frontier_bits_;
    std::vector<std::int32_t> frontier_edge_;

    // Reusable per-cycle scratch (hoisted out of step()).
    struct Executable
    {
        std::int32_t coupler;
        std::int32_t edge;
    };
    std::vector<Executable> executable_;
    std::vector<std::vector<std::int32_t>> by_qubit_;
    std::vector<PhysicalQubit> touched_qubits_;
    std::vector<std::int32_t> coupler_slot_;
    std::vector<std::uint8_t> used_;
    std::vector<double> gain_;
    std::vector<std::int32_t> touched_;
    std::vector<graph::WeightedEdge> candidates_;
    std::vector<std::int32_t> candidate_coupler_;

    struct PullCache
    {
        LogicalQubit partner = kInvalidQubit;
        std::int32_t edge = -1;
        std::int64_t expires = -1;
    };
    std::vector<PullCache> pull_cache_;
    std::vector<LogicalQubit> active_;
    // Pull-cache tallies for the explain report; plain ints (the
    // engine is single-threaded) flushed to telemetry once per run.
    std::int64_t pull_hits_ = 0;
    std::int64_t pull_misses_ = 0;
    std::int64_t pending_ = 0;
    std::int64_t last_compute_cycle_ = 0;
    double median_error_ = 1e-2;
    std::vector<Snapshot> snapshots_;
};

/** Rebuild a greedy prefix and complete it with the ATA tail. */
circuit::Circuit
materialize_hybrid(const arch::CouplingGraph& device,
                   const graph::Graph& problem, const EdgeTable& edges,
                   ScheduleCache& sched_cache, const circuit::Circuit& greedy,
                   std::int64_t prefix_ops)
{
    circuit::Circuit circ(greedy.initial_mapping());
    circ.reserve(static_cast<std::size_t>(prefix_ops));
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    for (std::int64_t i = 0; i < prefix_ops; ++i) {
        const auto& op = greedy.ops()[static_cast<std::size_t>(i)];
        if (op.kind == circuit::OpKind::Compute) {
            circ.add_compute(op.p, op.q);
            std::int32_t e = edges.at(op.a, op.b);
            panic_unless(e >= 0, "prefix compute on unknown edge");
            done[static_cast<std::size_t>(e)] = true;
        } else {
            circ.add_swap(op.p, op.q);
        }
    }
    telemetry::ScopedSpan replay_span("ata.replay");
    replay_span.arg("prefix_ops", prefix_ops);
    auto plan = detect_regions(device, problem, done, circ.final_mapping());
    const auto& sched = sched_cache.tail(device, plan);
    auto tail = ata::replay(device, problem, circ.final_mapping(), sched,
                            {}, &done);
    circ.append_circuit(tail);
    return circ;
}

/**
 * Absolute (trial-comparable) cost of a compiled circuit. The selector
 * cost F is relative to each trial's own greedy baseline, so the
 * multi-start winner is instead chosen by this absolute analogue:
 * alpha-weighted depth plus error (CX count, or -log fidelity under a
 * noise model), ties broken by the lower trial index.
 */
double
absolute_cost(const circuit::Metrics& m, const arch::NoiseModel* noise,
              double alpha)
{
    double err;
    if (noise != nullptr && !noise->is_ideal())
        err = -std::log(std::max(m.fidelity, 1e-300));
    else
        err = static_cast<double>(m.cx_count);
    return alpha * static_cast<double>(m.depth) + (1.0 - alpha) * err;
}

/** One full placement-to-selection pipeline for a fixed initial
 *  mapping (compile() fans these out across trials). */
CompileResult
compile_single(const arch::CouplingGraph& device,
               const graph::Graph& problem, const CompilerOptions& options,
               const CrosstalkMap* crosstalk, const EdgeTable& edge_table,
               const DeviceIndex& device_index, ScheduleCache& sched_cache,
               circuit::Mapping initial)
{
    CompileResult result;
    telemetry::ScopedSpan span("compile.trial");
    Timer greedy_timer;
    GreedyEngine engine(device, problem, options, crosstalk, edge_table,
                        device_index, sched_cache, std::move(initial));
    engine.run();
    result.report.greedy_seconds = greedy_timer.elapsed_seconds();
    result.report.pull_cache_hits = engine.pull_hits();
    result.report.pull_cache_misses = engine.pull_misses();
    const circuit::Circuit& greedy = engine.circuit();
    auto greedy_metrics = circuit::compute_metrics(greedy, options.noise);

    result.circuit = greedy;
    result.metrics = greedy_metrics;
    result.selected = "greedy";
    result.snapshots =
        static_cast<std::int32_t>(engine.snapshots().size());
    // Pure greedy has no ATA tail: the whole circuit is "prefix".
    std::int64_t winning_prefix =
        static_cast<std::int64_t>(greedy.ops().size());

    if (options.use_ata_prediction && problem.num_edges() > 0) {
        // Rank snapshots by estimated F and materialize the best few;
        // the prefix-0 snapshot (cc0, the pure ATA solution) is always
        // among the candidates, which yields the Theorem 6.1 bound.
        std::vector<std::size_t> order(engine.snapshots().size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        double ref_depth = std::max<double>(1.0, greedy_metrics.depth);
        double ref_cx = std::max<double>(1.0, greedy_metrics.cx_count);
        auto est_cost = [&](const Snapshot& s) {
            return options.alpha * s.est_depth / ref_depth +
                   (1.0 - options.alpha) * s.est_cx / ref_cx;
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return est_cost(engine.snapshots()[a]) <
                                    est_cost(engine.snapshots()[b]);
                         });

        std::vector<std::int64_t> to_materialize = {0}; // cc0 prefix
        for (std::size_t i = 0;
             i < order.size() &&
             static_cast<std::int32_t>(to_materialize.size()) <
                 options.max_materialized_candidates;
             ++i) {
            std::int64_t prefix =
                engine.snapshots()[order[i]].prefix_ops;
            if (std::find(to_materialize.begin(), to_materialize.end(),
                          prefix) == to_materialize.end())
                to_materialize.push_back(prefix);
        }

        // Materialize candidates in parallel (each replay+metrics pass
        // is independent), then select sequentially in the original
        // candidate order so the winner is exactly the one the serial
        // loop would have picked.
        Timer materialize_timer;
        result.report.candidates =
            static_cast<std::int32_t>(to_materialize.size());
        std::vector<circuit::Circuit> cand(to_materialize.size());
        std::vector<circuit::Metrics> cand_metrics(to_materialize.size());
        common::parallel_tasks(
            static_cast<std::int64_t>(to_materialize.size()),
            [&](std::int64_t i) {
                cand[static_cast<std::size_t>(i)] = materialize_hybrid(
                    device, problem, edge_table, sched_cache, greedy,
                    to_materialize[static_cast<std::size_t>(i)]);
                cand_metrics[static_cast<std::size_t>(i)] =
                    circuit::compute_metrics(
                        cand[static_cast<std::size_t>(i)], options.noise);
            });

        double best_cost = selector_cost(greedy_metrics, greedy_metrics,
                                         options.noise, options.alpha);
        for (std::size_t i = 0; i < to_materialize.size(); ++i) {
            double cost = selector_cost(cand_metrics[i], greedy_metrics,
                                        options.noise, options.alpha);
            if (cost < best_cost) {
                best_cost = cost;
                result.circuit = std::move(cand[i]);
                result.metrics = cand_metrics[i];
                result.selected =
                    to_materialize[i] == 0 ? "ata" : "hybrid";
                winning_prefix = to_materialize[i];
            }
        }
        result.report.materialize_seconds =
            materialize_timer.elapsed_seconds();
    }
    attribute_prefix_tail(result.circuit, winning_prefix, result.report);
    result.report.snapshots = result.snapshots;
    result.report.selected = result.selected;
    return result;
}

} // namespace

CompileTier
resolve_tier(CompileTier requested)
{
    if (requested != CompileTier::Auto)
        return requested;
    if (const char* env = std::getenv("PERMUQ_TIER")) {
        CompileTier parsed;
        if (parse_tier(env, parsed) && parsed != CompileTier::Auto)
            return parsed;
    }
    return CompileTier::Best;
}

double
selector_cost(const circuit::Metrics& m, const circuit::Metrics& reference,
              const arch::NoiseModel* noise, double alpha)
{
    double ref_depth = std::max<double>(1.0, reference.depth);
    double depth_ratio = static_cast<double>(m.depth) / ref_depth;
    double err, ref_err;
    if (noise != nullptr && !noise->is_ideal()) {
        err = -std::log(std::max(m.fidelity, 1e-300));
        ref_err = std::max(-std::log(std::max(reference.fidelity, 1e-300)),
                           1e-12);
    } else {
        err = static_cast<double>(m.cx_count);
        ref_err = std::max<double>(1.0, reference.cx_count);
    }
    return alpha * depth_ratio + (1.0 - alpha) * err / ref_err;
}

CompileResult
compile(const arch::CouplingGraph& device, const graph::Graph& problem,
        const CompilerOptions& options_in)
{
    fatal_unless(problem.num_vertices() <= device.num_qubits(),
                 "problem does not fit on the device");
    // Sharded mode routes away before distances() below ever builds
    // the dense all-pairs table (prohibitive at fabric scale); it
    // re-enters here per band, and for unshardable devices, with
    // shard_regions cleared.
    if (options_in.shard_regions >= 2)
        return shard_compile(device, problem, options_in);
    Timer timer;
    telemetry::ScopedSpan span("compile");
    span.arg("qubits", problem.num_vertices());
    span.arg("edges", problem.num_edges());

    CompilerOptions options = options_in;
    CompileTier tier = resolve_tier(options.tier);
    const CompileTier tier_requested = tier;
    std::string fallback_reason;
    if (tier == CompileTier::Fast && !fast_tier_supported(device)) {
        // No ATA pattern on irregular devices -> no search-free
        // pipeline; serve the request from the balanced tier instead.
        static telemetry::Counter& fallbacks =
            telemetry::counter("permuq.compile.fast.fallback");
        fallbacks.add();
        tier = CompileTier::Balanced;
        fallback_reason =
            "no ATA pattern on a custom device; served as balanced";
        logging::info("compile", fallback_reason);
    }
    options.tier = tier;
    span.arg("tier", tier_name(tier));

    // Shared tail of every return path below: tier provenance, problem
    // shape, final metrics, and the one debug summary line.
    auto finish_report = [&](CompileResult& result) {
        CompileReport& rep = result.report;
        rep.tier_requested = tier_name(tier_requested);
        rep.tier_served = tier_name(tier);
        rep.fallback_reason = fallback_reason;
        rep.selected = result.selected;
        rep.problem_qubits = problem.num_vertices();
        rep.problem_edges = problem.num_edges();
        rep.device_qubits = device.num_qubits();
        rep.depth = static_cast<std::int64_t>(result.metrics.depth);
        rep.cx_count = result.metrics.cx_count;
        rep.swap_count = result.metrics.swap_gates;
        rep.fidelity = result.metrics.fidelity;
        rep.total_seconds = result.compile_seconds;
        if (logging::enabled(logging::Level::Debug))
            logging::debug(
                "compile",
                "tier=" + rep.tier_served + " selected=" + rep.selected +
                    " qubits=" + std::to_string(rep.problem_qubits) +
                    " depth=" + std::to_string(rep.depth) +
                    " cx=" + std::to_string(rep.cx_count) +
                    " swaps=" + std::to_string(rep.swap_count) +
                    " seconds=" + std::to_string(rep.total_seconds));
    };

    if (tier == CompileTier::Fast) {
        // Single-pass search-free pipeline; shares nothing with the
        // multi-start machinery below. distances() is forced here for
        // the same lazily-built-cache reason as in the general path.
        device.distances();
        CompileResult result = fast_compile(device, problem, options);
        result.tier = tier_name(tier);
        result.compile_seconds = timer.elapsed_seconds();
        result.report.trials = 1;
        finish_report(result);
        return result;
    }
    if (tier == CompileTier::Balanced) {
        // Reduced search budget: one placement start, fewer
        // materialized hybrid candidates, sparser snapshots. Same
        // pipeline shape as Best, so determinism carries over.
        options.num_placement_trials = 1;
        options.max_materialized_candidates =
            std::min(options.max_materialized_candidates, 2);
        options.snapshot_fraction =
            std::max(options.snapshot_fraction, 0.1);
    }

    if (device.kind() == arch::ArchKind::Custom &&
        options.use_ata_prediction) {
        // Irregular devices have no ATA decomposition (paper §6.5);
        // compile with the greedy component alone.
        options.use_ata_prediction = false;
    }

    std::unique_ptr<CrosstalkMap> crosstalk;
    if (options.crosstalk_aware)
        crosstalk = std::make_unique<CrosstalkMap>(device);

    // Force the lazily-built all-pairs distance cache *before* any
    // parallel section — it is a mutable member of CouplingGraph and
    // concurrent first access would race.
    device.distances();
    const EdgeTable edge_table(problem);
    const DeviceIndex device_index(device);
    ScheduleCache sched_cache;

    // Placement time is summed across trials (they fan out on the
    // pool, hence the atomic) for the report's phase breakdown.
    std::atomic<std::int64_t> placement_ns{0};
    auto initial_for_trial = [&](std::int32_t trial) {
        Timer placement_timer;
        circuit::Mapping m = [&]() -> circuit::Mapping {
            if (trial == 0)
                return options.smart_placement
                           ? connectivity_strength_placement(device,
                                                             problem)
                           : circuit::Mapping(problem.num_vertices(),
                                              device.num_qubits());
            // Per-trial jump streams: trial k draws from the k-times-
            // jumped generator, so its randomness is independent of
            // how trials are scheduled across threads.
            Xoshiro256 rng(options.placement_seed);
            for (std::int32_t k = 0; k < trial; ++k)
                rng.jump();
            return perturbed_placement(device, problem, rng);
        }();
        placement_ns.fetch_add(placement_timer.elapsed_ns(),
                               std::memory_order_relaxed);
        return m;
    };

    std::int32_t trials = std::max(1, options.num_placement_trials);
    CompileResult result;
    if (trials == 1) {
        result = compile_single(device, problem, options, crosstalk.get(),
                                edge_table, device_index, sched_cache,
                                initial_for_trial(0));
    } else {
        // Independent trials fan out on the shared pool; the winner is
        // picked sequentially by (absolute cost, trial index), so the
        // result is identical at any thread count.
        std::vector<CompileResult> trial_results(
            static_cast<std::size_t>(trials));
        common::parallel_tasks(trials, [&](std::int64_t t) {
            trial_results[static_cast<std::size_t>(t)] = compile_single(
                device, problem, options, crosstalk.get(), edge_table,
                device_index, sched_cache,
                initial_for_trial(static_cast<std::int32_t>(t)));
        });
        std::size_t best = 0;
        double best_cost = absolute_cost(trial_results[0].metrics,
                                         options.noise, options.alpha);
        for (std::size_t t = 1; t < trial_results.size(); ++t) {
            double cost = absolute_cost(trial_results[t].metrics,
                                        options.noise, options.alpha);
            if (cost < best_cost) {
                best_cost = cost;
                best = t;
            }
        }
        result = std::move(trial_results[best]);
    }

    result.tier = tier_name(tier);
    result.compile_seconds = timer.elapsed_seconds();
    result.report.trials = trials;
    result.report.placement_seconds =
        static_cast<double>(
            placement_ns.load(std::memory_order_relaxed)) *
        1e-9;
    result.report.schedule_cache_hits = sched_cache.hits();
    result.report.schedule_cache_misses = sched_cache.misses();
    finish_report(result);
    return result;
}

} // namespace permuq::core
