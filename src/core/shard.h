/**
 * @file
 * Region-sharded hierarchical compilation for fabric-scale devices
 * (10k-100k qubits).
 *
 * The paper's unit decomposition (§3) makes regular architectures
 * self-similar: a horizontal band of a grid/Sycamore fabric is itself
 * a grid/Sycamore device, and the row-major qubit numbering makes the
 * band a contiguous physical-id range. The sharder exploits this:
 *
 *  1. partition the device into ~k contiguous unit bands (ShardPlan);
 *  2. assign logical qubit v to the band owning physical position v
 *     (the compiler's documented identity start, so sharding off/on
 *     agree on which program qubits are "near" each other);
 *  3. compile each band's induced subproblem independently on the
 *     band's exact sub-device — full PermuQ pipeline per region
 *     (greedy + ATA prediction + multi-start), concurrently on the
 *     shared thread pool;
 *  4. stitch: translate region circuits into the global id space
 *     (a single offset add per op), then route every cross-band
 *     problem edge with the inter-region router, which walks the
 *     endpoints together over BFS distances computed on demand
 *     (graph::BfsOracle — no dense all-pairs table is ever built).
 *
 * Determinism: regions are assembled in band order and the stitch
 * order is a sorted edge list, so a fixed seed and fixed region count
 * give bit-identical output at any thread count. Memory: the dense
 * DistanceMatrix is only ever built per band (k tables of (n/k)^2
 * instead of one n^2 table), and the streaming entry point emits QASM
 * as regions complete without materializing the global circuit.
 */
#ifndef PERMUQ_CORE_SHARD_H
#define PERMUQ_CORE_SHARD_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/qasm.h"
#include "core/compiler.h"
#include "core/options.h"
#include "graph/graph.h"

namespace permuq::core {

/** One contiguous physical band of the device. */
struct ShardRegion
{
    /** First global physical id of the band (bands are contiguous). */
    std::int32_t first_qubit = 0;
    /** Number of physical positions in the band. */
    std::int32_t num_qubits = 0;
    /** First device unit (row) of the band; -1 for Line devices,
     *  which band directly by qubit index. */
    std::int32_t first_unit = -1;
    /** Units (rows) spanned; -1 for Line devices. */
    std::int32_t num_units = -1;
};

/** A banding of the device into regions. */
struct ShardPlan
{
    /** True when the device banded into >= 2 exact sub-devices;
     *  false means the caller must use the unsharded compiler. */
    bool shardable = false;
    /** Bands in ascending physical order, covering every qubit. */
    std::vector<ShardRegion> regions;
};

/**
 * Partition @p device into at most @p want_regions contiguous bands
 * of at least 1 + @p margin units each (Line devices: qubits each).
 * Only Line, Grid, and Sycamore devices band exactly (Sycamore bands
 * are clamped to even rows so the zig-zag coupler parity of each
 * sub-device matches the fabric); every other architecture — and any
 * banding that would leave fewer than two regions — returns an
 * unshardable plan.
 */
ShardPlan plan_shards(const arch::CouplingGraph& device,
                      std::int32_t want_regions, std::int32_t margin);

/** Build the exact sub-device of one band of @p device. */
arch::CouplingGraph make_band_device(const arch::CouplingGraph& device,
                                     const ShardRegion& region);

/**
 * Sharded compile with a materialized result: equivalent in interface
 * to core::compile (metrics, selected = "sharded", wall time) and
 * verified by the same Tier A/B checkers. The region-local optimizers
 * run noise-blind (a NoiseModel indexes global links; the final
 * metrics still account for it); @p options.shard_regions chooses the
 * band count. Falls back to core::compile when the device or region
 * count is unshardable.
 */
CompileResult shard_compile(const arch::CouplingGraph& device,
                            const graph::Graph& problem,
                            const CompilerOptions& options);

/** Outcome of a streaming sharded compile. */
struct ShardStreamResult
{
    /** Aggregate metrics of the emitted program (noise-blind). */
    circuit::Metrics metrics;
    /** Total ops emitted across all chunks. */
    std::int64_t total_ops = 0;
    /** Largest number of circuit bytes live at once (max over time of
     *  the in-flight region circuits + stitch tail). */
    std::size_t peak_circuit_bytes = 0;
    /** Regions the plan used. */
    std::int32_t regions = 0;
    /** Cross-band problem edges routed by the stitcher. */
    std::int64_t stitched_edges = 0;
    double compile_seconds = 0.0;
    /** Per-compile explain report (band rows, stitch attribution,
     *  cache rates) — same shape as CompileResult::report. */
    CompileReport report;
};

/**
 * Sharded compile that streams OpenQASM into @p writer as regions
 * complete instead of materializing the global circuit: regions are
 * compiled one at a time, emitted as one chunk each (in band order,
 * ids translated by the band offset), and freed before the next
 * region starts; the stitch tail is emitted as the final chunk. Peak
 * circuit memory is one region plus the stitch tail. The device must
 * be shardable (check plan_shards) and @p options.noise must be null.
 * Byte-identical to emitting shard_compile()'s chunks region by
 * region with the same writer options.
 */
ShardStreamResult
shard_compile_stream(const arch::CouplingGraph& device,
                     const graph::Graph& problem,
                     const CompilerOptions& options,
                     circuit::QasmStreamWriter& writer);

} // namespace permuq::core

#endif // PERMUQ_CORE_SHARD_H
