/**
 * @file
 * The interactive fast tier (CompileTier::Fast): a single-pass,
 * search-free compilation pipeline for latency-bound callers
 * (ROADMAP item 3; Coqa-style pattern-driven compilation).
 *
 * Pipeline: an O(n + E) BFS-locality initial placement (the
 * problem's BFS order mapped onto the device's BFS order, so
 * neighboring logical qubits land in the same physical neighborhood
 * without any distance-table scans or annealing), a bounded greedy
 * scheduling burst using first-fit independent sets over the
 * executable-edge frontier (no conflict-graph coloring, no weighted
 * matching, no per-cycle allocation), then one ATA-tail replay to
 * finish the remaining gates with the linear-depth bound. No
 * multi-start, no snapshot/restore, no candidate selector.
 *
 * Output contract: deterministic (fully sequential — trivially
 * thread-count invariant) and verifiable — every fast-tier plan
 * passes Tier B symbolic equivalence and circuit::validate() on
 * every supported topology. Custom (irregular) devices have no ATA
 * decomposition, so compile() falls back to the balanced tier there
 * (counted by permuq.compile.fast.fallback).
 */
#ifndef PERMUQ_CORE_FAST_TIER_H
#define PERMUQ_CORE_FAST_TIER_H

#include "arch/coupling_graph.h"
#include "core/compiler.h"
#include "core/options.h"
#include "graph/graph.h"

namespace permuq::core {

/** True when the fast tier has a native pipeline for @p device
 *  (every regular architecture; Custom falls back to Balanced). */
bool fast_tier_supported(const arch::CouplingGraph& device);

/**
 * Compile @p problem with the single-pass fast pipeline. Requires
 * fast_tier_supported(device); compile() enforces the fallback.
 * device.distances() must already be built (compile() forces it).
 */
CompileResult fast_compile(const arch::CouplingGraph& device,
                           const graph::Graph& problem,
                           const CompilerOptions& options);

} // namespace permuq::core

#endif // PERMUQ_CORE_FAST_TIER_H
