/**
 * @file
 * Flat lookup structures shared by the scheduling engines (the full
 * greedy/hybrid pipeline in compiler.cpp and the single-pass fast
 * tier in fast_tier.cpp). Built once per compilation.
 */
#ifndef PERMUQ_CORE_ENGINE_UTIL_H
#define PERMUQ_CORE_ENGINE_UTIL_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "arch/coupling_graph.h"
#include "common/error.h"
#include "graph/graph.h"

namespace permuq::core {

/**
 * Flat n*n lookup of problem-edge ids by logical endpoint pair (-1 =
 * no such edge). One O(1) array read replaces the unordered_map find
 * that used to sit on the executable-gate path of every cycle; built
 * once per compilation and shared by all placement trials and by the
 * hybrid materializer.
 */
class EdgeTable
{
  public:
    explicit EdgeTable(const graph::Graph& problem)
        : n_(static_cast<std::size_t>(problem.num_vertices())),
          table_(n_ * n_, -1)
    {
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            table_[index(edge.a, edge.b)] = e;
            table_[index(edge.b, edge.a)] = e;
        }
    }

    std::int32_t
    at(LogicalQubit a, LogicalQubit b) const
    {
        return table_[index(a, b)];
    }

  private:
    std::size_t
    index(std::int32_t a, std::int32_t b) const
    {
        return static_cast<std::size_t>(a) * n_ +
               static_cast<std::size_t>(b);
    }

    std::size_t n_;
    std::vector<std::int32_t> table_;
};

/**
 * Per-physical-qubit incident-coupler lists, sorted by neighbor so
 * iterating one mirrors Graph's sorted adjacency order. Replaces the
 * physical-pair -> coupler-id hash lookups of the SWAP-weight loop.
 */
class DeviceIndex
{
  public:
    explicit DeviceIndex(const arch::CouplingGraph& device)
        : incident_(static_cast<std::size_t>(device.num_qubits()))
    {
        const auto& couplers = device.couplers();
        for (std::int32_t c = 0;
             c < static_cast<std::int32_t>(couplers.size()); ++c) {
            const auto& link = couplers[static_cast<std::size_t>(c)];
            incident_[static_cast<std::size_t>(link.a)].push_back(
                {link.b, c});
            incident_[static_cast<std::size_t>(link.b)].push_back(
                {link.a, c});
        }
        for (auto& list : incident_)
            std::sort(list.begin(), list.end());
    }

    /** (neighbor, coupler id) pairs of @p p in ascending neighbor
     *  order — the same order as connectivity().neighbors(p). */
    const std::vector<std::pair<PhysicalQubit, std::int32_t>>&
    incident(PhysicalQubit p) const
    {
        return incident_[static_cast<std::size_t>(p)];
    }

    /** Coupler id joining the adjacent positions @p p and @p q. */
    std::int32_t
    coupler_at(PhysicalQubit p, PhysicalQubit q) const
    {
        for (const auto& [nb, c] : incident_[static_cast<std::size_t>(p)])
            if (nb == q)
                return c;
        panic_unless(false, "adjacent positions without a coupler");
        return -1;
    }

  private:
    std::vector<std::vector<std::pair<PhysicalQubit, std::int32_t>>>
        incident_;
};

} // namespace permuq::core

#endif // PERMUQ_CORE_ENGINE_UTIL_H
