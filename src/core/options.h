/**
 * @file
 * Configuration of the PermuQ compiler (paper §5/§6).
 */
#ifndef PERMUQ_CORE_OPTIONS_H
#define PERMUQ_CORE_OPTIONS_H

#include <cstdint>
#include <string>

#include "arch/noise_model.h"

namespace permuq::core {

/**
 * Latency/quality dial for one compilation (ROADMAP item 3, in the
 * spirit of Coqa's search-free pass vs Quilc's optimization levels):
 *
 *   Fast      single-pass, search-free pipeline: O(n + E) BFS-
 *             locality placement, one bounded greedy scheduling
 *             burst, one ATA-tail replay. No multi-start, no
 *             snapshot/restore, no candidate selector. Sub-
 *             millisecond at hundreds of qubits; falls back to
 *             Balanced on custom topologies (no ATA pattern).
 *   Balanced  the hybrid pipeline with a reduced search budget
 *             (single placement start, fewer materialized
 *             candidates, sparser snapshots).
 *   Best      the full multi-start hybrid (paper-faithful; the
 *             historical default, bit for bit).
 *   Auto      resolve from the PERMUQ_TIER environment variable
 *             ("fast" | "balanced" | "best"), defaulting to Best.
 */
enum class CompileTier : std::int32_t
{
    Auto = 0,
    Fast,
    Balanced,
    Best,
};

/** Parse "fast|balanced|best|auto" into @p out; false otherwise. */
inline bool
parse_tier(const std::string& name, CompileTier& out)
{
    if (name == "fast")
        out = CompileTier::Fast;
    else if (name == "balanced")
        out = CompileTier::Balanced;
    else if (name == "best")
        out = CompileTier::Best;
    else if (name == "auto")
        out = CompileTier::Auto;
    else
        return false;
    return true;
}

/** Human-readable tier name. */
inline const char*
tier_name(CompileTier tier)
{
    switch (tier) {
    case CompileTier::Fast:
        return "fast";
    case CompileTier::Balanced:
        return "balanced";
    case CompileTier::Best:
        return "best";
    case CompileTier::Auto:
        break;
    }
    return "auto";
}

/** Tunables for one compilation. */
struct CompilerOptions
{
    /**
     * Latency/quality tier (see CompileTier). Auto resolves from
     * PERMUQ_TIER at compile() entry and defaults to Best, so the
     * historical behavior is untouched unless explicitly requested.
     */
    CompileTier tier = CompileTier::Auto;

    /**
     * Enable the ATA pattern-prediction component and the compiled-
     * circuit selector (§6.3/§6.4). Off = the pure greedy baseline of
     * Fig 17.
     */
    bool use_ata_prediction = true;

    /**
     * Model crosstalk between parallel adjacent couplers in the gate-
     * scheduling conflict graph (§6.2).
     */
    bool crosstalk_aware = false;

    /**
     * Optional calibration data; folds per-link CX error into SWAP
     * selection weights (§5.3) and into the selector's fidelity term.
     * Null = uniform (ideal) hardware.
     */
    const arch::NoiseModel* noise = nullptr;

    /** Depth-vs-error weight of the selector cost F (§6.4); the paper's
     *  alpha%. */
    double alpha = 0.5;

    /**
     * Number of greedy-prefix + ATA-tail hybrid candidates that are
     * fully materialized at the end (the best-estimated ones). The
     * pure-ATA candidate cc0 is always included, which preserves the
     * Theorem 6.1 bound.
     */
    std::int32_t max_materialized_candidates = 4;

    /**
     * Snapshot cadence: a hybrid candidate is recorded each time this
     * fraction of the remaining gates has been consumed since the last
     * snapshot (the paper snapshots at every mapping change; sampling
     * keeps 1024-qubit compilations near-linear).
     */
    double snapshot_fraction = 0.04;

    /** Hard cap on greedy cycles, as a multiple of the ATA bound. */
    double max_cycle_factor = 4.0;

    /**
     * Start from the connectivity-strength placement instead of the
     * identity mapping. Irrelevant for cliques (§4) but helps the
     * greedy component on sparse problems.
     */
    bool smart_placement = true;

    /**
     * Number of independent placement trials. Trial 0 always uses the
     * deterministic connectivity-strength placement (so 1 = the
     * historical single-start behavior, bit for bit); trials 1..k-1
     * perturb it with per-trial RNG jump streams derived from
     * placement_seed. Trials run in parallel on the shared thread pool
     * and the winner is chosen by (selector cost, trial index), so the
     * result is identical at any thread count.
     */
    std::int32_t num_placement_trials = 1;

    /** Base seed for the perturbed placement trials' jump streams. */
    std::uint64_t placement_seed = 0x9d2c5680f00dull;

    /**
     * Region-sharded hierarchical compilation (fabric scale). 0 = off
     * (the historical whole-device compiler, bit for bit). A value
     * k >= 2 asks the sharder to partition the device into ~k
     * contiguous unit bands, compile them concurrently, and stitch the
     * cross-band problem edges with the inter-region router. Only
     * Line/Grid/Sycamore devices band exactly; other architectures
     * fall back to the unsharded path. Fixed seed + fixed region count
     * gives bit-identical output at any thread count.
     */
    std::int32_t shard_regions = 0;

    /**
     * Minimum extra band height in units (boundary width): every band
     * must span at least 1 + shard_margin device units, and the
     * partitioner reduces the region count until that holds. Taller
     * bands keep more problem edges internal (fewer stitched ZZ terms,
     * shorter boundary routes) at the cost of larger per-region
     * compiles.
     */
    std::int32_t shard_margin = 0;
};

} // namespace permuq::core

#endif // PERMUQ_CORE_OPTIONS_H
