/**
 * @file
 * Initial qubit placement. The clique-derived ATA patterns are
 * mapping-invariant (§4: "all initial mappings have the same
 * behavior"), but sparse problems benefit from starting with the
 * interaction graph embedded compactly, so the compiler and the
 * QAIM-like baseline share this connectivity-strength placement.
 */
#ifndef PERMUQ_CORE_PLACEMENT_H
#define PERMUQ_CORE_PLACEMENT_H

#include "arch/coupling_graph.h"
#include "circuit/mapping.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace permuq::core {

/**
 * Connectivity-strength placement: highest-degree program qubit at the
 * best-connected physical qubit, then repeatedly place the vertex with
 * the most placed neighbors at the free position minimizing the summed
 * distance to them.
 */
circuit::Mapping connectivity_strength_placement(
    const arch::CouplingGraph& device, const graph::Graph& problem);

/**
 * Randomized variant for multi-start placement: the connectivity-
 * strength embedding refined by a short simulated-annealing pass that
 * draws all randomness from @p rng. Deterministic given the generator
 * state, so per-trial jump() streams make trial k's placement
 * independent of thread scheduling.
 */
circuit::Mapping perturbed_placement(const arch::CouplingGraph& device,
                                     const graph::Graph& problem,
                                     Xoshiro256& rng);

} // namespace permuq::core

#endif // PERMUQ_CORE_PLACEMENT_H
