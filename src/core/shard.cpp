#include "shard.h"

#include <algorithm>
#include <string>
#include <utility>

#include "circuit/metrics.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "graph/distance.h"

namespace permuq::core {

namespace {

/** Band boundaries: ~even split of @p total rows into @p k bands,
 *  each at least @p minh rows, starts rounded down to a multiple of
 *  @p align (Sycamore zig-zag parity). Returns {} when fewer than two
 *  bands survive. */
std::vector<std::int32_t>
band_boundaries(std::int32_t total, std::int32_t k, std::int32_t minh,
                std::int32_t align)
{
    k = std::min(k, total / std::max(1, minh));
    if (k < 2)
        return {};
    std::vector<std::int32_t> bounds;
    bounds.push_back(0);
    for (std::int32_t i = 1; i < k; ++i) {
        std::int64_t b = static_cast<std::int64_t>(i) * total / k;
        b -= b % align;
        if (b - bounds.back() >= minh &&
            total - b >= minh)
            bounds.push_back(static_cast<std::int32_t>(b));
    }
    bounds.push_back(total);
    if (bounds.size() < 3)
        return {};
    return bounds;
}

/** Number of columns of a row-major Grid/Sycamore device. */
std::int32_t
device_cols(const arch::CouplingGraph& device)
{
    return device.num_qubits() / device.num_units();
}

/** Logical qubits owned by a band under the identity assignment:
 *  the contiguous range [first, first + count). */
std::int32_t
band_logicals(const ShardRegion& region, std::int32_t num_vertices)
{
    const std::int32_t beyond =
        std::min(num_vertices, region.first_qubit + region.num_qubits);
    return std::max(0, beyond - region.first_qubit);
}

/** Per-band compiler options: no recursive sharding, a band-specific
 *  placement seed, no noise model (it indexes global links), and the
 *  tier the sharder resolved once at entry — bands must not re-read
 *  PERMUQ_TIER (Auto) or re-apply a full search budget each. */
CompilerOptions
region_options(const CompilerOptions& options, std::size_t region,
               CompileTier resolved)
{
    CompilerOptions opts = options;
    opts.shard_regions = 0;
    opts.noise = nullptr;
    opts.tier = resolved;
    opts.placement_seed =
        options.placement_seed +
        0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(region) + 1);
    return opts;
}

/** The subproblem a band owns: its logicals reindexed to 0, with the
 *  problem edges internal to the band. */
graph::Graph
band_problem(const graph::Graph& problem, const ShardRegion& region)
{
    const std::int32_t p0 = region.first_qubit;
    const std::int32_t local = band_logicals(region,
                                             problem.num_vertices());
    graph::Graph sub(local);
    for (const auto& e : problem.edges()) {
        if (e.a >= p0 && e.b < p0 + local)
            sub.add_edge(e.a - p0, e.b - p0);
    }
    return sub;
}

/** Compile one band; empty bands produce an empty result. */
CompileResult
compile_band(const arch::CouplingGraph& device, const ShardRegion& region,
             const graph::Graph& problem, const CompilerOptions& options,
             std::size_t index, CompileTier resolved)
{
    telemetry::ScopedSpan span("compile.shard.band");
    span.arg("band", static_cast<std::int64_t>(index));
    span.arg("band_qubits",
             static_cast<std::int64_t>(region.num_qubits));
    span.arg("tier", tier_name(resolved));
    const graph::Graph sub_problem = band_problem(problem, region);
    if (sub_problem.num_vertices() == 0)
        return {};
    const arch::CouplingGraph sub_device = make_band_device(device, region);
    return compile(sub_device, sub_problem,
                   region_options(options, index, resolved));
}

/** Per-band explain rows from the compiled band results. */
std::vector<CompileReport::Band>
band_rows(const std::vector<CompileResult>& bands, const ShardPlan& plan)
{
    std::vector<CompileReport::Band> rows;
    rows.reserve(bands.size());
    for (std::size_t r = 0; r < bands.size(); ++r) {
        CompileReport::Band row;
        row.index = static_cast<std::int32_t>(r);
        row.qubits = plan.regions[r].num_qubits;
        row.edges = bands[r].report.problem_edges;
        row.depth = static_cast<std::int64_t>(bands[r].metrics.depth);
        row.swaps = bands[r].metrics.swap_gates;
        row.cx = bands[r].metrics.cx_count;
        row.seconds = bands[r].compile_seconds;
        row.selected = bands[r].selected;
        row.tier = bands[r].tier;
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Global initial mapping composed from the band-local placements. */
circuit::Mapping
composed_initial(const std::vector<CompileResult>& bands,
                 const ShardPlan& plan, std::int32_t num_vertices,
                 std::int32_t num_qubits)
{
    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(num_vertices), kInvalidQubit);
    for (std::size_t r = 0; r < plan.regions.size(); ++r) {
        const ShardRegion& region = plan.regions[r];
        const std::int32_t local = band_logicals(region, num_vertices);
        const auto& initial = bands[r].circuit.initial_mapping();
        for (std::int32_t l = 0; l < local; ++l)
            phys_of[static_cast<std::size_t>(region.first_qubit + l)] =
                region.first_qubit + initial.physical_of(l);
    }
    return circuit::Mapping(std::move(phys_of), num_qubits);
}

/** Append one band circuit onto @p out, shifting ids by the band
 *  offset. Bands are qubit-disjoint, so ASAP re-scheduling reproduces
 *  the band's own cycles. */
void
append_band(circuit::Circuit& out, const circuit::Circuit& band,
            std::int32_t offset)
{
    for (const auto& op : band.ops()) {
        if (op.kind == circuit::OpKind::Compute)
            out.add_compute(op.p + offset, op.q + offset);
        else
            out.add_swap(op.p + offset, op.q + offset);
    }
}

/** Cross-band problem edges in deterministic (sorted-pair) order. */
std::vector<VertexPair>
cross_band_edges(const graph::Graph& problem, const ShardPlan& plan)
{
    // band_of[v] via the contiguous band starts.
    std::vector<std::int32_t> starts;
    starts.reserve(plan.regions.size());
    for (const auto& region : plan.regions)
        starts.push_back(region.first_qubit);
    auto band_of = [&](std::int32_t v) {
        return static_cast<std::int32_t>(
                   std::upper_bound(starts.begin(), starts.end(), v) -
                   starts.begin()) -
               1;
    };
    std::vector<VertexPair> cross;
    for (const auto& e : problem.edges())
        if (band_of(e.a) != band_of(e.b))
            cross.push_back(e);
    std::sort(cross.begin(), cross.end());
    return cross;
}

/**
 * Route every cross-band edge onto @p out: BFS (on demand, no dense
 * table) from the stationary endpoint, then walk the mobile endpoint
 * down the distance gradient — first strictly-improving neighbor in
 * ascending id order, mirroring graph::walk_toward — until the pair
 * sits on a coupler.
 */
void
stitch_edges(circuit::Circuit& out, const arch::CouplingGraph& device,
             const std::vector<VertexPair>& cross)
{
    telemetry::ScopedSpan span("compile.stitch");
    span.arg("edges", static_cast<std::int64_t>(cross.size()));
    graph::FlatAdjacency adjacency(device.connectivity());
    graph::BfsOracle oracle(adjacency);
    for (const auto& edge : cross) {
        PhysicalQubit pa = out.final_mapping().physical_of(edge.a);
        const PhysicalQubit pb = out.final_mapping().physical_of(edge.b);
        const auto& dist = oracle.distances_from(pb);
        fatal_unless(dist[static_cast<std::size_t>(pa)] != kUnreachable,
                     "stitched endpoints are disconnected on the device");
        while (dist[static_cast<std::size_t>(pa)] > 1) {
            const std::int32_t here =
                dist[static_cast<std::size_t>(pa)];
            PhysicalQubit next = kInvalidQubit;
            for (const std::int32_t* w = adjacency.neighbors_begin(pa);
                 w != adjacency.neighbors_end(pa); ++w) {
                if (dist[static_cast<std::size_t>(*w)] < here) {
                    next = *w;
                    break;
                }
            }
            panic_unless(next != kInvalidQubit,
                         "BFS gradient has no descending neighbor");
            out.add_swap(pa, next);
            pa = next;
        }
        out.add_compute(pa, pb);
    }
    telemetry::counter("compile.stitch.edges")
        .add(static_cast<std::int64_t>(cross.size()));
}

/** Plan + per-band compiles, shared by both entry points.
 *  @p sequential forces one-band-at-a-time compilation (streaming
 *  keeps only one region circuit alive; results are identical). */
std::vector<CompileResult>
compile_bands(const arch::CouplingGraph& device,
              const graph::Graph& problem,
              const CompilerOptions& options, const ShardPlan& plan,
              bool sequential, CompileTier resolved)
{
    auto& histogram = telemetry::histogram("compile.shard.region_qubits");
    for (const auto& region : plan.regions)
        histogram.record(static_cast<double>(region.num_qubits));

    std::vector<CompileResult> bands(plan.regions.size());
    auto one = [&](std::int64_t r) {
        bands[static_cast<std::size_t>(r)] =
            compile_band(device, plan.regions[static_cast<std::size_t>(r)],
                         problem, options, static_cast<std::size_t>(r),
                         resolved);
    };
    if (sequential) {
        for (std::size_t r = 0; r < plan.regions.size(); ++r)
            one(static_cast<std::int64_t>(r));
    } else {
        common::parallel_tasks(
            static_cast<std::int64_t>(plan.regions.size()), one);
    }
    return bands;
}

} // namespace

ShardPlan
plan_shards(const arch::CouplingGraph& device, std::int32_t want_regions,
            std::int32_t margin)
{
    ShardPlan plan;
    if (want_regions < 2)
        return plan;
    const std::int32_t minh = 1 + std::max(0, margin);
    const arch::ArchKind kind = device.kind();
    if (kind == arch::ArchKind::Line) {
        auto bounds = band_boundaries(device.num_qubits(), want_regions,
                                      minh, /*align=*/1);
        if (bounds.empty())
            return plan;
        for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
            plan.regions.push_back(
                {bounds[i], bounds[i + 1] - bounds[i], -1, -1});
        plan.shardable = true;
        return plan;
    }
    if (kind != arch::ArchKind::Grid && kind != arch::ArchKind::Sycamore)
        return plan;
    const std::int32_t rows = device.num_units();
    const std::int32_t cols = device_cols(device);
    if (rows * cols != device.num_qubits())
        return plan;
    const std::int32_t align = kind == arch::ArchKind::Sycamore ? 2 : 1;
    auto bounds =
        band_boundaries(rows, want_regions, std::max(minh, align), align);
    if (bounds.empty())
        return plan;
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        const std::int32_t r0 = bounds[i];
        const std::int32_t height = bounds[i + 1] - r0;
        plan.regions.push_back(
            {r0 * cols, height * cols, r0, height});
    }
    plan.shardable = true;
    return plan;
}

arch::CouplingGraph
make_band_device(const arch::CouplingGraph& device,
                 const ShardRegion& region)
{
    switch (device.kind()) {
      case arch::ArchKind::Line:
        return arch::make_line(region.num_qubits);
      case arch::ArchKind::Grid:
        return arch::make_grid(region.num_units, device_cols(device));
      case arch::ArchKind::Sycamore:
        return arch::make_sycamore(region.num_units,
                                   device_cols(device));
      default:
        throw FatalError("make_band_device: unbandable architecture " +
                         arch::to_string(device.kind()));
    }
}

CompileResult
shard_compile(const arch::CouplingGraph& device,
              const graph::Graph& problem,
              const CompilerOptions& options)
{
    fatal_unless(problem.num_vertices() <= device.num_qubits(),
                 "problem does not fit on the device");
    const ShardPlan plan =
        plan_shards(device, options.shard_regions, options.shard_margin);
    if (!plan.shardable) {
        CompilerOptions unsharded = options;
        unsharded.shard_regions = 0;
        return compile(device, problem, unsharded);
    }

    Timer timer;
    // Resolve the tier once for the whole sharded compile: every band
    // serves the same resolved tier instead of re-resolving Auto (and
    // re-reading PERMUQ_TIER) per band.
    const CompileTier tier = resolve_tier(options.tier);
    telemetry::ScopedSpan span("compile.shard");
    span.arg("regions", static_cast<std::int64_t>(plan.regions.size()));
    span.arg("qubits", problem.num_vertices());
    span.arg("tier", tier_name(tier));

    const auto bands = compile_bands(device, problem, options, plan,
                                     /*sequential=*/false, tier);

    circuit::Circuit assembled(composed_initial(
        bands, plan, problem.num_vertices(), device.num_qubits()));
    for (std::size_t r = 0; r < plan.regions.size(); ++r)
        append_band(assembled, bands[r].circuit,
                    plan.regions[r].first_qubit);
    assembled.barrier();
    const std::int64_t pre_stitch_swaps = assembled.num_swaps();
    const auto pre_stitch_depth = assembled.depth();
    const auto cross = cross_band_edges(problem, plan);
    Timer stitch_timer;
    stitch_edges(assembled, device, cross);

    CompileResult result;
    result.report.stitch_seconds = stitch_timer.elapsed_seconds();
    result.report.stitched_edges =
        static_cast<std::int64_t>(cross.size());
    result.report.stitch_swaps =
        assembled.num_swaps() - pre_stitch_swaps;
    result.report.stitch_depth =
        static_cast<std::int64_t>(assembled.depth() - pre_stitch_depth);
    result.metrics = circuit::compute_metrics(assembled, options.noise);
    result.circuit = std::move(assembled);
    result.selected = "sharded";
    result.tier = tier_name(tier);
    result.compile_seconds = timer.elapsed_seconds();

    CompileReport& rep = result.report;
    rep.tier_served = result.tier;
    rep.tier_requested = result.tier;
    rep.selected = result.selected;
    rep.problem_qubits = problem.num_vertices();
    rep.problem_edges = problem.num_edges();
    rep.device_qubits = device.num_qubits();
    rep.shard_regions = static_cast<std::int32_t>(plan.regions.size());
    rep.bands = band_rows(bands, plan);
    for (const auto& band : bands) {
        rep.trials += band.report.trials;
        rep.snapshots += band.report.snapshots;
        rep.candidates += band.report.candidates;
        rep.placement_seconds += band.report.placement_seconds;
        rep.greedy_seconds += band.report.greedy_seconds;
        rep.materialize_seconds += band.report.materialize_seconds;
        rep.schedule_cache_hits += band.report.schedule_cache_hits;
        rep.schedule_cache_misses += band.report.schedule_cache_misses;
        rep.pull_cache_hits += band.report.pull_cache_hits;
        rep.pull_cache_misses += band.report.pull_cache_misses;
    }
    rep.depth = static_cast<std::int64_t>(result.metrics.depth);
    rep.cx_count = result.metrics.cx_count;
    rep.swap_count = result.metrics.swap_gates;
    rep.fidelity = result.metrics.fidelity;
    rep.total_seconds = result.compile_seconds;
    if (logging::enabled(logging::Level::Debug))
        logging::debug(
            "core.shard",
            "regions=" + std::to_string(rep.shard_regions) +
                " stitched_edges=" +
                std::to_string(rep.stitched_edges) +
                " depth=" + std::to_string(rep.depth) +
                " cx=" + std::to_string(rep.cx_count) +
                " seconds=" + std::to_string(rep.total_seconds));
    return result;
}

ShardStreamResult
shard_compile_stream(const arch::CouplingGraph& device,
                     const graph::Graph& problem,
                     const CompilerOptions& options,
                     circuit::QasmStreamWriter& writer)
{
    fatal_unless(problem.num_vertices() <= device.num_qubits(),
                 "problem does not fit on the device");
    fatal_unless(options.noise == nullptr,
                 "streaming sharded compile is noise-blind");
    const ShardPlan plan =
        plan_shards(device, options.shard_regions, options.shard_margin);
    fatal_unless(plan.shardable,
                 "device does not shard; use the materializing path");

    Timer timer;
    const CompileTier tier = resolve_tier(options.tier);
    telemetry::ScopedSpan span("compile.shard");
    span.arg("regions", static_cast<std::int64_t>(plan.regions.size()));
    span.arg("qubits", problem.num_vertices());
    span.arg("tier", tier_name(tier));
    span.arg("streaming", 1);

    // The full-QAOA prelude places H gates at the *composed* initial
    // mapping, which only exists after every band has compiled — but
    // the header must be written before the first chunk. Streaming is
    // therefore restricted to the plain phase-separator program,
    // whose header depends on qubit counts alone.
    fatal_unless(!writer.options().full_qaoa,
                 "streaming sharded emission supports the plain "
                 "phase-separator program only");

    ShardStreamResult out;
    out.regions = static_cast<std::int32_t>(plan.regions.size());

    auto& histogram = telemetry::histogram("compile.shard.region_qubits");
    for (const auto& region : plan.regions)
        histogram.record(static_cast<double>(region.num_qubits));

    std::vector<circuit::Mapping> finals(plan.regions.size());
    std::vector<circuit::Metrics> band_metrics(plan.regions.size());
    Cycle band_depth = 0;

    writer.begin(circuit::Mapping(problem.num_vertices(),
                                  device.num_qubits()));

    for (std::size_t r = 0; r < plan.regions.size(); ++r) {
        const ShardRegion& region = plan.regions[r];
        CompileResult band = compile_band(device, region, problem,
                                          options, r, tier);
        finals[r] = band.circuit.final_mapping();
        band_metrics[r] = band.metrics;
        band_depth = std::max(band_depth, band.circuit.depth());
        out.total_ops +=
            static_cast<std::int64_t>(band.circuit.ops().size());
        out.peak_circuit_bytes = std::max(out.peak_circuit_bytes,
                                          band.circuit.memory_bytes());
        writer.chunk(band.circuit, region.first_qubit);
        CompileReport::Band row;
        row.index = static_cast<std::int32_t>(r);
        row.qubits = region.num_qubits;
        row.edges = band.report.problem_edges;
        row.depth = static_cast<std::int64_t>(band.metrics.depth);
        row.swaps = band.metrics.swap_gates;
        row.cx = band.metrics.cx_count;
        row.seconds = band.compile_seconds;
        row.selected = band.selected;
        row.tier = band.tier;
        out.report.bands.push_back(std::move(row));
        out.report.trials += band.report.trials;
        out.report.snapshots += band.report.snapshots;
        out.report.candidates += band.report.candidates;
        out.report.placement_seconds +=
            band.report.placement_seconds;
        out.report.greedy_seconds += band.report.greedy_seconds;
        out.report.materialize_seconds +=
            band.report.materialize_seconds;
        out.report.schedule_cache_hits +=
            band.report.schedule_cache_hits;
        out.report.schedule_cache_misses +=
            band.report.schedule_cache_misses;
        out.report.pull_cache_hits += band.report.pull_cache_hits;
        out.report.pull_cache_misses += band.report.pull_cache_misses;
        // band goes out of scope here: its arena is freed before the
        // next region compiles.
    }

    // Stitch tail over the composed final mapping.
    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(problem.num_vertices()), kInvalidQubit);
    for (std::size_t r = 0; r < plan.regions.size(); ++r) {
        const ShardRegion& region = plan.regions[r];
        const std::int32_t local =
            band_logicals(region, problem.num_vertices());
        for (std::int32_t l = 0; l < local; ++l)
            phys_of[static_cast<std::size_t>(region.first_qubit + l)] =
                region.first_qubit + finals[r].physical_of(l);
    }
    circuit::Circuit stitch(circuit::Mapping(std::move(phys_of),
                                             device.num_qubits()));
    const auto cross = cross_band_edges(problem, plan);
    out.stitched_edges = static_cast<std::int64_t>(cross.size());
    Timer stitch_timer;
    stitch_edges(stitch, device, cross);
    out.report.stitch_seconds = stitch_timer.elapsed_seconds();
    out.total_ops += static_cast<std::int64_t>(stitch.ops().size());
    out.peak_circuit_bytes =
        std::max(out.peak_circuit_bytes, stitch.memory_bytes());
    writer.chunk(stitch);
    writer.finish(stitch.final_mapping());

    // Aggregate metrics: bands are qubit-disjoint (depth = max), the
    // stitch tail runs after a barrier (depths add).
    circuit::Metrics total;
    const auto stitch_metrics =
        circuit::compute_metrics(stitch, nullptr);
    total.depth = band_depth + stitch_metrics.depth;
    total.fidelity = stitch_metrics.fidelity;
    total.compute_gates = stitch_metrics.compute_gates;
    total.swap_gates = stitch_metrics.swap_gates;
    total.merged_pairs = stitch_metrics.merged_pairs;
    total.cx_count = stitch_metrics.cx_count;
    for (const auto& m : band_metrics) {
        total.compute_gates += m.compute_gates;
        total.swap_gates += m.swap_gates;
        total.merged_pairs += m.merged_pairs;
        total.cx_count += m.cx_count;
        total.fidelity *= m.fidelity;
    }
    out.metrics = total;
    out.compile_seconds = timer.elapsed_seconds();

    CompileReport& rep = out.report;
    rep.tier_served = tier_name(tier);
    rep.tier_requested = rep.tier_served;
    rep.selected = "sharded";
    rep.problem_qubits = problem.num_vertices();
    rep.problem_edges = problem.num_edges();
    rep.device_qubits = device.num_qubits();
    rep.shard_regions = static_cast<std::int32_t>(plan.regions.size());
    rep.stitched_edges = out.stitched_edges;
    rep.stitch_swaps = stitch_metrics.swap_gates;
    rep.stitch_depth = static_cast<std::int64_t>(stitch_metrics.depth);
    rep.depth = static_cast<std::int64_t>(total.depth);
    rep.cx_count = total.cx_count;
    rep.swap_count = total.swap_gates;
    rep.fidelity = total.fidelity;
    rep.total_seconds = out.compile_seconds;
    return out;
}

} // namespace permuq::core
