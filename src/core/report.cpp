/**
 * @file
 * CompileReport serialization and op-stream attribution.
 */
#include "core/report.h"

#include <cstdio>

#include "circuit/circuit.h"

namespace permuq::core {

namespace {

void
json_string_into(std::string& out, const std::string& s)
{
    out += '"';
    for (char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    out += '"';
}

void
field(std::string& out, const char* key, std::int64_t v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s\": %lld", key,
                  static_cast<long long>(v));
    out += buf;
}

void
field(std::string& out, const char* key, double v)
{
    char buf[80];
    std::snprintf(buf, sizeof buf, "\"%s\": %.9g", key, v);
    out += buf;
}

void
field(std::string& out, const char* key, const std::string& v)
{
    out += '"';
    out += key;
    out += "\": ";
    json_string_into(out, v);
}

} // namespace

std::string
CompileReport::to_json() const
{
    std::string out;
    out.reserve(2048);
    out += "{\n  \"permuq_report\": 1,\n  ";
    field(out, "tier_requested", tier_requested);
    out += ",\n  ";
    field(out, "tier_served", tier_served);
    out += ",\n  ";
    field(out, "fallback_reason", fallback_reason);
    out += ",\n  ";
    field(out, "selected", selected);
    out += ",\n  ";
    field(out, "problem_qubits",
          static_cast<std::int64_t>(problem_qubits));
    out += ",\n  ";
    field(out, "problem_edges", problem_edges);
    out += ",\n  ";
    field(out, "device_qubits",
          static_cast<std::int64_t>(device_qubits));
    out += ",\n  ";
    field(out, "trials", static_cast<std::int64_t>(trials));
    out += ",\n  ";
    field(out, "snapshots", static_cast<std::int64_t>(snapshots));
    out += ",\n  ";
    field(out, "candidates", static_cast<std::int64_t>(candidates));
    out += ",\n  \"phase_seconds\": {";
    field(out, "placement", placement_seconds);
    out += ", ";
    field(out, "greedy", greedy_seconds);
    out += ", ";
    field(out, "materialize", materialize_seconds);
    out += ", ";
    field(out, "stitch", stitch_seconds);
    out += ", ";
    field(out, "total", total_seconds);
    out += "},\n  \"prefix\": {";
    field(out, "ops", prefix_ops);
    out += ", ";
    field(out, "swaps", prefix_swaps);
    out += ", ";
    field(out, "computes", prefix_computes);
    out += ", ";
    field(out, "depth", prefix_depth);
    out += "},\n  \"tail\": {";
    field(out, "swaps", tail_swaps);
    out += ", ";
    field(out, "computes", tail_computes);
    out += ", ";
    field(out, "depth", tail_depth);
    out += ", ";
    field(out, "ata_rounds", static_cast<std::int64_t>(ata_rounds));
    out += ", \"rounds\": [";
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += '{';
        field(out, "swaps", rounds[i].swaps);
        out += ", ";
        field(out, "computes", rounds[i].computes);
        out += '}';
    }
    out += "]},\n  \"caches\": {";
    field(out, "schedule_hits", schedule_cache_hits);
    out += ", ";
    field(out, "schedule_misses", schedule_cache_misses);
    out += ", ";
    field(out, "pull_hits", pull_cache_hits);
    out += ", ";
    field(out, "pull_misses", pull_cache_misses);
    out += "},\n  \"shard\": {";
    field(out, "regions", static_cast<std::int64_t>(shard_regions));
    out += ", ";
    field(out, "stitched_edges", stitched_edges);
    out += ", ";
    field(out, "stitch_swaps", stitch_swaps);
    out += ", ";
    field(out, "stitch_depth", stitch_depth);
    out += ", \"bands\": [";
    for (std::size_t i = 0; i < bands.size(); ++i) {
        const Band& b = bands[i];
        if (i != 0)
            out += ", ";
        out += "\n    {";
        field(out, "index", static_cast<std::int64_t>(b.index));
        out += ", ";
        field(out, "qubits", static_cast<std::int64_t>(b.qubits));
        out += ", ";
        field(out, "edges", b.edges);
        out += ", ";
        field(out, "depth", b.depth);
        out += ", ";
        field(out, "swaps", b.swaps);
        out += ", ";
        field(out, "cx", b.cx);
        out += ", ";
        field(out, "seconds", b.seconds);
        out += ", ";
        field(out, "selected", b.selected);
        out += ", ";
        field(out, "tier", b.tier);
        out += '}';
    }
    out += "]},\n  \"sweep\": {";
    field(out, "points", sweep.points);
    out += ", ";
    field(out, "batch", static_cast<std::int64_t>(sweep.batch));
    out += ", ";
    field(out, "layers", static_cast<std::int64_t>(sweep.layers));
    out += ", ";
    field(out, "mode", sweep.mode);
    out += ", ";
    field(out, "best_gamma", sweep.best_gamma);
    out += ", ";
    field(out, "best_beta", sweep.best_beta);
    out += ", ";
    field(out, "best_value", sweep.best_value);
    out += ", ";
    field(out, "seconds", sweep.seconds);
    out += ", ";
    field(out, "points_per_sec", sweep.points_per_sec);
    out += ", ";
    field(out, "memory_bytes", sweep.memory_bytes);
    out += ", ";
    field(out, "problems", static_cast<std::int64_t>(sweep.problems));
    out += ", ";
    field(out, "problems_in_flight",
          static_cast<std::int64_t>(sweep.problems_in_flight));
    out += ", ";
    field(out, "peak_memory_bytes", sweep.peak_memory_bytes);
    out += "},\n  \"result\": {";
    field(out, "depth", depth);
    out += ", ";
    field(out, "cx_count", cx_count);
    out += ", ";
    field(out, "swap_count", swap_count);
    out += ", ";
    field(out, "fidelity", fidelity);
    out += "}\n}\n";
    return out;
}

void
attribute_prefix_tail(const circuit::Circuit& circuit,
                      std::int64_t prefix_ops, CompileReport& report)
{
    const auto& ops = circuit.ops();
    const std::int64_t count = static_cast<std::int64_t>(ops.size());
    if (prefix_ops < 0)
        prefix_ops = 0;
    if (prefix_ops > count)
        prefix_ops = count;

    report.prefix_ops = prefix_ops;
    report.prefix_swaps = 0;
    report.prefix_computes = 0;
    report.prefix_depth = 0;
    report.tail_swaps = 0;
    report.tail_computes = 0;
    report.ata_rounds = 0;
    report.rounds.clear();

    for (std::int64_t i = 0; i < prefix_ops; ++i) {
        const auto& op = ops[static_cast<std::size_t>(i)];
        if (op.kind == circuit::OpKind::Swap)
            ++report.prefix_swaps;
        else
            ++report.prefix_computes;
        report.prefix_depth =
            std::max(report.prefix_depth,
                     static_cast<std::int64_t>(op.cycle) + 1);
    }
    report.tail_depth =
        static_cast<std::int64_t>(circuit.depth()) - report.prefix_depth;

    // Tail rounds: the replay emits each ATA round as one SWAP phase
    // followed by the compute phase it enables, so a Compute->SWAP
    // transition in append order starts a new round.
    bool in_round = false;
    bool last_was_compute = true;
    CompileReport::AtaRound cur;
    auto close_round = [&] {
        if (!in_round)
            return;
        ++report.ata_rounds;
        if (report.rounds.size() < CompileReport::kMaxAtaRounds)
            report.rounds.push_back(cur);
        cur = {};
    };
    for (std::int64_t i = prefix_ops; i < count; ++i) {
        const auto& op = ops[static_cast<std::size_t>(i)];
        if (op.kind == circuit::OpKind::Swap) {
            ++report.tail_swaps;
            if (last_was_compute)
                close_round();
            in_round = true;
            ++cur.swaps;
            last_was_compute = false;
        } else {
            ++report.tail_computes;
            in_round = true;
            ++cur.computes;
            last_was_compute = true;
        }
    }
    close_round();
}

} // namespace permuq::core
