/**
 * @file
 * Per-compile explain report: where the depth and the SWAPs of one
 * compiled circuit came from, how long each compiler phase took, and
 * how effective the memoization layers were.
 *
 * A CompileReport is assembled by every compile entry point (the
 * multi-start pipeline, the fast tier, and the sharded paths) and
 * returned inside CompileResult. Population is unconditional and
 * costs a handful of integer reads per compile — unlike telemetry it
 * has no enable gate, because everything it records is derived from
 * state the compiler computes anyway (op counts, cache tallies,
 * phase timers). Nothing in the report ever feeds back into
 * compilation decisions, so the compiled circuit is byte-identical
 * whether anyone reads the report or not.
 *
 * Exposed via `permuqc --report FILE` (JSON) and pretty-printed by
 * tools/report_summary.py.
 */
#ifndef PERMUQ_CORE_REPORT_H
#define PERMUQ_CORE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace permuq::circuit {
class Circuit;
} // namespace permuq::circuit

namespace permuq::core {

/** Explain report of one compilation (see file comment). */
struct CompileReport
{
    // ------------------------------------------- tier and selection
    /** Tier the caller asked for, after Auto resolution ("fast",
     *  "balanced", "best"). */
    std::string tier_requested;
    /** Tier that actually served the request; differs from
     *  tier_requested only on fallback. */
    std::string tier_served;
    /** Human-readable reason when tier_served != tier_requested;
     *  empty otherwise. */
    std::string fallback_reason;
    /** Winning candidate: "greedy", "ata", "hybrid", "fast",
     *  "sharded". */
    std::string selected;

    // ------------------------------------------------ problem shape
    std::int32_t problem_qubits = 0;
    std::int64_t problem_edges = 0;
    std::int32_t device_qubits = 0;

    // ------------------------------------------------- search shape
    std::int32_t trials = 0;
    std::int32_t snapshots = 0;
    /** Hybrid candidates fully materialized by the selector. */
    std::int32_t candidates = 0;

    // ------------------------------------------- phase wall times
    // placement covers every trial's initial-mapping construction;
    // greedy/materialize are the winning trial's engine run and
    // candidate materialization+selection; stitch is the sharded
    // cross-band router. total is the whole compile() call.
    double placement_seconds = 0.0;
    double greedy_seconds = 0.0;
    double materialize_seconds = 0.0;
    double stitch_seconds = 0.0;
    double total_seconds = 0.0;

    // ------------------------------ greedy-prefix / ATA-tail split
    // The winning circuit is a greedy prefix completed by an ATA
    // tail (prefix_ops == total ops when pure greedy won). Depth
    // attribution uses the ASAP cycles the circuit already stores:
    // prefix_depth is the critical path of the prefix alone, and
    // tail_depth is the increment the tail added on top (tail ops
    // overlap the prefix under ASAP scheduling, so the two add up
    // to the final depth by construction).
    std::int64_t prefix_ops = 0;
    std::int64_t prefix_swaps = 0;
    std::int64_t prefix_computes = 0;
    std::int64_t prefix_depth = 0;
    std::int64_t tail_swaps = 0;
    std::int64_t tail_computes = 0;
    std::int64_t tail_depth = 0;

    /** One ATA tail round: a maximal run of SWAP slots plus the
     *  compute phase it enables. */
    struct AtaRound
    {
        std::int64_t swaps = 0;
        std::int64_t computes = 0;
    };
    /** Cap on stored per-round rows (ata_rounds keeps the true
     *  total; a fabric-scale tail can run to thousands of rounds). */
    static constexpr std::size_t kMaxAtaRounds = 64;
    std::int32_t ata_rounds = 0;
    std::vector<AtaRound> rounds;

    // --------------------------------------------- cache behavior
    std::int64_t schedule_cache_hits = 0;
    std::int64_t schedule_cache_misses = 0;
    std::int64_t pull_cache_hits = 0;
    std::int64_t pull_cache_misses = 0;

    // ----------------------------------------- shard attribution
    /** One compiled band of a sharded compile. */
    struct Band
    {
        std::int32_t index = 0;
        std::int32_t qubits = 0;
        std::int64_t edges = 0;
        std::int64_t depth = 0;
        std::int64_t swaps = 0;
        std::int64_t cx = 0;
        double seconds = 0.0;
        std::string selected;
        /** Tier the band compile was served at. The sharder resolves
         *  the tier once and stamps it into every band, so this
         *  differs from the top-level tier_served only when a band
         *  individually fell back (e.g. fast on an unbandable
         *  sub-device shape). */
        std::string tier;
    };
    /** 0 = unsharded compile. */
    std::int32_t shard_regions = 0;
    std::vector<Band> bands;
    std::int64_t stitched_edges = 0;
    std::int64_t stitch_swaps = 0;
    std::int64_t stitch_depth = 0;

    // ------------------------------------------------ sweep summary
    /** Angle-sweep summary, populated by permuqc --sweep (the
     *  compiler itself never fills it; points == 0 means no sweep
     *  ran and the JSON section stays zeroed). */
    struct Sweep
    {
        std::int64_t points = 0;
        std::int32_t batch = 0;
        std::int32_t layers = 0;
        /** "ideal" | "noisy". */
        std::string mode;
        double best_gamma = 0.0;
        double best_beta = 0.0;
        double best_value = 0.0;
        double seconds = 0.0;
        double points_per_sec = 0.0;
        /** Batched-buffer footprint of one evaluator. */
        std::int64_t memory_bytes = 0;
        /** Multi-problem mode (1 = single problem). */
        std::int32_t problems = 1;
        std::int32_t problems_in_flight = 1;
        std::int64_t peak_memory_bytes = 0;
    };
    Sweep sweep;

    // ------------------------------------------------ final result
    std::int64_t depth = 0;
    std::int64_t cx_count = 0;
    std::int64_t swap_count = 0;
    double fidelity = 1.0;

    /** Serialize as a single JSON object (what --report writes). */
    std::string to_json() const;
};

/**
 * Fill the prefix/tail and per-ATA-round fields of @p report by
 * walking @p circuit's op stream: ops [0, prefix_ops) are the greedy
 * prefix, the rest the ATA tail. A new tail round starts at every
 * Compute->SWAP transition (the replay emits each round as one SWAP
 * phase followed by the compute phase it enables). @p prefix_ops is
 * clamped to the op count.
 */
void attribute_prefix_tail(const circuit::Circuit& circuit,
                           std::int64_t prefix_ops,
                           CompileReport& report);

} // namespace permuq::core

#endif // PERMUQ_CORE_REPORT_H
