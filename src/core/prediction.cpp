#include "prediction.h"

#include <algorithm>

#include "common/error.h"
#include "graph/components.h"

namespace permuq::core {

RegionPlan
detect_regions(const arch::CouplingGraph& device,
               const graph::Graph& problem, const std::vector<bool>& done,
               const circuit::Mapping& mapping)
{
    fatal_unless(done.size() ==
                     static_cast<std::size_t>(problem.num_edges()),
                 "done bitmap size mismatch");

    std::vector<VertexPair> remaining;
    for (std::size_t e = 0; e < done.size(); ++e)
        if (!done[e])
            remaining.push_back(problem.edges()[e]);

    RegionPlan plan;
    if (remaining.empty())
        return plan;

    auto components = graph::edge_subset_components(
        problem.num_vertices(), remaining);

    // One bounding region per interacting-qubit set.
    for (const auto& members : components.members) {
        std::vector<PhysicalQubit> positions;
        positions.reserve(members.size());
        for (LogicalQubit l : members)
            positions.push_back(mapping.physical_of(l));
        plan.regions.push_back(ata::bounding_region(device, positions));
    }

    // Merge overlapping regions to a fixpoint (§6.3: "If two regions
    // overlap, we merge them into one region").
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < plan.regions.size() && !changed; ++i) {
            for (std::size_t j = i + 1; j < plan.regions.size(); ++j) {
                if (ata::regions_overlap(device, plan.regions[i],
                                         plan.regions[j])) {
                    plan.regions[i] = ata::merge_regions(plan.regions[i],
                                                         plan.regions[j]);
                    plan.regions.erase(plan.regions.begin() +
                                       static_cast<std::ptrdiff_t>(j));
                    changed = true;
                    break;
                }
            }
        }
    }

    for (const auto& region : plan.regions) {
        std::int32_t size = ata::region_size(device, region);
        plan.max_positions = std::max(plan.max_positions, size);
        plan.total_positions += size;
    }
    return plan;
}

ata::SwapSchedule
tail_schedule(const arch::CouplingGraph& device, const RegionPlan& plan)
{
    ata::SwapSchedule out;
    for (const auto& region : plan.regions)
        out.append(ata::ata_schedule(device, region));
    return out;
}

namespace {

/** Measured full-pattern depth constants (depth ~ alpha * positions). */
double
depth_constant(arch::ArchKind kind)
{
    switch (kind) {
      case arch::ArchKind::Line: return 2.0;
      case arch::ArchKind::Grid: return 1.7;
      case arch::ArchKind::Sycamore: return 3.6;
      case arch::ArchKind::HeavyHex: return 4.8;
      case arch::ArchKind::Hexagon: return 4.2;
      default: return 4.0;
    }
}

} // namespace

double
estimate_tail_depth(const arch::CouplingGraph& device,
                    const RegionPlan& plan)
{
    // Disjoint regions replay in parallel; the largest dominates.
    return depth_constant(device.kind()) * plan.max_positions;
}

double
estimate_tail_cx(const arch::CouplingGraph& device, const RegionPlan& plan,
                 std::int64_t remaining_edges)
{
    // Compute gates: 2 CX each (some merge with swaps). Swap slots of a
    // clique schedule over k positions: ~k^2/2 layers of k/2... in
    // practice ~0.5 k^2 swaps; dead-swap skipping scales that by the
    // live fraction, approximated by the edge density of the tail.
    double swaps = 0.0;
    for (const auto& region : plan.regions) {
        double k = ata::region_size(device, region);
        swaps += 0.5 * k * k;
    }
    return 2.0 * static_cast<double>(remaining_edges) + 3.0 * swaps;
}

} // namespace permuq::core
