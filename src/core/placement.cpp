#include "placement.h"

#include "common/error.h"

namespace permuq::core {

circuit::Mapping
connectivity_strength_placement(const arch::CouplingGraph& device,
                                const graph::Graph& problem)
{
    std::int32_t n = problem.num_vertices();
    const auto& dist = device.distances();

    // Physical centrality: degree, tie-broken by closeness.
    std::vector<std::int64_t> closeness(
        static_cast<std::size_t>(device.num_qubits()), 0);
    for (std::int32_t p = 0; p < device.num_qubits(); ++p)
        for (std::int32_t q = 0; q < device.num_qubits(); ++q)
            closeness[static_cast<std::size_t>(p)] += dist.at(p, q);

    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(n), kInvalidQubit);
    std::vector<bool> pos_used(
        static_cast<std::size_t>(device.num_qubits()), false);
    std::vector<bool> placed(static_cast<std::size_t>(n), false);

    auto best_free_central = [&] {
        PhysicalQubit best = kInvalidQubit;
        for (std::int32_t p = 0; p < device.num_qubits(); ++p) {
            if (pos_used[static_cast<std::size_t>(p)])
                continue;
            if (best == kInvalidQubit ||
                device.connectivity().degree(p) >
                    device.connectivity().degree(best) ||
                (device.connectivity().degree(p) ==
                     device.connectivity().degree(best) &&
                 closeness[static_cast<std::size_t>(p)] <
                     closeness[static_cast<std::size_t>(best)]))
                best = p;
        }
        return best;
    };

    for (std::int32_t step = 0; step < n; ++step) {
        // Vertex with the most already-placed neighbors; ties by degree.
        std::int32_t pick = -1, pick_placed = -1;
        for (std::int32_t v = 0; v < n; ++v) {
            if (placed[static_cast<std::size_t>(v)])
                continue;
            std::int32_t num_placed = 0;
            for (std::int32_t w : problem.neighbors(v))
                if (placed[static_cast<std::size_t>(w)])
                    ++num_placed;
            if (pick == -1 || num_placed > pick_placed ||
                (num_placed == pick_placed &&
                 problem.degree(v) > problem.degree(pick))) {
                pick = v;
                pick_placed = num_placed;
            }
        }
        PhysicalQubit where = kInvalidQubit;
        if (pick_placed == 0) {
            where = best_free_central();
        } else {
            std::int64_t best_sum = -1;
            for (std::int32_t p = 0; p < device.num_qubits(); ++p) {
                if (pos_used[static_cast<std::size_t>(p)])
                    continue;
                std::int64_t sum = 0;
                for (std::int32_t w : problem.neighbors(pick))
                    if (placed[static_cast<std::size_t>(w)])
                        sum += dist.at(
                            p, phys_of[static_cast<std::size_t>(w)]);
                if (best_sum < 0 || sum < best_sum) {
                    best_sum = sum;
                    where = p;
                }
            }
        }
        panic_unless(where != kInvalidQubit, "placement ran out of qubits");
        phys_of[static_cast<std::size_t>(pick)] = where;
        pos_used[static_cast<std::size_t>(where)] = true;
        placed[static_cast<std::size_t>(pick)] = true;
    }
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}


} // namespace permuq::core
