#include "placement.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "common/vecops.h"

namespace permuq::core {

circuit::Mapping
connectivity_strength_placement(const arch::CouplingGraph& device,
                                const graph::Graph& problem)
{
    telemetry::ScopedSpan span("placement.connectivity");
    std::int32_t n = problem.num_vertices();
    std::int32_t num_phys = device.num_qubits();
    const auto& dist = device.distances();

    // Physical centrality: degree, tie-broken by closeness. Row-wise
    // accumulation over the raw distance table via the vecops kernels
    // (integer-exact on every SIMD tier): the raw u16 sum plus the
    // unreachable-sentinel count rebuilds the decoded sum exactly,
    // since decode() only rewrites the sentinel value.
    const auto& vk = common::vecops::active();
    constexpr std::int64_t kDecodeBias =
        static_cast<std::int64_t>(kUnreachable) -
        graph::DistanceMatrix::kRawUnreachable;
    std::vector<std::int64_t> closeness(
        static_cast<std::size_t>(num_phys), 0);
    bool disconnected = false;
    for (std::int32_t p = 0; p < num_phys; ++p) {
        std::int64_t unreachable = 0;
        std::uint64_t raw_sum = vk.sum_u16(
            dist.row(p), static_cast<std::size_t>(num_phys),
            graph::DistanceMatrix::kRawUnreachable, &unreachable);
        disconnected |= unreachable != 0;
        closeness[static_cast<std::size_t>(p)] =
            static_cast<std::int64_t>(raw_sum) +
            kDecodeBias * unreachable;
    }

    std::vector<PhysicalQubit> phys_of(
        static_cast<std::size_t>(n), kInvalidQubit);
    // Bytes, not vector<bool>: the masked-argmin kernel reads this as
    // the skip mask directly.
    std::vector<std::uint8_t> pos_used(
        static_cast<std::size_t>(num_phys), 0);
    std::vector<bool> placed(static_cast<std::size_t>(n), false);
    // Number of already-placed problem neighbors of each vertex,
    // maintained incrementally instead of recounted per step.
    std::vector<std::int32_t> placed_nbrs(static_cast<std::size_t>(n), 0);
    // Summed distance from each position to the placed neighbors of
    // the current pick; reused across steps. On a connected device
    // every partial sum is < num_phys^2, so the 32-bit accumulator
    // (twice the SIMD lanes of the 64-bit one) is exact; the 64-bit
    // variant stays behind for disconnected devices where unreachable
    // sentinels (INT32_MAX/4 each) would overflow it.
    bool narrow_acc = !disconnected && num_phys < 46000;
    std::vector<std::int64_t> acc(
        narrow_acc ? 0 : static_cast<std::size_t>(num_phys), 0);
    std::vector<std::int32_t> acc32(
        narrow_acc ? static_cast<std::size_t>(num_phys) : 0, 0);

    auto best_free_central = [&] {
        PhysicalQubit best = kInvalidQubit;
        for (std::int32_t p = 0; p < num_phys; ++p) {
            if (pos_used[static_cast<std::size_t>(p)] != 0)
                continue;
            if (best == kInvalidQubit ||
                device.connectivity().degree(p) >
                    device.connectivity().degree(best) ||
                (device.connectivity().degree(p) ==
                     device.connectivity().degree(best) &&
                 closeness[static_cast<std::size_t>(p)] <
                     closeness[static_cast<std::size_t>(best)]))
                best = p;
        }
        return best;
    };

    for (std::int32_t step = 0; step < n; ++step) {
        // Vertex with the most already-placed neighbors; ties by degree.
        std::int32_t pick = -1, pick_placed = -1;
        for (std::int32_t v = 0; v < n; ++v) {
            if (placed[static_cast<std::size_t>(v)])
                continue;
            std::int32_t num_placed =
                placed_nbrs[static_cast<std::size_t>(v)];
            if (pick == -1 || num_placed > pick_placed ||
                (num_placed == pick_placed &&
                 problem.degree(v) > problem.degree(pick))) {
                pick = v;
                pick_placed = num_placed;
            }
        }
        PhysicalQubit where = kInvalidQubit;
        if (pick_placed == 0) {
            where = best_free_central();
        } else {
            // Sum distances row-major: one sequential pass over the
            // distance row of each placed neighbor, then a single
            // argmin scan. Integer sums and the ascending first-strict-
            // min scan reproduce the original at(p, w) loop bit for
            // bit.
            if (narrow_acc) {
                // Vectorized accumulate + masked first-strict-min
                // argmin (vecops kernels, integer-exact: identical
                // result on every SIMD tier). Sums stay below
                // num_phys^2 < 46000^2 < INT32_MAX, the AVX2 kernel's
                // masked-lane sentinel.
                std::fill(acc32.begin(), acc32.end(), 0);
                for (std::int32_t w : problem.neighbors(pick)) {
                    if (!placed[static_cast<std::size_t>(w)])
                        continue;
                    vk.add_u16_to_i32(
                        acc32.data(),
                        dist.row(phys_of[static_cast<std::size_t>(w)]),
                        static_cast<std::size_t>(num_phys));
                }
                std::int64_t found = vk.argmin_masked_i32(
                    acc32.data(), pos_used.data(),
                    static_cast<std::size_t>(num_phys));
                if (found >= 0)
                    where = static_cast<PhysicalQubit>(found);
            } else {
                std::fill(acc.begin(), acc.end(), 0);
                constexpr std::int64_t kUnreachBias =
                    static_cast<std::int64_t>(kUnreachable) -
                    graph::DistanceMatrix::kRawUnreachable;
                for (std::int32_t w : problem.neighbors(pick)) {
                    if (!placed[static_cast<std::size_t>(w)])
                        continue;
                    const std::uint16_t* row =
                        dist.row(phys_of[static_cast<std::size_t>(w)]);
                    for (std::int32_t p = 0; p < num_phys; ++p) {
                        // Branchless decode (raw + bias when
                        // unreachable).
                        std::uint16_t raw =
                            row[static_cast<std::size_t>(p)];
                        acc[static_cast<std::size_t>(p)] +=
                            raw +
                            kUnreachBias *
                                (raw ==
                                 graph::DistanceMatrix::kRawUnreachable);
                    }
                }
                std::int64_t best_sum = -1;
                for (std::int32_t p = 0; p < num_phys; ++p) {
                    if (pos_used[static_cast<std::size_t>(p)] != 0)
                        continue;
                    if (best_sum < 0 ||
                        acc[static_cast<std::size_t>(p)] < best_sum) {
                        best_sum = acc[static_cast<std::size_t>(p)];
                        where = p;
                    }
                }
            }
        }
        panic_unless(where != kInvalidQubit, "placement ran out of qubits");
        phys_of[static_cast<std::size_t>(pick)] = where;
        pos_used[static_cast<std::size_t>(where)] = 1;
        placed[static_cast<std::size_t>(pick)] = true;
        for (std::int32_t w : problem.neighbors(pick))
            ++placed_nbrs[static_cast<std::size_t>(w)];
    }
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}

circuit::Mapping
perturbed_placement(const arch::CouplingGraph& device,
                    const graph::Graph& problem, Xoshiro256& rng)
{
    telemetry::ScopedSpan span("placement.perturbed");
    // Start from the deterministic connectivity-strength embedding and
    // anneal briefly; each multi-start trial draws from its own jump
    // stream so the result depends only on (device, problem, stream).
    std::int32_t n = problem.num_vertices();
    std::int32_t num_phys = device.num_qubits();
    const auto& dist = device.distances();

    auto seeded = connectivity_strength_placement(device, problem);
    std::vector<PhysicalQubit> phys_of(static_cast<std::size_t>(n));
    std::vector<LogicalQubit> logical_at(
        static_cast<std::size_t>(num_phys), kInvalidQubit);
    for (std::int32_t l = 0; l < n; ++l) {
        phys_of[static_cast<std::size_t>(l)] = seeded.physical_of(l);
        logical_at[static_cast<std::size_t>(seeded.physical_of(l))] = l;
    }

    auto vertex_cost = [&](LogicalQubit v, PhysicalQubit at) {
        std::int64_t sum = 0;
        for (std::int32_t w : problem.neighbors(v))
            sum += dist.at(at, phys_of[static_cast<std::size_t>(w)]);
        return sum;
    };

    std::int64_t iterations = 20ll * n;
    double temperature = 2.0;
    double cooling = std::pow(
        1e-2 / temperature,
        1.0 / static_cast<double>(std::max<std::int64_t>(iterations, 1)));
    for (std::int64_t it = 0; it < iterations; ++it) {
        LogicalQubit v = static_cast<LogicalQubit>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        PhysicalQubit to = static_cast<PhysicalQubit>(
            rng.next_below(static_cast<std::uint64_t>(num_phys)));
        PhysicalQubit from = phys_of[static_cast<std::size_t>(v)];
        if (to == from)
            continue;
        LogicalQubit other = logical_at[static_cast<std::size_t>(to)];
        std::int64_t before = vertex_cost(v, from);
        std::int64_t after = vertex_cost(v, to);
        if (other != kInvalidQubit) {
            before += vertex_cost(other, to);
            after += vertex_cost(other, from);
        }
        std::int64_t delta = after - before;
        if (delta <= 0 ||
            rng.next_double() <
                std::exp(-static_cast<double>(delta) /
                         std::max(temperature, 1e-9))) {
            phys_of[static_cast<std::size_t>(v)] = to;
            logical_at[static_cast<std::size_t>(to)] = v;
            logical_at[static_cast<std::size_t>(from)] = other;
            if (other != kInvalidQubit)
                phys_of[static_cast<std::size_t>(other)] = from;
        }
        temperature *= cooling;
    }
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}

} // namespace permuq::core
