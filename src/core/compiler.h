/**
 * @file
 * The PermuQ compiler (paper §6): greedy processing with graph-coloring
 * gate scheduling and error-weighted matching SWAP insertion, ATA
 * pattern prediction at snapshot points, and a compiled-circuit
 * selector that guarantees the result is never worse than the pure
 * ATA solution (Theorem 6.1).
 */
#ifndef PERMUQ_CORE_COMPILER_H
#define PERMUQ_CORE_COMPILER_H

#include <string>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "circuit/metrics.h"
#include "core/options.h"
#include "core/report.h"
#include "graph/graph.h"

namespace permuq::core {

/** Outcome of one compilation. */
struct CompileResult
{
    circuit::Circuit circuit;
    circuit::Metrics metrics;
    /** Which candidate won: "greedy", "ata" (cc0), "hybrid", or
     *  "fast" (the single-pass fast tier has no selector). */
    std::string selected;
    /** Tier the request was actually served at ("fast", "balanced",
     *  "best") — differs from the requested tier when fast falls
     *  back to balanced on a custom device. */
    std::string tier;
    /** Number of hybrid snapshots recorded along the greedy run. */
    std::int32_t snapshots = 0;
    /** Wall-clock compilation time in seconds. */
    double compile_seconds = 0.0;
    /** Per-compile explain report (always populated; see report.h). */
    CompileReport report;
};

/**
 * Compile @p problem onto @p device. Logical qubit i starts at
 * physical position i (for the clique-derived patterns all initial
 * mappings behave identically, §4).
 */
CompileResult compile(const arch::CouplingGraph& device,
                      const graph::Graph& problem,
                      const CompilerOptions& options = {});

/**
 * The selector cost F (§6.4, adapted): a convex combination of the
 * depth ratio and the error ratio against the pure-greedy reference,
 *   F = alpha * (depth / ref_depth) + (1-alpha) * (E / ref_E),
 * where E is -log(fidelity) under a noise model and the CX count on
 * ideal hardware. Smaller is better.
 */
double selector_cost(const circuit::Metrics& m,
                     const circuit::Metrics& reference,
                     const arch::NoiseModel* noise, double alpha);

/**
 * The tier a request would actually run at: CompileTier::Auto
 * resolves from the PERMUQ_TIER environment variable
 * ("fast" | "balanced" | "best"), defaulting to Best; explicit tiers
 * pass through. compile() applies this at entry; exposed so CLI
 * diagnostics and tests can report the effective tier.
 */
CompileTier resolve_tier(CompileTier requested);

} // namespace permuq::core

#endif // PERMUQ_CORE_COMPILER_H
