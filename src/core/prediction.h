/**
 * @file
 * The ATA pattern-prediction component (paper §6.3): range detection
 * over the remaining problem graph and generation of the region-
 * restricted ATA tail.
 */
#ifndef PERMUQ_CORE_PREDICTION_H
#define PERMUQ_CORE_PREDICTION_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/swap_schedule.h"
#include "circuit/mapping.h"
#include "graph/graph.h"

namespace permuq::core {

/** The disjoint sub-regions the remaining gates live in. */
struct RegionPlan
{
    std::vector<ata::Region> regions;
    /** Size of the largest region (dominates the tail depth). */
    std::int32_t max_positions = 0;
    /** Sum of region sizes. */
    std::int64_t total_positions = 0;
};

/**
 * Range detector: connected components of the un-executed subgraph of
 * @p problem, mapped through @p mapping into bounding regions of
 * @p device; overlapping regions are merged to a fixpoint.
 * @param done per-edge executed flags (size = problem.num_edges()).
 */
RegionPlan detect_regions(const arch::CouplingGraph& device,
                          const graph::Graph& problem,
                          const std::vector<bool>& done,
                          const circuit::Mapping& mapping);

/**
 * Pattern generator: the concatenation of each region's clique
 * schedule. Regions are position-disjoint, so replay parallelizes
 * them automatically.
 */
ata::SwapSchedule tail_schedule(const arch::CouplingGraph& device,
                                const RegionPlan& plan);

/**
 * Closed-form prediction of the tail's depth from the region sizes
 * (the per-architecture linear-depth constants measured from the full
 * patterns). Used only to *rank* snapshot candidates; the selector
 * compares fully materialized circuits.
 */
double estimate_tail_depth(const arch::CouplingGraph& device,
                           const RegionPlan& plan);

/** Closed-form prediction of the tail's CX count. */
double estimate_tail_cx(const arch::CouplingGraph& device,
                        const RegionPlan& plan,
                        std::int64_t remaining_edges);

} // namespace permuq::core

#endif // PERMUQ_CORE_PREDICTION_H
