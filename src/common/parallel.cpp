#include "parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/telemetry/telemetry.h"
#include "common/timer.h"

namespace permuq::common {

namespace {

/** Set while a thread executes pool chunks; nested run() calls from
 *  such a thread must execute inline rather than re-enter the pool. */
thread_local bool tls_in_pool_chunk = false;

int
default_num_threads()
{
    if (const char* env = std::getenv("PERMUQ_THREADS")) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::int64_t
steady_now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

struct ThreadPool::Impl
{
    std::mutex mutex;
    std::condition_variable job_cv;  ///< wakes workers on a new job
    std::condition_variable done_cv; ///< wakes the caller on completion

    // Job state; written by run() and read by workers under the mutex.
    // Workers snapshot (job_fn, job_chunks) while locked, then claim
    // chunk indices from the lock-free counter.
    std::uint64_t job_generation = 0;
    const std::function<void(std::int64_t)>* job_fn = nullptr;
    std::int64_t job_chunks = 0;
    std::atomic<std::int64_t> next_chunk{0};
    std::int64_t chunks_done = 0;
    /** Workers currently attached to the job. run() returns only once
     *  this drops to zero, so no woken worker can outlive the job it
     *  snapshotted and claim chunks of a later job's counter. */
    int active_workers = 0;
    std::exception_ptr first_error;
    /** Submission timestamp of the current job (telemetry only). */
    std::atomic<std::int64_t> job_submit_ns{0};

    bool stopping = false;
    std::vector<std::thread> workers;
};

ThreadPool::ThreadPool() : impl_(new Impl)
{
    num_threads_ = std::max(1, default_num_threads());
    spawn_workers(num_threads_ - 1);
}

ThreadPool::~ThreadPool()
{
    join_workers();
    delete impl_;
}

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::spawn_workers(int count)
{
    impl_->workers.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        impl_->workers.emplace_back([this] { worker_loop(); });
}

void
ThreadPool::join_workers()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->job_cv.notify_all();
    for (auto& w : impl_->workers)
        w.join();
    impl_->workers.clear();
    impl_->stopping = false;
}

void
ThreadPool::set_num_threads(int n)
{
    n = std::max(1, n);
    if (n == num_threads_)
        return;
    join_workers();
    num_threads_ = n;
    spawn_workers(n - 1);
}

void
ThreadPool::worker_loop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::int64_t)>* fn = nullptr;
        std::int64_t chunks = 0;
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->job_cv.wait(lock, [&] {
                return impl_->stopping ||
                       impl_->job_generation != seen_generation;
            });
            if (impl_->stopping)
                return;
            seen_generation = impl_->job_generation;
            fn = impl_->job_fn;
            chunks = impl_->job_chunks;
            // A worker that wakes after the caller already drained the
            // job sees job_fn == nullptr and goes back to sleep.
            if (fn != nullptr)
                ++impl_->active_workers;
        }
        if (fn != nullptr) {
            work_on_current_job(*fn, chunks);
            std::lock_guard<std::mutex> lock(impl_->mutex);
            if (--impl_->active_workers == 0)
                impl_->done_cv.notify_all();
        }
    }
}

void
ThreadPool::work_on_current_job(
    const std::function<void(std::int64_t)>& fn, std::int64_t chunks)
{
    tls_in_pool_chunk = true;
    // One enabled() read per job, not per chunk; recording costs a
    // clock read + two lock-free histogram updates per chunk when on.
    const bool record = telemetry::enabled();
    if (record) {
        static telemetry::Histogram& queue_wait = telemetry::histogram(
            "permuq.common.pool.queue_wait_us");
        const std::int64_t submit =
            impl_->job_submit_ns.load(std::memory_order_relaxed);
        queue_wait.record(
            static_cast<double>(steady_now_ns() - submit) / 1e3);
    }
    std::int64_t completed = 0;
    std::exception_ptr error;
    for (;;) {
        std::int64_t c = impl_->next_chunk.fetch_add(1);
        if (c >= chunks)
            break;
        if (record) {
            static telemetry::Histogram& exec = telemetry::histogram(
                "permuq.common.pool.chunk_exec_us");
            Timer t;
            try {
                fn(c);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
            exec.record(static_cast<double>(t.elapsed_ns()) / 1e3);
            ++completed;
            continue;
        }
        try {
            fn(c);
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
        ++completed;
    }
    tls_in_pool_chunk = false;
    if (completed > 0 || error) {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->chunks_done += completed;
        if (error && !impl_->first_error)
            impl_->first_error = error;
        if (impl_->chunks_done == impl_->job_chunks)
            impl_->done_cv.notify_all();
    }
}

void
ThreadPool::run(std::int64_t num_chunks,
                const std::function<void(std::int64_t)>& fn)
{
    if (num_chunks <= 0)
        return;
    // Serial paths: tiny jobs, a 1-thread pool, or a nested call from
    // inside a worker chunk (re-entering the pool would deadlock).
    if (num_chunks == 1 || num_threads_ == 1 || tls_in_pool_chunk) {
        bool nested = tls_in_pool_chunk;
        tls_in_pool_chunk = true;
        try {
            for (std::int64_t c = 0; c < num_chunks; ++c)
                fn(c);
        } catch (...) {
            tls_in_pool_chunk = nested;
            throw;
        }
        tls_in_pool_chunk = nested;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job_fn = &fn;
        impl_->job_chunks = num_chunks;
        impl_->next_chunk.store(0);
        impl_->chunks_done = 0;
        impl_->first_error = nullptr;
        ++impl_->job_generation;
        if (telemetry::enabled()) {
            impl_->job_submit_ns.store(steady_now_ns(),
                                       std::memory_order_relaxed);
            telemetry::counter("permuq.common.pool.jobs").add();
        }
    }
    impl_->job_cv.notify_all();

    // The caller works too, then blocks until stragglers finish.
    work_on_current_job(fn, num_chunks);
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] {
            return impl_->chunks_done == impl_->job_chunks &&
                   impl_->active_workers == 0;
        });
        impl_->job_fn = nullptr;
        error = impl_->first_error;
        impl_->first_error = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

struct TaskQueue::Impl
{
    mutable std::mutex mutex;
    std::condition_variable task_cv; ///< wakes workers on a new task
    std::condition_variable idle_cv; ///< wakes stop() when drained
    std::deque<std::function<void()>> tasks;
    std::size_t running = 0;
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
    bool stopping = false;
    std::vector<std::thread> workers;
};

TaskQueue::TaskQueue(int workers, std::size_t max_pending)
    : impl_(new Impl),
      num_workers_(std::max(1, workers)),
      max_pending_(max_pending)
{
    impl_->workers.reserve(static_cast<std::size_t>(num_workers_));
    for (int i = 0; i < num_workers_; ++i)
        impl_->workers.emplace_back([this] {
            for (;;) {
                std::function<void()> task;
                {
                    std::unique_lock<std::mutex> lock(impl_->mutex);
                    impl_->task_cv.wait(lock, [&] {
                        return impl_->stopping || !impl_->tasks.empty();
                    });
                    if (impl_->tasks.empty()) // stopping and drained
                        return;
                    task = std::move(impl_->tasks.front());
                    impl_->tasks.pop_front();
                    ++impl_->running;
                }
                // Pin the nested-parallelism flag: anything the task
                // forks (parallel_for, parallel_reduce_sum) executes
                // inline, so concurrent tasks never race on the
                // fork-join pool's single job slot (see parallel.h).
                tls_in_pool_chunk = true;
                try {
                    task();
                } catch (...) {
                    // Tasks own their error reporting; a throw here
                    // must not take the worker down.
                }
                tls_in_pool_chunk = false;
                {
                    std::lock_guard<std::mutex> lock(impl_->mutex);
                    --impl_->running;
                    if (impl_->tasks.empty() && impl_->running == 0)
                        impl_->idle_cv.notify_all();
                }
            }
        });
}

TaskQueue::~TaskQueue()
{
    stop();
    delete impl_;
}

bool
TaskQueue::try_submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping || impl_->tasks.size() >= max_pending_) {
            ++impl_->rejected;
            return false;
        }
        impl_->tasks.push_back(std::move(task));
        ++impl_->accepted;
    }
    impl_->task_cv.notify_one();
    return true;
}

std::size_t
TaskQueue::pending() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->tasks.size();
}

std::size_t
TaskQueue::in_flight() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

std::int64_t
TaskQueue::accepted() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->accepted;
}

std::int64_t
TaskQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->rejected;
}

void
TaskQueue::stop()
{
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        if (impl_->stopping && impl_->workers.empty())
            return;
        impl_->stopping = true;
        impl_->idle_cv.wait(lock, [&] {
            return impl_->tasks.empty() && impl_->running == 0;
        });
    }
    impl_->task_cv.notify_all();
    for (auto& w : impl_->workers)
        w.join();
    impl_->workers.clear();
}

int
num_threads()
{
    return ThreadPool::instance().num_threads();
}

void
set_num_threads(int n)
{
    ThreadPool::instance().set_num_threads(n);
}

std::size_t
reduction_slices(std::size_t total, std::size_t min_grain)
{
    if (min_grain == 0)
        min_grain = 1;
    if (total <= min_grain)
        return 1;
    return std::min<std::size_t>(64, total / min_grain);
}

void
parallel_for(std::size_t begin, std::size_t end, std::size_t min_grain,
             const std::function<void(std::size_t, std::size_t)>& fn)
{
    const std::size_t total = end > begin ? end - begin : 0;
    if (total == 0)
        return;
    if (min_grain == 0)
        min_grain = 1;
    ThreadPool& pool = ThreadPool::instance();
    const std::size_t threads = static_cast<std::size_t>(pool.num_threads());
    if (threads == 1 || total < 2 * min_grain) {
        fn(begin, end);
        return;
    }
    // Contiguous chunks; a few per thread so a slow chunk can be
    // absorbed by idle threads without dynamic splitting.
    std::size_t chunks = std::min(threads * 4, total / min_grain);
    chunks = std::max<std::size_t>(1, chunks);
    pool.run(static_cast<std::int64_t>(chunks), [&](std::int64_t c) {
        const std::size_t b =
            begin + total * static_cast<std::size_t>(c) / chunks;
        const std::size_t e =
            begin + total * (static_cast<std::size_t>(c) + 1) / chunks;
        if (b < e)
            fn(b, e);
    });
}

void
parallel_tasks(std::int64_t num_tasks,
               const std::function<void(std::int64_t)>& fn)
{
    ThreadPool::instance().run(num_tasks, fn);
}

} // namespace permuq::common
