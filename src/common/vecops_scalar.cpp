/**
 * @file
 * Portable scalar tier of the integer vector kernels. This is the
 * reference semantics: the AVX2 tier must match it byte for byte.
 */
#include "common/vecops.h"

#include <climits>

namespace permuq::common::vecops {

namespace {

std::uint64_t
sum_u16_scalar(const std::uint16_t* v, std::size_t n,
               std::uint16_t sentinel, std::int64_t* sentinel_count)
{
    std::uint64_t sum = 0;
    std::int64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += v[i];
        hits += v[i] == sentinel;
    }
    if (sentinel_count != nullptr)
        *sentinel_count = hits;
    return sum;
}

void
add_u16_to_i32_scalar(std::int32_t* acc, const std::uint16_t* v,
                      std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += static_cast<std::int32_t>(v[i]);
}

std::int64_t
argmin_masked_i32_scalar(const std::int32_t* v, const std::uint8_t* skip,
                         std::size_t n)
{
    std::int64_t best = -1;
    std::int32_t best_value = INT_MAX;
    for (std::size_t i = 0; i < n; ++i) {
        if (skip[i] != 0)
            continue;
        if (best < 0 || v[i] < best_value) {
            best = static_cast<std::int64_t>(i);
            best_value = v[i];
        }
    }
    return best;
}

} // namespace

const Table&
scalar_table()
{
    static const Table table{
        sum_u16_scalar,
        add_u16_to_i32_scalar,
        argmin_masked_i32_scalar,
    };
    return table;
}

} // namespace permuq::common::vecops
