/**
 * @file
 * Error-reporting helpers, following the gem5 fatal()/panic() split:
 * fatal errors are the user's fault (bad configuration or arguments),
 * panics are internal invariant violations.
 */
#ifndef PERMUQ_COMMON_ERROR_H
#define PERMUQ_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace permuq {

/** Thrown for user-caused errors: invalid sizes, malformed inputs. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error("fatal: " + msg)
    {
    }
};

/** Thrown when an internal invariant is violated (a PermuQ bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error("panic: " + msg)
    {
    }
};

/** Throw FatalError unless @p cond holds. */
inline void
fatal_unless(bool cond, const std::string& msg)
{
    if (!cond)
        throw FatalError(msg);
}

/**
 * Literal-message overload: defers the std::string construction to the
 * failure path, so hot-loop assertions cost one branch, not a heap
 * allocation per call.
 */
inline void
fatal_unless(bool cond, const char* msg)
{
    if (!cond)
        throw FatalError(msg);
}

/** Throw PanicError unless @p cond holds. */
inline void
panic_unless(bool cond, const std::string& msg)
{
    if (!cond)
        throw PanicError(msg);
}

/** Literal-message overload; see fatal_unless(bool, const char*). */
inline void
panic_unless(bool cond, const char* msg)
{
    if (!cond)
        throw PanicError(msg);
}

} // namespace permuq

#endif // PERMUQ_COMMON_ERROR_H
