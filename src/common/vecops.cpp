/**
 * @file
 * Runtime tier selection for the integer vector kernels (see
 * common/vecops.h). Detection uses the compiler's CPU-feature builtin
 * on x86; every request is clamped to what both the build and the
 * running CPU support, so the AVX2 tier can never be dispatched on a
 * machine that would fault on it. PERMUQ_SIMD is shared with the
 * statevector kernels so one knob controls all SIMD in the process.
 */
#include "common/vecops.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace permuq::common::vecops {

namespace {

bool
cpu_has_avx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/** Clamp a requested tier to what this binary + CPU can run. */
VecTier
clamp_tier(VecTier tier)
{
    if (tier == VecTier::Avx2 && (!vec_compiled_in() || !cpu_has_avx2()))
        return VecTier::Scalar;
    return tier;
}

VecTier
initial_tier()
{
    if (const char* env = std::getenv("PERMUQ_SIMD")) {
        if (std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "scalar") == 0)
            return VecTier::Scalar;
        if (std::strcmp(env, "avx2") == 0)
            return clamp_tier(VecTier::Avx2);
        // Unknown values (including "auto") fall through to detection.
    }
    return detected_vec_tier();
}

std::atomic<VecTier>&
tier_slot()
{
    static std::atomic<VecTier> tier{initial_tier()};
    return tier;
}

} // namespace

VecTier
detected_vec_tier()
{
    return clamp_tier(VecTier::Avx2);
}

VecTier
active_vec_tier()
{
    return tier_slot().load(std::memory_order_relaxed);
}

void
set_vec_tier(VecTier tier)
{
    tier_slot().store(clamp_tier(tier), std::memory_order_relaxed);
}

const char*
vec_tier_name(VecTier tier)
{
    return tier == VecTier::Avx2 ? "avx2" : "scalar";
}

const Table&
active()
{
    return active_vec_tier() == VecTier::Avx2 ? avx2_table()
                                              : scalar_table();
}

} // namespace permuq::common::vecops
