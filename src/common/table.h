/**
 * @file
 * Plain-text table printer used by the benchmark harness to emit rows in
 * the same layout as the paper's tables and figure series.
 */
#ifndef PERMUQ_COMMON_TABLE_H
#define PERMUQ_COMMON_TABLE_H

#include <string>
#include <vector>

namespace permuq {

/**
 * Accumulates rows of string cells and renders an aligned ASCII table.
 * Numeric formatting is the caller's job (see cell() helpers).
 */
class Table
{
  public:
    /** @param header column titles, fixing the column count. */
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have exactly as many cells as the header. */
    void add_row(std::vector<std::string> row);

    /** Render the aligned table, one trailing newline included. */
    std::string to_string() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p digits fractional digits. */
    static std::string cell(double value, int digits = 2);

    /** Format an integer cell. */
    static std::string cell(long long value);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace permuq

#endif // PERMUQ_COMMON_TABLE_H
