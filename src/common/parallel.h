/**
 * @file
 * Deterministic shared-memory parallelism for PermuQ's hot loops.
 *
 * Design rules (see DESIGN.md, "Simulator performance architecture"):
 *
 *  1. *Static, deterministic partitioning.* `parallel_for` splits an
 *     index range into contiguous chunks whose boundaries depend only
 *     on the range, never on the number of threads. Element-wise
 *     kernels therefore produce bit-identical results at any thread
 *     count.
 *
 *  2. *Fixed-order reductions.* `parallel_reduce_sum` always computes
 *     the same fixed set of partial sums (slice boundaries are a pure
 *     function of the range) and combines them in slice order on the
 *     calling thread, so floating-point sums are bit-reproducible
 *     regardless of thread count — including the 1-thread case, which
 *     runs the identical sliced algorithm.
 *
 *  3. *Nested calls degrade gracefully.* A `parallel_for` issued from
 *     inside a worker (e.g. a statevector kernel running inside a
 *     parallelized noise trajectory) executes inline on the calling
 *     thread instead of deadlocking on the pool.
 *
 * The pool is a lazily-created process-wide singleton. Its size
 * defaults to std::thread::hardware_concurrency() and can be
 * overridden by the PERMUQ_THREADS environment variable or at runtime
 * via set_num_threads() (tests use this to compare thread counts).
 */
#ifndef PERMUQ_COMMON_PARALLEL_H
#define PERMUQ_COMMON_PARALLEL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace permuq::common {

/**
 * A minimal blocking fork-join pool. Work is expressed as a chunk
 * count plus a chunk function; idle workers grab chunk indices from a
 * shared atomic counter. Which thread runs which chunk is unspecified
 * — determinism must come from the chunk decomposition, which is why
 * callers go through parallel_for / parallel_reduce_sum below.
 */
class ThreadPool
{
  public:
    /** The process-wide pool (created on first use). */
    static ThreadPool& instance();

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Configured thread count, including the caller (>= 1). */
    int num_threads() const { return num_threads_; }

    /**
     * Resize the pool to @p n threads (clamped to >= 1). Must not be
     * called concurrently with run(); intended for tests/benchmarks.
     */
    void set_num_threads(int n);

    /**
     * Execute fn(chunk) for every chunk in [0, num_chunks), blocking
     * until all chunks finish. The calling thread participates. Nested
     * calls (from inside a chunk) run all their chunks inline.
     * Exceptions thrown by @p fn are rethrown on the calling thread
     * (first one wins).
     */
    void run(std::int64_t num_chunks,
             const std::function<void(std::int64_t)>& fn);

  private:
    ThreadPool();

    void spawn_workers(int count);
    void join_workers();
    void worker_loop();
    void work_on_current_job(const std::function<void(std::int64_t)>& fn,
                             std::int64_t chunks);

    struct Impl;
    Impl* impl_;
    int num_threads_ = 1;
};

/**
 * A bounded multi-producer task queue with persistent worker threads —
 * the *async* sibling of the fork-join ThreadPool above, added for the
 * compile service (src/service). Where ThreadPool::run() is a blocking
 * barrier with a single job slot, TaskQueue accepts detached tasks from
 * any thread and executes them on its own workers.
 *
 * Interaction with the fork-join pool: a TaskQueue worker executes
 * every task with the nested-parallelism flag pinned (the same
 * mechanism that makes nested parallel_for calls run inline), so a
 * task that reaches parallel_for / parallel_reduce_sum executes it
 * serially instead of re-entering the single-job-slot ThreadPool from
 * many threads at once. Concurrency therefore comes from running many
 * tasks at once, not from parallelizing inside one task — the right
 * trade for a multi-tenant server, and safe by construction (the
 * fork-join pool's "one run() at a time" invariant is never
 * violated). PermuQ's compiles are thread-count invariant, so inlined
 * inner parallelism cannot change any compiled circuit.
 *
 * Admission control: the queue holds at most @p max_pending tasks that
 * have not yet started; try_submit() returns false instead of blocking
 * when the bound is hit, which is what lets a server turn overload
 * into a typed error instead of unbounded memory growth.
 */
class TaskQueue
{
  public:
    /** @p workers persistent threads (clamped to >= 1); at most
     *  @p max_pending tasks queued and not yet running. */
    TaskQueue(int workers, std::size_t max_pending);

    /** Drains and joins (equivalent to stop()). */
    ~TaskQueue();

    TaskQueue(const TaskQueue&) = delete;
    TaskQueue& operator=(const TaskQueue&) = delete;

    /**
     * Enqueue @p task unless the pending bound is hit or the queue is
     * stopping; false means the task was NOT accepted and will never
     * run. Tasks may be submitted from any thread. Exceptions escaping
     * a task are swallowed (tasks own their error reporting).
     */
    bool try_submit(std::function<void()> task);

    /** Tasks accepted but not yet started. */
    std::size_t pending() const;

    /** Tasks currently executing on a worker. */
    std::size_t in_flight() const;

    /** Total tasks accepted by try_submit() since construction. */
    std::int64_t accepted() const;

    /** Total tasks rejected by the pending bound since construction. */
    std::int64_t rejected() const;

    int num_workers() const { return num_workers_; }
    std::size_t max_pending() const { return max_pending_; }

    /**
     * Stop accepting new tasks, run every already-accepted task to
     * completion, and join the workers. Idempotent; must not be
     * called from inside a task.
     */
    void stop();

  private:
    struct Impl;
    Impl* impl_;
    int num_workers_ = 1;
    std::size_t max_pending_ = 0;
};

/** Thread count of the global pool. */
int num_threads();

/** Resize the global pool (tests/benchmarks; clamped to >= 1). */
void set_num_threads(int n);

/**
 * Number of reduction slices for a range of @p total elements with
 * minimum slice size @p min_grain. A pure function of its arguments
 * (never of the thread count) so that sliced reductions are
 * bit-reproducible at any parallelism level.
 */
std::size_t reduction_slices(std::size_t total, std::size_t min_grain);

/**
 * Invoke fn(chunk_begin, chunk_end) over a partition of [begin, end)
 * into contiguous chunks. Runs serially when the range is smaller than
 * 2 * min_grain or the pool has one thread. Chunk boundaries are a
 * function of the range and thread count; element-wise kernels are
 * thread-count-invariant regardless, since each element's computation
 * is independent of its chunk.
 */
void parallel_for(std::size_t begin, std::size_t end,
                  std::size_t min_grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/**
 * Run fn(task) for every task in [0, num_tasks), one task per chunk
 * (for coarse-grained jobs such as noise trajectories).
 */
void parallel_tasks(std::int64_t num_tasks,
                    const std::function<void(std::int64_t)>& fn);

/**
 * Deterministic parallel sum: partition [begin, end) into
 * reduction_slices(end - begin, min_grain) fixed slices, compute
 * map_range(slice_begin, slice_end) -> T for each (in parallel), and
 * accumulate the partials in slice order. Bit-reproducible for any
 * thread count, including 1.
 */
template <typename T, typename MapRange>
T
parallel_reduce_sum(std::size_t begin, std::size_t end,
                    std::size_t min_grain, MapRange&& map_range)
{
    const std::size_t total = end - begin;
    if (total == 0)
        return T{};
    const std::size_t slices = reduction_slices(total, min_grain);
    if (slices == 1)
        return map_range(begin, end);
    std::vector<T> partial(slices, T{});
    ThreadPool::instance().run(
        static_cast<std::int64_t>(slices), [&](std::int64_t s) {
            const std::size_t b =
                begin + total * static_cast<std::size_t>(s) / slices;
            const std::size_t e =
                begin + total * (static_cast<std::size_t>(s) + 1) / slices;
            partial[static_cast<std::size_t>(s)] = map_range(b, e);
        });
    T sum{};
    for (const T& p : partial)
        sum += p;
    return sum;
}

} // namespace permuq::common

#endif // PERMUQ_COMMON_PARALLEL_H
