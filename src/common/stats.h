/**
 * @file
 * Small descriptive-statistics helpers used when averaging benchmark
 * results over random seeds (the paper averages 10 instances per point).
 */
#ifndef PERMUQ_COMMON_STATS_H
#define PERMUQ_COMMON_STATS_H

#include <cmath>
#include <vector>

#include "error.h"

namespace permuq {

/** Arithmetic mean of @p xs; fatal on empty input. */
inline double
mean(const std::vector<double>& xs)
{
    fatal_unless(!xs.empty(), "mean of empty sample");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
inline double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/** Geometric mean; all samples must be positive. */
inline double
geomean(const std::vector<double>& xs)
{
    fatal_unless(!xs.empty(), "geomean of empty sample");
    double s = 0.0;
    for (double x : xs) {
        fatal_unless(x > 0.0, "geomean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

} // namespace permuq

#endif // PERMUQ_COMMON_STATS_H
