/**
 * @file
 * Small descriptive-statistics helpers used when averaging benchmark
 * results over random seeds (the paper averages 10 instances per point).
 */
#ifndef PERMUQ_COMMON_STATS_H
#define PERMUQ_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "error.h"

namespace permuq {

/** Arithmetic mean of @p xs; fatal on empty input. */
inline double
mean(const std::vector<double>& xs)
{
    fatal_unless(!xs.empty(), "mean of empty sample");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
inline double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/**
 * The @p p-th percentile of @p xs (p in [0, 100]) with linear
 * interpolation between closest ranks; fatal on empty input. For
 * n = 1 every percentile is the single sample.
 */
inline double
percentile(const std::vector<double>& xs, double p)
{
    fatal_unless(!xs.empty(), "percentile of empty sample");
    fatal_unless(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/** Median (the 50th percentile); fatal on empty input. */
inline double
median(const std::vector<double>& xs)
{
    return percentile(xs, 50.0);
}

/** Geometric mean; all samples must be positive. */
inline double
geomean(const std::vector<double>& xs)
{
    fatal_unless(!xs.empty(), "geomean of empty sample");
    double s = 0.0;
    for (double x : xs) {
        fatal_unless(x > 0.0, "geomean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

} // namespace permuq

#endif // PERMUQ_COMMON_STATS_H
