/**
 * @file
 * Wall-clock stopwatch used to report compilation times (paper Fig 26,
 * Table 4).
 */
#ifndef PERMUQ_COMMON_TIMER_H
#define PERMUQ_COMMON_TIMER_H

#include <chrono>

namespace permuq {

/** Simple monotonic stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    elapsed_seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds since construction or the last reset(). */
    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace permuq

#endif // PERMUQ_COMMON_TIMER_H
