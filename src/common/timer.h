/**
 * @file
 * Wall-clock stopwatch used to report compilation times (paper Fig 26,
 * Table 4).
 */
#ifndef PERMUQ_COMMON_TIMER_H
#define PERMUQ_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace permuq {

/** Simple monotonic stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    elapsed_seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds since construction or the last reset(). */
    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

    /** Elapsed whole nanoseconds since construction or the last
     *  reset(). Integer-exact, used by telemetry spans. */
    std::int64_t
    elapsed_ns() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace permuq

#endif // PERMUQ_COMMON_TIMER_H
