#include "rng.h"

#include <cmath>

#include "error.h"

namespace permuq {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto& word : s_)
        word = sm.next();
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void
Xoshiro256::jump()
{
    static constexpr std::uint64_t kJump[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (std::uint64_t(1) << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
    // A jumped stream is a fresh stream; drop any cached gaussian.
    has_spare_ = false;
}

std::uint64_t
Xoshiro256::next_below(std::uint64_t bound)
{
    panic_unless(bound > 0, "next_below requires a positive bound");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

double
Xoshiro256::next_double()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::int64_t
Xoshiro256::next_int(std::int64_t lo, std::int64_t hi)
{
    panic_unless(lo <= hi, "next_int requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

double
Xoshiro256::next_gaussian()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * next_double() - 1.0;
        v = 2.0 * next_double() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
}

} // namespace permuq
