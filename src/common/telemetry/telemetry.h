/**
 * @file
 * PermuQ's observability layer: a process-wide metrics registry
 * (counters, gauges, fixed-bucket histograms) plus RAII trace spans
 * exported as Chrome trace-event JSON (loadable in Perfetto or
 * chrome://tracing).
 *
 * Design contract (the compiler's golden-hash determinism depends on
 * the first point):
 *
 *  1. *Zero overhead when off.* Every recording site performs exactly
 *     one relaxed atomic load (`enabled()`) and a predictable branch
 *     when telemetry is disabled — no allocation, no locks, no clock
 *     reads. Telemetry never feeds back into compilation decisions,
 *     so enabling it cannot change any compiled circuit.
 *
 *  2. *Lock-free hot paths when on.* Counter/gauge/histogram updates
 *     are relaxed atomic operations; span completion writes into a
 *     per-thread ring buffer (single writer, no lock). The only
 *     mutex in the subsystem guards name registration and thread-
 *     buffer bookkeeping — one-time costs per site/thread.
 *
 *  3. *Bounded memory.* Histograms keep 64 power-of-two buckets plus
 *     a 256-sample reservoir; each thread keeps at most 32768 span
 *     events (oldest dropped first). Long runs cannot grow without
 *     bound.
 *
 * Metric names follow `permuq.<module>.<name>` (see README
 * "Observability"). Span names are short phase labels ("compile",
 * "greedy.round", "astar.solve") — they become the Perfetto slice
 * titles.
 *
 * Exports (`write_trace` / `write_metrics`) snapshot whatever has
 * been published; call them from quiescent points (after parallel
 * sections complete) for exact data.
 */
#ifndef PERMUQ_COMMON_TELEMETRY_TELEMETRY_H
#define PERMUQ_COMMON_TELEMETRY_TELEMETRY_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/log/log.h"
#include "common/timer.h"

namespace permuq::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;

/** Lock-free add for pre-C++20-hardware atomics: CAS loop. */
inline void
atomic_add(std::atomic<double>& target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}
} // namespace detail

/** Global on/off switch; one relaxed load per recording site. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/**
 * Honor the PERMUQ_TRACE environment variable: when set (to a trace
 * output path), telemetry is enabled. Called once from the Registry
 * constructor, so any first metric/span touch picks it up; surfaces
 * that write the trace (permuqc, bench_util) query env_trace_path().
 */
const char* env_trace_path();

// ---------------------------------------------------------------- log
//
// Historical entry points, now thin forwarders onto the structured
// logger in common/log/log.h (which owns the level gate, the sinks,
// and the async writer). New code should call permuq::logging
// directly with a component name; these remain for existing sites.

using LogLevel = logging::Level;

void set_log_level(LogLevel level);
LogLevel log_level();

/** Parse "debug|info|warn|error|off" (case-sensitive). */
bool parse_log_level(const std::string& name, LogLevel& out);

/** Emit via the structured logger (component "permuq") when
 *  @p level >= the configured threshold. */
void log(LogLevel level, const std::string& message);

// ------------------------------------------------------------ metrics

/** Monotonically increasing named value (relaxed atomic). */
class Counter
{
  public:
    void
    add(std::int64_t n = 1)
    {
        if (enabled())
            v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

  private:
    friend class Registry;
    std::atomic<std::int64_t> v_{0};
};

/** Last-write-wins named value. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (enabled())
            v_.store(v, std::memory_order_relaxed);
    }

    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

  private:
    friend class Registry;
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket histogram: bucket 0 holds values < 1, bucket i >= 1
 * holds [2^(i-1), 2^i). Also keeps a 256-slot sample reservoir (the
 * most recent samples, lock-free ring) from which snapshots compute
 * exact p50/p95 via stats::percentile.
 */
class Histogram
{
  public:
    static constexpr std::size_t kNumBuckets = 64;
    static constexpr std::size_t kSampleCap = 256;

    void
    record(double v)
    {
        if (!enabled())
            return;
        buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
        detail::atomic_add(sum_, v);
        std::uint64_t idx = count_.fetch_add(1, std::memory_order_relaxed);
        samples_[idx % kSampleCap].store(v, std::memory_order_relaxed);
    }

    std::int64_t
    count() const
    {
        return static_cast<std::int64_t>(
            count_.load(std::memory_order_relaxed));
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Bucket index of @p v (pure; exposed for tests). */
    static std::size_t
    bucket_of(double v)
    {
        if (!(v >= 1.0)) // negatives and NaN land in bucket 0 too
            return 0;
        const double clamped = v < 9.2e18 ? v : 9.2e18;
        return std::min<std::size_t>(
            kNumBuckets - 1,
            static_cast<std::size_t>(
                std::bit_width(static_cast<std::uint64_t>(clamped))));
    }

    /** Inclusive upper bound of bucket @p i. */
    static double
    bucket_bound(std::size_t i)
    {
        return i == 0 ? 1.0
                      : static_cast<double>(std::uint64_t(1) << i);
    }

    Histogram() = default;
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

  private:
    friend class Registry;
    std::array<std::atomic<std::int64_t>, kNumBuckets> buckets_{};
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> count_{0};
    std::array<std::atomic<double>, kSampleCap> samples_{};
};

// -------------------------------------------------------------- spans

/** A completed trace span (one Chrome "X" complete event). */
struct SpanEvent
{
    const char* name = nullptr; ///< must point at static storage
    std::uint64_t start_ns = 0; ///< since the process trace epoch
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;   ///< telemetry thread id (1-based)
    std::uint16_t depth = 0; ///< nesting level on its thread
    std::uint8_t num_args = 0;
    std::array<const char*, 6> arg_keys{};
    std::array<std::int64_t, 6> arg_values{};
    /** Non-null entry: the arg is the pointed-at string (static
     *  storage), not arg_values[i]. */
    std::array<const char*, 6> arg_strs{};
};

/**
 * RAII scoped span. Construction samples the clock and nesting depth
 * (only when telemetry is enabled — otherwise the constructor is a
 * single relaxed load); destruction records a SpanEvent into the
 * calling thread's ring buffer. Timing rides on common/timer.h's
 * Timer, the same stopwatch every reported compile time uses.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char* name)
    {
        if (enabled())
            begin(name);
    }

    ~ScopedSpan()
    {
        if (live_)
            end();
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Attach up to six integer args (shown in the trace viewer).
     *  @p key must point at static storage. No-op when disabled.
     *  Args past the cap are dropped silently — order the calls
     *  most-important-first (the sweep span leads with tier). */
    void
    arg(const char* key, std::int64_t value)
    {
        if (!live_ || ev_.num_args >= ev_.arg_keys.size())
            return;
        ev_.arg_keys[ev_.num_args] = key;
        ev_.arg_values[ev_.num_args] = value;
        ++ev_.num_args;
    }

    /** String-valued variant (e.g. the compile tier label). Both
     *  @p key and @p value must point at static storage. */
    void
    arg(const char* key, const char* value)
    {
        if (!live_ || ev_.num_args >= ev_.arg_keys.size())
            return;
        ev_.arg_keys[ev_.num_args] = key;
        ev_.arg_strs[ev_.num_args] = value;
        ++ev_.num_args;
    }

    bool live() const { return live_; }

  private:
    void begin(const char* name);
    void end();

    bool live_ = false;
    Timer timer_;
    SpanEvent ev_{};
};

// ----------------------------------------------------------- registry

/** Snapshot of one histogram, with percentile columns computed from
 *  the sample reservoir via stats::percentile. */
struct HistogramSnapshot
{
    std::string name;
    std::int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    /** (inclusive upper bound, count) of every nonzero bucket. */
    std::vector<std::pair<double, std::int64_t>> buckets;
};

/** Per-name aggregate over all recorded spans of that name. */
struct SpanStats
{
    std::string name;
    std::int64_t count = 0;
    double total_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
};

struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
    std::vector<SpanStats> spans;
};

/**
 * Process-wide metric registry. Lookup by name is mutex-protected and
 * intended to happen once per site (bind the returned reference to a
 * function-local static); the returned references stay valid for the
 * process lifetime.
 */
class Registry
{
  public:
    static Registry& instance();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** All metrics + per-name span aggregates, names sorted. */
    MetricsSnapshot snapshot() const;

    /** Every buffered span event, sorted by (tid, start, -dur). */
    std::vector<SpanEvent> span_events() const;

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    std::string trace_json() const;

    /** Metrics snapshot as JSON. */
    std::string metrics_json() const;

    /**
     * Prometheus text exposition (version 0.0.4) of the snapshot.
     * Metric names are sanitized to [a-z0-9_] and prefixed with
     * `permuq_`; histograms emit cumulative `_bucket{le=...}` series
     * plus `_sum`/`_count`, span aggregates become summaries with
     * p50/p95 quantile rows. Labels registered via set_export_label
     * (e.g. tier/topology/shard) are attached to every series —
     * exactly the payload a future permuqd scrape endpoint serves.
     */
    std::string prometheus_text() const;

    /**
     * Attach a constant label to every exported Prometheus series;
     * re-setting a key overwrites it. Keys/values are sanitized on
     * write-out.
     */
    void set_export_label(const std::string& key,
                          const std::string& value);

    /** Write trace_json()/metrics_json()/prometheus_text() to
     *  @p path; false on I/O failure. */
    bool write_trace(const std::string& path) const;
    bool write_metrics(const std::string& path) const;
    bool write_prometheus(const std::string& path) const;

    /** Zero every metric and drop all buffered spans (tests; call at
     *  a quiescent point). Registered names stay registered. */
    void reset();

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    struct Impl; ///< defined in telemetry.cpp

  private:
    Registry();
    ~Registry();

    Impl* impl_;
};

/** Shorthands for Registry::instance().counter(name) etc. */
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

} // namespace permuq::telemetry

#endif // PERMUQ_COMMON_TELEMETRY_TELEMETRY_H
