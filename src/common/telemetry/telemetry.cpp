/**
 * @file
 * Registry, span-buffer, and JSON-export implementation for the
 * telemetry layer declared in telemetry.h.
 */
#include "common/telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/log/flight_recorder.h"
#include "common/stats.h"

namespace permuq::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/**
 * Per-thread span ring buffer. Single writer (the owning thread);
 * readers (snapshot/export) synchronize on the release-store of
 * count_, so every export sees fully written events. Held by
 * shared_ptr from the registry so buffers outlive their threads.
 */
struct ThreadBuffer
{
    static constexpr std::size_t kCapacity = std::size_t(1) << 15;

    explicit ThreadBuffer(std::uint32_t tid) : tid(tid)
    {
        events.resize(kCapacity);
    }

    void
    push(const SpanEvent& ev)
    {
        const std::uint64_t n = count_.load(std::memory_order_relaxed);
        events[n % kCapacity] = ev;
        count_.store(n + 1, std::memory_order_release);
    }

    /** All retained events, oldest first (acquire pairs with push). */
    std::vector<SpanEvent>
    drainable() const
    {
        const std::uint64_t n = count_.load(std::memory_order_acquire);
        const std::uint64_t kept = std::min<std::uint64_t>(n, kCapacity);
        std::vector<SpanEvent> out;
        out.reserve(static_cast<std::size_t>(kept));
        for (std::uint64_t i = n - kept; i < n; ++i)
            out.push_back(events[i % kCapacity]);
        return out;
    }

    void clear() { count_.store(0, std::memory_order_release); }

    const std::uint32_t tid;
    std::uint16_t depth = 0; ///< only touched by the owning thread
    std::vector<SpanEvent> events;

  private:
    std::atomic<std::uint64_t> count_{0};
};

/** Shared stopwatch all spans measure against, started on first use. */
Timer&
trace_epoch()
{
    static Timer epoch;
    return epoch;
}

void
json_escape_into(std::ostringstream& os, const std::string& s)
{
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

std::string
format_double(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

void
set_enabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
    if (on)
        trace_epoch(); // pin the epoch before any span starts
}

const char*
env_trace_path()
{
    const char* p = std::getenv("PERMUQ_TRACE");
    return (p != nullptr && p[0] != '\0') ? p : nullptr;
}

void
set_log_level(LogLevel level)
{
    logging::set_level(level);
}

LogLevel
log_level()
{
    return logging::level();
}

bool
parse_log_level(const std::string& name, LogLevel& out)
{
    return logging::parse_level(name, out);
}

void
log(LogLevel level, const std::string& message)
{
    if (level != LogLevel::Off && logging::enabled(level))
        logging::write(level, "permuq", message);
}

// ----------------------------------------------------------- registry

struct Registry::Impl
{
    mutable std::mutex mu;
    std::unordered_map<std::string, std::size_t> counter_ix;
    std::unordered_map<std::string, std::size_t> gauge_ix;
    std::unordered_map<std::string, std::size_t> histogram_ix;
    // Deques keep references stable across registration.
    std::deque<std::pair<std::string, Counter>> counters;
    std::deque<std::pair<std::string, Gauge>> gauges;
    std::deque<std::pair<std::string, Histogram>> histograms;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint32_t next_tid = 1;
    /** Constant labels stamped on every Prometheus series (sorted so
     *  exposition order is deterministic). */
    std::map<std::string, std::string> labels;
};

namespace {

/** The calling thread's span buffer, registered on first use. */
ThreadBuffer&
local_buffer(Registry::Impl& impl)
{
    thread_local std::shared_ptr<ThreadBuffer> buf;
    if (!buf) {
        std::lock_guard<std::mutex> lock(impl.mu);
        buf = std::make_shared<ThreadBuffer>(impl.next_tid++);
        impl.buffers.push_back(buf);
    }
    return *buf;
}

Registry::Impl&
registry_impl()
{
    // Leak the registry (never destroyed) so spans recorded during
    // static destruction of other objects stay safe.
    static Registry::Impl* impl = new Registry::Impl();
    return *impl;
}

} // namespace

Registry::Registry() : impl_(&registry_impl())
{
    if (env_trace_path() != nullptr)
        set_enabled(true);
}

Registry::~Registry() = default;

Registry&
Registry::instance()
{
    static Registry reg;
    return reg;
}

namespace {
// Construct the registry (and honor PERMUQ_TRACE) at program load, so
// spans recorded before any explicit telemetry call are not lost when
// the env var is the only switch.
const bool g_env_init = (Registry::instance(), true);
} // namespace

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->counter_ix.find(name);
    if (it == impl_->counter_ix.end()) {
        it = impl_->counter_ix.emplace(name, impl_->counters.size()).first;
        impl_->counters.emplace_back();
        impl_->counters.back().first = name;
    }
    return impl_->counters[it->second].second;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->gauge_ix.find(name);
    if (it == impl_->gauge_ix.end()) {
        it = impl_->gauge_ix.emplace(name, impl_->gauges.size()).first;
        impl_->gauges.emplace_back();
        impl_->gauges.back().first = name;
    }
    return impl_->gauges[it->second].second;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->histogram_ix.find(name);
    if (it == impl_->histogram_ix.end()) {
        it = impl_->histogram_ix.emplace(name, impl_->histograms.size())
                 .first;
        impl_->histograms.emplace_back();
        impl_->histograms.back().first = name;
    }
    return impl_->histograms[it->second].second;
}

std::vector<SpanEvent>
Registry::span_events() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        buffers = impl_->buffers;
    }
    std::vector<SpanEvent> out;
    for (const auto& buf : buffers) {
        auto evs = buf->drainable();
        out.insert(out.end(), evs.begin(), evs.end());
    }
    // Sort by (tid, start, longer-first) so parents precede children
    // at identical timestamps and ts is monotonic per tid.
    std::sort(out.begin(), out.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.start_ns != b.start_ns)
                      return a.start_ns < b.start_ns;
                  return a.dur_ns > b.dur_ns;
              });
    return out;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        for (const auto& [name, c] : impl_->counters)
            snap.counters.emplace_back(name, c.value());
        for (const auto& [name, g] : impl_->gauges)
            snap.gauges.emplace_back(name, g.value());
        for (const auto& [name, h] : impl_->histograms) {
            HistogramSnapshot hs;
            hs.name = name;
            hs.count = h.count();
            hs.sum = h.sum();
            for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
                const std::int64_t n =
                    h.buckets_[i].load(std::memory_order_relaxed);
                if (n > 0)
                    hs.buckets.emplace_back(Histogram::bucket_bound(i), n);
            }
            if (hs.count > 0) {
                const std::size_t kept = std::min<std::size_t>(
                    static_cast<std::size_t>(hs.count),
                    Histogram::kSampleCap);
                std::vector<double> samples;
                samples.reserve(kept);
                for (std::size_t i = 0; i < kept; ++i)
                    samples.push_back(h.samples_[i].load(
                        std::memory_order_relaxed));
                hs.p50 = median(samples);
                hs.p95 = percentile(samples, 95.0);
            }
            snap.histograms.push_back(std::move(hs));
        }
    }
    auto by_name = [](const auto& a, const auto& b) {
        return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
                  return a.name < b.name;
              });

    std::unordered_map<std::string, std::vector<double>> span_ms;
    for (const SpanEvent& ev : span_events())
        span_ms[ev.name].push_back(static_cast<double>(ev.dur_ns) / 1e6);
    for (auto& [name, ms] : span_ms) {
        SpanStats ss;
        ss.name = name;
        ss.count = static_cast<std::int64_t>(ms.size());
        for (double m : ms)
            ss.total_ms += m;
        ss.p50_ms = median(ms);
        ss.p95_ms = percentile(ms, 95.0);
        snap.spans.push_back(std::move(ss));
    }
    std::sort(snap.spans.begin(), snap.spans.end(),
              [](const SpanStats& a, const SpanStats& b) {
                  return a.name < b.name;
              });
    return snap;
}

std::string
Registry::trace_json() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent& ev : span_events()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"";
        json_escape_into(os, ev.name);
        os << "\",\"ph\":\"X\",\"ts\":" << format_double(
                  static_cast<double>(ev.start_ns) / 1e3)
           << ",\"dur\":" << format_double(
                  static_cast<double>(ev.dur_ns) / 1e3)
           << ",\"pid\":1,\"tid\":" << ev.tid;
        if (ev.num_args > 0) {
            os << ",\"args\":{";
            for (std::uint8_t i = 0; i < ev.num_args; ++i) {
                if (i > 0)
                    os << ",";
                os << "\"";
                json_escape_into(os, ev.arg_keys[i]);
                os << "\":";
                if (ev.arg_strs[i] != nullptr) {
                    os << "\"";
                    json_escape_into(os, ev.arg_strs[i]);
                    os << "\"";
                } else {
                    os << ev.arg_values[i];
                }
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return os.str();
}

std::string
Registry::metrics_json() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        os << (first ? "\n" : ",\n") << "    \"";
        json_escape_into(os, name);
        os << "\": " << v;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        os << (first ? "\n" : ",\n") << "    \"";
        json_escape_into(os, name);
        os << "\": " << v;
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const HistogramSnapshot& h : snap.histograms) {
        os << (first ? "\n" : ",\n") << "    \"";
        json_escape_into(os, h.name);
        os << "\": {\"count\": " << h.count
           << ", \"sum\": " << format_double(h.sum)
           << ", \"p50\": " << format_double(h.p50)
           << ", \"p95\": " << format_double(h.p95) << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << "[" << format_double(h.buckets[i].first) << ", "
               << h.buckets[i].second << "]";
        }
        os << "]}";
        first = false;
    }
    os << "\n  },\n  \"spans\": {";
    first = true;
    for (const SpanStats& s : snap.spans) {
        os << (first ? "\n" : ",\n") << "    \"";
        json_escape_into(os, s.name);
        os << "\": {\"count\": " << s.count
           << ", \"total_ms\": " << format_double(s.total_ms)
           << ", \"p50_ms\": " << format_double(s.p50_ms)
           << ", \"p95_ms\": " << format_double(s.p95_ms) << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

// --------------------------------------------------- prometheus text

namespace {

/** Prometheus metric name: [a-zA-Z0-9_:], everything else -> '_',
 *  with the project prefix guaranteed. */
std::string
prom_name(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size() + 7);
    for (char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.rfind("permuq_", 0) != 0)
        out.insert(0, "permuq_");
    return out;
}

/** Prometheus label name: [a-zA-Z0-9_], must not start with a digit. */
std::string
prom_label_key(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

void
prom_label_value_into(std::ostringstream& os, const std::string& v)
{
    for (char c : v) {
        switch (c) {
        case '\\': os << "\\\\"; break;
        case '"': os << "\\\""; break;
        case '\n': os << "\\n"; break;
        default: os << c;
        }
    }
}

/** Render `{base_labels}` or, with @p extra, `{base,extra}`. */
std::string
prom_labels(const std::map<std::string, std::string>& labels,
            const std::string& extra = std::string())
{
    if (labels.empty() && extra.empty())
        return std::string();
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first)
            os << ',';
        first = false;
        os << prom_label_key(k) << "=\"";
        prom_label_value_into(os, v);
        os << '"';
    }
    if (!extra.empty()) {
        if (!first)
            os << ',';
        os << extra;
    }
    os << '}';
    return os.str();
}

} // namespace

void
Registry::set_export_label(const std::string& key,
                           const std::string& value)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->labels[key] = value;
}

std::string
Registry::prometheus_text() const
{
    const MetricsSnapshot snap = snapshot();
    std::map<std::string, std::string> labels;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        labels = impl_->labels;
    }
    const std::string base = prom_labels(labels);
    std::ostringstream os;

    for (const auto& [name, v] : snap.counters) {
        const std::string n = prom_name(name);
        os << "# TYPE " << n << " counter\n"
           << n << base << ' ' << v << '\n';
    }
    for (const auto& [name, v] : snap.gauges) {
        const std::string n = prom_name(name);
        os << "# TYPE " << n << " gauge\n"
           << n << base << ' ' << v << '\n';
    }
    for (const HistogramSnapshot& h : snap.histograms) {
        const std::string n = prom_name(h.name);
        os << "# TYPE " << n << " histogram\n";
        std::int64_t cumulative = 0;
        for (const auto& [bound, count] : h.buckets) {
            cumulative += count;
            os << n << "_bucket"
               << prom_labels(labels, "le=\"" +
                                          format_double(bound) + "\"")
               << ' ' << cumulative << '\n';
        }
        os << n << "_bucket" << prom_labels(labels, "le=\"+Inf\"")
           << ' ' << h.count << '\n';
        os << n << "_sum" << base << ' ' << format_double(h.sum)
           << '\n';
        os << n << "_count" << base << ' ' << h.count << '\n';
    }
    for (const SpanStats& s : snap.spans) {
        const std::string n =
            prom_name("permuq_span_" + s.name + "_ms");
        os << "# TYPE " << n << " summary\n";
        os << n << prom_labels(labels, "quantile=\"0.5\"") << ' '
           << format_double(s.p50_ms) << '\n';
        os << n << prom_labels(labels, "quantile=\"0.95\"") << ' '
           << format_double(s.p95_ms) << '\n';
        os << n << "_sum" << base << ' ' << format_double(s.total_ms)
           << '\n';
        os << n << "_count" << base << ' ' << s.count << '\n';
    }
    return os.str();
}

bool
Registry::write_prometheus(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << prometheus_text();
    return static_cast<bool>(out);
}

bool
Registry::write_trace(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << trace_json();
    return static_cast<bool>(out);
}

bool
Registry::write_metrics(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << metrics_json();
    return static_cast<bool>(out);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto& [name, c] : impl_->counters)
        c.v_.store(0, std::memory_order_relaxed);
    for (auto& [name, g] : impl_->gauges)
        g.v_.store(0, std::memory_order_relaxed);
    for (auto& [name, h] : impl_->histograms) {
        for (auto& b : h.buckets_)
            b.store(0, std::memory_order_relaxed);
        h.sum_.store(0.0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
    }
    for (auto& buf : impl_->buffers)
        buf->clear();
    impl_->labels.clear();
}

Counter&
counter(const std::string& name)
{
    return Registry::instance().counter(name);
}

Gauge&
gauge(const std::string& name)
{
    return Registry::instance().gauge(name);
}

Histogram&
histogram(const std::string& name)
{
    return Registry::instance().histogram(name);
}

// -------------------------------------------------------------- spans

void
ScopedSpan::begin(const char* name)
{
    Registry::instance(); // honor PERMUQ_TRACE before the first span
    ThreadBuffer& buf = local_buffer(registry_impl());
    ev_.name = name;
    ev_.tid = buf.tid;
    ev_.depth = buf.depth++;
    ev_.start_ns =
        static_cast<std::uint64_t>(trace_epoch().elapsed_ns());
    live_ = true;
    timer_.reset();
}

void
ScopedSpan::end()
{
    ev_.dur_ns = static_cast<std::uint64_t>(timer_.elapsed_ns());
    ThreadBuffer& buf = local_buffer(registry_impl());
    --buf.depth;
    buf.push(ev_);
    // Mirror coarse completions into the crash flight recorder so a
    // post-mortem dump shows the phases leading up to the crash.
    // Deeply nested spans (per-cycle greedy rounds) are skipped: they
    // would evict the interesting context from the 256-record ring
    // and double the per-span cost for no diagnostic gain.
    if (ev_.depth <= 2)
        flight::note(flight::Kind::Span, ev_.name, nullptr,
                     static_cast<std::int64_t>(ev_.dur_ns));
    live_ = false;
}

} // namespace permuq::telemetry
