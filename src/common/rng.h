/**
 * @file
 * Deterministic pseudo-random number generation for PermuQ.
 *
 * All randomness in the project (problem-graph generation, noise-model
 * calibration, stochastic noise injection, optimizer restarts) flows
 * through Xoshiro256StarStar seeded explicitly, so every experiment is
 * reproducible from its seed alone.
 */
#ifndef PERMUQ_COMMON_RNG_H
#define PERMUQ_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace permuq {

/**
 * SplitMix64 generator; used to expand a single 64-bit seed into the
 * state of larger generators and for cheap one-off hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Xoshiro256** — fast, high-quality general-purpose generator.
 * Satisfies (most of) the UniformRandomBitGenerator requirements.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion as recommended by the authors. */
    explicit Xoshiro256(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return ~static_cast<result_type>(0);
    }

    /** Next 64 pseudo-random bits. */
    result_type operator()();

    /**
     * Advance the state by 2^128 steps (the authors' canonical jump
     * polynomial). Jumping k times from a common seed yields 2^128
     * non-overlapping substreams; the parallel noisy simulator gives
     * trajectory k the k-times-jumped stream so its random draws are
     * independent of how trajectories are scheduled across threads.
     */
    void jump();

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t next_int(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box–Muller, cached spare). */
    double next_gaussian();

    /** Fisher–Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(next_below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    double spare_ = 0.0;
    bool has_spare_ = false;
};

} // namespace permuq

#endif // PERMUQ_COMMON_RNG_H
