/**
 * @file
 * AVX2 tier of the integer vector kernels. Built with -mavx2 (this TU
 * only); when the toolchain lacks AVX2 support the __AVX2__ guard
 * below makes the tier alias the scalar table, and runtime dispatch
 * (common/vecops.cpp) never selects it on CPUs without AVX2.
 *
 * Exactness: every kernel here computes the same integer result as
 * the scalar tier. Sums widen u16 lanes into 32-bit accumulators that
 * are folded into the 64-bit total before they can wrap (block bound
 * below), and the masked argmin reduces lane-wise first-strict-minima
 * by (value, index) order, which reproduces the scalar tier's
 * first-occurrence-of-the-minimum semantics exactly.
 */
#include "common/vecops.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <climits>

namespace permuq::common::vecops {

namespace {

std::uint64_t
sum_u16_avx2(const std::uint16_t* v, std::size_t n,
             std::uint16_t sentinel, std::int64_t* sentinel_count)
{
    // Each 32-bit lane accumulates two u16 values per iteration; a
    // block of 32768 iterations tops out at 65536 * 65535 < 2^32, so
    // lanes are folded into the 64-bit total before they can wrap.
    // Sentinel hits accumulate as u16 lanes (cmpeq gives -1 per hit),
    // bounded by the same block length.
    constexpr std::size_t kBlockIters = 32768;
    const __m256i sent =
        _mm256_set1_epi16(static_cast<short>(sentinel));
    std::uint64_t sum = 0;
    std::int64_t hits = 0;
    std::size_t i = 0;
    while (i + 16 <= n) {
        const std::size_t iters =
            std::min((n - i) / 16, kBlockIters);
        __m256i acc32 = _mm256_setzero_si256();
        __m256i hits16 = _mm256_setzero_si256();
        for (std::size_t it = 0; it < iters; ++it, i += 16) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(v + i));
            acc32 = _mm256_add_epi32(
                acc32,
                _mm256_cvtepu16_epi32(_mm256_castsi256_si128(x)));
            acc32 = _mm256_add_epi32(
                acc32,
                _mm256_cvtepu16_epi32(_mm256_extracti128_si256(x, 1)));
            hits16 = _mm256_sub_epi16(hits16,
                                      _mm256_cmpeq_epi16(x, sent));
        }
        alignas(32) std::uint32_t sum_lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(sum_lanes),
                           acc32);
        for (int k = 0; k < 8; ++k)
            sum += sum_lanes[k];
        alignas(32) std::uint16_t hit_lanes[16];
        _mm256_store_si256(reinterpret_cast<__m256i*>(hit_lanes),
                           hits16);
        for (int k = 0; k < 16; ++k)
            hits += hit_lanes[k];
    }
    for (; i < n; ++i) {
        sum += v[i];
        hits += v[i] == sentinel;
    }
    if (sentinel_count != nullptr)
        *sentinel_count = hits;
    return sum;
}

void
add_u16_to_i32_avx2(std::int32_t* acc, const std::uint16_t* v,
                    std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(v + i));
        const __m256i lo =
            _mm256_cvtepu16_epi32(_mm256_castsi256_si128(x));
        const __m256i hi =
            _mm256_cvtepu16_epi32(_mm256_extracti128_si256(x, 1));
        __m256i* a0 = reinterpret_cast<__m256i*>(acc + i);
        __m256i* a1 = reinterpret_cast<__m256i*>(acc + i + 8);
        _mm256_storeu_si256(a0,
                            _mm256_add_epi32(_mm256_loadu_si256(a0),
                                             lo));
        _mm256_storeu_si256(a1,
                            _mm256_add_epi32(_mm256_loadu_si256(a1),
                                             hi));
    }
    for (; i < n; ++i)
        acc[i] += static_cast<std::int32_t>(v[i]);
}

std::int64_t
argmin_masked_i32_avx2(const std::int32_t* v, const std::uint8_t* skip,
                       std::size_t n)
{
    // Masked lanes are replaced by INT32_MAX (callers guarantee real
    // values stay below it) and each lane tracks the first strict
    // minimum of its stride class; the cross-lane reduction then
    // takes the (value, index)-lexicographic minimum, which is
    // exactly the scalar tier's first occurrence of the minimum.
    const __m256i int_max = _mm256_set1_epi32(INT_MAX);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i eight = _mm256_set1_epi32(8);
    __m256i best = int_max;
    __m256i best_idx = _mm256_set1_epi32(-1);
    __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(v + i));
        const __m128i skip8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(skip + i));
        const __m256i keep =
            _mm256_cmpeq_epi32(_mm256_cvtepu8_epi32(skip8), zero);
        const __m256i cand = _mm256_blendv_epi8(int_max, x, keep);
        const __m256i lt = _mm256_cmpgt_epi32(best, cand);
        best = _mm256_blendv_epi8(best, cand, lt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, lt);
        idx = _mm256_add_epi32(idx, eight);
    }
    alignas(32) std::int32_t lane_value[8];
    alignas(32) std::int32_t lane_index[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_value), best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_index),
                       best_idx);
    std::int64_t best_i = -1;
    std::int32_t best_value = INT_MAX;
    for (int k = 0; k < 8; ++k) {
        if (lane_index[k] < 0)
            continue;
        if (best_i < 0 || lane_value[k] < best_value ||
            (lane_value[k] == best_value && lane_index[k] < best_i)) {
            best_i = lane_index[k];
            best_value = lane_value[k];
        }
    }
    for (; i < n; ++i) {
        if (skip[i] != 0)
            continue;
        if (best_i < 0 || v[i] < best_value) {
            best_i = static_cast<std::int64_t>(i);
            best_value = v[i];
        }
    }
    return best_i;
}

} // namespace

bool
vec_compiled_in()
{
    return true;
}

const Table&
avx2_table()
{
    static const Table table{
        sum_u16_avx2,
        add_u16_to_i32_avx2,
        argmin_masked_i32_avx2,
    };
    return table;
}

} // namespace permuq::common::vecops

#else // !defined(__AVX2__)

namespace permuq::common::vecops {

bool
vec_compiled_in()
{
    return false;
}

const Table&
avx2_table()
{
    return scalar_table();
}

} // namespace permuq::common::vecops

#endif // defined(__AVX2__)
