/**
 * @file
 * Runtime-dispatched integer vector kernels for the compiler's hot
 * loops (placement closeness sums, candidate-score accumulation,
 * masked argmin). Mirrors the sim/simd.h idiom: a scalar tier and a
 * hand-vectorized AVX2 tier behind one kernel table, chosen once at
 * startup from CPU detection and overridable with PERMUQ_SIMD
 * (off|scalar|avx2|auto — the same variable the statevector kernels
 * honor).
 *
 * Determinism contract: every kernel is *integer-exact* — both tiers
 * compute the same mathematical integer result (sums are exact,
 * argmin returns the first strict minimum in ascending index order),
 * so the compiler's golden hashes are bit-identical across tiers and
 * thread counts. tests/test_tier.cpp holds this as an exact-equality
 * invariant.
 */
#ifndef PERMUQ_COMMON_VECOPS_H
#define PERMUQ_COMMON_VECOPS_H

#include <cstdint>
#include <cstddef>

namespace permuq::common::vecops {

/** Kernel implementation tiers, worst to best. */
enum class VecTier
{
    Scalar = 0,
    Avx2 = 1,
};

/** True when the AVX2 tier was compiled into this binary. */
bool vec_compiled_in();

/** Best tier the running CPU supports (ignores PERMUQ_SIMD). */
VecTier detected_vec_tier();

/** The tier kernels currently dispatch to. Initialized once from
 *  detection + PERMUQ_SIMD; tests override it via set_vec_tier(). */
VecTier active_vec_tier();

/**
 * Select the dispatch tier at runtime (tests/benchmarks compare the
 * tiers in-process). Requests above the detected capability clamp to
 * the best supported tier. Not thread-safe against concurrently
 * running kernels; call from quiescent points.
 */
void set_vec_tier(VecTier tier);

/** Human-readable tier name ("scalar" / "avx2"). */
const char* vec_tier_name(VecTier tier);

/**
 * The kernel table. All kernels are integer-exact: the AVX2 tier is
 * required to return byte-identical results to the scalar tier for
 * every input satisfying the stated preconditions.
 */
struct Table
{
    /**
     * Sum of the raw u16 values v[0..n) as a u64, plus (optionally)
     * the number of entries equal to @p sentinel written through
     * @p sentinel_count. Used on DistanceMatrix rows where the raw
     * unreachable marker must be counted so callers can re-bias it.
     */
    std::uint64_t (*sum_u16)(const std::uint16_t* v, std::size_t n,
                             std::uint16_t sentinel,
                             std::int64_t* sentinel_count);

    /** acc[i] += v[i] (zero-extended) for i in [0, n). Exact. */
    void (*add_u16_to_i32)(std::int32_t* acc, const std::uint16_t* v,
                           std::size_t n);

    /**
     * Index of the first strict minimum of v[0..n) among entries with
     * skip[i] == 0, i.e. the lowest index attaining the minimum value
     * over unmasked entries; -1 when every entry is masked.
     * Precondition: every unmasked v[i] < INT32_MAX (the AVX2 tier
     * uses INT32_MAX as the masked-lane sentinel).
     */
    std::int64_t (*argmin_masked_i32)(const std::int32_t* v,
                                      const std::uint8_t* skip,
                                      std::size_t n);
};

/** The scalar tier (always available). */
const Table& scalar_table();

/** The AVX2 tier; aliases the scalar table when not compiled in. */
const Table& avx2_table();

/** The table for the active tier. */
const Table& active();

} // namespace permuq::common::vecops

#endif // PERMUQ_COMMON_VECOPS_H
