#include "table.h"

#include <cstdio>
#include <sstream>

#include "error.h"

namespace permuq {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    fatal_unless(!header_.empty(), "table requires at least one column");
}

void
Table::add_row(std::vector<std::string> row)
{
    fatal_unless(row.size() == header_.size(),
                 "table row width does not match header");
    rows_.push_back(std::move(row));
}

std::string
Table::to_string() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c]
                << std::string(width[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };
    auto emit_rule = [&] {
        for (std::size_t c = 0; c < width.size(); ++c) {
            out << (c == 0 ? "|-" : "-|-");
            out << std::string(width[c], '-');
        }
        out << "-|\n";
    };

    emit_row(header_);
    emit_rule();
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

std::string
Table::cell(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
Table::cell(long long value)
{
    return std::to_string(value);
}

} // namespace permuq
