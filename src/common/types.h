/**
 * @file
 * Fundamental typedefs shared across all PermuQ modules.
 *
 * Logical qubits are program-level indices (a vertex of the problem
 * graph); physical qubits are hardware positions (a vertex of the
 * coupling graph). Keeping the two as distinct named aliases makes the
 * direction of every mapping explicit at call sites.
 */
#ifndef PERMUQ_COMMON_TYPES_H
#define PERMUQ_COMMON_TYPES_H

#include <cstdint>
#include <limits>
#include <utility>

namespace permuq {

/** Index of a logical (program) qubit. */
using LogicalQubit = std::int32_t;

/** Index of a physical (hardware) qubit, i.e. a position on the chip. */
using PhysicalQubit = std::int32_t;

/** A scheduling cycle; every gate occupies exactly one cycle (paper §4.1). */
using Cycle = std::int32_t;

/** Sentinel for "no qubit" / "unmapped". */
inline constexpr std::int32_t kInvalidQubit = -1;

/** Sentinel distance for unreachable vertex pairs. */
inline constexpr std::int32_t kUnreachable =
    std::numeric_limits<std::int32_t>::max() / 4;

/** An unordered pair of vertices, stored with first <= second. */
struct VertexPair
{
    std::int32_t a = kInvalidQubit;
    std::int32_t b = kInvalidQubit;

    VertexPair() = default;

    VertexPair(std::int32_t x, std::int32_t y)
        : a(x < y ? x : y), b(x < y ? y : x)
    {
    }

    friend bool operator==(const VertexPair&, const VertexPair&) = default;
    friend auto operator<=>(const VertexPair&, const VertexPair&) = default;
};

/** Hash functor so VertexPair can key unordered containers. */
struct VertexPairHash
{
    std::size_t
    operator()(const VertexPair& p) const noexcept
    {
        // 64-bit mix of the two 32-bit halves (splitmix64 finalizer).
        std::uint64_t z = (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(p.a))
                           << 32) |
                          static_cast<std::uint32_t>(p.b);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

} // namespace permuq

#endif // PERMUQ_COMMON_TYPES_H
