/**
 * @file
 * Logger implementation: level gate, sink management, and the async
 * ring-buffered file writer declared in log.h.
 */
#include "common/log/log.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log/flight_recorder.h"
#include "common/timer.h"

namespace permuq::logging {

namespace detail {
std::atomic<std::int32_t> g_level{static_cast<std::int32_t>(Level::Warn)};
} // namespace detail

namespace {

std::atomic<std::int32_t> g_format{static_cast<std::int32_t>(Format::Text)};
std::atomic<std::int64_t> g_dropped{0};
std::atomic<std::uint32_t> g_next_tid{1};

thread_local std::uint32_t t_tid = 0;

std::uint32_t
local_tid()
{
    if (t_tid == 0)
        t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

/** Stopwatch every log timestamp measures against, pinned at load. */
Timer&
log_epoch()
{
    static Timer epoch;
    return epoch;
}

struct LogRecord
{
    std::uint64_t ns = 0;
    std::uint32_t tid = 0;
    Level lv = Level::Info;
    const char* component = "";
    std::string msg;
};

void
json_escape_into(std::string& out, const char* s)
{
    for (; *s != '\0'; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

/** Render one record in the active format, newline-terminated. */
std::string
render(const LogRecord& r, Format f)
{
    std::string line;
    if (f == Format::Json) {
        char head[96];
        std::snprintf(head, sizeof head,
                      "{\"ts_ns\": %llu, \"level\": \"%s\", "
                      "\"tid\": %u, \"component\": \"",
                      static_cast<unsigned long long>(r.ns),
                      level_name(r.lv), r.tid);
        line += head;
        json_escape_into(line, r.component);
        line += "\", \"msg\": \"";
        json_escape_into(line, r.msg.c_str());
        line += "\"}\n";
    } else {
        char head[96];
        std::snprintf(head, sizeof head, "[%10.3fs %-5s %s] ",
                      static_cast<double>(r.ns) / 1e9,
                      level_name(r.lv), r.component);
        line += head;
        line += r.msg;
        line += '\n';
    }
    return line;
}

/**
 * The async file writer: a bounded ring drained by one background
 * thread. Lives as a leaked singleton like the telemetry registry so
 * a log call during static destruction can never touch a destroyed
 * mutex; an atexit hook drains and closes the sink at clean exit.
 */
struct Writer
{
    static constexpr std::size_t kRingCap = 1024;

    std::mutex mu;
    std::condition_variable cv;       ///< writer wake-up
    std::condition_variable cv_empty; ///< flush() wake-up
    std::vector<LogRecord> ring;      ///< FIFO (bounded)
    std::FILE* file = nullptr;        ///< nullptr = stderr sink
    bool thread_running = false;
    bool stop = false;
    bool draining = false; ///< a batch is in flight to the sink
    std::thread thread;

    void
    run()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
            cv.wait(lock, [&] { return stop || !ring.empty(); });
            if (ring.empty() && stop)
                break;
            std::vector<LogRecord> batch;
            batch.swap(ring);
            draining = true;
            std::FILE* f = file != nullptr ? file : stderr;
            const Format fmt = format();
            lock.unlock();
            for (const LogRecord& r : batch) {
                const std::string line = render(r, fmt);
                std::fwrite(line.data(), 1, line.size(), f);
            }
            std::fflush(f);
            lock.lock();
            draining = false;
            if (ring.empty())
                cv_empty.notify_all();
        }
    }

    void
    ensure_thread()
    {
        if (!thread_running) {
            thread_running = true;
            thread = std::thread([this] { run(); });
        }
    }

    /** Called with mu held. */
    void
    push(LogRecord&& r)
    {
        if (ring.size() >= kRingCap) {
            ring.erase(ring.begin());
            g_dropped.fetch_add(1, std::memory_order_relaxed);
        }
        ring.push_back(std::move(r));
        cv.notify_one();
    }

    /** Stop the thread and drain what is left, synchronously. */
    void
    shutdown()
    {
        std::thread t;
        {
            std::lock_guard<std::mutex> lock(mu);
            stop = true;
            cv.notify_all();
            if (thread_running) {
                t = std::move(thread);
                thread_running = false;
            }
        }
        if (t.joinable())
            t.join();
        std::lock_guard<std::mutex> lock(mu);
        std::FILE* f = file != nullptr ? file : stderr;
        for (const LogRecord& r : ring) {
            const std::string line = render(r, format());
            std::fwrite(line.data(), 1, line.size(), f);
        }
        ring.clear();
        if (file != nullptr) {
            std::fflush(file);
            std::fclose(file);
            file = nullptr; // later records fall back to stderr
        }
    }
};

Writer&
writer()
{
    static Writer* w = [] {
        auto* inst = new Writer();
        std::atexit([] { writer().shutdown(); });
        return inst;
    }();
    return *w;
}

} // namespace

void
set_level(Level level)
{
    detail::g_level.store(static_cast<std::int32_t>(level),
                          std::memory_order_relaxed);
}

bool
parse_level(const std::string& name, Level& out)
{
    if (name == "debug")
        out = Level::Debug;
    else if (name == "info")
        out = Level::Info;
    else if (name == "warn")
        out = Level::Warn;
    else if (name == "error")
        out = Level::Error;
    else if (name == "off")
        out = Level::Off;
    else
        return false;
    return true;
}

const char*
level_name(Level l)
{
    switch (l) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
    }
    return "?";
}

bool
parse_format(const std::string& name, Format& out)
{
    if (name == "text")
        out = Format::Text;
    else if (name == "json")
        out = Format::Json;
    else
        return false;
    return true;
}

void
set_format(Format f)
{
    g_format.store(static_cast<std::int32_t>(f),
                   std::memory_order_relaxed);
}

Format
format()
{
    return static_cast<Format>(
        g_format.load(std::memory_order_relaxed));
}

void
set_sink_stderr()
{
    Writer& w = writer();
    flush();
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.file != nullptr) {
        std::fflush(w.file);
        std::fclose(w.file);
        w.file = nullptr;
    }
}

bool
set_sink_file(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    Writer& w = writer();
    flush();
    std::lock_guard<std::mutex> lock(w.mu);
    if (w.file != nullptr) {
        std::fflush(w.file);
        std::fclose(w.file);
    }
    w.file = f;
    if (!w.stop)
        w.ensure_thread();
    return true;
}

void
write(Level lv, const char* component, const std::string& message)
{
    if (!enabled(lv) || lv == Level::Off)
        return;
    LogRecord r;
    r.ns = static_cast<std::uint64_t>(log_epoch().elapsed_ns());
    r.tid = local_tid();
    r.lv = lv;
    r.component = component != nullptr ? component : "";
    r.msg = message;

    // Feed the crash flight recorder first: the record survives even
    // if the process dies before the sink sees it.
    flight::note(flight::Kind::Log, r.component, message,
                 static_cast<std::int64_t>(lv));

    Writer& w = writer();
    std::unique_lock<std::mutex> lock(w.mu);
    if (w.file == nullptr || w.stop) {
        // stderr (or post-shutdown) sink: synchronous, one fwrite per
        // record so concurrent lines never interleave and the text is
        // on screen before any crash that follows.
        std::FILE* f = w.file != nullptr ? w.file : stderr;
        const std::string line = render(r, format());
        lock.unlock();
        std::fwrite(line.data(), 1, line.size(), f);
        return;
    }
    w.push(std::move(r));
}

void
flush()
{
    Writer& w = writer();
    std::unique_lock<std::mutex> lock(w.mu);
    if (!w.thread_running)
        return; // synchronous sinks have nothing queued
    w.cv.notify_all();
    w.cv_empty.wait(lock,
                    [&] { return w.ring.empty() && !w.draining; });
    if (w.file != nullptr)
        std::fflush(w.file);
}

std::int64_t
dropped()
{
    return g_dropped.load(std::memory_order_relaxed);
}

void
configure_from_env()
{
    if (const char* lv = std::getenv("PERMUQ_LOG_LEVEL");
        lv != nullptr && lv[0] != '\0') {
        Level parsed;
        if (parse_level(lv, parsed))
            set_level(parsed);
    }
    if (const char* fm = std::getenv("PERMUQ_LOG_FORMAT");
        fm != nullptr && fm[0] != '\0') {
        Format parsed;
        if (parse_format(fm, parsed))
            set_format(parsed);
    }
    if (const char* sink = std::getenv("PERMUQ_LOG");
        sink != nullptr && sink[0] != '\0' &&
        std::string(sink) != "stderr") {
        set_sink_file(sink);
    }
}

namespace {
// Honor the env knobs at program load, mirroring PERMUQ_TRACE
// handling in the telemetry registry.
const bool g_env_init = (configure_from_env(), true);
} // namespace

} // namespace permuq::logging
