/**
 * @file
 * Structured, leveled logging for PermuQ.
 *
 * Replaces the ad-hoc stderr prints that used to live in the library
 * and tools with a single process-wide logger:
 *
 *  - *Leveled.* debug/info/warn/error with an atomic threshold; a
 *    suppressed call site costs exactly one relaxed atomic load and a
 *    branch — the message string is never built. Library code must
 *    therefore route every diagnostic through the level-checked
 *    helpers below, never straight to stderr.
 *
 *  - *Two sink formats.* Human-readable text ("[12.345s info core]
 *    msg") or JSON-lines ({"ts_ns":..,"level":"info",...}), selected
 *    by set_format() / PERMUQ_LOG_FORMAT.
 *
 *  - *Async ring-buffered file writer.* When the sink is a file
 *    (set_sink_file() / PERMUQ_LOG=path), records are pushed into a
 *    bounded ring and drained by a background writer thread, so a
 *    slow disk never stalls a compile. On overflow the oldest records
 *    are dropped and counted (dropped()); flush() blocks until the
 *    ring is empty. The stderr sink writes synchronously (one fwrite
 *    per record) so CLI diagnostics stay ordered with the crash that
 *    follows them.
 *
 *  - *Flight-recorder feed.* Every record that passes the level
 *    filter is also copied into the crash flight recorder
 *    (flight_recorder.h), so a post-mortem dump carries the last
 *    log lines even when the sink was stderr or the writer thread
 *    never got to run.
 *
 * Environment knobs, read once at load (configure_from_env):
 *   PERMUQ_LOG        sink: a file path, or "stderr" (default)
 *   PERMUQ_LOG_FORMAT "text" (default) or "json"
 *   PERMUQ_LOG_LEVEL  "debug|info|warn|error|off" (default "warn")
 *
 * Determinism contract: logging is observational only — nothing in
 * the compiler reads logger state, so any sink/level/format produces
 * bit-identical compiled circuits.
 */
#ifndef PERMUQ_COMMON_LOG_LOG_H
#define PERMUQ_COMMON_LOG_LOG_H

#include <atomic>
#include <cstdint>
#include <string>

namespace permuq::logging {

enum class Level : std::int32_t { Debug = 0, Info, Warn, Error, Off };

enum class Format : std::int32_t { Text = 0, Json };

namespace detail {
extern std::atomic<std::int32_t> g_level;
} // namespace detail

/** Current threshold; records below it are discarded unformatted. */
inline Level
level()
{
    return static_cast<Level>(
        detail::g_level.load(std::memory_order_relaxed));
}

/** One relaxed load: would a record at @p l reach the sink? */
inline bool
enabled(Level l)
{
    return static_cast<std::int32_t>(l) >=
           detail::g_level.load(std::memory_order_relaxed);
}

void set_level(Level level);

/** Parse "debug|info|warn|error|off" (case-sensitive). */
bool parse_level(const std::string& name, Level& out);

/** Lowercase name of @p l ("debug".."error", "off"). */
const char* level_name(Level l);

/** Parse "text|json" (case-sensitive). */
bool parse_format(const std::string& name, Format& out);

void set_format(Format f);
Format format();

/** Route records to stderr (synchronous). The default sink. */
void set_sink_stderr();

/**
 * Route records to @p path (truncating) through the async writer
 * thread; false if the file cannot be opened (sink is unchanged).
 */
bool set_sink_file(const std::string& path);

/**
 * Emit one record at @p lv. @p component names the subsystem
 * ("core.compiler", "verify.fuzz", ...) and must point at static
 * storage; @p message is copied. Callers that build an expensive
 * message should guard with enabled(lv) first — the convenience
 * wrappers below do nothing else.
 */
void write(Level lv, const char* component, const std::string& message);

inline void
debug(const char* component, const std::string& message)
{
    if (enabled(Level::Debug))
        write(Level::Debug, component, message);
}

inline void
info(const char* component, const std::string& message)
{
    if (enabled(Level::Info))
        write(Level::Info, component, message);
}

inline void
warn(const char* component, const std::string& message)
{
    if (enabled(Level::Warn))
        write(Level::Warn, component, message);
}

inline void
error(const char* component, const std::string& message)
{
    if (enabled(Level::Error))
        write(Level::Error, component, message);
}

/** Block until every queued record has reached the sink. */
void flush();

/** Records dropped to ring overflow since process start. */
std::int64_t dropped();

/**
 * Apply PERMUQ_LOG / PERMUQ_LOG_FORMAT / PERMUQ_LOG_LEVEL. Runs once
 * automatically at load; safe to call again (idempotent re-read).
 */
void configure_from_env();

} // namespace permuq::logging

#endif // PERMUQ_COMMON_LOG_LOG_H
