/**
 * @file
 * Flight-recorder ring, JSON dump, and crash-signal handlers.
 */
#include "common/log/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"

namespace permuq::flight {

namespace {

constexpr std::size_t kNameWords = kNameBytes / 8;
constexpr std::size_t kDetailWords = kDetailBytes / 8;

/**
 * One ring slot. Every payload field is an atomic accessed with
 * relaxed ordering, so a dump racing a writer is race-free (TSan-
 * clean); the per-slot seqlock word detects torn records so the
 * reader can skip them. A record torn across a full ring wrap-around
 * race can in principle slip through as garbled text — harmless in a
 * best-effort crash artifact, and never undefined behavior.
 */
struct Record
{
    std::atomic<std::uint64_t> seq{0}; ///< 2t+1 writing, 2t+2 stable
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> meta{0}; ///< tid<<16 | kind<<8 | extra
    std::atomic<std::int64_t> value{0};
    std::array<std::atomic<std::uint64_t>, kNameWords> name{};
    std::array<std::atomic<std::uint64_t>, kDetailWords> detail{};
};

Record g_ring[kRecords];
std::atomic<std::uint64_t> g_ticket{0};
std::atomic<std::uint32_t> g_next_tid{1};

/** Stopwatch shared by all flight timestamps, pinned at load. */
Timer&
flight_epoch()
{
    static Timer epoch;
    return epoch;
}

/** Zero-init TLS slot (no dynamic initializer), safe to touch from a
 *  signal handler once the thread exists. */
thread_local std::uint32_t t_tid = 0;

std::uint32_t
local_tid()
{
    if (t_tid == 0)
        t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

/** Copy a NUL-terminated string into atomic words, truncating. */
template <std::size_t N>
void
store_words(std::array<std::atomic<std::uint64_t>, N>& dst,
            const char* src)
{
    char buf[N * 8];
    std::memset(buf, 0, sizeof buf);
    if (src != nullptr) {
        std::size_t i = 0;
        for (; i + 1 < sizeof buf && src[i] != '\0'; ++i)
            buf[i] = src[i];
    }
    for (std::size_t w = 0; w < N; ++w) {
        std::uint64_t word;
        std::memcpy(&word, buf + w * 8, 8);
        dst[w].store(word, std::memory_order_relaxed);
    }
}

template <std::size_t N>
void
load_words(const std::array<std::atomic<std::uint64_t>, N>& src,
           char* dst)
{
    for (std::size_t w = 0; w < N; ++w) {
        const std::uint64_t word =
            src[w].load(std::memory_order_relaxed);
        std::memcpy(dst + w * 8, &word, 8);
    }
    dst[N * 8 - 1] = '\0';
}

// Captured at load so the signal handler never calls getenv().
char g_dump_path[512] = "permuq_flight.json";

const bool g_path_init = [] {
    flight_epoch();
    const char* p = std::getenv("PERMUQ_FLIGHT");
    if (p != nullptr && p[0] != '\0') {
        std::size_t i = 0;
        for (; i + 1 < sizeof g_dump_path && p[i] != '\0'; ++i)
            g_dump_path[i] = p[i];
        g_dump_path[i] = '\0';
    }
    return true;
}();

// ------------------------------------------- async-signal-safe emit

/** Tiny buffered writer over write(2); everything is signal-safe. */
struct Emitter
{
    explicit Emitter(int fd) : fd(fd) {}
    ~Emitter() { flush(); }

    void
    put(char c)
    {
        if (len == sizeof buf)
            flush();
        buf[len++] = c;
    }

    void
    str(const char* s)
    {
        for (; *s != '\0'; ++s)
            put(*s);
    }

    /** JSON string body: escapes quote/backslash, maps control
     *  characters to spaces (no \u formatting needed in a dump). */
    void
    escaped(const char* s)
    {
        for (; *s != '\0'; ++s) {
            const unsigned char c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\') {
                put('\\');
                put(static_cast<char>(c));
            } else if (c < 0x20) {
                put(' ');
            } else {
                put(static_cast<char>(c));
            }
        }
    }

    void
    dec(std::int64_t v)
    {
        char tmp[24];
        std::size_t n = 0;
        std::uint64_t u = v < 0 ? std::uint64_t(0) - std::uint64_t(v)
                                : std::uint64_t(v);
        do {
            tmp[n++] = static_cast<char>('0' + u % 10);
            u /= 10;
        } while (u != 0);
        if (v < 0)
            put('-');
        while (n > 0)
            put(tmp[--n]);
    }

    void
    flush()
    {
        std::size_t off = 0;
        while (off < len) {
            const ssize_t w = ::write(fd, buf + off, len - off);
            if (w <= 0)
                break;
            off += static_cast<std::size_t>(w);
        }
        len = 0;
    }

    int fd;
    std::size_t len = 0;
    char buf[1024];
};

const char*
kind_name(std::uint8_t k)
{
    switch (static_cast<Kind>(k)) {
    case Kind::Log: return "log";
    case Kind::Span: return "span";
    case Kind::Note: return "note";
    case Kind::Fatal: return "fatal";
    }
    return "unknown";
}

// ------------------------------------------------- signal handling

struct sigaction g_old_actions[32];
const int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};

void
crash_handler(int sig)
{
    // Record the signal itself, then dump and re-raise with default
    // disposition so the exit status still reflects the crash.
    note(Kind::Fatal, "signal", nullptr, sig);
    dump(g_dump_path, sig);
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

void
note(Kind kind, const char* name, const char* detail, std::int64_t value)
{
    const std::uint64_t t =
        g_ticket.fetch_add(1, std::memory_order_relaxed);
    Record& r = g_ring[t % kRecords];
    r.seq.store(2 * t + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    r.ns.store(
        static_cast<std::uint64_t>(flight_epoch().elapsed_ns()),
        std::memory_order_relaxed);
    r.meta.store((std::uint64_t(local_tid()) << 16) |
                     (std::uint64_t(kind) << 8),
                 std::memory_order_relaxed);
    r.value.store(value, std::memory_order_relaxed);
    store_words(r.name, name);
    store_words(r.detail, detail);
    r.seq.store(2 * t + 2, std::memory_order_release);
}

void
note(Kind kind, const char* name, const std::string& detail,
     std::int64_t value)
{
    note(kind, name, detail.c_str(), value);
}

std::uint64_t
sequence()
{
    return g_ticket.load(std::memory_order_relaxed);
}

bool
dump(const char* path, int signal)
{
    const int fd =
        ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    Emitter out(fd);
    out.str("{\"permuq_flight\": 1, \"signal\": ");
    out.dec(signal);
    out.str(", \"records\": [");

    const std::uint64_t end =
        g_ticket.load(std::memory_order_acquire);
    const std::uint64_t begin =
        end > kRecords ? end - kRecords : 0;
    bool first = true;
    for (std::uint64_t t = begin; t < end; ++t) {
        const Record& r = g_ring[t % kRecords];
        const std::uint64_t s1 =
            r.seq.load(std::memory_order_acquire);
        if (s1 != 2 * t + 2)
            continue; // being written, or already overwritten
        char name[kNameBytes];
        char detail[kDetailBytes];
        const std::uint64_t ns =
            r.ns.load(std::memory_order_relaxed);
        const std::uint64_t meta =
            r.meta.load(std::memory_order_relaxed);
        const std::int64_t value =
            r.value.load(std::memory_order_relaxed);
        load_words(r.name, name);
        load_words(r.detail, detail);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (r.seq.load(std::memory_order_relaxed) != s1)
            continue; // torn by a concurrent wrap-around
        if (!first)
            out.put(',');
        first = false;
        out.str("\n{\"seq\": ");
        out.dec(static_cast<std::int64_t>(t));
        out.str(", \"ns\": ");
        out.dec(static_cast<std::int64_t>(ns));
        out.str(", \"tid\": ");
        out.dec(static_cast<std::int64_t>(meta >> 16));
        out.str(", \"kind\": \"");
        out.str(kind_name(static_cast<std::uint8_t>(meta >> 8)));
        out.str("\", \"name\": \"");
        out.escaped(name);
        out.str("\", \"detail\": \"");
        out.escaped(detail);
        out.str("\", \"value\": ");
        out.dec(value);
        out.put('}');
    }
    out.str("\n]}\n");
    out.flush();
    ::close(fd);
    return true;
}

bool
dump()
{
    return dump(g_dump_path, 0);
}

const char*
dump_path()
{
    return g_dump_path;
}

void
install_crash_handler()
{
    static std::atomic<bool> installed{false};
    if (installed.exchange(true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = crash_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (int sig : kSignals)
        ::sigaction(sig, &sa,
                    &g_old_actions[sig % 32]);
}

} // namespace permuq::flight
