/**
 * @file
 * Crash-safe flight recorder: an always-on, lock-free ring of the
 * most recent observability events (completed trace spans, log
 * records, free-form notes, fatal errors), dumpable to JSON from a
 * signal handler.
 *
 * Why it exists: trace/metrics export (telemetry.h) only runs at a
 * clean process exit. When the fuzzer — or, later, the permuqd
 * daemon — dies on SIGSEGV/SIGABRT, the flight recorder is what
 * ships with the corpse: install_crash_handler() registers handlers
 * that write the last kRecords events to `permuq_flight.json`
 * (override with PERMUQ_FLIGHT) before re-raising the signal, so the
 * exit status still reflects the crash.
 *
 * Implementation notes:
 *
 *  - Recording is wait-free: a ticket fetch_add claims a slot, the
 *    payload is copied as relaxed atomic words, and a per-slot
 *    sequence word publishes the record (seqlock). All-atomic
 *    payloads keep the concurrent dump race-free under TSan; a
 *    reader that observes a torn or stale slot skips it.
 *
 *  - dump() is async-signal-safe: open/write/close only, hand-rolled
 *    integer formatting, zero allocation and zero locks. It may run
 *    concurrently with writers from any thread or from the handler.
 *
 *  - Strings are truncated into fixed slots (kNameBytes/kDetailBytes)
 *    at record time, so nothing in the dump path chases pointers.
 *
 * Determinism contract: like the rest of the observability layer the
 * recorder is write-only from the compiler's point of view — it never
 * feeds back into compilation.
 */
#ifndef PERMUQ_COMMON_LOG_FLIGHT_RECORDER_H
#define PERMUQ_COMMON_LOG_FLIGHT_RECORDER_H

#include <cstdint>
#include <string>

namespace permuq::flight {

/** Ring capacity (records retained at crash time). */
inline constexpr std::size_t kRecords = 256;
inline constexpr std::size_t kNameBytes = 48;
inline constexpr std::size_t kDetailBytes = 160;

enum class Kind : std::uint8_t {
    Log = 1,   ///< a log record (value = level)
    Span = 2,  ///< a completed trace span (value = duration ns)
    Note = 3,  ///< free-form context, e.g. the fuzz config being run
    Fatal = 4, ///< fatal error / signal (value = signal number)
};

/**
 * Record one event. Wait-free, safe from any thread and from signal
 * handlers. Strings are truncated to the fixed slot widths.
 */
void note(Kind kind, const char* name, const char* detail,
          std::int64_t value = 0);
void note(Kind kind, const char* name, const std::string& detail,
          std::int64_t value = 0);

/** Total records ever written (monotonic ticket; for tests). */
std::uint64_t sequence();

/**
 * Write the ring to @p path as JSON, oldest record first. Async-
 * signal-safe. @p signal, when nonzero, is recorded in the header.
 * Returns false if the file cannot be opened.
 */
bool dump(const char* path, int signal = 0);

/** dump() to dump_path(). */
bool dump();

/** PERMUQ_FLIGHT if set at load, else "permuq_flight.json". */
const char* dump_path();

/**
 * Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump() and
 * re-raise. Idempotent; call early in main() of any long-running or
 * crash-prone surface (permuqc, permuq-fuzz, future permuqd).
 */
void install_crash_handler();

} // namespace permuq::flight

#endif // PERMUQ_COMMON_LOG_FLIGHT_RECORDER_H
