#include "hamiltonians.h"

#include "common/error.h"

namespace permuq::problem {

graph::Graph
nnn_ising_1d(std::int32_t n)
{
    fatal_unless(n >= 1, "chain needs at least one spin");
    graph::Graph g(n);
    for (std::int32_t i = 0; i + 1 < n; ++i)
        g.add_edge(i, i + 1);
    for (std::int32_t i = 0; i + 2 < n; ++i)
        g.add_edge(i, i + 2);
    return g;
}

graph::Graph
nnn_xy_2d(std::int32_t rows, std::int32_t cols)
{
    fatal_unless(rows >= 1 && cols >= 1, "lattice needs positive dims");
    auto id = [cols](std::int32_t r, std::int32_t c) { return r * cols + c; };
    graph::Graph g(rows * cols);
    for (std::int32_t r = 0; r < rows; ++r) {
        for (std::int32_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.add_edge(id(r, c), id(r + 1, c));
            // Next-nearest: both diagonals.
            if (r + 1 < rows && c + 1 < cols)
                g.add_edge(id(r, c), id(r + 1, c + 1));
            if (r + 1 < rows && c >= 1)
                g.add_edge(id(r, c), id(r + 1, c - 1));
        }
    }
    return g;
}

graph::Graph
nnn_heisenberg_3d(std::int32_t nx, std::int32_t ny, std::int32_t nz)
{
    fatal_unless(nx >= 1 && ny >= 1 && nz >= 1,
                 "lattice needs positive dims");
    auto id = [nx, ny](std::int32_t x, std::int32_t y, std::int32_t z) {
        return (z * ny + y) * nx + x;
    };
    graph::Graph g(nx * ny * nz);
    auto in_range = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
        return x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz;
    };
    // Nearest neighbors (axis steps) and next-nearest (face diagonals).
    static const std::int32_t kSteps[][3] = {
        {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  // nearest
        {1, 1, 0},  {1, -1, 0},             // xy diagonals
        {1, 0, 1},  {1, 0, -1},             // xz diagonals
        {0, 1, 1},  {0, 1, -1},             // yz diagonals
    };
    for (std::int32_t z = 0; z < nz; ++z)
        for (std::int32_t y = 0; y < ny; ++y)
            for (std::int32_t x = 0; x < nx; ++x)
                for (const auto& s : kSteps) {
                    std::int32_t x2 = x + s[0], y2 = y + s[1],
                                 z2 = z + s[2];
                    if (in_range(x2, y2, z2))
                        g.add_edge(id(x, y, z), id(x2, y2, z2));
                }
    return g;
}

} // namespace permuq::problem
