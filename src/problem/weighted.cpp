#include "weighted.h"

#include "common/rng.h"
#include "problem/generators.h"

namespace permuq::problem {

WeightedProblem
weighted_random_graph(std::int32_t n, double density, std::uint64_t seed,
                      double min_weight, double max_weight)
{
    WeightedProblem wp;
    wp.graph = random_graph(n, density, seed);
    // Separate stream so the topology matches the unweighted generator
    // with the same seed.
    Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    wp.weights.reserve(static_cast<std::size_t>(wp.graph.num_edges()));
    for (std::int32_t e = 0; e < wp.graph.num_edges(); ++e)
        wp.weights.push_back(min_weight +
                             (max_weight - min_weight) *
                                 rng.next_double());
    return wp;
}

WeightedProblem
with_unit_weights(graph::Graph graph)
{
    WeightedProblem wp;
    wp.weights.assign(static_cast<std::size_t>(graph.num_edges()), 1.0);
    wp.graph = std::move(graph);
    return wp;
}

} // namespace permuq::problem
