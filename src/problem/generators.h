/**
 * @file
 * Input problem-graph generators (paper §7.1).
 *
 * A problem graph has one vertex per program qubit and one edge per
 * permutable two-qubit operator: for QAOA-MaxCut an edge is a CPHASE,
 * for 2-local Hamiltonian simulation an edge is one interaction term.
 * The evaluation uses Erdős–Rényi random graphs parameterized by
 * density and random regular graphs with matched density.
 */
#ifndef PERMUQ_PROBLEM_GENERATORS_H
#define PERMUQ_PROBLEM_GENERATORS_H

#include <cstdint>

#include "graph/graph.h"

namespace permuq::problem {

/**
 * Erdős–Rényi G(n, m) with m = round(density * C(n,2)) distinct edges
 * drawn uniformly (the paper reports "random graphs with density d").
 */
graph::Graph random_graph(std::int32_t n, double density,
                          std::uint64_t seed);

/**
 * Random d-regular graph via the configuration model with restarts;
 * n * degree must be even and degree < n.
 */
graph::Graph random_regular_graph(std::int32_t n, std::int32_t degree,
                                  std::uint64_t seed);

/**
 * Random regular graph whose density is as close as possible to
 * @p density (the paper "sets the density of regular graph close to
 * 0.3 or 0.5 by varying the degree of each vertex").
 */
graph::Graph regular_graph_with_density(std::int32_t n, double density,
                                        std::uint64_t seed);

/** Complete graph (the special case solved by the ATA patterns). */
graph::Graph clique(std::int32_t n);

/**
 * Locality-structured random problem for fabric-scale benchmarks:
 * vertices live on a rows x cols grid (row-major ids) and each vertex
 * pair within Chebyshev distance @p reach is an edge with probability
 * @p density. Models the bounded-range interactions of hardware-aware
 * ansatz/lattice workloads; unlike Erdős–Rényi (whose edge count grows
 * with n^2 at fixed density), edges grow linearly in n, which is the
 * regime where region sharding applies.
 */
graph::Graph fabric_local_graph(std::int32_t rows, std::int32_t cols,
                                double density, std::int32_t reach,
                                std::uint64_t seed);

} // namespace permuq::problem

#endif // PERMUQ_PROBLEM_GENERATORS_H
