/**
 * @file
 * Weighted problem graphs — the canonical generalization of the
 * paper's (unweighted) QAOA-MaxCut workloads. Weights do not affect
 * routing at all (every edge still needs exactly one two-qubit gate;
 * this is precisely why the compiler can ignore them), but they change
 * the phase angles and the objective when the compiled circuit is
 * simulated or exported.
 */
#ifndef PERMUQ_PROBLEM_WEIGHTED_H
#define PERMUQ_PROBLEM_WEIGHTED_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace permuq::problem {

/** A problem graph with one weight per edge (aligned with edges()). */
struct WeightedProblem
{
    graph::Graph graph;
    std::vector<double> weights;

    /** Weight of edge index @p e. */
    double
    weight(std::int32_t e) const
    {
        return weights[static_cast<std::size_t>(e)];
    }
};

/**
 * Erdős–Rényi graph with i.i.d. uniform edge weights in
 * [@p min_weight, @p max_weight].
 */
WeightedProblem weighted_random_graph(std::int32_t n, double density,
                                      std::uint64_t seed,
                                      double min_weight = 0.5,
                                      double max_weight = 1.5);

/** Wrap an unweighted graph with unit weights. */
WeightedProblem with_unit_weights(graph::Graph graph);

} // namespace permuq::problem

#endif // PERMUQ_PROBLEM_WEIGHTED_H
