#include "generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"
#include "common/types.h"

namespace permuq::problem {

graph::Graph
random_graph(std::int32_t n, double density, std::uint64_t seed)
{
    fatal_unless(n >= 0, "vertex count must be non-negative");
    fatal_unless(density >= 0.0 && density <= 1.0,
                 "density must lie in [0, 1]");
    graph::Graph g(n);
    if (n < 2)
        return g;
    std::int64_t pairs =
        static_cast<std::int64_t>(n) * (n - 1) / 2;
    std::int64_t target = static_cast<std::int64_t>(
        std::llround(density * static_cast<double>(pairs)));
    Xoshiro256 rng(seed);
    std::unordered_set<VertexPair, VertexPairHash> chosen;
    while (static_cast<std::int64_t>(chosen.size()) < target) {
        std::int32_t u =
            static_cast<std::int32_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
        std::int32_t v =
            static_cast<std::int32_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
        if (u == v)
            continue;
        chosen.insert(VertexPair(u, v));
    }
    // Insert in deterministic (sorted) order so the graph is a pure
    // function of (n, density, seed) regardless of hash iteration.
    std::vector<VertexPair> edges(chosen.begin(), chosen.end());
    std::sort(edges.begin(), edges.end());
    for (const auto& e : edges)
        g.add_edge(e.a, e.b);
    return g;
}

graph::Graph
random_regular_graph(std::int32_t n, std::int32_t degree,
                     std::uint64_t seed)
{
    fatal_unless(n >= 1 && degree >= 0 && degree < n,
                 "regular graph requires 0 <= degree < n");
    fatal_unless((static_cast<std::int64_t>(n) * degree) % 2 == 0,
                 "n * degree must be even");
    Xoshiro256 rng(seed);

    // Configuration model with edge-swap repair: pair the degree stubs
    // once, then fix self-loops and duplicate edges by 2-swapping with
    // random good pairs (dense regular graphs almost never survive a
    // restart-only strategy, so repair is required).
    if (degree == 0)
        return graph::Graph(n);
    std::vector<std::int32_t> stubs;
    stubs.reserve(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(degree));
    for (std::int32_t v = 0; v < n; ++v)
        for (std::int32_t k = 0; k < degree; ++k)
            stubs.push_back(v);
    rng.shuffle(stubs);

    std::size_t num_pairs = stubs.size() / 2;
    auto pair_at = [&](std::size_t i) {
        return VertexPair(stubs[2 * i], stubs[2 * i + 1]);
    };
    auto is_bad = [&](std::size_t i,
                      const std::unordered_multiset<
                          VertexPair, VertexPairHash>& counts) {
        auto p = pair_at(i);
        return p.a == p.b || counts.count(p) > 1;
    };

    std::unordered_multiset<VertexPair, VertexPairHash> counts;
    for (std::size_t i = 0; i < num_pairs; ++i)
        if (stubs[2 * i] != stubs[2 * i + 1])
            counts.insert(pair_at(i));

    // Work queue of pairs that are (or may have become) invalid, so
    // repair is near-linear instead of rescanning all pairs each time.
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < num_pairs; ++i)
        if (is_bad(i, counts))
            queue.push_back(i);

    std::int64_t guard = 200000 + 64 * static_cast<std::int64_t>(num_pairs);
    while (!queue.empty() && guard-- > 0) {
        std::size_t bad = queue.back();
        if (!is_bad(bad, counts)) {
            queue.pop_back();
            continue;
        }
        // 2-swap with a random other pair.
        std::size_t other = static_cast<std::size_t>(
            rng.next_below(num_pairs));
        if (other == bad)
            continue;
        auto erase_one = [&](const VertexPair& p) {
            auto it = counts.find(p);
            if (it != counts.end())
                counts.erase(it);
        };
        VertexPair pb = pair_at(bad), po = pair_at(other);
        VertexPair nb(stubs[2 * bad], stubs[2 * other]);
        VertexPair no(stubs[2 * bad + 1], stubs[2 * other + 1]);
        if (nb.a == nb.b || no.a == no.b || counts.count(nb) > 0 ||
            counts.count(no) > 0 || nb == no)
            continue;
        if (pb.a != pb.b)
            erase_one(pb);
        if (po.a != po.b)
            erase_one(po);
        std::swap(stubs[2 * bad + 1], stubs[2 * other]);
        counts.insert(nb);
        counts.insert(no);
        queue.pop_back();
        // `other` now holds a fresh pair; requeue if it became bad
        // (it cannot, by construction, but duplicates elsewhere can
        // only have decreased).
    }

    graph::Graph g(n);
    std::vector<VertexPair> edges;
    for (std::size_t i = 0; i < num_pairs; ++i) {
        auto p = pair_at(i);
        fatal_unless(p.a != p.b, "random_regular_graph failed to converge");
        edges.push_back(p);
    }
    std::sort(edges.begin(), edges.end());
    for (std::size_t i = 1; i < edges.size(); ++i)
        fatal_unless(edges[i] != edges[i - 1],
                     "random_regular_graph failed to converge");
    for (const auto& e : edges)
        g.add_edge(e.a, e.b);
    return g;
}

graph::Graph
regular_graph_with_density(std::int32_t n, double density,
                           std::uint64_t seed)
{
    fatal_unless(n >= 2, "need at least two vertices");
    // density d corresponds to degree d * (n - 1); round to the nearest
    // feasible (even-sum) degree.
    std::int32_t degree = static_cast<std::int32_t>(
        std::llround(density * static_cast<double>(n - 1)));
    degree = std::clamp(degree, 1, n - 1);
    if ((static_cast<std::int64_t>(n) * degree) % 2 != 0) {
        // Adjust by one to make n * degree even.
        if (degree + 1 < n)
            ++degree;
        else
            --degree;
    }
    return random_regular_graph(n, degree, seed);
}

graph::Graph
clique(std::int32_t n)
{
    return graph::Graph::clique(n);
}

graph::Graph
fabric_local_graph(std::int32_t rows, std::int32_t cols, double density,
                   std::int32_t reach, std::uint64_t seed)
{
    fatal_unless(rows >= 1 && cols >= 1,
                 "fabric needs positive dimensions");
    fatal_unless(density >= 0.0 && density <= 1.0,
                 "density must lie in [0, 1]");
    fatal_unless(reach >= 1, "reach must be positive");
    const std::int32_t n = rows * cols;
    graph::Graph g(n);
    Xoshiro256 rng(seed);
    auto id = [cols](std::int32_t r, std::int32_t c) {
        return r * cols + c;
    };
    // Candidate pairs in ascending (vertex, partner) order, each drawn
    // once: the graph is a pure function of the parameters.
    for (std::int32_t r = 0; r < rows; ++r) {
        for (std::int32_t c = 0; c < cols; ++c) {
            const std::int32_t v = id(r, c);
            for (std::int32_t r2 = r; r2 <= std::min(rows - 1, r + reach);
                 ++r2) {
                const std::int32_t c_lo =
                    r2 == r ? c + 1 : std::max(0, c - reach);
                for (std::int32_t c2 = c_lo;
                     c2 <= std::min(cols - 1, c + reach); ++c2) {
                    if (rng.next_double() < density)
                        g.add_edge(v, id(r2, c2));
                }
            }
        }
    }
    return g;
}

} // namespace permuq::problem
