/**
 * @file
 * Interaction graphs of the 2-local Hamiltonian benchmarks (paper
 * §7.1, Table 3; same families as the 2QAN evaluation): next-nearest-
 * neighbor (NNN) couplings on 1D, 2D, and 3D lattices of program spins.
 *
 * Each edge of the returned graph is one two-body interaction term;
 * the circuit applies one permutable two-qubit block per term per
 * Trotter step, which is exactly the compilation problem PermuQ solves.
 */
#ifndef PERMUQ_PROBLEM_HAMILTONIANS_H
#define PERMUQ_PROBLEM_HAMILTONIANS_H

#include <cstdint>

#include "graph/graph.h"

namespace permuq::problem {

/** NNN 1D Ising chain: couplings (i, i+1) and (i, i+2). */
graph::Graph nnn_ising_1d(std::int32_t n);

/**
 * NNN 2D XY model on a rows x cols spin lattice: nearest (axis) plus
 * next-nearest (diagonal) couplings.
 */
graph::Graph nnn_xy_2d(std::int32_t rows, std::int32_t cols);

/**
 * NNN 3D Heisenberg model on an nx x ny x nz lattice: nearest (axis)
 * plus next-nearest (face-diagonal) couplings.
 */
graph::Graph nnn_heisenberg_3d(std::int32_t nx, std::int32_t ny,
                               std::int32_t nz);

} // namespace permuq::problem

#endif // PERMUQ_PROBLEM_HAMILTONIANS_H
