/**
 * @file
 * SABRE-like generic-circuit router (Li, Ding, Xie — ASPLOS'19), the
 * kind of compiler the paper's related work contrasts against: it
 * respects a *fixed* gate order (the dependency DAG of the circuit as
 * written) and cannot exploit permutability. Routing uses SABRE's
 * heuristic: execute the front layer's hardware-compliant gates, and
 * otherwise pick the SWAP minimizing the summed front-layer distance
 * plus a discounted lookahead term, with a decay penalty on recently
 * moved qubits.
 *
 * Comparing it against PermuQ isolates the benefit of commutativity:
 * both see the same interaction graph, but SABRE must realize one
 * specific ordering of it.
 */
#include "baselines.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"
#include "core/placement.h"

namespace permuq::baselines {

BaselineResult
sabre_like(const arch::CouplingGraph& device, const graph::Graph& problem)
{
    Timer timer;
    std::int32_t num_gates = problem.num_edges();
    const auto& edges = problem.edges();
    const auto& dist = device.distances();

    // Dependency DAG of the as-written order: a gate depends on the
    // previous gate touching either of its qubits.
    std::vector<std::int32_t> pending_preds(
        static_cast<std::size_t>(num_gates), 0);
    std::vector<std::vector<std::int32_t>> successors(
        static_cast<std::size_t>(num_gates));
    {
        std::vector<std::int32_t> last_gate(
            static_cast<std::size_t>(problem.num_vertices()), -1);
        for (std::int32_t g = 0; g < num_gates; ++g) {
            for (LogicalQubit q :
                 {edges[static_cast<std::size_t>(g)].a,
                  edges[static_cast<std::size_t>(g)].b}) {
                std::int32_t prev = last_gate[static_cast<std::size_t>(q)];
                if (prev >= 0 && prev != g) {
                    successors[static_cast<std::size_t>(prev)].push_back(
                        g);
                    ++pending_preds[static_cast<std::size_t>(g)];
                }
                last_gate[static_cast<std::size_t>(q)] = g;
            }
        }
        // A gate sharing both qubits with one predecessor counts once.
        for (auto& list : successors) {
            std::sort(list.begin(), list.end());
            auto last = std::unique(list.begin(), list.end());
            for (auto it = last; it != list.end(); ++it)
                --pending_preds[static_cast<std::size_t>(*it)];
            list.erase(last, list.end());
        }
    }

    circuit::Circuit circ(
        core::connectivity_strength_placement(device, problem));
    std::vector<std::int32_t> front;
    for (std::int32_t g = 0; g < num_gates; ++g)
        if (pending_preds[static_cast<std::size_t>(g)] == 0)
            front.push_back(g);

    std::vector<double> decay(
        static_cast<std::size_t>(device.num_qubits()), 1.0);
    std::int64_t executed = 0;
    std::int64_t guard =
        64ll * num_gates * std::max(1, dist.diameter()) + 1024;

    while (executed < num_gates && guard-- > 0) {
        // Execute every compliant front gate (repeat to a fixpoint).
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (std::size_t i = 0; i < front.size();) {
                std::int32_t g = front[i];
                const auto& e = edges[static_cast<std::size_t>(g)];
                PhysicalQubit pa = circ.final_mapping().physical_of(e.a);
                PhysicalQubit pb = circ.final_mapping().physical_of(e.b);
                if (device.coupled(pa, pb)) {
                    circ.add_compute(pa, pb);
                    ++executed;
                    front[i] = front.back();
                    front.pop_back();
                    for (std::int32_t succ :
                         successors[static_cast<std::size_t>(g)])
                        if (--pending_preds[static_cast<std::size_t>(
                                succ)] == 0)
                            front.push_back(succ);
                    progressed = true;
                } else {
                    ++i;
                }
            }
        }
        if (executed == num_gates)
            break;

        // Extended (lookahead) set: immediate successors of the front.
        std::vector<std::int32_t> extended;
        for (std::int32_t g : front)
            for (std::int32_t succ :
                 successors[static_cast<std::size_t>(g)])
                extended.push_back(succ);

        auto layer_cost = [&](const std::vector<std::int32_t>& gates,
                              PhysicalQubit p, PhysicalQubit q) {
            // Distance sum if positions p and q were exchanged.
            double sum = 0.0;
            for (std::int32_t g : gates) {
                const auto& e = edges[static_cast<std::size_t>(g)];
                PhysicalQubit pa = circ.final_mapping().physical_of(e.a);
                PhysicalQubit pb = circ.final_mapping().physical_of(e.b);
                auto moved = [&](PhysicalQubit x) {
                    return x == p ? q : (x == q ? p : x);
                };
                sum += dist.at(moved(pa), moved(pb));
            }
            return sum;
        };

        // Candidate SWAPs: couplers touching a front gate's qubit.
        double best_score = 1e300;
        VertexPair best{kInvalidQubit, kInvalidQubit};
        for (std::int32_t g : front) {
            const auto& e = edges[static_cast<std::size_t>(g)];
            for (LogicalQubit l : {e.a, e.b}) {
                PhysicalQubit p = circ.final_mapping().physical_of(l);
                for (PhysicalQubit nb :
                     device.connectivity().neighbors(p)) {
                    double score =
                        layer_cost(front, p, nb) /
                            std::max<double>(1.0,
                                             static_cast<double>(
                                                 front.size())) +
                        0.5 * layer_cost(extended, p, nb) /
                            std::max<double>(1.0,
                                             static_cast<double>(
                                                 extended.size())) ;
                    score *= std::max(decay[static_cast<std::size_t>(p)],
                                      decay[static_cast<std::size_t>(nb)]);
                    if (score < best_score) {
                        best_score = score;
                        best = VertexPair(p, nb);
                    }
                }
            }
        }
        panic_unless(best.a != kInvalidQubit, "SABRE found no swap");
        circ.add_swap(best.a, best.b);
        decay[static_cast<std::size_t>(best.a)] += 0.001;
        decay[static_cast<std::size_t>(best.b)] += 0.001;
        // Periodic decay reset, as in SABRE.
        if (executed % 16 == 0)
            std::fill(decay.begin(), decay.end(), 1.0);
    }
    panic_unless(executed == num_gates, "sabre_like did not terminate");

    BaselineResult result;
    result.metrics = circuit::compute_metrics(circ);
    result.circuit = std::move(circ);
    result.name = "sabre";
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

} // namespace permuq::baselines
