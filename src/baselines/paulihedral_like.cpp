/**
 * @file
 * Paulihedral-style baseline: the QAOA/Hamiltonian kernel is lowered
 * block-wise — mutually disjoint terms are grouped into layers by
 * maximal matching, and each layer is routed independently with the
 * shared frontier router, without cross-layer commutation lookahead.
 * This reproduces Paulihedral's behaviour on 2-local kernels, where
 * its IR treats each layer as a scheduling unit: the within-layer
 * routing is competitive, but the inability to reorder gates across
 * layers costs depth and SWAPs at scale.
 */
#include "baselines.h"

#include "baselines/router_util.h"
#include "common/error.h"
#include "common/timer.h"

namespace permuq::baselines {

BaselineResult
paulihedral_like(const arch::CouplingGraph& device,
                 const graph::Graph& problem)
{
    Timer timer;
    circuit::Circuit circ(
        circuit::Mapping(problem.num_vertices(), device.num_qubits()));

    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    std::int64_t remaining = problem.num_edges();
    RouterConfig config; // plain routing, no unification

    while (remaining > 0) {
        // Layer formation: greedy maximal matching over the remaining
        // interaction graph (Paulihedral's mutually-commuting blocks).
        std::vector<bool> in_layer_qubit(
            static_cast<std::size_t>(problem.num_vertices()), false);
        graph::Graph layer(problem.num_vertices());
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (done[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            if (in_layer_qubit[static_cast<std::size_t>(edge.a)] ||
                in_layer_qubit[static_cast<std::size_t>(edge.b)])
                continue;
            in_layer_qubit[static_cast<std::size_t>(edge.a)] = true;
            in_layer_qubit[static_cast<std::size_t>(edge.b)] = true;
            layer.add_edge(edge.a, edge.b);
            done[static_cast<std::size_t>(e)] = true;
            --remaining;
        }
        panic_unless(layer.num_edges() > 0, "empty Pauli layer");

        // Route this block in isolation, continuing from the current
        // mapping; layers are scheduled strictly one after another.
        auto block =
            route_frontier(device, layer, circ.final_mapping(), config);
        circ.append_circuit(block);
    }

    BaselineResult result;
    result.metrics = circuit::compute_metrics(circ);
    result.circuit = std::move(circ);
    result.name = "paulihedral";
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

} // namespace permuq::baselines
