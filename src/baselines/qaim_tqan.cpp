/**
 * @file
 * QAIM-like and 2QAN-like baselines, built from the shared placement
 * and frontier-routing helpers.
 */
#include "baselines.h"

#include "baselines/router_util.h"
#include "core/placement.h"
#include "common/timer.h"

namespace permuq::baselines {

BaselineResult
qaim_like(const arch::CouplingGraph& device, const graph::Graph& problem,
          const arch::NoiseModel* noise)
{
    Timer timer;
    auto initial = core::connectivity_strength_placement(device, problem);
    RouterConfig config;
    config.gate_unifying = false;
    config.pack_swaps = true;
    config.noise = noise;
    BaselineResult result;
    result.circuit =
        route_frontier(device, problem, std::move(initial), config);
    result.metrics = circuit::compute_metrics(result.circuit, noise);
    result.name = "qaim";
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

BaselineResult
tqan_like(const arch::CouplingGraph& device, const graph::Graph& problem,
          std::uint64_t sa_seed)
{
    Timer timer;
    auto initial = annealed_placement(device, problem, sa_seed);
    RouterConfig config;
    config.gate_unifying = true; // 2QAN's hallmark optimization
    config.pack_swaps = true;
    BaselineResult result;
    result.circuit =
        route_frontier(device, problem, std::move(initial), config);
    result.metrics = circuit::compute_metrics(result.circuit);
    result.name = "2qan";
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

} // namespace permuq::baselines
