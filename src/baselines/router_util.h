/**
 * @file
 * Internal routing helpers shared by the baseline compilers.
 */
#ifndef PERMUQ_BASELINES_ROUTER_UTIL_H
#define PERMUQ_BASELINES_ROUTER_UTIL_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "graph/graph.h"

namespace permuq::baselines {

/** Knobs of the shared frontier router. */
struct RouterConfig
{
    /** Merge a SWAP into a just-executed gate when it reduces the
     *  pending-distance potential (2QAN-style gate unifying). */
    bool gate_unifying = false;
    /** Select cycle swaps by profit-ordered sequential packing
     *  (QAIM-style) instead of one swap per closest gate. */
    bool pack_swaps = true;
    /** Optional per-link error weighting. */
    const arch::NoiseModel* noise = nullptr;
};

/**
 * A plain frontier router: per cycle, execute every executable gate
 * whose qubits are free, then insert distance-reducing SWAPs for the
 * still-pending gates. Terminates via a shortest-path fallback when
 * the heuristic stalls. The baselines build on this with different
 * initial mappings and knobs.
 */
circuit::Circuit route_frontier(const arch::CouplingGraph& device,
                                const graph::Graph& problem,
                                circuit::Mapping initial,
                                const RouterConfig& config);

/**
 * 2QAN-style simulated-annealing placement minimizing the total
 * coupling-distance of all problem edges; cost is quadratic in the
 * problem size by construction (iterations ~ 50 n^2).
 */
circuit::Mapping annealed_placement(const arch::CouplingGraph& device,
                                    const graph::Graph& problem,
                                    std::uint64_t seed);

} // namespace permuq::baselines

#endif // PERMUQ_BASELINES_ROUTER_UTIL_H
