/**
 * @file
 * Reimplementations of the evaluation's comparator compilers (§7.1).
 *
 * The original baselines are Python/SAT stacks that are not available
 * offline; each class here implements the published algorithmic core
 * so the evaluation reproduces the papers' *relative* behaviour:
 *
 *  - GreedyOnly  — the pure greedy bar of Fig 17 (our greedy engine
 *    with ATA prediction disabled).
 *  - AtaOnly     — the pure solver-guided bar of Fig 17: rigidly follow
 *    the clique schedule, skipping absent gates (§5.2's baseline).
 *  - PaulihedralLike — Paulihedral [Li et al., ASPLOS'22]: commuting
 *    Pauli strings are grouped into layers by maximum matching and the
 *    layers are routed one at a time (block-wise, no cross-layer
 *    commutation lookahead).
 *  - QaimLike    — QAIM [Alam et al., MICRO'20]: connectivity-strength
 *    initial placement plus per-cycle bin-packing-style SWAP selection.
 *  - TqanLike    — 2QAN [Lao & Browne, ISCA'22]: quadratic simulated-
 *    annealing initial placement minimizing total pair distance, plus
 *    routing with aggressive gate unifying (SWAP merged into the
 *    adjacent two-qubit block).
 *  - OlsqLike / SatmapLike — QAOA-OLSQ [Tan & Cong] and SATMAP
 *    [Molavi et al.]: exact depth-optimal (A*) and gate-count-optimal
 *    (Dijkstra) searches with an expansion budget, standing in for the
 *    SAT formulations (same objectives, same exactness, comparable
 *    exponential compile times).
 */
#ifndef PERMUQ_BASELINES_BASELINES_H
#define PERMUQ_BASELINES_BASELINES_H

#include <cstdint>
#include <string>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "circuit/metrics.h"
#include "graph/graph.h"

namespace permuq::baselines {

/** Outcome of one baseline compilation. */
struct BaselineResult
{
    circuit::Circuit circuit;
    circuit::Metrics metrics;
    std::string name;
    double compile_seconds = 0.0;
    /** False when an exact method ran out of budget. */
    bool complete = true;
};

/** Pure greedy (Fig 17 "greedy"). */
BaselineResult greedy_only(const arch::CouplingGraph& device,
                           const graph::Graph& problem,
                           const arch::NoiseModel* noise = nullptr);

/** Rigid clique-schedule replay (Fig 17 "solver"). */
BaselineResult ata_only(const arch::CouplingGraph& device,
                        const graph::Graph& problem);

/** Paulihedral-style block-wise scheduling. */
BaselineResult paulihedral_like(const arch::CouplingGraph& device,
                                const graph::Graph& problem);

/** QAIM-style compilation (the paper's QAIM_IC configuration). */
BaselineResult qaim_like(const arch::CouplingGraph& device,
                         const graph::Graph& problem,
                         const arch::NoiseModel* noise = nullptr);

/** 2QAN-style compilation; quadratic in problem size by construction.
 *  @param sa_seed seed of the annealing initial-placement search. */
BaselineResult tqan_like(const arch::CouplingGraph& device,
                         const graph::Graph& problem,
                         std::uint64_t sa_seed = 1);

/**
 * SABRE-like generic router (Li et al., ASPLOS'19): respects a fixed
 * as-written gate order (no commutativity), front-layer + lookahead
 * SWAP scoring with decay. Contrasting it against the permutability-
 * aware compilers isolates the value of commuting operators.
 */
BaselineResult sabre_like(const arch::CouplingGraph& device,
                          const graph::Graph& problem);

/** Depth-optimal search (QAOA-OLSQ stand-in). The default budget
 *  solves the sparse sub-16-qubit instances of Table 4 in seconds;
 *  dense ones exhaust it, mirroring OLSQ's multi-hour timeouts. */
BaselineResult olsq_like(const arch::CouplingGraph& device,
                         const graph::Graph& problem,
                         std::int64_t max_expansions = 120'000);

/** Gate-count-optimal search (SATMAP stand-in). */
BaselineResult satmap_like(const arch::CouplingGraph& device,
                           const graph::Graph& problem,
                           std::int64_t max_expansions = 400'000);

} // namespace permuq::baselines

#endif // PERMUQ_BASELINES_BASELINES_H
