/**
 * @file
 * The two ablation baselines of Fig 17: pure greedy and pure
 * solver-guided (ATA) compilation.
 */
#include "baselines.h"

#include "ata/ata.h"
#include "ata/replay.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "core/compiler.h"

namespace permuq::baselines {

BaselineResult
greedy_only(const arch::CouplingGraph& device, const graph::Graph& problem,
            const arch::NoiseModel* noise)
{
    core::CompilerOptions options;
    options.use_ata_prediction = false;
    options.noise = noise;
    // A reference baseline must not shift under PERMUQ_TIER.
    options.tier = core::CompileTier::Best;
    auto compiled = core::compile(device, problem, options);
    BaselineResult result;
    result.circuit = std::move(compiled.circuit);
    result.metrics = compiled.metrics;
    result.name = "greedy";
    result.compile_seconds = compiled.compile_seconds;
    telemetry::counter("permuq.baselines.greedy_only.swaps_inserted")
        .add(result.circuit.num_swaps());
    return result;
}

BaselineResult
ata_only(const arch::CouplingGraph& device, const graph::Graph& problem)
{
    Timer timer;
    auto sched = ata::full_ata_schedule(device);
    circuit::Mapping mapping(problem.num_vertices(), device.num_qubits());
    ata::ReplayOptions options;
    options.stop_early = true;
    // Rigid replay: the unnecessary SWAPs the paper attributes to the
    // naive skip-only adaptation are kept (§5.2).
    options.skip_dead_swaps = false;
    BaselineResult result;
    result.circuit = ata::replay(device, problem, mapping, sched, options);
    result.metrics = circuit::compute_metrics(result.circuit);
    result.name = "solver";
    result.compile_seconds = timer.elapsed_seconds();
    telemetry::counter("permuq.baselines.ata_only.swaps_inserted")
        .add(result.circuit.num_swaps());
    return result;
}

} // namespace permuq::baselines
