/**
 * @file
 * Exact-search baselines standing in for the SAT formulations:
 *  - olsq_like:   depth-optimal (QAOA-OLSQ's objective) via the A*
 *    solver of §4 with an expansion budget;
 *  - satmap_like: SWAP-count-optimal (SATMAP's objective) via A* over
 *    (mapping, remaining) states where executable gates are free and
 *    each SWAP costs one, with the admissible bound
 *    h = max over remaining gates of (distance - 1).
 * Like the SAT solvers, both are exact and exponential; the budget
 * plays the role of the solvers' wall-clock timeouts.
 */
#include "baselines.h"

#include <algorithm>
#include <array>
#include <deque>
#include <queue>
#include <unordered_map>

#include "common/error.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "solver/astar.h"

namespace permuq::baselines {

namespace {

/** The exact searches assume every device position holds a logical
 *  qubit; pad the problem with isolated vertices if needed. */
graph::Graph
pad_to_device(const arch::CouplingGraph& device,
              const graph::Graph& problem)
{
    if (problem.num_vertices() == device.num_qubits())
        return problem;
    graph::Graph padded(device.num_qubits());
    for (const auto& e : problem.edges())
        padded.add_edge(e.a, e.b);
    return padded;
}

} // namespace

BaselineResult
olsq_like(const arch::CouplingGraph& device, const graph::Graph& raw,
          std::int64_t max_expansions)
{
    Timer timer;
    BaselineResult result;
    result.name = "olsq";
    graph::Graph problem = pad_to_device(device, raw);
    circuit::Mapping initial(problem.num_vertices(), device.num_qubits());
    solver::SolverOptions options;
    options.max_expansions = max_expansions;
    auto solved = solver::solve_depth_optimal(device, problem, initial,
                                              options);
    if (solved.solved) {
        result.circuit = std::move(solved.circuit);
        result.metrics = circuit::compute_metrics(result.circuit);
        result.complete = true;
    } else {
        // Budget exhausted — like OLSQ hitting its timeout; report the
        // heuristic compiler's circuit as the incumbent.
        auto fallback = core::compile(device, problem);
        result.circuit = std::move(fallback.circuit);
        result.metrics = fallback.metrics;
        result.complete = false;
    }
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

namespace {

constexpr std::int32_t kMaxQubits = 16;

struct GateMask
{
    std::array<std::uint64_t, 2> bits{0, 0};

    bool
    test(std::int32_t i) const
    {
        return bits[static_cast<std::size_t>(i >> 6)] >> (i & 63) & 1;
    }

    void
    set(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] |=
            std::uint64_t(1) << (i & 63);
    }

    void
    clear(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] &=
            ~(std::uint64_t(1) << (i & 63));
    }

    bool none() const { return bits[0] == 0 && bits[1] == 0; }

    friend bool operator==(const GateMask&, const GateMask&) = default;
};

struct SwapState
{
    std::array<std::uint8_t, kMaxQubits> mapping{};
    GateMask remaining;

    friend bool operator==(const SwapState&, const SwapState&) = default;
};

struct SwapStateHash
{
    std::size_t
    operator()(const SwapState& s) const noexcept
    {
        std::uint64_t h = 1469598103934665603ULL;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ULL;
        };
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < kMaxQubits; ++i)
            packed = packed << 4 | (s.mapping[i] & 0xf);
        mix(packed);
        mix(s.remaining.bits[0]);
        mix(s.remaining.bits[1]);
        return static_cast<std::size_t>(h);
    }
};

} // namespace

BaselineResult
satmap_like(const arch::CouplingGraph& device, const graph::Graph& raw,
            std::int64_t max_expansions)
{
    Timer timer;
    graph::Graph problem = pad_to_device(device, raw);
    std::int32_t n = device.num_qubits();
    fatal_unless(n <= kMaxQubits && problem.num_edges() <= 128,
                 "satmap_like limited to 16 qubits / 128 gates");
    fatal_unless(problem.num_vertices() == n,
                 "satmap_like expects a fully mapped device");

    const auto& edges = problem.edges();
    const auto& dist = device.distances();

    // Closure: execute every executable gate (free), recording order.
    auto close = [&](SwapState& s, std::vector<std::int32_t>* fired) {
        bool changed = true;
        while (changed) {
            changed = false;
            std::array<std::int32_t, kMaxQubits> pos{};
            for (std::int32_t p = 0; p < n; ++p)
                pos[s.mapping[static_cast<std::size_t>(p)]] = p;
            for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
                if (!s.remaining.test(e))
                    continue;
                const auto& edge = edges[static_cast<std::size_t>(e)];
                if (device.coupled(pos[static_cast<std::size_t>(edge.a)],
                                   pos[static_cast<std::size_t>(edge.b)])) {
                    s.remaining.clear(e);
                    if (fired != nullptr)
                        fired->push_back(e);
                    changed = true;
                }
            }
        }
    };

    auto heuristic = [&](const SwapState& s) {
        std::array<std::int32_t, kMaxQubits> pos{};
        for (std::int32_t p = 0; p < n; ++p)
            pos[s.mapping[static_cast<std::size_t>(p)]] = p;
        std::int32_t h = 0;
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (!s.remaining.test(e))
                continue;
            const auto& edge = edges[static_cast<std::size_t>(e)];
            h = std::max(h,
                         dist.at(pos[static_cast<std::size_t>(edge.a)],
                                 pos[static_cast<std::size_t>(edge.b)]) -
                             1);
        }
        return h;
    };

    struct Node
    {
        SwapState state;
        std::int32_t g = 0;
        std::int32_t parent = -1;
        VertexPair swap{};                // swap leading here
        std::vector<std::int32_t> fired;  // gates fired after the swap
    };

    std::deque<Node> nodes;
    std::unordered_map<SwapState, std::int32_t, SwapStateHash> best_g;

    Node root;
    circuit::Mapping initial(n, n);
    for (std::int32_t p = 0; p < n; ++p)
        root.state.mapping[static_cast<std::size_t>(p)] =
            static_cast<std::uint8_t>(initial.logical_at(p));
    for (std::int32_t e = 0; e < problem.num_edges(); ++e)
        root.state.remaining.set(e);
    close(root.state, &root.fired);
    nodes.push_back(root);
    best_g.emplace(root.state, 0);

    using Entry = std::tuple<std::int32_t, std::int32_t, std::int32_t>;
    auto cmp = [](const Entry& a, const Entry& b) {
        return std::get<0>(a) > std::get<0>(b);
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> open(
        cmp);
    open.emplace(heuristic(root.state), 0, 0);

    BaselineResult result;
    result.name = "satmap";
    std::int64_t expansions = 0;
    std::int32_t goal = -1;

    while (!open.empty()) {
        auto [f, g, idx] = open.top();
        open.pop();
        const SwapState state = nodes[static_cast<std::size_t>(idx)].state;
        if (g != best_g[state])
            continue;
        if (state.remaining.none()) {
            goal = idx;
            break;
        }
        if (max_expansions > 0 && ++expansions > max_expansions)
            break;

        for (const auto& link : device.couplers()) {
            SwapState child = state;
            std::swap(child.mapping[static_cast<std::size_t>(link.a)],
                      child.mapping[static_cast<std::size_t>(link.b)]);
            std::vector<std::int32_t> fired;
            close(child, &fired);
            std::int32_t child_g = g + 1;
            auto it = best_g.find(child);
            if (it != best_g.end() && it->second <= child_g)
                continue;
            best_g[child] = child_g;
            Node node;
            node.state = child;
            node.g = child_g;
            node.parent = idx;
            node.swap = link;
            node.fired = std::move(fired);
            nodes.push_back(std::move(node));
            open.emplace(child_g + heuristic(child), child_g,
                         static_cast<std::int32_t>(nodes.size()) - 1);
        }
    }

    if (goal < 0) {
        auto fallback = core::compile(device, problem);
        result.circuit = std::move(fallback.circuit);
        result.metrics = fallback.metrics;
        result.complete = false;
        result.compile_seconds = timer.elapsed_seconds();
        return result;
    }

    // Reconstruct: chain of (swap, fired gates).
    std::vector<std::int32_t> chain;
    for (std::int32_t cur = goal; cur != -1;
         cur = nodes[static_cast<std::size_t>(cur)].parent)
        chain.push_back(cur);
    std::reverse(chain.begin(), chain.end());
    circuit::Circuit circ(initial);
    auto fire = [&](const std::vector<std::int32_t>& fired) {
        for (std::int32_t e : fired) {
            const auto& edge = edges[static_cast<std::size_t>(e)];
            circ.add_compute(circ.final_mapping().physical_of(edge.a),
                             circ.final_mapping().physical_of(edge.b));
        }
    };
    fire(nodes[static_cast<std::size_t>(chain[0])].fired);
    for (std::size_t i = 1; i < chain.size(); ++i) {
        const auto& node = nodes[static_cast<std::size_t>(chain[i])];
        circ.add_swap(node.swap.a, node.swap.b);
        fire(node.fired);
    }
    result.metrics = circuit::compute_metrics(circ);
    result.circuit = std::move(circ);
    result.complete = true;
    result.compile_seconds = timer.elapsed_seconds();
    return result;
}

} // namespace permuq::baselines
