#include "router_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "graph/routing.h"

namespace permuq::baselines {

namespace {

/** Pending-edge bookkeeping shared by the router. */
struct Pending
{
    std::vector<bool> done;
    std::vector<std::int32_t> deg;
    std::vector<std::vector<std::pair<LogicalQubit, std::int32_t>>> adj;
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash> index;
    std::int64_t count = 0;

    explicit Pending(const graph::Graph& problem)
        : done(static_cast<std::size_t>(problem.num_edges()), false),
          deg(static_cast<std::size_t>(problem.num_vertices()), 0),
          adj(static_cast<std::size_t>(problem.num_vertices())),
          count(problem.num_edges())
    {
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            index.emplace(edge, e);
            ++deg[static_cast<std::size_t>(edge.a)];
            ++deg[static_cast<std::size_t>(edge.b)];
            adj[static_cast<std::size_t>(edge.a)].emplace_back(edge.b, e);
            adj[static_cast<std::size_t>(edge.b)].emplace_back(edge.a, e);
        }
    }

    void
    mark(std::int32_t e, const graph::Graph& problem)
    {
        done[static_cast<std::size_t>(e)] = true;
        const auto& edge = problem.edges()[static_cast<std::size_t>(e)];
        --deg[static_cast<std::size_t>(edge.a)];
        --deg[static_cast<std::size_t>(edge.b)];
        --count;
    }
};

} // namespace

circuit::Circuit
route_frontier(const arch::CouplingGraph& device,
               const graph::Graph& problem, circuit::Mapping initial,
               const RouterConfig& config)
{
    circuit::Circuit circ(std::move(initial));
    Pending pending(problem);
    const auto& dist = device.distances();
    const auto& couplers = device.couplers();

    auto rider_gain = [&](LogicalQubit a, LogicalQubit b) {
        const auto& mapping = circ.final_mapping();
        PhysicalQubit pa = mapping.physical_of(a);
        PhysicalQubit pb = mapping.physical_of(b);
        std::int64_t delta = 0;
        auto tally = [&](LogicalQubit q, PhysicalQubit from,
                         PhysicalQubit to) {
            for (const auto& [partner, e] :
                 pending.adj[static_cast<std::size_t>(q)]) {
                if (pending.done[static_cast<std::size_t>(e)])
                    continue;
                PhysicalQubit pp = mapping.physical_of(partner);
                delta += dist.at(to, pp) - dist.at(from, pp);
            }
        };
        tally(a, pa, pb);
        tally(b, pb, pa);
        return delta;
    };

    std::int64_t stall = 0;
    // Cycles since the last executed gate. Swap proposals of different
    // pending edges can conflict and undo each other indefinitely (each
    // swap moves its own edge closer, the combination cycles), which
    // keeps `stall` at zero while no gate ever executes; any swap-only
    // stretch longer than the device diameter cannot be making real
    // progress, so it diverts into the shortest-path fallback below.
    std::int64_t no_compute = 0;
    const std::int64_t no_compute_limit =
        2ll * device.num_qubits() + 16;
    std::int64_t max_cycles =
        16ll * device.num_qubits() + 16ll * problem.num_edges() + 256;
    for (std::int64_t cycle = 0; pending.count > 0 && cycle < max_cycles;
         ++cycle) {
        const auto& mapping = circ.final_mapping();
        std::vector<bool> used(
            static_cast<std::size_t>(device.num_qubits()), false);
        bool computed = false;

        // Execute every executable gate whose qubits are still free.
        for (const auto& link : couplers) {
            LogicalQubit a = mapping.logical_at(link.a);
            LogicalQubit b = mapping.logical_at(link.b);
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            if (used[static_cast<std::size_t>(link.a)] ||
                used[static_cast<std::size_t>(link.b)])
                continue;
            auto it = pending.index.find(VertexPair(a, b));
            if (it == pending.index.end() ||
                pending.done[static_cast<std::size_t>(it->second)])
                continue;
            circ.add_compute(link.a, link.b);
            pending.mark(it->second, problem);
            used[static_cast<std::size_t>(link.a)] = true;
            used[static_cast<std::size_t>(link.b)] = true;
            computed = true;
            if (config.gate_unifying && rider_gain(a, b) < 0)
                circ.add_swap(link.a, link.b);
        }
        if (pending.count == 0)
            break;

        // Profit-ordered SWAP packing for the still-pending gates.
        struct Proposal
        {
            PhysicalQubit p, q;
            double profit;
        };
        std::vector<Proposal> proposals;
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (pending.done[static_cast<std::size_t>(e)])
                continue;
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            std::int32_t d = dist.at(pa, pb);
            if (d <= 1)
                continue;
            auto propose = [&](PhysicalQubit from, PhysicalQubit target) {
                PhysicalQubit best = kInvalidQubit;
                double best_profit = 0.0;
                for (PhysicalQubit nb :
                     device.connectivity().neighbors(from)) {
                    std::int32_t nd = dist.at(nb, target);
                    if (nd >= d)
                        continue;
                    double profit = 1.0 / static_cast<double>(d);
                    if (config.noise != nullptr &&
                        !config.noise->is_ideal())
                        profit /= std::max(
                            config.noise->cx_error(from, nb), 1e-6);
                    if (profit > best_profit) {
                        best_profit = profit;
                        best = nb;
                    }
                }
                if (best != kInvalidQubit)
                    proposals.push_back({from, best, best_profit});
            };
            propose(pa, pb);
            if (config.pack_swaps)
                propose(pb, pa);
        }
        std::stable_sort(proposals.begin(), proposals.end(),
                         [](const Proposal& a, const Proposal& b) {
                             return a.profit > b.profit;
                         });
        bool swapped = false;
        for (const auto& prop : proposals) {
            if (used[static_cast<std::size_t>(prop.p)] ||
                used[static_cast<std::size_t>(prop.q)])
                continue;
            circ.add_swap(prop.p, prop.q);
            used[static_cast<std::size_t>(prop.p)] = true;
            used[static_cast<std::size_t>(prop.q)] = true;
            swapped = true;
        }

        if (!computed && !swapped)
            ++stall;
        else
            stall = 0;
        if (computed)
            no_compute = 0;
        else
            ++no_compute;
        if (stall > 4 || no_compute > no_compute_limit) {
            // Shortest-path fallback for the closest pending pair.
            std::int32_t best_e = -1, best_d = kUnreachable;
            for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
                if (pending.done[static_cast<std::size_t>(e)])
                    continue;
                const auto& edge =
                    problem.edges()[static_cast<std::size_t>(e)];
                std::int32_t d = dist.at(mapping.physical_of(edge.a),
                                         mapping.physical_of(edge.b));
                if (d < best_d) {
                    best_d = d;
                    best_e = e;
                }
            }
            panic_unless(best_e >= 0, "stall without pending gates");
            const auto& edge =
                problem.edges()[static_cast<std::size_t>(best_e)];
            PhysicalQubit pa = mapping.physical_of(edge.a);
            PhysicalQubit pb = mapping.physical_of(edge.b);
            pa = graph::walk_toward(
                device.connectivity(), dist, pa, pb,
                [&](PhysicalQubit from, PhysicalQubit to) {
                    circ.add_swap(from, to);
                });
            circ.add_compute(pa, pb);
            pending.mark(best_e, problem);
            stall = 0;
            no_compute = 0;
        }
    }
    panic_unless(pending.count == 0, "frontier router did not terminate");
    telemetry::counter("permuq.baselines.router.swaps_inserted")
        .add(circ.num_swaps());
    return circ;
}

circuit::Mapping
annealed_placement(const arch::CouplingGraph& device,
                   const graph::Graph& problem, std::uint64_t seed)
{
    std::int32_t n = problem.num_vertices();
    const auto& dist = device.distances();
    Xoshiro256 rng(seed);

    // State: position assignment of every logical qubit (injective).
    std::vector<PhysicalQubit> phys_of(static_cast<std::size_t>(n));
    std::iota(phys_of.begin(), phys_of.end(), 0);
    std::vector<LogicalQubit> logical_at(
        static_cast<std::size_t>(device.num_qubits()), kInvalidQubit);
    for (std::int32_t l = 0; l < n; ++l)
        logical_at[static_cast<std::size_t>(l)] = l;

    auto vertex_cost = [&](LogicalQubit v, PhysicalQubit at) {
        std::int64_t sum = 0;
        for (std::int32_t w : problem.neighbors(v))
            sum += dist.at(at, phys_of[static_cast<std::size_t>(w)]);
        return sum;
    };

    std::int64_t iterations = 50ll * n * n;
    double temperature =
        static_cast<double>(device.distances().diameter());
    double cooling =
        std::pow(1e-3 / std::max(temperature, 1.0),
                 1.0 / static_cast<double>(std::max<std::int64_t>(
                           iterations, 1)));
    for (std::int64_t it = 0; it < iterations; ++it) {
        LogicalQubit v = static_cast<LogicalQubit>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        PhysicalQubit to = static_cast<PhysicalQubit>(rng.next_below(
            static_cast<std::uint64_t>(device.num_qubits())));
        PhysicalQubit from = phys_of[static_cast<std::size_t>(v)];
        if (to == from)
            continue;
        LogicalQubit other = logical_at[static_cast<std::size_t>(to)];

        std::int64_t before = vertex_cost(v, from);
        std::int64_t after = vertex_cost(v, to);
        if (other != kInvalidQubit) {
            before += vertex_cost(other, to);
            after += vertex_cost(other, from);
            // Shared edge distance counted twice on both sides: equal
            // contributions cancel in the delta.
        }
        std::int64_t delta = after - before;
        if (delta <= 0 ||
            rng.next_double() <
                std::exp(-static_cast<double>(delta) /
                         std::max(temperature, 1e-9))) {
            phys_of[static_cast<std::size_t>(v)] = to;
            logical_at[static_cast<std::size_t>(to)] = v;
            logical_at[static_cast<std::size_t>(from)] = other;
            if (other != kInvalidQubit)
                phys_of[static_cast<std::size_t>(other)] = from;
        }
        temperature *= cooling;
    }
    return circuit::Mapping(std::move(phys_of), device.num_qubits());
}

} // namespace permuq::baselines
