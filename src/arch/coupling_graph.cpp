#include "coupling_graph.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace permuq::arch {

std::string
to_string(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Line: return "line";
      case ArchKind::Grid: return "grid";
      case ArchKind::Sycamore: return "sycamore";
      case ArchKind::HeavyHex: return "heavy-hex";
      case ArchKind::Hexagon: return "hexagon";
      case ArchKind::Lattice3D: return "lattice3d";
      case ArchKind::Custom: return "custom";
    }
    return "unknown";
}

const graph::DistanceMatrix&
CouplingGraph::distances() const
{
    if (!distances_)
        distances_ = std::make_unique<graph::DistanceMatrix>(graph_);
    return *distances_;
}

CouplingGraphBuilder::CouplingGraphBuilder(std::int32_t n, ArchKind kind,
                                           std::string name)
{
    fatal_unless(n > 0, "architecture needs at least one qubit");
    result_.graph_ = graph::Graph(n);
    result_.kind_ = kind;
    result_.name_ = std::move(name);
    result_.coords_.assign(static_cast<std::size_t>(n), {0, 0});
}

void
CouplingGraphBuilder::add_coupler(PhysicalQubit p, PhysicalQubit q)
{
    result_.graph_.add_edge(p, q);
}

void
CouplingGraphBuilder::add_unit(std::vector<PhysicalQubit> unit)
{
    fatal_unless(!unit.empty(), "unit must be non-empty");
    result_.units_.push_back(std::move(unit));
}

void
CouplingGraphBuilder::set_longest_path(std::vector<PhysicalQubit> path,
                                       std::vector<OffPathAttachment> off)
{
    result_.path_ = std::move(path);
    result_.off_path_ = std::move(off);
}

void
CouplingGraphBuilder::set_unit_groups(std::int32_t groups)
{
    fatal_unless(groups >= 1, "need at least one unit group");
    result_.unit_groups_ = groups;
}

void
CouplingGraphBuilder::set_coordinate(PhysicalQubit q, std::int32_t row,
                                     std::int32_t col)
{
    result_.coords_[static_cast<std::size_t>(q)] = {row, col};
}

CouplingGraph
CouplingGraphBuilder::build()
{
    // Validate the longest path really is a path in the graph, and the
    // off-path attachments point at genuine couplers.
    const auto& path = result_.path_;
    for (std::size_t i = 1; i < path.size(); ++i) {
        panic_unless(result_.graph_.has_edge(path[i - 1], path[i]),
                     "longest path uses a missing coupler");
    }
    for (const auto& att : result_.off_path_) {
        panic_unless(att.path_index >= 0 &&
                         att.path_index <
                             static_cast<std::int32_t>(path.size()),
                     "off-path attachment index out of range");
        panic_unless(
            result_.graph_.has_edge(
                att.off_qubit,
                path[static_cast<std::size_t>(att.path_index)]),
            "off-path attachment not adjacent to its path node");
    }
    // Validate units: consecutive qubits in a unit need not be coupled
    // (Sycamore units are not), but every qubit may appear in at most
    // one unit.
    std::vector<bool> seen(static_cast<std::size_t>(
                               result_.graph_.num_vertices()),
                           false);
    for (const auto& unit : result_.units_) {
        for (PhysicalQubit q : unit) {
            panic_unless(q >= 0 && q < result_.graph_.num_vertices(),
                         "unit qubit out of range");
            panic_unless(!seen[static_cast<std::size_t>(q)],
                         "qubit assigned to two units");
            seen[static_cast<std::size_t>(q)] = true;
        }
    }
    return std::move(result_);
}

CouplingGraph
make_line(std::int32_t n)
{
    fatal_unless(n >= 1, "line needs >= 1 qubit");
    CouplingGraphBuilder b(n, ArchKind::Line, "line-" + std::to_string(n));
    std::vector<PhysicalQubit> unit;
    for (std::int32_t i = 0; i < n; ++i) {
        if (i + 1 < n)
            b.add_coupler(i, i + 1);
        b.set_coordinate(i, 0, i);
        unit.push_back(i);
    }
    b.add_unit(unit);
    b.set_longest_path(unit, {});
    return b.build();
}

CouplingGraph
make_grid(std::int32_t rows, std::int32_t cols)
{
    fatal_unless(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    auto id = [cols](std::int32_t r, std::int32_t c) { return r * cols + c; };
    CouplingGraphBuilder b(rows * cols, ArchKind::Grid,
                           "grid-" + std::to_string(rows) + "x" +
                               std::to_string(cols));
    for (std::int32_t r = 0; r < rows; ++r) {
        std::vector<PhysicalQubit> unit;
        for (std::int32_t c = 0; c < cols; ++c) {
            b.set_coordinate(id(r, c), r, c);
            unit.push_back(id(r, c));
            if (c + 1 < cols)
                b.add_coupler(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                b.add_coupler(id(r, c), id(r + 1, c));
        }
        b.add_unit(std::move(unit));
    }
    return b.build();
}

CouplingGraph
make_sycamore(std::int32_t rows, std::int32_t cols)
{
    fatal_unless(rows >= 1 && cols >= 1,
                 "sycamore needs positive dimensions");
    auto id = [cols](std::int32_t r, std::int32_t c) { return r * cols + c; };
    CouplingGraphBuilder b(rows * cols, ArchKind::Sycamore,
                           "sycamore-" + std::to_string(rows) + "x" +
                               std::to_string(cols));
    for (std::int32_t r = 0; r < rows; ++r) {
        std::vector<PhysicalQubit> unit;
        for (std::int32_t c = 0; c < cols; ++c) {
            b.set_coordinate(id(r, c), r, c);
            unit.push_back(id(r, c));
        }
        b.add_unit(std::move(unit));
    }
    // Rotated-lattice couplers: each row gap is a zig-zag line covering
    // both rows; zig-zag direction alternates with the gap parity.
    for (std::int32_t r = 0; r + 1 < rows; ++r) {
        for (std::int32_t c = 0; c < cols; ++c) {
            b.add_coupler(id(r, c), id(r + 1, c));
            if (r % 2 == 0) {
                if (c >= 1)
                    b.add_coupler(id(r, c), id(r + 1, c - 1));
            } else {
                if (c + 1 < cols)
                    b.add_coupler(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    return b.build();
}

CouplingGraph
make_heavy_hex(std::int32_t rows, std::int32_t cols)
{
    fatal_unless(rows >= 1, "heavy-hex needs >= 1 row");
    fatal_unless(cols >= 3 && cols % 4 == 3,
                 "heavy-hex row length must satisfy cols % 4 == 3");
    auto id = [cols](std::int32_t r, std::int32_t c) { return r * cols + c; };
    // Bridge qubits between rows r and r+1 sit at columns
    //   c % 4 == 2 for even r (includes the right end, col == cols-1),
    //   c % 4 == 0 for odd r  (includes the left end, col == 0),
    // which is exactly what lets the longest path snake row by row.
    std::int32_t bridges_per_gap = (cols + 1) / 4;
    std::int32_t n = rows * cols + (rows - 1) * bridges_per_gap;
    CouplingGraphBuilder b(n, ArchKind::HeavyHex,
                           "heavy-hex-" + std::to_string(rows) + "x" +
                               std::to_string(cols));

    for (std::int32_t r = 0; r < rows; ++r) {
        for (std::int32_t c = 0; c < cols; ++c) {
            b.set_coordinate(id(r, c), 2 * r, c);
            if (c + 1 < cols)
                b.add_coupler(id(r, c), id(r, c + 1));
        }
    }

    // path_pos[q] is filled while laying out the snake below.
    std::vector<PhysicalQubit> path;
    for (std::int32_t r = 0; r < rows; ++r) {
        if (r % 2 == 0) {
            for (std::int32_t c = 0; c < cols; ++c)
                path.push_back(id(r, c));
        } else {
            for (std::int32_t c = cols - 1; c >= 0; --c)
                path.push_back(id(r, c));
        }
        if (r + 1 < rows) {
            // The snake uses the end-column bridge; placeholder is
            // patched once bridge ids are known.
            path.push_back(kInvalidQubit);
        }
    }

    std::vector<OffPathAttachment> off;
    std::int32_t next = rows * cols;
    std::size_t placeholder = 0;
    auto find_placeholder = [&](std::size_t from) {
        while (from < path.size() && path[from] != kInvalidQubit)
            ++from;
        return from;
    };
    std::vector<std::int32_t> path_index_of(static_cast<std::size_t>(n), -1);
    for (std::int32_t r = 0; r + 1 < rows; ++r) {
        std::int32_t phase = (r % 2 == 0) ? 2 : 0;
        std::int32_t snake_col = (r % 2 == 0) ? cols - 1 : 0;
        for (std::int32_t c = phase; c < cols; c += 4) {
            PhysicalQubit bridge = next++;
            b.set_coordinate(bridge, 2 * r + 1, c);
            b.add_coupler(id(r, c), bridge);
            b.add_coupler(bridge, id(r + 1, c));
            if (c == snake_col) {
                placeholder = find_placeholder(placeholder);
                path[placeholder] = bridge;
            } else {
                // Attach to the upper neighbor; its snake index is
                // resolved after the path is complete.
                off.push_back({bridge, id(r, c)});
            }
        }
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
        panic_unless(path[i] != kInvalidQubit, "unpatched snake placeholder");
        path_index_of[static_cast<std::size_t>(path[i])] =
            static_cast<std::int32_t>(i);
    }
    for (auto& att : off) {
        // att.path_index currently holds the on-path neighbor qubit id.
        att.path_index =
            path_index_of[static_cast<std::size_t>(att.path_index)];
    }
    b.set_longest_path(std::move(path), std::move(off));
    return b.build();
}

CouplingGraph
make_hexagon(std::int32_t rows, std::int32_t cols)
{
    fatal_unless(rows >= 1 && cols >= 1,
                 "hexagon needs positive dimensions");
    auto id = [rows](std::int32_t c, std::int32_t r) { return c * rows + r; };
    CouplingGraphBuilder b(rows * cols, ArchKind::Hexagon,
                           "hexagon-" + std::to_string(rows) + "x" +
                               std::to_string(cols));
    for (std::int32_t c = 0; c < cols; ++c) {
        std::vector<PhysicalQubit> unit;
        for (std::int32_t r = 0; r < rows; ++r) {
            b.set_coordinate(id(c, r), r, c);
            unit.push_back(id(c, r));
            if (r + 1 < rows)
                b.add_coupler(id(c, r), id(c, r + 1));
            // Brick-wall horizontal links at alternating heights.
            if (c + 1 < cols && (r + c) % 2 == 0)
                b.add_coupler(id(c, r), id(c + 1, r));
        }
        b.add_unit(std::move(unit));
    }
    return b.build();
}

CouplingGraph
make_lattice3d(std::int32_t nx, std::int32_t ny, std::int32_t nz)
{
    fatal_unless(nx >= 1 && ny >= 1 && nz >= 1,
                 "lattice3d needs positive dimensions");
    auto id = [nx, ny](std::int32_t x, std::int32_t y, std::int32_t z) {
        return (z * ny + y) * nx + x;
    };
    CouplingGraphBuilder b(nx * ny * nz, ArchKind::Lattice3D,
                           "lattice3d-" + std::to_string(nx) + "x" +
                               std::to_string(ny) + "x" +
                               std::to_string(nz));
    b.set_unit_groups(nz);
    for (std::int32_t z = 0; z < nz; ++z) {
        for (std::int32_t y = 0; y < ny; ++y) {
            std::vector<PhysicalQubit> unit;
            for (std::int32_t x = 0; x < nx; ++x) {
                b.set_coordinate(id(x, y, z), z * ny + y, x);
                unit.push_back(id(x, y, z));
                if (x + 1 < nx)
                    b.add_coupler(id(x, y, z), id(x + 1, y, z));
                if (y + 1 < ny)
                    b.add_coupler(id(x, y, z), id(x, y + 1, z));
                if (z + 1 < nz)
                    b.add_coupler(id(x, y, z), id(x, y, z + 1));
            }
            b.add_unit(std::move(unit));
        }
    }
    return b.build();
}

CouplingGraph
make_mumbai()
{
    // 27-qubit IBM Falcon coupling map (ibmq_mumbai).
    static const std::int32_t kEdges[][2] = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    CouplingGraphBuilder b(27, ArchKind::HeavyHex, "ibmq-mumbai");
    for (const auto& e : kEdges)
        b.add_coupler(e[0], e[1]);

    // A longest simple path through the device plus where the six
    // remaining qubits hang off it.
    std::vector<PhysicalQubit> path = {9,  8,  5,  3,  2,  1,  4,
                                       7,  10, 12, 13, 14, 16, 19,
                                       22, 25, 24, 23, 21, 18, 17};
    std::vector<std::int32_t> path_index_of(27, -1);
    for (std::size_t i = 0; i < path.size(); ++i)
        path_index_of[static_cast<std::size_t>(path[i])] =
            static_cast<std::int32_t>(i);
    std::vector<OffPathAttachment> off = {
        {0, path_index_of[1]},   {6, path_index_of[7]},
        {11, path_index_of[8]},  {15, path_index_of[12]},
        {20, path_index_of[19]}, {26, path_index_of[25]},
    };
    b.set_longest_path(std::move(path), std::move(off));
    return b.build();
}

CouplingGraph
make_custom(std::int32_t num_qubits,
            const std::vector<VertexPair>& couplers, std::string name)
{
    CouplingGraphBuilder b(num_qubits, ArchKind::Custom, std::move(name));
    for (const auto& c : couplers)
        b.add_coupler(c.a, c.b);
    return b.build();
}

CouplingGraph
smallest_arch(ArchKind kind, std::int32_t min_qubits)
{
    fatal_unless(min_qubits >= 1, "need at least one qubit");
    auto square_dims = [&](std::int32_t n) {
        std::int32_t rows = static_cast<std::int32_t>(
            std::ceil(std::sqrt(static_cast<double>(n))));
        std::int32_t cols = (n + rows - 1) / rows;
        return std::pair<std::int32_t, std::int32_t>(rows, cols);
    };

    switch (kind) {
      case ArchKind::Line:
        return make_line(min_qubits);
      case ArchKind::Grid: {
        auto [r, c] = square_dims(min_qubits);
        return make_grid(r, c);
      }
      case ArchKind::Sycamore: {
        auto [r, c] = square_dims(min_qubits);
        return make_sycamore(r, c);
      }
      case ArchKind::Hexagon: {
        auto [r, c] = square_dims(min_qubits);
        return make_hexagon(r, c);
      }
      case ArchKind::HeavyHex: {
        // Search row lengths L (L % 4 == 3) for a small device covering
        // min_qubits while keeping the drawn shape near square (§7.1).
        // Rows are two coordinate rows apart, so "square" means
        // 2*rows ~ cols; the score trades qubit overhead against
        // aspect-ratio distortion.
        std::int64_t best_score = -1;
        std::int32_t best_rows = 0, best_cols = 0;
        for (std::int32_t cols = 3; cols <= 1027; cols += 4) {
            std::int32_t per_gap = (cols + 1) / 4;
            std::int32_t rows =
                (min_qubits + per_gap + cols + per_gap - 1) /
                (cols + per_gap);
            rows = std::max(rows, 1);
            std::int32_t total = rows * cols + (rows - 1) * per_gap;
            while (total < min_qubits) {
                ++rows;
                total = rows * cols + (rows - 1) * per_gap;
            }
            std::int64_t score =
                total + 2ll * std::abs(2 * rows - cols);
            if (best_score < 0 || score < best_score) {
                best_score = score;
                best_rows = rows;
                best_cols = cols;
            }
        }
        return make_heavy_hex(best_rows, best_cols);
      }
      case ArchKind::Lattice3D: {
        std::int32_t s = 1;
        while (s * s * s < min_qubits)
            ++s;
        return make_lattice3d(s, s, s);
      }
      case ArchKind::Custom:
        break;
    }
    throw FatalError("smallest_arch: unsupported architecture kind");
}

} // namespace permuq::arch
