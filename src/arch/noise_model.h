/**
 * @file
 * Per-device noise model (paper §5.3, §7.4).
 *
 * Real IBM devices exhibit qubit/link error variability: each coupler
 * has its own two-qubit (CX) error rate and each qubit its own readout
 * error. The paper folds link error into SWAP-insertion weights and
 * into the fidelity term of the circuit selector's cost function F.
 * We model calibration data with a log-normal spread around Falcon-era
 * magnitudes, seeded so experiments are reproducible.
 */
#ifndef PERMUQ_ARCH_NOISE_MODEL_H
#define PERMUQ_ARCH_NOISE_MODEL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/coupling_graph.h"
#include "common/types.h"

namespace permuq::arch {

/** Calibration-style error rates for one device. */
class NoiseModel
{
  public:
    /** A noiseless model (all error rates zero) for @p arch. */
    static NoiseModel ideal(const CouplingGraph& arch);

    /**
     * A calibration-like model: CX error log-normal around
     * @p median_cx_error, readout error log-normal around
     * @p median_readout_error. @p sigma is the log-normal spread
     * (0.4 ~ Falcon-like ~40% variability; larger values model devices
     * with strongly contrasted good/bad links). Draws are clamped to
     * [median/5, 5*median] at sigma 0.4 and the clamp widens with
     * sigma.
     */
    static NoiseModel calibrated(const CouplingGraph& arch,
                                 std::uint64_t seed,
                                 double median_cx_error = 1.0e-2,
                                 double median_readout_error = 2.0e-2,
                                 double sigma = 0.4);

    /** CX error rate on the coupler (p, q); fatal if not a coupler. */
    double cx_error(PhysicalQubit p, PhysicalQubit q) const;

    /** Readout error of physical qubit @p q. */
    double
    readout_error(PhysicalQubit q) const
    {
        return readout_[static_cast<std::size_t>(q)];
    }

    /** Single-qubit gate error (uniform, small). */
    double sq_error() const { return sq_error_; }

    /** Number of qubits this model covers. */
    std::int32_t
    num_qubits() const
    {
        return static_cast<std::int32_t>(readout_.size());
    }

    /** True if every error rate is zero. */
    bool is_ideal() const { return ideal_; }

  private:
    NoiseModel() = default;

    std::unordered_map<VertexPair, double, VertexPairHash> cx_error_;
    std::vector<double> readout_;
    double sq_error_ = 0.0;
    bool ideal_ = true;
};

} // namespace permuq::arch

#endif // PERMUQ_ARCH_NOISE_MODEL_H
