/**
 * @file
 * Hardware coupling graphs for the regular architectures studied in the
 * paper (Fig 1, §3, §7.1): line, 2D grid, Google Sycamore (rotated
 * lattice), IBM heavy-hex, hexagon/honeycomb, and a 3D lattice.
 *
 * Besides plain connectivity, a CouplingGraph carries the structural
 * metadata the ATA patterns consume:
 *   - units: the 1xUnit decomposition (rows for grid/Sycamore, columns
 *     for hexagon) in physical order along each unit;
 *   - longest_path / off-path attachments for heavy-hex (§5.1, Fig 16).
 */
#ifndef PERMUQ_ARCH_COUPLING_GRAPH_H
#define PERMUQ_ARCH_COUPLING_GRAPH_H

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/distance.h"
#include "graph/graph.h"

namespace permuq::arch {

/** The regular architecture families supported by the pattern library. */
enum class ArchKind
{
    Line,
    Grid,
    Sycamore,
    HeavyHex,
    Hexagon,
    Lattice3D,
    Custom,
};

/** Human-readable name of an ArchKind. */
std::string to_string(ArchKind kind);

/** An off-path qubit of a heavy-hex device and where it hangs. */
struct OffPathAttachment
{
    PhysicalQubit off_qubit = kInvalidQubit;
    /** Index into longest_path() of one on-path neighbor. */
    std::int32_t path_index = -1;
};

/**
 * A quantum chip: an undirected coupling graph plus regularity
 * metadata. Immutable after construction; builders live in the
 * make_*() factories below.
 */
class CouplingGraph
{
  public:
    /** @name Basic connectivity
     *  @{ */
    const graph::Graph& connectivity() const { return graph_; }
    std::int32_t num_qubits() const { return graph_.num_vertices(); }
    bool
    coupled(PhysicalQubit p, PhysicalQubit q) const
    {
        return graph_.has_edge(p, q);
    }
    const std::vector<VertexPair>& couplers() const { return graph_.edges(); }
    /** @} */

    /** Architecture family this chip belongs to. */
    ArchKind kind() const { return kind_; }

    /** Display name, e.g. "sycamore-8x8". */
    const std::string& name() const { return name_; }

    /**
     * All-pairs shortest-path distances; built lazily on first use and
     * cached (the table is the workhorse of both compilers).
     */
    const graph::DistanceMatrix& distances() const;

    /** Shortest-path distance between two physical qubits. */
    std::int32_t
    distance(PhysicalQubit p, PhysicalQubit q) const
    {
        return distances().at(p, q);
    }

    /** @name 1xUnit decomposition (grid / Sycamore / hexagon / line)
     *  Unit u is an ordered list of physical qubits; consecutive units
     *  are adjacent in the sense required by the 2xUnit patterns.
     *  Empty for architectures without a unit decomposition.
     *  @{ */
    const std::vector<std::vector<PhysicalQubit>>&
    units() const
    {
        return units_;
    }
    std::int32_t
    num_units() const
    {
        return static_cast<std::int32_t>(units_.size());
    }

    /**
     * Number of unit groups (3D lattice: one group per z-plane, each
     * holding ny consecutive units). 1 for two-dimensional devices.
     */
    std::int32_t unit_groups() const { return unit_groups_; }
    /** @} */

    /** @name Heavy-hex path decomposition (§5.1)
     *  @{ */
    const std::vector<PhysicalQubit>& longest_path() const { return path_; }
    const std::vector<OffPathAttachment>&
    off_path() const
    {
        return off_path_;
    }
    /** @} */

    /** Row/column coordinates for layout-aware passes; (row, col). */
    const std::vector<std::pair<std::int32_t, std::int32_t>>&
    coordinates() const
    {
        return coords_;
    }

  private:
    friend class CouplingGraphBuilder;

    graph::Graph graph_;
    ArchKind kind_ = ArchKind::Custom;
    std::string name_;
    std::vector<std::vector<PhysicalQubit>> units_;
    std::int32_t unit_groups_ = 1;
    std::vector<PhysicalQubit> path_;
    std::vector<OffPathAttachment> off_path_;
    std::vector<std::pair<std::int32_t, std::int32_t>> coords_;
    mutable std::unique_ptr<graph::DistanceMatrix> distances_;
};

/** Mutable builder used by the topology factories. */
class CouplingGraphBuilder
{
  public:
    CouplingGraphBuilder(std::int32_t n, ArchKind kind, std::string name);

    void add_coupler(PhysicalQubit p, PhysicalQubit q);
    void add_unit(std::vector<PhysicalQubit> unit);
    void set_longest_path(std::vector<PhysicalQubit> path,
                          std::vector<OffPathAttachment> off);
    void set_unit_groups(std::int32_t groups);
    void set_coordinate(PhysicalQubit q, std::int32_t row, std::int32_t col);

    /** Validate invariants and freeze into an immutable CouplingGraph. */
    CouplingGraph build();

  private:
    CouplingGraph result_;
};

/** A 1 x n line of qubits (IBM Manila-like, Fig 6). */
CouplingGraph make_line(std::int32_t n);

/** A rows x cols 2D grid (Fig 5). Units are the rows. */
CouplingGraph make_grid(std::int32_t rows, std::int32_t cols);

/**
 * Google Sycamore rotated lattice (Fig 10): @p rows horizontal units of
 * @p cols qubits each; consecutive units are joined by a zig-zag line
 * and there are no intra-unit couplers.
 */
CouplingGraph make_sycamore(std::int32_t rows, std::int32_t cols);

/**
 * IBM heavy-hex (Fig 16): @p rows horizontal chains of @p cols qubits
 * (cols must satisfy cols % 4 == 3) linked by bridge qubits every 4
 * columns, alternating offset per row gap. The snake through the chain
 * ends is recorded as the longest path; bridges off the snake are the
 * off-path qubits.
 */
CouplingGraph make_heavy_hex(std::int32_t rows, std::int32_t cols);

/**
 * Hexagon / honeycomb in brick-wall layout (Fig 12): @p cols vertical
 * units of @p rows qubits; horizontal links between adjacent units at
 * alternating heights. Units are the columns.
 */
CouplingGraph make_hexagon(std::int32_t rows, std::int32_t cols);

/** A 3D lattice (Fig 13), kept for the multi-dimensional discussion. */
CouplingGraph make_lattice3d(std::int32_t nx, std::int32_t ny,
                             std::int32_t nz);

/** The 27-qubit IBM Falcon (Mumbai) device used in §7.4. */
CouplingGraph make_mumbai();

/**
 * An arbitrary (irregular) device from an explicit coupler list. Such
 * devices carry no unit/path decomposition, so the ATA patterns do not
 * apply (the paper's §6.5 limitation); the compiler falls back to its
 * pure greedy mode on them.
 */
CouplingGraph make_custom(std::int32_t num_qubits,
                          const std::vector<VertexPair>& couplers,
                          std::string name = "custom");

/**
 * Smallest instance of @p kind with at least @p min_qubits qubits and
 * near-square shape (paper §7.1: "the minimum size of architecture that
 * can handle the corresponding input problem graph").
 */
CouplingGraph smallest_arch(ArchKind kind, std::int32_t min_qubits);

} // namespace permuq::arch

#endif // PERMUQ_ARCH_COUPLING_GRAPH_H
