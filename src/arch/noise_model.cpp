#include "noise_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace permuq::arch {

NoiseModel
NoiseModel::ideal(const CouplingGraph& arch)
{
    NoiseModel m;
    m.readout_.assign(static_cast<std::size_t>(arch.num_qubits()), 0.0);
    for (const auto& e : arch.couplers())
        m.cx_error_.emplace(e, 0.0);
    m.ideal_ = true;
    return m;
}

NoiseModel
NoiseModel::calibrated(const CouplingGraph& arch, std::uint64_t seed,
                       double median_cx_error, double median_readout_error,
                       double sigma)
{
    fatal_unless(median_cx_error > 0.0 && median_cx_error < 0.5,
                 "median CX error out of range");
    fatal_unless(sigma >= 0.0 && sigma <= 2.0, "sigma out of range");
    NoiseModel m;
    Xoshiro256 rng(seed);
    double clamp_factor = 5.0 * std::max(1.0, sigma / 0.4);
    auto draw = [&](double median) {
        double v = median * std::exp(sigma * rng.next_gaussian());
        return std::clamp(std::min(v, 0.45), median / clamp_factor,
                          median * clamp_factor);
    };
    for (const auto& e : arch.couplers())
        m.cx_error_.emplace(e, draw(median_cx_error));
    m.readout_.reserve(static_cast<std::size_t>(arch.num_qubits()));
    for (std::int32_t q = 0; q < arch.num_qubits(); ++q)
        m.readout_.push_back(draw(median_readout_error));
    m.sq_error_ = median_cx_error / 10.0;
    m.ideal_ = false;
    return m;
}

double
NoiseModel::cx_error(PhysicalQubit p, PhysicalQubit q) const
{
    auto it = cx_error_.find(VertexPair(p, q));
    fatal_unless(it != cx_error_.end(),
                 "cx_error queried on a non-coupler pair");
    return it->second;
}

} // namespace permuq::arch
