/**
 * @file
 * Blocking client for the permuqd wire protocol (protocol.h): connect
 * to a loopback daemon, send framed requests, and read framed
 * responses. One Client == one connection == one user thread; for
 * concurrent load (the soak test), give each thread its own Client.
 *
 * Requests may be pipelined: several send() calls before the first
 * receive(). Responses carry the request id, and permuqd may answer
 * out of order (a cache hit overtakes a cold compile), so pipelining
 * callers match ids themselves; the call() convenience is strictly
 * one-request-one-response.
 *
 * send_raw() writes arbitrary bytes without framing — the protocol
 * robustness tests and `permuq-fuzz --protocol` use it to hit the
 * server with truncated/oversized/garbage streams.
 */
#ifndef PERMUQ_SERVICE_CLIENT_H
#define PERMUQ_SERVICE_CLIENT_H

#include <string>

#include "service/protocol.h"

namespace permuq::service {

/** One blocking protocol connection (see file comment). */
class Client
{
  public:
    Client() = default;

    /** Closes the connection. */
    ~Client() { close(); }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /** Connect to 127.0.0.1:@p port; false + @p error on failure. */
    bool connect(int port, std::string& error);

    bool connected() const { return fd_ >= 0; }

    /** Send one framed request; false + @p error on socket failure. */
    bool send(const Request& request, std::string& error);

    /** Send raw bytes verbatim (no framing) — malformed-input tests. */
    bool send_raw(const std::string& bytes, std::string& error);

    /**
     * Block until the next complete response frame arrives and parse
     * it. False + @p error on socket close, malformed response, or a
     * frame-level protocol error.
     */
    bool receive(Response& out, std::string& error);

    /**
     * send() + receive() and check the ids line up. Use only with no
     * other requests in flight on this connection.
     */
    bool call(const Request& request, Response& out, std::string& error);

    /** Half-close the write side (EOF to the server, responses still
     *  readable) — the mid-frame-disconnect tests use this. */
    void shutdown_write();

    void close();

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

} // namespace permuq::service

#endif // PERMUQ_SERVICE_CLIENT_H
