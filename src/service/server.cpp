#include "service/server.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "common/log/log.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "graph/graph.h"
#include "problem/generators.h"
#include "service/plan_cache.h"
#include "service/protocol.h"

namespace permuq::service {

namespace {

/** Write all of @p frame to @p fd; false on any socket error. */
bool
send_all(int fd, const std::string& frame)
{
    const char* data = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
        const ssize_t n = ::send(fd, data, left, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Named architecture -> kind; false for unknown names. */
bool
arch_from_name(const std::string& name, arch::ArchKind& out)
{
    if (name == "heavyhex")
        out = arch::ArchKind::HeavyHex;
    else if (name == "sycamore")
        out = arch::ArchKind::Sycamore;
    else if (name == "grid")
        out = arch::ArchKind::Grid;
    else if (name == "hexagon")
        out = arch::ArchKind::Hexagon;
    else if (name == "line")
        out = arch::ArchKind::Line;
    else if (name == "lattice3d")
        out = arch::ArchKind::Lattice3D;
    else
        return false;
    return true;
}

/** Best-effort request id from a payload whose parse failed, so the
 *  error frame can still be correlated (0 when unrecoverable). */
std::int64_t
best_effort_id(const std::string& payload)
{
    std::string ignored;
    const auto doc = Json::parse(payload, &ignored);
    if (!doc || !doc->is_object())
        return 0;
    const Json* id = doc->find("id");
    return (id != nullptr && id->is_number() && id->int_value() >= 0)
               ? id->int_value()
               : 0;
}

} // namespace

struct Server::Impl
{
    explicit Impl(const ServerOptions& opts)
        : options(opts),
          queue(opts.workers > 0
                    ? opts.workers
                    : static_cast<int>(
                          std::thread::hardware_concurrency()),
                opts.queue_depth),
          cache(opts.cache_budget_bytes),
          requests(telemetry::counter("permuq.service.requests")),
          responses(telemetry::counter("permuq.service.responses")),
          errors(telemetry::counter("permuq.service.errors")),
          overloaded(telemetry::counter("permuq.service.overloaded")),
          cache_hits(telemetry::counter("permuq.service.cache_hits")),
          cache_misses(
              telemetry::counter("permuq.service.cache_misses")),
          queue_depth(telemetry::gauge("permuq.service.queue_depth")),
          cache_bytes(telemetry::gauge("permuq.service.cache_bytes")),
          cache_entries(
              telemetry::gauge("permuq.service.cache_entries")),
          queue_ms(telemetry::histogram("permuq.service.queue_ms")),
          compile_ms(
              telemetry::histogram("permuq.service.compile_ms")),
          request_ms(telemetry::histogram("permuq.service.request_ms"))
    {
    }

    /** One accepted connection; the fd closes with the last owner
     *  (reader, pending worker tasks, or the connection list). */
    struct Connection
    {
        explicit Connection(int fd_in) : fd(fd_in) {}

        ~Connection()
        {
            if (fd >= 0)
                ::close(fd);
        }

        int fd = -1;
        std::mutex write_mutex;
        /** Compile requests accepted but not yet answered. */
        std::atomic<std::size_t> outstanding{0};
        std::atomic<bool> reader_done{false};
        std::thread reader;
    };

    ServerOptions options;
    common::TaskQueue queue;
    PlanCache cache;

    /** Atomic because stop() retires it while accept_loop() reads it
     *  (the fd itself is only closed after the accept thread joins). */
    std::atomic<int> listen_fd{-1};
    int bound_port = 0;
    std::thread accept_thread;
    std::mutex connections_mutex;
    std::vector<std::shared_ptr<Connection>> connections;
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopped{false};
    std::atomic<bool> shutdown_requested{false};

    telemetry::Counter& requests;
    telemetry::Counter& responses;
    telemetry::Counter& errors;
    telemetry::Counter& overloaded;
    telemetry::Counter& cache_hits;
    telemetry::Counter& cache_misses;
    telemetry::Gauge& queue_depth;
    telemetry::Gauge& cache_bytes;
    telemetry::Gauge& cache_entries;
    telemetry::Histogram& queue_ms;
    telemetry::Histogram& compile_ms;
    telemetry::Histogram& request_ms;

    void accept_loop();
    void reader_loop(const std::shared_ptr<Connection>& conn);
    void handle_frame(const std::shared_ptr<Connection>& conn,
                      const std::string& payload);
    void run_compile(const std::shared_ptr<Connection>& conn,
                     const Request& request, double queued_ms);

    bool
    write_frame(const std::shared_ptr<Connection>& conn,
                const std::string& payload)
    {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        return send_all(conn->fd, encode_frame(payload));
    }

    void
    send_error(const std::shared_ptr<Connection>& conn, std::int64_t id,
               ErrorKind kind, const std::string& message)
    {
        errors.add();
        if (kind == ErrorKind::Overloaded)
            overloaded.add();
        logging::info("service",
                      "error id=" + std::to_string(id) + " kind=" +
                          to_string(kind) + " (" + message + ")");
        write_frame(conn, build_error_payload(id, kind, message));
    }

    void
    publish_cache_stats()
    {
        cache_bytes.set(static_cast<std::int64_t>(cache.bytes()));
        cache_entries.set(static_cast<std::int64_t>(cache.entries()));
    }
};

void
Server::Impl::accept_loop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        const int lfd = listen_fd.load(std::memory_order_acquire);
        if (lfd < 0)
            break; // retired by stop()
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed (stop()) or fatal
        }
        auto conn = std::make_shared<Connection>(fd);
        {
            std::lock_guard<std::mutex> lock(connections_mutex);
            // Reap connections whose reader has already finished, so a
            // long-lived daemon doesn't accumulate dead entries.
            for (auto it = connections.begin();
                 it != connections.end();) {
                if ((*it)->reader_done.load(
                        std::memory_order_acquire)) {
                    if ((*it)->reader.joinable())
                        (*it)->reader.join();
                    it = connections.erase(it);
                } else {
                    ++it;
                }
            }
            connections.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
}

void
Server::Impl::reader_loop(const std::shared_ptr<Connection>& conn)
{
    FrameDecoder decoder;
    std::vector<char> buf(64 * 1024);
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // peer closed (possibly mid-frame) or severed
        decoder.feed(buf.data(), static_cast<std::size_t>(n));
        for (;;) {
            std::string payload, error;
            const auto status = decoder.next(payload, error);
            if (status == FrameDecoder::Status::NeedMore)
                break;
            if (status == FrameDecoder::Status::Error) {
                // Framing is unrecoverable: answer once, then close.
                send_error(conn, 0, ErrorKind::Oversized, error);
                ::shutdown(conn->fd, SHUT_RDWR);
                conn->reader_done.store(true,
                                        std::memory_order_release);
                return;
            }
            handle_frame(conn, payload);
        }
    }
    // Peer EOF (possibly mid-frame — that's just a disconnect, not a
    // protocol error). Deliver responses for already-accepted work,
    // then sever our side so the peer sees a clean close.
    while (conn->outstanding.load(std::memory_order_acquire) > 0 &&
           !stopping.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->reader_done.store(true, std::memory_order_release);
}

void
Server::Impl::handle_frame(const std::shared_ptr<Connection>& conn,
                           const std::string& payload)
{
    requests.add();
    Request request;
    ErrorKind kind = ErrorKind::Internal;
    std::string message;
    if (!parse_request(payload, request, kind, message)) {
        send_error(conn, best_effort_id(payload), kind, message);
        return;
    }

    if (request.type == "ping") {
        responses.add();
        write_frame(conn, build_pong_payload(request.id));
        return;
    }
    if (request.type == "metrics") {
        publish_cache_stats();
        responses.add();
        write_frame(
            conn,
            build_metrics_payload(
                request.id,
                telemetry::Registry::instance().prometheus_text()));
        return;
    }
    if (request.type == "shutdown") {
        responses.add();
        // Flag first, then acknowledge: a client that saw the "ok"
        // must observe shutdown_requested() as true.
        shutdown_requested.store(true, std::memory_order_release);
        logging::info("service", "shutdown requested id=" +
                                     std::to_string(request.id));
        write_frame(conn, build_ok_payload(request.id));
        return;
    }

    // compile: two-level admission control (per-connection, global).
    if (conn->outstanding.load(std::memory_order_acquire) >=
        options.max_inflight) {
        send_error(conn, request.id, ErrorKind::Overloaded,
                   "connection has " +
                       std::to_string(options.max_inflight) +
                       " compiles in flight");
        return;
    }
    conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
    auto queued = std::make_shared<Timer>();
    const bool accepted =
        queue.try_submit([this, conn, request, queued] {
            const double queued_ms = queued->elapsed_ms();
            queue_depth.set(static_cast<std::int64_t>(queue.pending()));
            run_compile(conn, request, queued_ms);
            conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        });
    if (!accepted) {
        conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        send_error(conn, request.id, ErrorKind::Overloaded,
                   "compile queue is full (depth " +
                       std::to_string(queue.max_pending()) + ")");
        return;
    }
    queue_depth.set(static_cast<std::int64_t>(queue.pending()));
}

void
Server::Impl::run_compile(const std::shared_ptr<Connection>& conn,
                          const Request& request, double queued_ms)
{
    telemetry::ScopedSpan span("service.compile");
    if (request.debug_sleep_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.debug_sleep_ms));

    core::CompileTier tier = core::CompileTier::Auto;
    parse_tier(request.tier, tier); // validated at parse_request
    const std::string resolved =
        core::tier_name(core::resolve_tier(tier));
    const std::string key = PlanCache::make_key(request, resolved);

    Timer work;
    if (auto fragment = cache.lookup(key)) {
        cache_hits.add();
        publish_cache_stats();
        const double work_ms = work.elapsed_ms();
        compile_ms.record(work_ms);
        queue_ms.record(queued_ms);
        request_ms.record(queued_ms + work_ms);
        span.arg("cached", std::int64_t{1});
        responses.add();
        logging::info("service",
                      "compile id=" + std::to_string(request.id) +
                          " tier=" + resolved + " cache=hit");
        write_frame(conn, build_result_payload(request.id, true,
                                               queued_ms, work_ms,
                                               *fragment));
        return;
    }
    cache_misses.add();

    try {
        // Problem and device exactly as permuqc builds them, so the
        // response plan is byte-identical to a one-shot compile.
        graph::Graph problem(0);
        if (request.has_edges) {
            graph::Graph g(request.problem_n);
            for (const auto& edge : request.edges)
                if (edge.a != edge.b && !g.has_edge(edge.a, edge.b))
                    g.add_edge(edge.a, edge.b);
            problem = std::move(g);
        } else {
            problem = problem::random_graph(request.problem_n,
                                            request.density,
                                            request.seed);
        }

        arch::CouplingGraph device = [&] {
            if (request.arch == "mumbai")
                return arch::make_mumbai();
            arch::ArchKind archkind;
            if (!arch_from_name(request.arch, archkind))
                throw std::invalid_argument("unknown arch \"" +
                                            request.arch + "\"");
            return arch::smallest_arch(archkind,
                                       problem.num_vertices());
        }();

        core::CompilerOptions options_cc;
        options_cc.tier = tier;
        options_cc.alpha = request.alpha;
        options_cc.crosstalk_aware = request.crosstalk;
        options_cc.shard_regions = request.shard;
        options_cc.shard_margin = request.shard_margin;
        auto result = core::compile(device, problem, options_cc);
        const auto metrics = circuit::compute_metrics(result.circuit);

        circuit::QasmOptions qasm_options;
        qasm_options.full_qaoa = request.full_qaoa;
        const std::string qasm =
            circuit::to_qasm(result.circuit, qasm_options);

        PlanSummary summary;
        summary.tier = result.tier;
        summary.selected = result.selected;
        summary.depth = metrics.depth;
        summary.cx = metrics.cx_count;
        summary.swaps = metrics.swap_gates;
        auto fragment = std::make_shared<const std::string>(
            build_plan_fragment(summary, qasm,
                                result.report.to_json()));
        cache.insert(key, fragment);
        publish_cache_stats();

        const double work_ms = work.elapsed_ms();
        compile_ms.record(work_ms);
        queue_ms.record(queued_ms);
        request_ms.record(queued_ms + work_ms);
        span.arg("cached", std::int64_t{0});
        span.arg("qubits", problem.num_vertices());
        responses.add();
        logging::info("service",
                      "compile id=" + std::to_string(request.id) +
                          " tier=" + result.tier + " cache=miss n=" +
                          std::to_string(problem.num_vertices()));
        write_frame(conn, build_result_payload(request.id, false,
                                               queued_ms, work_ms,
                                               *fragment));
    } catch (const std::invalid_argument& e) {
        send_error(conn, request.id, ErrorKind::BadRequest, e.what());
    } catch (const std::exception& e) {
        send_error(conn, request.id, ErrorKind::Internal, e.what());
    }
}

Server::Server(const ServerOptions& options) : impl_(new Impl(options))
{
}

Server::~Server()
{
    stop();
    delete impl_;
}

bool
Server::start(std::string& error)
{
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (lfd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(impl_->options.port));
    if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        error = std::string("bind: ") + std::strerror(errno);
        ::close(lfd);
        return false;
    }
    if (::listen(lfd, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(lfd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &len);
    impl_->listen_fd.store(lfd, std::memory_order_release);
    impl_->bound_port = ntohs(bound.sin_port);
    impl_->accept_thread =
        std::thread([this] { impl_->accept_loop(); });
    logging::info("service",
                  "listening on 127.0.0.1:" +
                      std::to_string(impl_->bound_port) + " workers=" +
                      std::to_string(impl_->queue.num_workers()) +
                      " queue_depth=" +
                      std::to_string(impl_->queue.max_pending()));
    return true;
}

int
Server::port() const
{
    return impl_->bound_port;
}

bool
Server::shutdown_requested() const
{
    return impl_->shutdown_requested.load(std::memory_order_acquire);
}

void
Server::stop()
{
    if (impl_->stopped.exchange(true, std::memory_order_acq_rel))
        return;
    impl_->stopping.store(true, std::memory_order_release);
    // Retire the listener fd first (so accept_loop cannot pick it up
    // again), wake the blocked accept with shutdown(), and only close
    // the fd once the accept thread has joined — closing earlier
    // would let the kernel reuse the number under a racing accept().
    const int lfd =
        impl_->listen_fd.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0)
        ::shutdown(lfd, SHUT_RDWR);
    if (impl_->accept_thread.joinable())
        impl_->accept_thread.join();
    if (lfd >= 0)
        ::close(lfd);
    // Run every accepted compile to completion (their responses are
    // still written), then sever and join the readers.
    impl_->queue.stop();
    std::vector<std::shared_ptr<Impl::Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(impl_->connections_mutex);
        connections.swap(impl_->connections);
    }
    for (auto& conn : connections)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (auto& conn : connections)
        if (conn->reader.joinable())
            conn->reader.join();
    logging::info("service", "stopped");
}

const PlanCache&
Server::cache() const
{
    return impl_->cache;
}

const ServerOptions&
Server::options() const
{
    return impl_->options;
}

} // namespace permuq::service
