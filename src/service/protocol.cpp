#include "service/protocol.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace permuq::service {

// ------------------------------------------------------------- errors

const char*
to_string(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::Oversized:
        return "oversized";
    case ErrorKind::BadJson:
        return "bad_json";
    case ErrorKind::BadVersion:
        return "bad_version";
    case ErrorKind::BadRequest:
        return "bad_request";
    case ErrorKind::Overloaded:
        return "overloaded";
    case ErrorKind::Internal:
        break;
    }
    return "internal";
}

bool
parse_error_kind(const std::string& name, ErrorKind& out)
{
    for (ErrorKind kind :
         {ErrorKind::Oversized, ErrorKind::BadJson, ErrorKind::BadVersion,
          ErrorKind::BadRequest, ErrorKind::Overloaded,
          ErrorKind::Internal}) {
        if (name == to_string(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------- JSON

const Json*
Json::find(const std::string& key) const
{
    for (const auto& [k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

/** Strict recursive-descent parser over a bounded depth. */
class JsonParser
{
  public:
    JsonParser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    std::unique_ptr<Json>
    run()
    {
        auto value = std::make_unique<Json>();
        if (!parse_value(*value, 0))
            return nullptr;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing bytes after the JSON document"), nullptr;
        return value;
    }

  private:
    void
    fail(const std::string& message)
    {
        if (error_ && error_->empty())
            *error_ = message + " at byte " + std::to_string(pos_);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parse_value(Json& out, int depth)
    {
        if (depth > Json::kMaxJsonDepth) {
            fail("nesting deeper than the protocol bound");
            return false;
        }
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parse_object(out, depth);
        if (c == '[')
            return parse_array(out, depth);
        if (c == '"') {
            out.type_ = Json::Type::String;
            return parse_string(out.string_);
        }
        if (c == 't' || c == 'f')
            return parse_keyword(out);
        if (c == 'n')
            return parse_keyword(out);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parse_number(out);
        fail(std::string("unexpected character '") + c + "'");
        return false;
    }

    bool
    parse_keyword(Json& out)
    {
        auto match = [&](const char* word) {
            const std::size_t len = std::strlen(word);
            if (text_.compare(pos_, len, word) != 0)
                return false;
            pos_ += len;
            return true;
        };
        if (match("true")) {
            out.type_ = Json::Type::Bool;
            out.bool_ = true;
            return true;
        }
        if (match("false")) {
            out.type_ = Json::Type::Bool;
            out.bool_ = false;
            return true;
        }
        if (match("null")) {
            out.type_ = Json::Type::Null;
            return true;
        }
        fail("bad keyword");
        return false;
    }

    bool
    parse_number(Json& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_]))) {
            fail("bad number");
            return false;
        }
        if (text_[pos_] == '0')
            ++pos_;
        else
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                fail("bad fraction");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                fail("bad exponent");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string literal = text_.substr(start, pos_ - start);
        out.type_ = Json::Type::Number;
        errno = 0;
        out.double_ = std::strtod(literal.c_str(), nullptr);
        if (!std::isfinite(out.double_)) {
            fail("number out of range");
            return false;
        }
        if (integral) {
            errno = 0;
            char* end = nullptr;
            const long long v = std::strtoll(literal.c_str(), &end, 10);
            if (errno == ERANGE) {
                fail("integer out of range");
                return false;
            }
            out.int_ = v;
        } else {
            out.int_ = static_cast<std::int64_t>(out.double_);
        }
        return true;
    }

    bool
    parse_string(std::string& out)
    {
        ++pos_; // opening quote (caller checked)
        out.clear();
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                fail("dangling escape");
                return false;
            }
            const char e = text_[pos_++];
            switch (e) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                std::uint32_t code = 0;
                if (!parse_hex4(code))
                    return false;
                // Surrogate pair?
                if (code >= 0xD800 && code <= 0xDBFF) {
                    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u') {
                        fail("lone high surrogate");
                        return false;
                    }
                    pos_ += 2;
                    std::uint32_t low = 0;
                    if (!parse_hex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF) {
                        fail("bad low surrogate");
                        return false;
                    }
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    fail("lone low surrogate");
                    return false;
                }
                append_utf8(out, code);
                break;
            }
            default:
                fail("bad escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parse_hex4(std::uint32_t& out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("bad \\u escape");
                return false;
            }
        }
        return true;
    }

    static void
    append_utf8(std::string& out, std::uint32_t code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    bool
    parse_array(Json& out, int depth)
    {
        ++pos_; // '['
        out.type_ = Json::Type::Array;
        skip_ws();
        if (consume(']'))
            return true;
        for (;;) {
            Json element;
            if (!parse_value(element, depth + 1))
                return false;
            out.array_.push_back(std::move(element));
            if (consume(']'))
                return true;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return false;
            }
        }
    }

    bool
    parse_object(Json& out, int depth)
    {
        ++pos_; // '{'
        out.type_ = Json::Type::Object;
        skip_ws();
        if (consume('}'))
            return true;
        for (;;) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parse_string(key))
                return false;
            if (out.find(key) != nullptr) {
                fail("duplicate object key \"" + key + "\"");
                return false;
            }
            if (!consume(':')) {
                fail("expected ':' after object key");
                return false;
            }
            Json value;
            if (!parse_value(value, depth + 1))
                return false;
            out.members_.emplace_back(std::move(key), std::move(value));
            if (consume('}'))
                return true;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return false;
            }
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

std::unique_ptr<Json>
Json::parse(const std::string& text, std::string* error)
{
    if (error)
        error->clear();
    return JsonParser(text, error).run();
}

std::string
json_escape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size() + raw.size() / 16);
    for (const char ch : raw) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

// ------------------------------------------------------------ framing

std::string
encode_frame(const std::string& payload)
{
    std::string frame;
    frame.reserve(payload.size() + 4);
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    frame.push_back(static_cast<char>((n >> 24) & 0xFF));
    frame.push_back(static_cast<char>((n >> 16) & 0xFF));
    frame.push_back(static_cast<char>((n >> 8) & 0xFF));
    frame.push_back(static_cast<char>(n & 0xFF));
    frame += payload;
    return frame;
}

void
FrameDecoder::feed(const void* data, std::size_t n)
{
    if (poisoned_)
        return;
    // Compact the consumed prefix before it dominates the buffer.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    buffer_.append(static_cast<const char*>(data), n);
}

FrameDecoder::Status
FrameDecoder::next(std::string& payload, std::string& error)
{
    if (poisoned_) {
        error = "decoder poisoned by an earlier framing error";
        return Status::Error;
    }
    const std::size_t available = buffer_.size() - pos_;
    if (available < 4)
        return Status::NeedMore;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
    const std::uint32_t length = (static_cast<std::uint32_t>(p[0]) << 24) |
                                 (static_cast<std::uint32_t>(p[1]) << 16) |
                                 (static_cast<std::uint32_t>(p[2]) << 8) |
                                 static_cast<std::uint32_t>(p[3]);
    if (length > max_frame_bytes_) {
        poisoned_ = true;
        error = "frame length " + std::to_string(length) +
                " exceeds the " + std::to_string(max_frame_bytes_) +
                "-byte cap";
        return Status::Error;
    }
    if (available - 4 < length)
        return Status::NeedMore;
    payload.assign(buffer_, pos_ + 4, length);
    pos_ += 4 + static_cast<std::size_t>(length);
    return Status::Frame;
}

// ----------------------------------------------------------- requests

namespace {

bool
reject(ErrorKind kind, const std::string& message, ErrorKind& out_kind,
       std::string& out_message)
{
    out_kind = kind;
    out_message = message;
    return false;
}

/** Integer member in [lo, hi]; false + message otherwise. */
bool
take_int(const Json& value, const char* key, std::int64_t lo,
         std::int64_t hi, std::int64_t& out, std::string& message)
{
    if (!value.is_number()) {
        message = std::string(key) + " must be a number";
        return false;
    }
    const std::int64_t v = value.int_value();
    if (static_cast<double>(v) != value.double_value()) {
        message = std::string(key) + " must be an integer";
        return false;
    }
    if (v < lo || v > hi) {
        message = std::string(key) + " out of range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]";
        return false;
    }
    out = v;
    return true;
}

bool
take_double(const Json& value, const char* key, double lo, double hi,
            double& out, std::string& message)
{
    if (!value.is_number()) {
        message = std::string(key) + " must be a number";
        return false;
    }
    const double v = value.double_value();
    if (!(v >= lo && v <= hi)) {
        message = std::string(key) + " out of range";
        return false;
    }
    out = v;
    return true;
}

constexpr std::int32_t kMaxProblemVertices = 1 << 20;
constexpr std::size_t kMaxProblemEdges = 1u << 22;

bool
parse_problem(const Json& problem, Request& out, std::string& message)
{
    std::int64_t v = 0;
    for (const auto& [key, value] : problem.members()) {
        if (key == "n") {
            if (!take_int(value, "problem.n", 1, kMaxProblemVertices, v,
                          message))
                return false;
            out.problem_n = static_cast<std::int32_t>(v);
            out.random_n = out.problem_n;
        } else if (key == "edges") {
            if (!value.is_array()) {
                message = "problem.edges must be an array";
                return false;
            }
            if (value.array().size() > kMaxProblemEdges) {
                message = "problem.edges larger than the protocol cap";
                return false;
            }
            out.has_edges = true;
            out.edges.clear();
            out.edges.reserve(value.array().size());
            for (const Json& edge : value.array()) {
                if (!edge.is_array() || edge.array().size() != 2) {
                    message = "problem.edges entries must be [u, v]";
                    return false;
                }
                std::int64_t u = 0, w = 0;
                if (!take_int(edge.array()[0], "edge endpoint", 0,
                              kMaxProblemVertices - 1, u, message) ||
                    !take_int(edge.array()[1], "edge endpoint", 0,
                              kMaxProblemVertices - 1, w, message))
                    return false;
                out.edges.push_back(
                    {static_cast<std::int32_t>(u),
                     static_cast<std::int32_t>(w)});
            }
        } else if (key == "density") {
            if (!take_double(value, "problem.density", 0.0, 1.0,
                             out.density, message))
                return false;
        } else if (key == "seed") {
            if (!take_int(value, "problem.seed", 0,
                          std::numeric_limits<std::int64_t>::max(), v,
                          message))
                return false;
            out.seed = static_cast<std::uint64_t>(v);
        } else {
            message = "unknown problem key \"" + key + "\"";
            return false;
        }
    }
    if (out.problem_n <= 0) {
        message = "problem.n is required";
        return false;
    }
    if (out.has_edges) {
        for (const auto& edge : out.edges) {
            if (edge.a >= out.problem_n || edge.b >= out.problem_n) {
                message = "problem edge endpoint exceeds problem.n";
                return false;
            }
            if (edge.a == edge.b) {
                message = "problem edges must not be self-loops";
                return false;
            }
        }
    }
    return true;
}

bool
parse_options(const Json& options, Request& out, std::string& message)
{
    std::int64_t v = 0;
    for (const auto& [key, value] : options.members()) {
        if (key == "tier") {
            if (!value.is_string()) {
                message = "options.tier must be a string";
                return false;
            }
            const std::string& tier = value.string_value();
            if (tier != "fast" && tier != "balanced" && tier != "best" &&
                tier != "auto") {
                message = "options.tier must be "
                          "fast|balanced|best|auto";
                return false;
            }
            out.tier = tier;
        } else if (key == "alpha") {
            if (!take_double(value, "options.alpha", 0.0, 1.0, out.alpha,
                             message))
                return false;
        } else if (key == "crosstalk") {
            if (!value.is_bool()) {
                message = "options.crosstalk must be a bool";
                return false;
            }
            out.crosstalk = value.bool_value();
        } else if (key == "shard") {
            if (!take_int(value, "options.shard", 0, 1 << 16, v, message))
                return false;
            out.shard = static_cast<std::int32_t>(v);
        } else if (key == "shard_margin") {
            if (!take_int(value, "options.shard_margin", 0, 1 << 16, v,
                          message))
                return false;
            out.shard_margin = static_cast<std::int32_t>(v);
        } else if (key == "full_qaoa") {
            if (!value.is_bool()) {
                message = "options.full_qaoa must be a bool";
                return false;
            }
            out.full_qaoa = value.bool_value();
        } else if (key == "debug_sleep_ms") {
            if (!take_int(value, "options.debug_sleep_ms", 0, 60000, v,
                          message))
                return false;
            out.debug_sleep_ms = static_cast<std::int32_t>(v);
        } else {
            message = "unknown options key \"" + key + "\"";
            return false;
        }
    }
    return true;
}

} // namespace

bool
parse_request(const std::string& payload, Request& out, ErrorKind& kind,
              std::string& message)
{
    std::string json_error;
    const auto doc = Json::parse(payload, &json_error);
    if (!doc)
        return reject(ErrorKind::BadJson, json_error, kind, message);
    if (!doc->is_object())
        return reject(ErrorKind::BadJson,
                      "request payload must be a JSON object", kind,
                      message);

    const Json* version = doc->find("v");
    if (version == nullptr || !version->is_number())
        return reject(ErrorKind::BadVersion,
                      "missing protocol version field \"v\"", kind,
                      message);
    if (version->int_value() != kProtocolVersion ||
        static_cast<double>(version->int_value()) !=
            version->double_value())
        return reject(ErrorKind::BadVersion,
                      "unsupported protocol version (want " +
                          std::to_string(kProtocolVersion) + ")",
                      kind, message);

    out = Request{};
    std::string field_error;
    for (const auto& [key, value] : doc->members()) {
        if (key == "v")
            continue;
        if (key == "id") {
            std::int64_t id = 0;
            if (!take_int(value, "id", 0,
                          std::numeric_limits<std::int64_t>::max(), id,
                          field_error))
                return reject(ErrorKind::BadRequest, field_error, kind,
                              message);
            out.id = id;
        } else if (key == "type") {
            if (!value.is_string())
                return reject(ErrorKind::BadRequest,
                              "type must be a string", kind, message);
            out.type = value.string_value();
        } else if (key == "arch") {
            if (!value.is_string())
                return reject(ErrorKind::BadRequest,
                              "arch must be a string", kind, message);
            out.arch = value.string_value();
        } else if (key == "problem") {
            if (!value.is_object())
                return reject(ErrorKind::BadRequest,
                              "problem must be an object", kind, message);
            if (!parse_problem(value, out, field_error))
                return reject(ErrorKind::BadRequest, field_error, kind,
                              message);
        } else if (key == "options") {
            if (!value.is_object())
                return reject(ErrorKind::BadRequest,
                              "options must be an object", kind, message);
            if (!parse_options(value, out, field_error))
                return reject(ErrorKind::BadRequest, field_error, kind,
                              message);
        } else {
            return reject(ErrorKind::BadRequest,
                          "unknown request key \"" + key + "\"", kind,
                          message);
        }
    }

    if (out.type != "compile" && out.type != "ping" &&
        out.type != "metrics" && out.type != "shutdown")
        return reject(ErrorKind::BadRequest,
                      "unknown request type \"" + out.type + "\"", kind,
                      message);
    if (out.type == "compile" && out.problem_n <= 0 && !out.has_edges) {
        // No explicit problem block: accept the implicit random spec
        // (permuqc defaults), but require it to have been spelled out.
        return reject(ErrorKind::BadRequest,
                      "compile requests need a problem object", kind,
                      message);
    }
    return true;
}

std::string
build_request_payload(const Request& request)
{
    char buf[64];
    std::string payload = "{\"v\":" + std::to_string(kProtocolVersion) +
                          ",\"id\":" + std::to_string(request.id) +
                          ",\"type\":\"" + json_escape(request.type) +
                          "\"";
    if (request.type == "compile") {
        payload += ",\"arch\":\"" + json_escape(request.arch) + "\"";
        payload += ",\"problem\":{\"n\":" +
                   std::to_string(request.problem_n > 0 ? request.problem_n
                                                        : request.random_n);
        if (request.has_edges) {
            payload += ",\"edges\":[";
            for (std::size_t i = 0; i < request.edges.size(); ++i) {
                if (i > 0)
                    payload += ',';
                payload += '[' + std::to_string(request.edges[i].a) +
                           ',' + std::to_string(request.edges[i].b) + ']';
            }
            payload += ']';
        } else {
            std::snprintf(buf, sizeof buf, "%.17g", request.density);
            payload += ",\"density\":";
            payload += buf;
            payload += ",\"seed\":" + std::to_string(request.seed);
        }
        payload += '}';
        std::snprintf(buf, sizeof buf, "%.17g", request.alpha);
        payload += ",\"options\":{\"tier\":\"" + request.tier +
                   "\",\"alpha\":";
        payload += buf;
        payload += ",\"crosstalk\":";
        payload += request.crosstalk ? "true" : "false";
        payload += ",\"shard\":" + std::to_string(request.shard) +
                   ",\"shard_margin\":" +
                   std::to_string(request.shard_margin) +
                   ",\"full_qaoa\":";
        payload += request.full_qaoa ? "true" : "false";
        if (request.debug_sleep_ms > 0)
            payload += ",\"debug_sleep_ms\":" +
                       std::to_string(request.debug_sleep_ms);
        payload += '}';
    }
    payload += '}';
    return payload;
}

// ---------------------------------------------------------- responses

std::string
build_plan_fragment(const PlanSummary& summary, const std::string& qasm,
                    const std::string& report_json)
{
    std::string fragment = "\"tier\":\"" + json_escape(summary.tier) +
                           "\",\"selected\":\"" +
                           json_escape(summary.selected) +
                           "\",\"depth\":" + std::to_string(summary.depth) +
                           ",\"cx\":" + std::to_string(summary.cx) +
                           ",\"swaps\":" + std::to_string(summary.swaps) +
                           ",\"qasm\":\"";
    fragment += json_escape(qasm);
    fragment += "\",\"report\":";
    fragment += report_json.empty() ? "{}" : report_json;
    return fragment;
}

std::string
build_result_payload(std::int64_t id, bool cached, double queue_ms,
                     double compile_ms, const std::string& fragment)
{
    char buf[64];
    std::string payload = "{\"v\":" + std::to_string(kProtocolVersion) +
                          ",\"id\":" + std::to_string(id) +
                          ",\"type\":\"result\",\"cached\":";
    payload += cached ? "true" : "false";
    std::snprintf(buf, sizeof buf, "%.3f", queue_ms);
    payload += ",\"queue_ms\":";
    payload += buf;
    std::snprintf(buf, sizeof buf, "%.3f", compile_ms);
    payload += ",\"compile_ms\":";
    payload += buf;
    payload += ',';
    payload += fragment;
    payload += '}';
    return payload;
}

std::string
build_error_payload(std::int64_t id, ErrorKind kind,
                    const std::string& message)
{
    return "{\"v\":" + std::to_string(kProtocolVersion) +
           ",\"id\":" + std::to_string(id) +
           ",\"type\":\"error\",\"error\":\"" + to_string(kind) +
           "\",\"message\":\"" + json_escape(message) + "\"}";
}

std::string
build_pong_payload(std::int64_t id)
{
    return "{\"v\":" + std::to_string(kProtocolVersion) +
           ",\"id\":" + std::to_string(id) + ",\"type\":\"pong\"}";
}

std::string
build_ok_payload(std::int64_t id)
{
    return "{\"v\":" + std::to_string(kProtocolVersion) +
           ",\"id\":" + std::to_string(id) + ",\"type\":\"ok\"}";
}

std::string
build_metrics_payload(std::int64_t id, const std::string& prometheus_text)
{
    return "{\"v\":" + std::to_string(kProtocolVersion) +
           ",\"id\":" + std::to_string(id) +
           ",\"type\":\"metrics\",\"prom\":\"" +
           json_escape(prometheus_text) + "\"}";
}

bool
parse_response(const std::string& payload, Response& out,
               std::string& error)
{
    const auto doc = Json::parse(payload, &error);
    if (!doc)
        return false;
    if (!doc->is_object()) {
        error = "response payload must be a JSON object";
        return false;
    }
    const Json* version = doc->find("v");
    if (version == nullptr || !version->is_number() ||
        version->int_value() != kProtocolVersion) {
        error = "missing or unsupported response version";
        return false;
    }
    out = Response{};
    const Json* id = doc->find("id");
    if (id == nullptr || !id->is_number()) {
        error = "missing response id";
        return false;
    }
    out.id = id->int_value();
    const Json* type = doc->find("type");
    if (type == nullptr || !type->is_string()) {
        error = "missing response type";
        return false;
    }
    out.type = type->string_value();

    if (out.type == "error") {
        const Json* kind = doc->find("error");
        const Json* message = doc->find("message");
        if (kind == nullptr || !kind->is_string() ||
            !parse_error_kind(kind->string_value(), out.error)) {
            error = "error frame lacks a typed error kind";
            return false;
        }
        if (message != nullptr && message->is_string())
            out.message = message->string_value();
        return true;
    }
    if (out.type == "pong" || out.type == "ok")
        return true;
    if (out.type == "metrics") {
        const Json* prom = doc->find("prom");
        if (prom == nullptr || !prom->is_string()) {
            error = "metrics frame lacks the prom field";
            return false;
        }
        out.prometheus = prom->string_value();
        return true;
    }
    if (out.type != "result") {
        error = "unknown response type \"" + out.type + "\"";
        return false;
    }

    const Json* cached = doc->find("cached");
    if (cached != nullptr && cached->is_bool())
        out.cached = cached->bool_value();
    if (const Json* v = doc->find("queue_ms"); v && v->is_number())
        out.queue_ms = v->double_value();
    if (const Json* v = doc->find("compile_ms"); v && v->is_number())
        out.compile_ms = v->double_value();
    if (const Json* v = doc->find("tier"); v && v->is_string())
        out.plan.tier = v->string_value();
    if (const Json* v = doc->find("selected"); v && v->is_string())
        out.plan.selected = v->string_value();
    if (const Json* v = doc->find("depth"); v && v->is_number())
        out.plan.depth = v->int_value();
    if (const Json* v = doc->find("cx"); v && v->is_number())
        out.plan.cx = v->int_value();
    if (const Json* v = doc->find("swaps"); v && v->is_number())
        out.plan.swaps = v->int_value();
    if (const Json* v = doc->find("qasm"); v && v->is_string())
        out.qasm = v->string_value();

    // Recover the raw plan fragment (cache-identity tests compare it
    // byte for byte): everything from the "tier" key to the payload's
    // closing brace. The envelope has a fixed key order with no string
    // values before the fragment, so the first occurrence is it.
    const std::size_t start = payload.find("\"tier\":");
    if (start != std::string::npos && payload.size() > start + 1)
        out.fragment = payload.substr(start, payload.size() - 1 - start);

    // Keep the raw report JSON (it is the fragment's last member).
    const std::size_t report = out.fragment.find("\"report\":");
    if (report != std::string::npos)
        out.report_json =
            out.fragment.substr(report + std::strlen("\"report\":"));
    return true;
}

} // namespace permuq::service
